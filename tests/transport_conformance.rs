//! Cross-transport conformance suite.
//!
//! The [`Transport`] trait promises one contract over three very different
//! wires — the inline lossy fabric (synchronous retries), the threaded
//! wire-worker pool (in-process rings + Dekker parking), and the
//! shared-memory segment (cross-address-space rings + futex doorbells).
//! Every test here is parametrized over all available backends and asserts
//! the *same* observable behaviour:
//!
//! * byte-exact delivery through the full seeded fault matrix;
//! * dedup accounting — duplicated fragments never complete extra epochs;
//! * NACK parity — target refusals surface through `take_nacks` after a
//!   `flush`, whatever the wire;
//! * same-seed telemetry replay identity (lockstep scenarios);
//! * crash-during-quiesce — `flush` terminates and reports the casualty
//!   even when the fault model kills the destination mid-drain;
//! * and, for the shm backend, a real fork/exec run: initiator and
//!   receiver in **separate OS processes**, reliability and telemetry
//!   layers unchanged.
//!
//! The shm backend self-skips on platforms without the required mmap/futex
//! primitives (`shm_supported()`), so the suite stays green everywhere.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rvma::core::transport::DeliveryOrder;
use rvma::core::{
    shm_pair, shm_supported, AsyncNetwork, EndpointConfig, FaultModel, FaultStats, LossyNetwork,
    NackReason, NodeAddr, RvmaEndpoint, RvmaError, ShmClient, Telemetry, Threshold, Transport,
    VirtAddr,
};

const SERVER: NodeAddr = NodeAddr::node(0);
const CLIENT: NodeAddr = NodeAddr::node(1);
const MAILBOX: VirtAddr = VirtAddr(0x10);

/// Fixed replay seeds (the fault_recovery convention, sans env knob —
/// conformance must be bit-stable in CI).
const SEEDS: [u64; 2] = [0xBAD_5EED, 0x7EA5_E77E];

const BACKENDS: [&str; 3] = ["inline-lossy", "threaded", "shm"];

/// The fault models every backend must deliver byte-exact through.
fn fault_matrix() -> Vec<(&'static str, FaultModel)> {
    vec![
        ("none", FaultModel::NONE),
        (
            "drop",
            FaultModel {
                drop_p: 0.05,
                ..FaultModel::NONE
            },
        ),
        (
            "dup",
            FaultModel {
                dup_p: 0.05,
                ..FaultModel::NONE
            },
        ),
        (
            "delay",
            FaultModel {
                delay_p: 0.10,
                delay_spans: 3,
                ..FaultModel::NONE
            },
        ),
        (
            "drop+dup",
            FaultModel {
                drop_p: 0.05,
                dup_p: 0.05,
                ..FaultModel::NONE
            },
        ),
    ]
}

/// Keeps the backend's network/server half alive for the fixture's life.
enum Holder {
    Inline(Arc<LossyNetwork>),
    Threaded(AsyncNetwork),
    Shm(rvma::core::ShmServer),
}

impl Holder {
    fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        match self {
            Holder::Inline(net) => Some(net.fault_stats()),
            Holder::Threaded(net) => net.fault_stats(),
            Holder::Shm(server) => server.fault_stats(),
        }
    }
}

/// Build one backend: the receiver-side endpoint plus a boxed [`Transport`]
/// for the initiator side. Returns `None` when the backend cannot run on
/// this platform (shm on non-Linux).
fn fixture(
    backend: &str,
    mtu: usize,
    cfg: EndpointConfig,
) -> Option<(Holder, Arc<RvmaEndpoint>, Box<dyn Transport>)> {
    match backend {
        "inline-lossy" => {
            let net = LossyNetwork::with_config(mtu, cfg.fault_model, cfg.fault_seed, cfg);
            let ep = net.add_endpoint(SERVER);
            let t: Box<dyn Transport> = Box::new(net.inline_channel(CLIENT));
            Some((Holder::Inline(net), ep, t))
        }
        "threaded" => {
            let net = AsyncNetwork::for_endpoint_config(
                mtu,
                DeliveryOrder::InOrder,
                Duration::ZERO,
                &cfg,
            );
            let ep = net.add_endpoint(SERVER);
            let t: Box<dyn Transport> = Box::new(net.initiator(CLIENT));
            Some((Holder::Threaded(net), ep, t))
        }
        "shm" => {
            if !shm_supported() {
                eprintln!("conformance: skipping shm backend (unsupported platform)");
                return None;
            }
            let (server, client) = shm_pair(mtu, cfg, CLIENT).expect("shm pair");
            let ep = server.add_endpoint(SERVER);
            Some((Holder::Shm(server), ep, Box::new(client)))
        }
        other => panic!("unknown backend {other}"),
    }
}

fn faulted_cfg(model: FaultModel, seed: u64) -> EndpointConfig {
    EndpointConfig {
        dedup_window: 1 << 15,
        fault_model: model,
        fault_seed: seed,
        ..Default::default()
    }
}

#[test]
fn backend_names_match_fixture() {
    for backend in BACKENDS {
        let Some((_h, _ep, t)) = fixture(backend, 64, faulted_cfg(FaultModel::NONE, 1)) else {
            continue;
        };
        assert_eq!(
            t.backend(),
            if backend == "inline-lossy" {
                "inline-lossy"
            } else {
                backend
            }
        );
    }
}

/// Byte-exact delivery through the fault matrix, lockstep epochs: put,
/// flush (the drain barrier), then the epoch must already be complete.
#[test]
fn byte_exact_delivery_under_fault_matrix() {
    const EPOCHS: usize = 10;
    const LEN: usize = 64;
    for backend in BACKENDS {
        for (fname, model) in fault_matrix() {
            for seed in SEEDS {
                let Some((_h, ep, t)) = fixture(backend, 16, faulted_cfg(model, seed)) else {
                    continue;
                };
                let win = ep
                    .init_window(MAILBOX, Threshold::bytes(LEN as u64))
                    .unwrap();
                for e in 0..EPOCHS {
                    let mut note = win.post_buffer(vec![0u8; LEN]).unwrap();
                    let payload: Vec<u8> = (0..LEN)
                        .map(|i| ((e * 31 + i * 7 + 1) % 251) as u8)
                        .collect();
                    t.put(SERVER, MAILBOX, &payload).unwrap_or_else(|err| {
                        panic!("[{backend}/{fname} seed={seed}] epoch {e}: put failed: {err:?}")
                    });
                    t.flush().unwrap_or_else(|err| {
                        panic!("[{backend}/{fname} seed={seed}] epoch {e}: flush failed: {err:?}")
                    });
                    // The flush barrier covered every retransmission: the
                    // epoch is complete *now*, no further waiting allowed.
                    let buf = note.poll().unwrap_or_else(|| {
                        panic!("[{backend}/{fname} seed={seed}] epoch {e}: incomplete after flush")
                    });
                    assert_eq!(
                        buf.data(),
                        payload.as_slice(),
                        "[{backend}/{fname} seed={seed}] epoch {e}: bytes corrupted"
                    );
                }
                assert!(
                    t.take_nacks().is_empty(),
                    "[{backend}/{fname} seed={seed}] spurious NACKs"
                );
                assert_eq!(
                    win.epoch(),
                    EPOCHS as u64,
                    "[{backend}/{fname} seed={seed}]"
                );
            }
        }
    }
}

/// Duplication must never complete extra epochs: the dedup window absorbs
/// the second copy on every backend, so N puts = exactly N op-counted
/// epochs — and the fault stats prove duplicates actually fired.
#[test]
fn dedup_accounting_under_duplication() {
    const EPOCHS: usize = 40;
    let model = FaultModel {
        dup_p: 0.3,
        ..FaultModel::NONE
    };
    for backend in BACKENDS {
        let Some((holder, ep, t)) = fixture(backend, 64, faulted_cfg(model, 0xD0D0)) else {
            continue;
        };
        let win = ep.init_window(MAILBOX, Threshold::ops(1)).unwrap();
        for e in 0..EPOCHS {
            let mut note = win.post_buffer(vec![0u8; 32]).unwrap();
            t.put(SERVER, MAILBOX, &[(e % 251) as u8; 32]).unwrap();
            t.flush().unwrap();
            let buf = note
                .poll()
                .unwrap_or_else(|| panic!("[{backend}] epoch {e} incomplete after flush"));
            assert!(buf.data().iter().all(|&b| b == (e % 251) as u8));
        }
        assert_eq!(
            win.epoch(),
            EPOCHS as u64,
            "[{backend}] duplicates must not advance op-counted epochs"
        );
        let stats = holder.fault_stats().expect("fault model is active");
        assert!(
            stats.duplicated() > 0,
            "[{backend}] dup_p=0.3 over {EPOCHS} ops never fired"
        );
        assert!(t.take_nacks().is_empty(), "[{backend}]");
    }
}

/// Target refusals surface identically everywhere: async NACKs, complete
/// after a flush, with the refused mailbox address and reason.
#[test]
fn nack_parity_across_backends() {
    let unbound = VirtAddr(0x999);
    for backend in BACKENDS {
        let Some((_h, _ep, t)) = fixture(backend, 64, faulted_cfg(FaultModel::NONE, 3)) else {
            continue;
        };
        t.put(SERVER, unbound, &[1, 2, 3]).unwrap();
        t.flush().unwrap();
        let nacks = t.take_nacks();
        assert_eq!(
            nacks,
            vec![(unbound, NackReason::NoSuchMailbox)],
            "[{backend}] refusal must surface as exactly one NoSuchMailbox NACK"
        );
    }
}

/// One lockstep faulted run; returns the canonical (timestamp-free)
/// telemetry sequence of the deterministic recorder for this backend.
///
/// Recorder choice per backend: the inline transport is single-threaded,
/// so its full network-level stream is deterministic. The threaded
/// transport records initiator-side events concurrently with worker-side
/// ones, so only an endpoint-attached recorder (completion lifecycle) is
/// replay-stable. The shm server's recorder covers the whole receiver
/// datapath — Retransmit/WireDeliver/EpochComplete/handoff — because one
/// worker thread records everything and the client holds no recorder.
fn replay_run(backend: &str, seed: u64) -> Option<Vec<(rvma::core::EventKind, u64, u64, u64)>> {
    const EPOCHS: usize = 8;
    // Exactly one fragment per put: with lockstep flushes there is never
    // more than one fragment in flight, so the worker's ring-vs-deferred
    // scheduling (which is timing-dependent for concurrent fragments)
    // cannot reorder the recorded stream between runs.
    const LEN: usize = 16;
    let model = FaultModel {
        drop_p: 0.10,
        dup_p: 0.10,
        ..FaultModel::NONE
    };
    let mut cfg = faulted_cfg(model, seed);
    cfg.telemetry = matches!(backend, "inline-lossy" | "shm");
    let (holder, ep, t) = fixture(backend, 16, cfg)?;
    let recorder: Arc<Telemetry> = match &holder {
        Holder::Inline(net) => net.telemetry().expect("inline telemetry on"),
        Holder::Threaded(_) => {
            let rec = Arc::new(Telemetry::new());
            ep.attach_telemetry(rec.clone());
            rec
        }
        Holder::Shm(server) => server.telemetry().expect("shm telemetry on"),
    };
    let win = ep
        .init_window(MAILBOX, Threshold::bytes(LEN as u64))
        .unwrap();
    for e in 0..EPOCHS {
        let mut note = win.post_buffer(vec![0u8; LEN]).unwrap();
        t.put(SERVER, MAILBOX, &[(e + 1) as u8; LEN]).unwrap();
        t.flush().unwrap();
        note.poll().expect("epoch complete after flush");
    }
    let snap = recorder.snapshot();
    assert_eq!(snap.dropped, 0, "[{backend}] replay run overflowed a shard");
    Some(snap.canonical_sequence())
}

/// Same seed ⇒ identical canonical event sequence, run to run, on every
/// backend — the replay-determinism contract extended across the wire.
#[test]
fn same_seed_replay_identity_per_backend() {
    for backend in BACKENDS {
        for seed in SEEDS {
            let Some(a) = replay_run(backend, seed) else {
                continue;
            };
            let b = replay_run(backend, seed).expect("second run of a runnable backend");
            assert!(
                !a.is_empty(),
                "[{backend} seed={seed}] replay scenario recorded nothing"
            );
            assert_eq!(a, b, "[{backend} seed={seed}] same-seed runs diverged");
        }
    }
}

/// Crash-during-quiesce: the fault model kills the destination while
/// retransmissions are still parked. `flush` must terminate (bounded
/// retry budget), and every post-crash fragment must surface as a
/// `NoSuchMailbox` NACK — on the threaded and shm backends alike.
#[test]
fn crash_during_quiesce_terminates_and_reports() {
    const PUTS: usize = 30;
    let model = FaultModel {
        drop_p: 0.2,
        crash_after_frags: Some(10),
        ..FaultModel::NONE
    };
    for backend in ["threaded", "shm"] {
        let Some((_h, ep, t)) = fixture(backend, 64, faulted_cfg(model, 0xC4A5)) else {
            continue;
        };
        // Threshold above the total traffic: the epoch never completes,
        // the test only cares that flush terminates and reports.
        let win = ep.init_window(MAILBOX, Threshold::bytes(4096)).unwrap();
        let _note = win.post_buffer(vec![0u8; 4096]).unwrap();
        let mut rejected = 0usize;
        for i in 0..PUTS {
            match t.put_at(SERVER, MAILBOX, i * 32, &[i as u8; 32]) {
                Ok(()) => {}
                // Once the crash fault has torn the endpoint down, a
                // racing submission can observe the death directly
                // instead of earning a wire NACK — equally honest.
                Err(RvmaError::UnknownDestination) => rejected += 1,
                Err(e) => panic!("[{backend}] unexpected submit error: {e:?}"),
            }
        }
        // The drain barrier must not hang on the dead endpoint: parked
        // retries burn their budget and resolve as NACKs.
        t.flush()
            .unwrap_or_else(|e| panic!("[{backend}] flush hung or failed after crash: {e:?}"));
        let nacks = t.take_nacks();
        assert!(
            !nacks.is_empty() || rejected > 0,
            "[{backend}] post-crash traffic must surface (NACK or submit rejection)"
        );
        assert!(
            nacks
                .iter()
                .all(|(va, r)| *va == MAILBOX && *r == NackReason::NoSuchMailbox),
            "[{backend}] wrong NACK shape: {nacks:?}"
        );
    }
}

/// Async futures and blocking puts coexist over the segment exactly as
/// they do in-process: notified puts resolve with accurate fragment
/// counts while fire-and-forget traffic interleaves on the same rings.
#[test]
fn async_blocking_coexist_on_shm() {
    if !shm_supported() {
        return;
    }
    let (server, client) = shm_pair(16, faulted_cfg(FaultModel::NONE, 5), CLIENT).unwrap();
    let ep = server.add_endpoint(SERVER);
    let win = ep.init_window(MAILBOX, Threshold::bytes(96)).unwrap();
    let mut note = win.post_buffer(vec![0u8; 96]).unwrap();
    // Blocking half fills [0, 32), async halves fill [32, 96).
    client.put_at(SERVER, MAILBOX, 0, &[1u8; 32]).unwrap();
    let f1 = client
        .put_notify_at(SERVER, MAILBOX, 32, &[2u8; 32])
        .unwrap();
    let f2 = client
        .put_notify_at(SERVER, MAILBOX, 64, &[3u8; 32])
        .unwrap();
    let d1 = pollster::block_on(f1);
    let d2 = pollster::block_on(f2);
    assert_eq!(d1.fragments, 2);
    assert_eq!(d2.fragments, 2);
    assert!(!d1.nacked && !d2.nacked);
    let buf = note
        .wait_timeout(Duration::from_secs(10))
        .expect("threshold crossed");
    assert!(buf.data()[..32].iter().all(|&b| b == 1));
    assert!(buf.data()[32..64].iter().all(|&b| b == 2));
    assert!(buf.data()[64..].iter().all(|&b| b == 3));
}

// ---------------------------------------------------------------------------
// Large-message datapath: eager vs zero-copy/rendezvous lanes.
// ---------------------------------------------------------------------------

/// Lane forcing through [`EndpointConfig::eager_threshold`]: `usize::MAX`
/// stages every put (the pre-rendezvous behaviour, the A/B baseline);
/// `0` sends every non-empty put down the zero-copy lane (shared-`Bytes`
/// slices in-process, bulk-extent rendezvous over shm).
const LANES: [(&str, usize); 2] = [("eager", usize::MAX), ("zerocopy", 0)];

/// 256 KiB puts through drop/dup/delay faults, byte-exact on every
/// backend and both lanes — the large-message half of the fault matrix.
#[test]
fn large_payload_byte_exact_both_lanes_under_faults() {
    const EPOCHS: usize = 2;
    const LEN: usize = 256 * 1024;
    const MTU: usize = 4096;
    let models = [
        (
            "drop",
            FaultModel {
                drop_p: 0.05,
                ..FaultModel::NONE
            },
        ),
        (
            "dup",
            FaultModel {
                dup_p: 0.05,
                ..FaultModel::NONE
            },
        ),
        (
            "delay",
            FaultModel {
                delay_p: 0.10,
                delay_spans: 3,
                ..FaultModel::NONE
            },
        ),
    ];
    for backend in BACKENDS {
        for (lane, threshold) in LANES {
            for (fname, model) in models {
                for seed in SEEDS {
                    let mut cfg = faulted_cfg(model, seed);
                    cfg.eager_threshold = threshold;
                    let Some((_h, ep, t)) = fixture(backend, MTU, cfg) else {
                        continue;
                    };
                    let win = ep
                        .init_window(MAILBOX, Threshold::bytes(LEN as u64))
                        .unwrap();
                    for e in 0..EPOCHS {
                        let mut note = win.post_buffer(vec![0u8; LEN]).unwrap();
                        let payload: Vec<u8> = (0..LEN)
                            .map(|i| ((e * 131 + i * 7 + 3) % 251) as u8)
                            .collect();
                        t.put_bytes_at(
                            SERVER,
                            MAILBOX,
                            0,
                            rvma::core::Bytes::copy_from_slice(&payload),
                        )
                        .unwrap_or_else(|err| {
                            panic!("[{backend}/{lane}/{fname} seed={seed}] put failed: {err:?}")
                        });
                        t.flush().unwrap_or_else(|err| {
                            panic!("[{backend}/{lane}/{fname} seed={seed}] flush failed: {err:?}")
                        });
                        let buf = note.poll().unwrap_or_else(|| {
                            panic!(
                                "[{backend}/{lane}/{fname} seed={seed}] epoch {e} \
                                 incomplete after flush"
                            )
                        });
                        assert_eq!(
                            buf.data(),
                            payload.as_slice(),
                            "[{backend}/{lane}/{fname} seed={seed}] epoch {e}: bytes corrupted"
                        );
                    }
                    assert!(
                        t.take_nacks().is_empty(),
                        "[{backend}/{lane}/{fname} seed={seed}] spurious NACKs"
                    );
                }
            }
        }
    }
}

/// One lockstep large-payload faulted run on the zero-copy lane; returns
/// the canonical telemetry sequence (recorder choice as in `replay_run`).
fn large_replay_run(
    backend: &str,
    seed: u64,
) -> Option<Vec<(rvma::core::EventKind, u64, u64, u64)>> {
    const EPOCHS: usize = 3;
    const LEN: usize = 64 * 1024;
    let model = FaultModel {
        drop_p: 0.10,
        dup_p: 0.10,
        ..FaultModel::NONE
    };
    let mut cfg = faulted_cfg(model, seed);
    cfg.eager_threshold = 0;
    cfg.telemetry = matches!(backend, "inline-lossy" | "shm");
    let (holder, ep, t) = fixture(backend, 4096, cfg)?;
    let recorder: Arc<Telemetry> = match &holder {
        Holder::Inline(net) => net.telemetry().expect("inline telemetry on"),
        Holder::Threaded(_) => {
            let rec = Arc::new(Telemetry::new());
            ep.attach_telemetry(rec.clone());
            rec
        }
        Holder::Shm(server) => server.telemetry().expect("shm telemetry on"),
    };
    let win = ep
        .init_window(MAILBOX, Threshold::bytes(LEN as u64))
        .unwrap();
    for e in 0..EPOCHS {
        let mut note = win.post_buffer(vec![0u8; LEN]).unwrap();
        let payload = vec![(e + 1) as u8; LEN];
        t.put_bytes_at(
            SERVER,
            MAILBOX,
            0,
            rvma::core::Bytes::copy_from_slice(&payload),
        )
        .unwrap();
        t.flush().unwrap();
        note.poll().expect("epoch complete after flush");
    }
    let snap = recorder.snapshot();
    assert_eq!(snap.dropped, 0, "[{backend}] replay run overflowed a shard");
    Some(snap.canonical_sequence())
}

/// Same seed ⇒ identical canonical event stream on the zero-copy lane —
/// rendezvous reserve/deliver/release events included.
#[test]
fn large_payload_same_seed_replay_identity() {
    for backend in BACKENDS {
        for seed in SEEDS {
            let Some(a) = large_replay_run(backend, seed) else {
                continue;
            };
            let b = large_replay_run(backend, seed).expect("second run of a runnable backend");
            assert!(!a.is_empty(), "[{backend} seed={seed}] recorded nothing");
            assert_eq!(
                a, b,
                "[{backend} seed={seed}] same-seed zero-copy runs diverged"
            );
        }
    }
}

/// Copies-per-byte accounting per backend and lane. The receiver gather
/// (`bytes_copied`, equal to accepted bytes) is the one unavoidable copy;
/// `staged_bytes` counts initiator-side staging on top of it:
///
/// * threaded/inline zero-copy: staged = 0  → exactly **1** copy/byte;
/// * threaded/inline eager:     staged = N  → 2 copies/byte;
/// * shm rendezvous: staged = N (extent write), wire = 0 → 2 copies/byte;
/// * shm eager: staged = N (slot write), wire = N (slot → `Bytes`) → 3.
#[test]
fn copies_per_byte_accounting_per_lane() {
    const LEN: usize = 128 * 1024;
    for backend in BACKENDS {
        for (lane, threshold) in LANES {
            let mut cfg = faulted_cfg(FaultModel::NONE, 11);
            cfg.eager_threshold = threshold;
            let Some((holder, ep, t)) = fixture(backend, 4096, cfg) else {
                continue;
            };
            let win = ep
                .init_window(MAILBOX, Threshold::bytes(LEN as u64))
                .unwrap();
            let mut note = win.post_buffer(vec![0u8; LEN]).unwrap();
            let payload = rvma::core::Bytes::from(vec![0xCD; LEN]);
            t.put_bytes_at(SERVER, MAILBOX, 0, payload).unwrap();
            t.flush().unwrap();
            note.poll().expect("epoch complete");
            let stats = ep.stats();
            assert_eq!(
                stats.bytes_copied, LEN as u64,
                "[{backend}/{lane}] gather copy must equal accepted bytes"
            );
            let staged = t.staged_bytes();
            let wire = match &holder {
                Holder::Shm(server) => server.wire_copied(),
                _ => 0,
            };
            let copies = (staged + wire + stats.bytes_copied) as f64 / stats.bytes_accepted as f64;
            let expected = match (backend, lane) {
                ("shm", "eager") => 3.0,
                ("shm", "zerocopy") => 2.0,
                (_, "eager") => 2.0,
                (_, "zerocopy") => 1.0,
                _ => unreachable!(),
            };
            assert_eq!(
                copies, expected,
                "[{backend}/{lane}] staged={staged} wire={wire} \
                 gathered={} accepted={}",
                stats.bytes_copied, stats.bytes_accepted
            );
            if lane == "zerocopy" && backend != "shm" {
                assert_eq!(staged, 0, "[{backend}] zero-copy lane staged bytes");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Epoch-buffer boundary audit (offset/overhang semantics, len > MTU).
// ---------------------------------------------------------------------------

const BOUND_BUF: usize = 1024;
const BOUND_MTU: usize = 64;

/// Exact fit ending at the last byte of the buffer: every backend and
/// both lanes must deliver byte-exact with zero NACKs.
#[test]
fn boundary_exact_fit_to_buffer_end() {
    const LEN: usize = 3 * BOUND_MTU; // > MTU: exercises fragmentation
    for backend in BACKENDS {
        for (lane, threshold) in LANES {
            let mut cfg = faulted_cfg(FaultModel::NONE, 21);
            cfg.eager_threshold = threshold;
            let Some((_h, ep, t)) = fixture(backend, BOUND_MTU, cfg) else {
                continue;
            };
            let win = ep
                .init_window(MAILBOX, Threshold::bytes(LEN as u64))
                .unwrap();
            let mut note = win.post_buffer(vec![0u8; BOUND_BUF]).unwrap();
            let payload: Vec<u8> = (0..LEN).map(|i| (i % 249 + 1) as u8).collect();
            t.put_bytes_at(
                SERVER,
                MAILBOX,
                BOUND_BUF - LEN,
                rvma::core::Bytes::copy_from_slice(&payload),
            )
            .unwrap();
            t.flush().unwrap();
            let buf = note
                .poll()
                .unwrap_or_else(|| panic!("[{backend}/{lane}] exact-fit epoch incomplete"));
            let full = buf.full_buffer();
            assert_eq!(&full[BOUND_BUF - LEN..], payload.as_slice());
            assert!(
                full[..BOUND_BUF - LEN].iter().all(|&b| b == 0),
                "[{backend}/{lane}] bytes before the put's offset disturbed"
            );
            assert!(t.take_nacks().is_empty(), "[{backend}/{lane}]");
        }
    }
}

/// One-fragment overhang on the **eager** lane: fragments are discarded
/// whole at the boundary, so the in-bounds prefix lands and the
/// overhanging fragment NACKs `OutOfBounds`. (On the zero-copy/rendezvous
/// lane the put may be a single gather, in which case the whole put is
/// refused — covered by `boundary_overhang_zero_copy_refuses`.)
#[test]
fn boundary_one_fragment_overhang_eager() {
    const LEN: usize = 3 * BOUND_MTU;
    const IN_BOUNDS: usize = 2 * BOUND_MTU;
    let offset = BOUND_BUF - IN_BOUNDS;
    for backend in BACKENDS {
        let mut cfg = faulted_cfg(FaultModel::NONE, 22);
        cfg.eager_threshold = usize::MAX;
        let Some((_h, ep, t)) = fixture(backend, BOUND_MTU, cfg) else {
            continue;
        };
        // Threshold = whole buffer so the epoch stays open while the
        // overhang is refused (a smaller threshold would rotate the
        // buffer out from under the trailing fragment → NoBufferPosted).
        let win = ep
            .init_window(MAILBOX, Threshold::bytes(BOUND_BUF as u64))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; BOUND_BUF]).unwrap();
        let payload: Vec<u8> = (0..LEN).map(|i| (i % 247 + 1) as u8).collect();
        t.put_at(SERVER, MAILBOX, offset, &payload).unwrap();
        t.flush().unwrap();
        // NACK count is backend-specific (the inline initiator aborts at
        // the first synchronous refusal; async backends NACK each
        // overhanging fragment) — the contract is "at least one, all
        // OutOfBounds".
        let nacks = t.take_nacks();
        assert!(!nacks.is_empty(), "[{backend}] overhang must NACK");
        assert!(
            nacks
                .iter()
                .all(|(va, r)| *va == MAILBOX && *r == NackReason::OutOfBounds),
            "[{backend}] wrong NACK shape: {nacks:?}"
        );
        // Fill the rest of the buffer with a clean put: the epoch then
        // completes, proving exactly the in-bounds prefix of the faulty
        // put landed (fragments are discarded whole at the boundary).
        let filler: Vec<u8> = (0..offset).map(|i| (i % 13) as u8).collect();
        t.put_at(SERVER, MAILBOX, 0, &filler).unwrap();
        t.flush().unwrap();
        let buf = note
            .poll()
            .unwrap_or_else(|| panic!("[{backend}] filler put never completed the epoch"));
        let full = buf.full_buffer();
        assert_eq!(
            &full[offset..],
            &payload[..IN_BOUNDS],
            "[{backend}] in-bounds fragments corrupted"
        );
        assert_eq!(&full[..offset], filler.as_slice(), "[{backend}] filler");
        assert!(t.take_nacks().is_empty(), "[{backend}] clean put NACKed");
    }
}

/// Fully out-of-bounds puts (starting at `buffer_len - 1` and at exactly
/// `buffer_len`, len > MTU): no byte may land, and the refusal surfaces.
#[test]
fn boundary_out_of_bounds_start_eager() {
    const LEN: usize = 2 * BOUND_MTU;
    for backend in BACKENDS {
        for start in [BOUND_BUF - 1, BOUND_BUF] {
            let mut cfg = faulted_cfg(FaultModel::NONE, 23);
            cfg.eager_threshold = usize::MAX;
            let Some((_h, ep, t)) = fixture(backend, BOUND_MTU, cfg) else {
                continue;
            };
            let win = ep.init_window(MAILBOX, Threshold::bytes(1)).unwrap();
            let mut note = win.post_buffer(vec![0x5Au8; BOUND_BUF]).unwrap();
            t.put_at(SERVER, MAILBOX, start, &[0xFF; LEN]).unwrap();
            t.flush().unwrap();
            let nacks = t.take_nacks();
            assert!(
                !nacks.is_empty(),
                "[{backend} start={start}] OOB put must NACK"
            );
            assert!(
                nacks
                    .iter()
                    .all(|(va, r)| *va == MAILBOX && *r == NackReason::OutOfBounds),
                "[{backend} start={start}] wrong NACK shape: {nacks:?}"
            );
            assert!(
                note.poll().is_none(),
                "[{backend} start={start}] no byte may land, epoch must not complete"
            );
            let stats = ep.stats();
            assert_eq!(
                stats.bytes_accepted, 0,
                "[{backend} start={start}] accepted bytes from an OOB put"
            );
        }
    }
}

/// Overhang on the zero-copy lane: whatever the fragment geometry (MTU
/// slices in-process, one rendezvous gather over shm), the overhang is
/// refused with `OutOfBounds` and the put never corrupts bytes past the
/// buffer end.
#[test]
fn boundary_overhang_zero_copy_refuses() {
    const LEN: usize = 3 * BOUND_MTU;
    const IN_BOUNDS: usize = 2 * BOUND_MTU;
    let offset = BOUND_BUF - IN_BOUNDS;
    for backend in BACKENDS {
        let mut cfg = faulted_cfg(FaultModel::NONE, 24);
        cfg.eager_threshold = 0;
        let Some((_h, ep, t)) = fixture(backend, BOUND_MTU, cfg) else {
            continue;
        };
        // Threshold the in-bounds prefix cannot reach — the buffer must
        // still be posted when the overhang arrives, so the refusal is
        // OutOfBounds (not a post-rotation NoBufferPosted).
        let win = ep
            .init_window(MAILBOX, Threshold::bytes(LEN as u64))
            .unwrap();
        let _note = win.post_buffer(vec![0u8; BOUND_BUF]).unwrap();
        let payload: Vec<u8> = (0..LEN).map(|i| (i % 245 + 1) as u8).collect();
        t.put_bytes_at(
            SERVER,
            MAILBOX,
            offset,
            rvma::core::Bytes::copy_from_slice(&payload),
        )
        .unwrap();
        t.flush().unwrap();
        let nacks = t.take_nacks();
        assert!(!nacks.is_empty(), "[{backend}] overhang must NACK");
        assert!(
            nacks
                .iter()
                .all(|(va, r)| *va == MAILBOX && *r == NackReason::OutOfBounds),
            "[{backend}] wrong NACK shape: {nacks:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// The real thing: two OS processes, one segment.
// ---------------------------------------------------------------------------

const XPROC_EPOCHS: usize = 3;
const XPROC_LEN: usize = 1000;
const XPROC_ENV: &str = "RVMA_XPROC_SEG";

fn xproc_payload(epoch: usize) -> Vec<u8> {
    (0..XPROC_LEN)
        .map(|i| ((epoch * 97 + i * 13 + 5) % 251) as u8)
        .collect()
}

/// Child role: runs only when the parent re-execs this test binary with
/// `RVMA_XPROC_SEG` set; a normal test run returns immediately. Connects
/// to the parent's segment as a [`ShmClient`] and streams the epochs.
#[test]
fn shm_cross_process_child() {
    let Ok(path) = std::env::var(XPROC_ENV) else {
        return;
    };
    let client = ShmClient::connect(Path::new(&path), CLIENT).expect("child connects");
    for e in 0..XPROC_EPOCHS {
        client
            .put(SERVER, MAILBOX, &xproc_payload(e))
            .expect("child put");
        // Lockstep: the flush ack proves the server consumed the epoch,
        // so the child never overruns the receiver's reposting.
        client.flush().expect("child flush");
    }
    assert!(client.take_nacks().is_empty(), "child saw NACKs");
    // Exercise the NACK path cross-process too.
    client
        .put(SERVER, VirtAddr(0xDEAD), &[9u8; 8])
        .expect("child nack put");
    client.flush().expect("child nack flush");
    let nacks = client.take_nacks();
    assert_eq!(nacks, vec![(VirtAddr(0xDEAD), NackReason::NoSuchMailbox)]);
}

/// Parent role: hosts the [`ShmServer`] (receiver datapath, dedup,
/// telemetry), fork/execs the child test as a **separate OS process**,
/// and verifies byte-exact arrival of every epoch the child streamed in.
#[test]
fn shm_cross_process_delivery() {
    if !shm_supported() {
        eprintln!("conformance: skipping cross-process test (unsupported platform)");
        return;
    }
    let cfg = EndpointConfig {
        dedup_window: 1 << 12,
        telemetry: true,
        ..Default::default()
    };
    let server = rvma::core::ShmServer::create_default(64, cfg).expect("create segment");
    let ep = server.add_endpoint(SERVER);
    let win = ep
        .init_window(MAILBOX, Threshold::bytes(XPROC_LEN as u64))
        .unwrap();

    // Pre-post every epoch's buffer: the child's flush ack can outrun the
    // parent's notification handling, and a put landing between epochs
    // with no buffer posted would NACK `NoBufferPosted`.
    let mut notes: Vec<_> = (0..XPROC_EPOCHS)
        .map(|_| win.post_buffer(vec![0u8; XPROC_LEN]).unwrap())
        .collect();

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "shm_cross_process_child", "--nocapture"])
        .env(XPROC_ENV, server.path())
        .spawn()
        .expect("spawn child process");

    for (e, note) in notes.iter_mut().enumerate() {
        let buf = note
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|| panic!("epoch {e}: child's put never completed the epoch"));
        assert_eq!(
            buf.data(),
            xproc_payload(e).as_slice(),
            "epoch {e}: cross-process payload corrupted"
        );
    }

    let status = child.wait().expect("child exit status");
    assert!(status.success(), "child process failed: {status:?}");
    // 1000-byte epochs at MTU 64 are 16 wire fragments each.
    assert!(server.delivered() >= XPROC_EPOCHS as u64 * 16);
    // The receiver datapath ran with telemetry unchanged: the recorder
    // saw the child's fragments arrive and the epochs complete.
    let snap = server.telemetry().unwrap().snapshot();
    let counts = snap.canonical_sequence();
    assert!(
        counts
            .iter()
            .any(|(k, _, _, _)| *k == rvma::core::EventKind::EpochComplete),
        "telemetry missed the cross-process epochs"
    );
}

/// Killing the server process's worker (simulated by dropping the server
/// mid-conversation) must fail the client with `TransportFailed`, never a
/// hang — the crash-during-quiesce shape on the cross-process wire.
#[test]
fn shm_server_death_fails_inflight_flush() {
    if !shm_supported() {
        return;
    }
    let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
    let ep = server.add_endpoint(SERVER);
    let win = ep.init_window(MAILBOX, Threshold::ops(1)).unwrap();
    let _n = win.post_buffer(vec![0u8; 64]).unwrap();
    client.put(SERVER, MAILBOX, &[1u8; 64]).unwrap();
    client.flush().unwrap();
    drop(server); // SERVER_GONE published, worker joined
    let err = client.flush();
    assert!(
        matches!(err, Err(RvmaError::TransportFailed(_))),
        "flush against a dead server must error, got {err:?}"
    );
}
