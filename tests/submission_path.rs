//! End-to-end checks of the batched submission path: route caching, payload
//! pooling, doorbell batches, and pooled receive buffers working together
//! across the async wire-worker pool.

use rvma::core::{
    AsyncNetwork, DeliveryOrder, NodeAddr, Threshold, VirtAddr, DEFAULT_DOORBELL_FRAGS,
};
use std::time::Duration;

#[test]
fn steady_state_submission_is_cached_and_pooled() {
    // A message loop over one route: after warm-up, every put rides the
    // route cache and the payload pool, and the receiver's pooled epoch
    // buffers recycle — this is the acceptance check that the steady-state
    // small-put path performs no RwLock acquisition and no allocation
    // beyond the pooled payload copy.
    let net = AsyncNetwork::with_options(256, DeliveryOrder::InOrder, Duration::ZERO, 8);
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    let win = server
        .init_window(VirtAddr::new(0x10), Threshold::ops(1))
        .unwrap();

    const ROUNDS: u64 = 64;
    // Warm-up put (route miss, payload-pool miss), drained before the loop.
    let mut warm = win.post_pooled(64).unwrap();
    client
        .put(NodeAddr::node(0), VirtAddr::new(0x10), &[0xAA; 64])
        .unwrap();
    net.quiesce();
    assert_eq!(warm.wait().len(), 64);
    // Steady state: post → put → complete, one epoch per round.
    for _ in 0..ROUNDS {
        let mut n = win.post_pooled(64).unwrap();
        client
            .put(NodeAddr::node(0), VirtAddr::new(0x10), &[0xBB; 64])
            .unwrap();
        net.quiesce();
        assert_eq!(n.wait().len(), 64);
    }

    let routes = client.route_stats();
    assert_eq!(routes.misses, 1, "only the cold put consults the table");
    assert_eq!(routes.hits, ROUNDS);
    let payloads = client.pool_stats();
    assert_eq!(payloads.misses, 1, "only the cold put allocates a payload");
    assert_eq!(payloads.hits, ROUNDS);
    // Receiver side: pooled epoch buffers recycle once they leave the
    // retired ring, so posts stop allocating too.
    let bufs = win.pool_stats();
    assert!(
        bufs.hits >= ROUNDS / 2,
        "pooled posts mostly reuse allocations: {bufs:?}"
    );
}

#[test]
fn doorbell_batches_deliver_across_shards() {
    // A batch spraying many mailboxes through an 8-worker pool: doorbell
    // auto-flush keeps the channel crossings bounded while every epoch
    // still completes with the right bytes.
    let net = AsyncNetwork::with_options(128, DeliveryOrder::InOrder, Duration::ZERO, 8);
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));

    const MAILBOXES: u64 = 16;
    const PUTS_EACH: u64 = 8;
    let mut notes = Vec::new();
    for i in 0..MAILBOXES {
        let win = server
            .init_window(VirtAddr::new(i), Threshold::ops(PUTS_EACH))
            .unwrap();
        notes.push(win.post_buffer(vec![0; (PUTS_EACH as usize) * 16]).unwrap());
    }
    // Keep each group under the doorbell so the explicit flush below is
    // what rings it for the tail.
    assert!(MAILBOXES * PUTS_EACH <= 2 * DEFAULT_DOORBELL_FRAGS as u64);
    let mut batch = client.batch();
    for k in 0..PUTS_EACH {
        for i in 0..MAILBOXES {
            batch
                .put_at(
                    NodeAddr::node(0),
                    VirtAddr::new(i),
                    (k as usize) * 16,
                    &[i as u8 + 1; 16],
                )
                .unwrap();
        }
    }
    batch.flush().unwrap();
    for (i, n) in notes.iter_mut().enumerate() {
        let buf = n.wait();
        assert!(buf.full_buffer().iter().all(|&b| b == i as u8 + 1));
    }
    assert_eq!(server.stats().epochs_completed, MAILBOXES);
    net.quiesce();
    assert!(client.take_nacks().is_empty());
}

#[test]
fn removal_invalidates_routes_and_nacks_in_flight() {
    let net = AsyncNetwork::with_options(256, DeliveryOrder::InOrder, Duration::ZERO, 4);
    let _server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    // Warm the route, then remove the endpoint: the cached route goes
    // stale via the generation counter and the next put fails fast.
    client
        .put(NodeAddr::node(0), VirtAddr::new(1), &[0; 8])
        .unwrap();
    assert!(net.remove_endpoint(NodeAddr::node(0)));
    assert!(client
        .put(NodeAddr::node(0), VirtAddr::new(1), &[0; 8])
        .is_err());
    net.quiesce();
    // The first put raced the removal: whichever way it resolved, it never
    // errors twice — either it delivered to a missing mailbox (NACK) or it
    // landed before the removal took effect.
    let nacks = client.take_nacks();
    assert!(nacks.len() <= 1);
}
