//! Property-based checks over randomized topology parameters: every
//! generated instance must wire symmetrically, and both routing variants
//! must deliver every sampled terminal pair within the family's worst-case
//! hop bound, with no routing loops.

use proptest::prelude::*;
use rvma::net::fabric::TopologySpec;
use rvma::net::link::LinkParams;
use rvma::net::packet::{Packet, PacketHeader, PacketKind, RouteState};
use rvma::net::router::RoutingKind;
use rvma::net::switch::{OutPort, PortView};
use rvma::net::topology::{
    dragonfly, fattree, hyperx, torus3d, DragonflyParams, FatTreeParams, HyperXParams, TorusParams,
};
use rvma::sim::{ComponentId, SimRng, SimTime};

fn mk_packet(src: u32, dst: u32) -> Packet {
    Packet {
        id: 0,
        src,
        dst,
        payload_bytes: 512,
        header: PacketHeader {
            kind: PacketKind::RvmaData,
            msg_id: 0,
            msg_bytes: 512,
            offset: 0,
            vaddr: 0,
            tag: 0,
        },
        route: RouteState::default(),
        injected_at: SimTime::ZERO,
    }
}

/// Walk the route from `src` to `dst` over idle ports; return hop count.
fn path_len(spec: &TopologySpec, src: u32, dst: u32, seed: u64, max_hops: usize) -> usize {
    let mut rng = SimRng::new(seed);
    let mut pkt = mk_packet(src, dst);
    let mut sw = spec.terminal_switch(src);
    let dst_sw = spec.terminal_switch(dst);
    let mut hops = 0;
    while sw != dst_sw {
        assert!(
            hops < max_hops,
            "routing loop in {} at hop {hops}",
            spec.name
        );
        let (_, tc) = spec.switch_terms[sw as usize];
        let nports = tc as usize + spec.switch_links[sw as usize].len();
        let ports: Vec<OutPort> = (0..nports)
            .map(|_| OutPort {
                to: ComponentId::from_raw(0),
                link: LinkParams::gbps_ns(100, 100),
                next_free: SimTime::ZERO,
            })
            .collect();
        let view = PortView::new(SimTime::ZERO, &ports);
        let port = spec.router.route(sw, &mut pkt, &view, &mut rng);
        assert!(port >= tc as usize, "routed into a terminal port");
        pkt.route.hops += 1;
        sw = spec.switch_links[sw as usize][port - tc as usize];
        hops += 1;
    }
    hops
}

fn check_spec(spec: &TopologySpec, bound: usize, samples: u32) {
    spec.validate().expect("wiring");
    let n = spec.terminals;
    for k in 0..samples {
        let src = (k * 7919) % n;
        let dst = (src + 1 + (k * 104_729) % (n - 1)) % n;
        if src == dst {
            continue;
        }
        let hops = path_len(spec, src, dst, 11 + k as u64, 64);
        assert!(
            hops <= bound,
            "{}: {src}->{dst} took {hops} hops (bound {bound})",
            spec.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn torus_any_shape_routes(
        dx in 2u32..6, dy in 2u32..6, dz in 2u32..5, tps in 1u32..4,
    ) {
        let p = TorusParams { dims: [dx, dy, dz], tps };
        let bound = (dx / 2 + dy / 2 + dz / 2) as usize;
        for kind in [RoutingKind::Static, RoutingKind::Adaptive] {
            check_spec(&torus3d(p, kind), bound, 24);
        }
    }

    #[test]
    fn hyperx_any_shape_routes(d0 in 2u32..8, d1 in 2u32..8, tps in 1u32..5) {
        let p = HyperXParams { d: [d0, d1], tps };
        for kind in [RoutingKind::Static, RoutingKind::Adaptive] {
            check_spec(&hyperx(p, kind), 2, 24);
        }
    }

    #[test]
    fn fattree_any_k_routes(half_k in 1u32..5) {
        let p = FatTreeParams { k: half_k * 2 };
        for kind in [RoutingKind::Static, RoutingKind::Adaptive] {
            check_spec(&fattree(p, kind), 4, 24);
        }
    }

    #[test]
    fn dragonfly_any_shape_routes(a in 2u32..6, p_ in 1u32..4, h in 1u32..4) {
        let p = DragonflyParams { a, p: p_, h };
        // Minimal: 3; UGAL may take a Valiant detour: 6.
        check_spec(&dragonfly(p, RoutingKind::Static), 3, 24);
        check_spec(&dragonfly(p, RoutingKind::Adaptive), 6, 24);
    }
}
