//! Seeded fault-recovery stress suite for the reliability layer.
//!
//! Every test is deterministic given its seed: the fault dice, the retry
//! schedule, and both transports' delivery machinery are all seeded, so a
//! failing combination replays exactly. The CI job runs the fixed seeds
//! below plus one randomized seed injected through the `RVMA_FAULT_SEED`
//! environment variable; every assertion message carries the seed so a
//! red run can be reproduced with
//! `RVMA_FAULT_SEED=<seed> cargo test --test fault_recovery`.

use std::time::Duration;

use rvma::core::transport::DeliveryOrder;
use rvma::core::{
    AsyncNetwork, EndpointConfig, EpochOutcome, FaultModel, LossyNetwork, NodeAddr, RetryConfig,
    RvmaError, Threshold, VirtAddr,
};

const SERVER: NodeAddr = NodeAddr::node(0);
const CLIENT: NodeAddr = NodeAddr::node(1);

/// Fixed replay seeds, plus whatever `RVMA_FAULT_SEED` adds.
fn seeds() -> Vec<u64> {
    let mut s = vec![0xBAD_5EED, 42, 0x7EA5_E77E];
    if let Ok(v) = std::env::var("RVMA_FAULT_SEED") {
        match v.trim().parse::<u64>() {
            Ok(extra) => {
                eprintln!("fault_recovery: adding randomized seed RVMA_FAULT_SEED={extra}");
                s.push(extra);
            }
            Err(e) => panic!("RVMA_FAULT_SEED={v:?} is not a u64: {e}"),
        }
    }
    s
}

/// Every single-fault model plus the combined one the acceptance run uses.
fn fault_matrix() -> Vec<(&'static str, FaultModel)> {
    vec![
        (
            "drop",
            FaultModel {
                drop_p: 0.05,
                ..FaultModel::NONE
            },
        ),
        (
            "dup",
            FaultModel {
                dup_p: 0.05,
                ..FaultModel::NONE
            },
        ),
        (
            "reorder",
            FaultModel {
                reorder_p: 0.10,
                ..FaultModel::NONE
            },
        ),
        (
            "delay",
            FaultModel {
                delay_p: 0.10,
                delay_spans: 3,
                ..FaultModel::NONE
            },
        ),
        (
            "drop+dup+reorder",
            FaultModel {
                drop_p: 0.05,
                dup_p: 0.05,
                reorder_p: 0.05,
                ..FaultModel::NONE
            },
        ),
    ]
}

/// Lock-step epochs over a lossy fabric: post, reliable-put, verify. The
/// reliable put only returns once every fragment was accepted (or deduped)
/// at the receiver, so each epoch must complete before the next is posted.
fn lossy_stress(name: &str, model: FaultModel, seed: u64, epochs: usize) {
    let cfg = EndpointConfig {
        dedup_window: 1 << 15,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(16, model, seed, cfg);
    let server = net.add_endpoint(SERVER);
    let init = net.reliable_initiator(CLIENT);
    let win = server
        .init_window(VirtAddr::new(0x10), Threshold::bytes(64))
        .unwrap();
    for e in 0..epochs {
        let mut note = win.post_buffer(vec![0u8; 64]).unwrap();
        let fill = (e % 251) as u8;
        init.put(SERVER, VirtAddr::new(0x10), &[fill; 64])
            .unwrap_or_else(|err| panic!("[{name} seed={seed}] epoch {e}: put failed: {err:?}"));
        // Release any fragments still parked by reorder/delay faults; dedup
        // absorbs the ones whose retransmitted copy already landed.
        net.flush_delayed();
        let buf = note
            .wait_timeout(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("[{name} seed={seed}] epoch {e}: receiver hung"));
        assert!(
            buf.data().iter().all(|&b| b == fill),
            "[{name} seed={seed}] epoch {e}: payload corrupted"
        );
    }
    assert_eq!(
        win.epoch(),
        epochs as u64,
        "[{name} seed={seed}] epoch count drifted"
    );
}

#[test]
fn lossy_fault_matrix_completes_every_epoch_byte_exact() {
    for (name, model) in fault_matrix() {
        for seed in seeds() {
            lossy_stress(name, model, seed, 100);
        }
    }
}

/// The acceptance run: 10k reliable ops under drop + dup + reorder on the
/// lossy transport, every epoch byte-exact, bounded by the retry budget.
#[test]
fn lossy_ten_thousand_ops_complete_under_combined_faults() {
    let seed = *seeds().last().unwrap();
    let model = FaultModel {
        drop_p: 0.05,
        dup_p: 0.05,
        reorder_p: 0.05,
        ..FaultModel::NONE
    };
    let cfg = EndpointConfig {
        dedup_window: 1 << 15,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(16, model, seed, cfg);
    let server = net.add_endpoint(SERVER);
    let init = net.reliable_initiator(CLIENT);

    const OPS_PER_EPOCH: usize = 10;
    const EPOCHS: usize = 1_000;
    const OP_BYTES: usize = 16;
    let vaddr = VirtAddr::new(0x20);
    let win = server
        .init_window(vaddr, Threshold::bytes((OPS_PER_EPOCH * OP_BYTES) as u64))
        .unwrap();

    let mut retransmissions = 0u64;
    for e in 0..EPOCHS {
        let mut note = win
            .post_buffer(vec![0u8; OPS_PER_EPOCH * OP_BYTES])
            .unwrap();
        for slot in 0..OPS_PER_EPOCH {
            let op = e * OPS_PER_EPOCH + slot;
            let fill = (op % 251) as u8;
            let report = init
                .put_at(SERVER, vaddr, slot * OP_BYTES, &[fill; OP_BYTES])
                .unwrap_or_else(|err| panic!("seed {seed}: op {op} failed: {err:?}"));
            retransmissions += report.transmissions - report.fragments;
        }
        net.flush_delayed();
        let buf = note
            .wait_timeout(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("seed {seed}: epoch {e} hung"));
        for slot in 0..OPS_PER_EPOCH {
            let op = e * OPS_PER_EPOCH + slot;
            let fill = (op % 251) as u8;
            assert!(
                buf.full_buffer()[slot * OP_BYTES..(slot + 1) * OP_BYTES]
                    .iter()
                    .all(|&b| b == fill),
                "seed {seed}: op {op} corrupted"
            );
        }
    }
    assert_eq!(win.epoch(), EPOCHS as u64, "seed {seed}");
    assert!(
        net.dropped() > 0 && retransmissions > 0,
        "seed {seed}: the fault model never fired (dropped={}, retransmissions={retransmissions})",
        net.dropped()
    );
}

/// Same acceptance run over the fault-injected threaded transport: 10k
/// disjoint 16-byte puts into one 160 KB buffer, all landing exactly once.
#[test]
fn async_ten_thousand_ops_complete_under_combined_faults() {
    let seed = *seeds().last().unwrap();
    let cfg = EndpointConfig {
        dedup_window: 1 << 15,
        wire_workers: 4,
        fault_model: FaultModel {
            drop_p: 0.05,
            dup_p: 0.05,
            reorder_p: 0.05,
            ..FaultModel::NONE
        },
        fault_seed: seed,
        ..Default::default()
    };
    let net = AsyncNetwork::for_endpoint_config(64, DeliveryOrder::InOrder, Duration::ZERO, &cfg);
    let server = net.add_endpoint(SERVER);
    let client = net.initiator(CLIENT);

    const OPS: usize = 10_000;
    const OP_BYTES: usize = 16;
    let vaddr = VirtAddr::new(0x60);
    let win = server
        .init_window(vaddr, Threshold::bytes((OPS * OP_BYTES) as u64))
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; OPS * OP_BYTES]).unwrap();

    for op in 0..OPS {
        let fill = (op % 251) as u8;
        client
            .put_at(SERVER, vaddr, op * OP_BYTES, &[fill; OP_BYTES])
            .unwrap_or_else(|err| panic!("seed {seed}: op {op} failed: {err:?}"));
    }
    net.quiesce();

    let buf = note
        .wait_timeout(Duration::from_secs(30))
        .unwrap_or_else(|| panic!("seed {seed}: epoch hung after quiesce"));
    for op in 0..OPS {
        let fill = (op % 251) as u8;
        assert!(
            buf.full_buffer()[op * OP_BYTES..(op + 1) * OP_BYTES]
                .iter()
                .all(|&b| b == fill),
            "seed {seed}: op {op} corrupted"
        );
    }
    assert!(
        client.take_nacks().is_empty(),
        "seed {seed}: spurious NACKs"
    );

    let stats = net.fault_stats().expect("fault model is armed");
    assert!(
        stats.dropped() > 0 && stats.duplicated() > 0,
        "seed {seed}: the fault model never fired"
    );
    // Every duplicated delivery must have been absorbed by the receiver's
    // dedup window — that is exactly what keeps threshold counting sound.
    assert_eq!(
        server.stats().duplicates_dropped,
        stats.duplicated(),
        "seed {seed}: dedup accounting drifted"
    );
}

/// Duplication-only run: the receiver's dedup counter must account for
/// every duplicated delivery the network injected, one for one.
#[test]
fn dedup_stats_match_injected_duplicates() {
    for seed in seeds() {
        let model = FaultModel {
            dup_p: 0.3,
            ..FaultModel::NONE
        };
        let cfg = EndpointConfig {
            dedup_window: 4096,
            ..Default::default()
        };
        let net = LossyNetwork::with_config(32, model, seed, cfg);
        let server = net.add_endpoint(SERVER);
        let init = net.initiator(CLIENT);
        let win = server
            .init_window(VirtAddr::new(0x30), Threshold::bytes(64))
            .unwrap();
        for e in 0..50u64 {
            let mut note = win.post_buffer(vec![0u8; 64]).unwrap();
            let fill = (e % 251) as u8;
            init.put(SERVER, VirtAddr::new(0x30), &[fill; 64]).unwrap();
            let buf = note
                .wait_timeout(Duration::from_secs(5))
                .unwrap_or_else(|| panic!("seed {seed}: epoch {e} hung"));
            assert!(buf.data().iter().all(|&b| b == fill), "seed {seed}");
        }
        assert!(net.duplicated() > 0, "seed {seed}: no duplicates injected");
        assert_eq!(
            server.stats().duplicates_dropped,
            net.duplicated(),
            "seed {seed}: every injected duplicate must be suppressed"
        );
    }
}

/// A crashed destination must surface a bounded error at the initiator and
/// a rewindable partial epoch at the receiver — never a hang.
#[test]
fn crashed_endpoint_surfaces_retry_exhausted_then_rewinds() {
    let cfg = EndpointConfig {
        dedup_window: 1024,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(16, FaultModel::NONE, 1, cfg);
    let server = net.add_endpoint(SERVER);
    let init = net.reliable_initiator_with(
        CLIENT,
        RetryConfig {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            backoff_multiplier: 1.0,
            max_backoff: Duration::ZERO,
        },
    );
    let vaddr = VirtAddr::new(0x40);
    let win = server.init_window(vaddr, Threshold::bytes(64)).unwrap();
    let mut note = win.post_buffer(vec![0u8; 64]).unwrap();

    // First half lands while the endpoint is healthy.
    init.put_at(SERVER, vaddr, 0, &[0xAA; 32]).unwrap();

    // After the crash the retry budget turns silence into an error.
    net.crash_endpoint(SERVER);
    let err = init.put_at(SERVER, vaddr, 32, &[0xBB; 32]).unwrap_err();
    assert!(
        matches!(err, RvmaError::RetryExhausted { .. }),
        "expected RetryExhausted, got {err:?}"
    );

    // The receiver's epoch is wedged at 32 of 64 bytes: recover it.
    let outcome = win
        .recover_timeout(&mut note, Duration::from_millis(50))
        .unwrap();
    assert!(outcome.is_rewound(), "expected a rewound partial epoch");
    let buf = outcome.into_buffer();
    assert_eq!(&buf.full_buffer()[..32], &[0xAA; 32]);
    assert_eq!(win.epoch(), 1);
}

/// The async transport's crash fault must likewise surface NACKs (or fast
/// submission errors) and leave a recoverable partial epoch.
#[test]
fn async_crash_surfaces_nacks_and_recovers_partial_epoch() {
    let cfg = EndpointConfig {
        dedup_window: 1024,
        wire_workers: 1,
        fault_model: FaultModel {
            crash_after_frags: Some(4),
            ..FaultModel::NONE
        },
        fault_seed: 9,
        ..Default::default()
    };
    let net = AsyncNetwork::for_endpoint_config(16, DeliveryOrder::InOrder, Duration::ZERO, &cfg);
    let server = net.add_endpoint(SERVER);
    let client = net.initiator(CLIENT);
    let vaddr = VirtAddr::new(0x50);
    let win = server.init_window(vaddr, Threshold::bytes(256)).unwrap();
    let mut note = win.post_buffer(vec![0u8; 256]).unwrap();

    let mut submit_errors = 0;
    for i in 0..16usize {
        // Submission legitimately races the crash: a put either fails fast
        // (the endpoint is already gone) or is NACKed asynchronously.
        if client
            .put_at(SERVER, vaddr, i * 16, &[i as u8; 16])
            .is_err()
        {
            submit_errors += 1;
        }
    }
    net.quiesce();

    let nacks = client.take_nacks();
    assert!(
        submit_errors > 0 || !nacks.is_empty(),
        "crash surfaced neither an error nor a NACK"
    );
    assert_eq!(server.stats().fragments_accepted, 3);

    // The epoch can never complete; rewind the partial fill.
    let outcome = win
        .recover_timeout(&mut note, Duration::from_millis(50))
        .unwrap();
    assert!(outcome.is_rewound());
    let buf = outcome.into_buffer();
    for i in 0..3usize {
        assert_eq!(&buf.full_buffer()[i * 16..(i + 1) * 16], &[i as u8; 16]);
    }
}

/// Zero-length puts are a completion signal, not payload: both transports
/// must deliver them without consulting the fault dice.
#[test]
fn zero_length_put_agrees_across_transports() {
    let model = FaultModel {
        drop_p: 1.0,
        ..FaultModel::NONE
    };

    // LossyNetwork: the empty put completes an ops(1) epoch even though
    // every non-empty fragment would be dropped.
    let net = LossyNetwork::new(64, model, 1);
    let server = net.add_endpoint(SERVER);
    let win = server
        .init_window(VirtAddr::new(0x70), Threshold::ops(1))
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; 8]).unwrap();
    net.initiator(CLIENT)
        .put(SERVER, VirtAddr::new(0x70), &[])
        .unwrap();
    assert!(
        note.poll().is_some(),
        "lossy transport rolled fault dice on an empty put"
    );
    assert_eq!(net.fault_stats().transmitted(), 0);

    // AsyncNetwork must agree.
    let cfg = EndpointConfig {
        fault_model: model,
        ..Default::default()
    };
    let anet = AsyncNetwork::for_endpoint_config(64, DeliveryOrder::InOrder, Duration::ZERO, &cfg);
    let aserver = anet.add_endpoint(SERVER);
    let awin = aserver
        .init_window(VirtAddr::new(0x70), Threshold::ops(1))
        .unwrap();
    let mut anote = awin.post_buffer(vec![0u8; 8]).unwrap();
    anet.initiator(CLIENT)
        .put(SERVER, VirtAddr::new(0x70), &[])
        .unwrap();
    anet.quiesce();
    assert!(
        anote.wait_timeout(Duration::from_secs(5)).is_some(),
        "async transport rolled fault dice on an empty put"
    );
    assert_eq!(anet.fault_stats().unwrap().transmitted(), 0);
}

/// `recover_timeout` on an epoch that does complete must report
/// `Completed`, not rewind — the timeout is a last resort, not a deadline.
#[test]
fn recover_timeout_is_a_noop_on_a_healthy_epoch() {
    let net = LossyNetwork::new(64, FaultModel::NONE, 1);
    let server = net.add_endpoint(SERVER);
    let win = server
        .init_window(VirtAddr::new(0x80), Threshold::bytes(32))
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; 32]).unwrap();
    net.initiator(CLIENT)
        .put(SERVER, VirtAddr::new(0x80), &[5; 32])
        .unwrap();
    let outcome = win
        .recover_timeout(&mut note, Duration::from_millis(10))
        .unwrap();
    assert!(matches!(outcome, EpochOutcome::Completed(_)));
    assert_eq!(outcome.into_buffer().data(), &[5u8; 32][..]);
    assert_eq!(win.epoch(), 1);
}
