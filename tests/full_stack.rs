//! Full-stack integration: fabric + NIC + motif layers composed through
//! the facade crate, exercising every topology family end to end.

use rvma::motifs::{run_motif, Halo3dConfig, Halo3dNode, IdleNode, MOTIF_DONE_HIST};
use rvma::net::fabric::{build_fabric, FabricConfig};
use rvma::net::packet::NetEvent;
use rvma::net::router::RoutingKind;
use rvma::net::topology::{
    dragonfly, fattree, hyperx, star, torus3d, DragonflyParams, FatTreeParams, HyperXParams,
    TorusParams,
};
use rvma::nic::{build_cluster, HostLogic, NicConfig, Protocol, RecvInfo, TermApi};
use rvma::sim::{Engine, SimTime};

/// Random-pairs traffic: every even terminal sends to the next odd one.
struct PairSender {
    peer: u32,
}
impl HostLogic for PairSender {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        api.send(self.peer, 7, 6000);
    }
    fn on_recv(&mut self, _m: RecvInfo, _api: &mut TermApi<'_, '_>) {}
}
struct PairReceiver;
impl HostLogic for PairReceiver {
    fn on_start(&mut self, _api: &mut TermApi<'_, '_>) {}
    fn on_recv(&mut self, m: RecvInfo, api: &mut TermApi<'_, '_>) {
        assert_eq!(m.bytes, 6000);
        api.count("pairs.received");
    }
}

fn pair_traffic(spec: rvma::net::fabric::TopologySpec, proto: Protocol) -> (u64, u64) {
    let mut engine: Engine<NetEvent> = Engine::new(5);
    build_cluster(
        &mut engine,
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        proto,
        |n| {
            if n % 2 == 0 && n + 1 < spec.terminals {
                Box::new(PairSender { peer: n + 1 }) as Box<dyn HostLogic>
            } else {
                Box::new(PairReceiver) as Box<dyn HostLogic>
            }
        },
    );
    engine.run_to_completion();
    (
        engine.stats().counter_value("pairs.received"),
        engine.stats().counter_value("net.switch_forwarded"),
    )
}

#[test]
fn every_topology_delivers_pair_traffic_rvma() {
    let specs = [
        torus3d(
            TorusParams {
                dims: [3, 3, 2],
                tps: 2,
            },
            RoutingKind::Adaptive,
        ),
        fattree(FatTreeParams { k: 4 }, RoutingKind::Adaptive),
        hyperx(HyperXParams { d: [3, 3], tps: 2 }, RoutingKind::Adaptive),
        dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive),
        star(8, RoutingKind::Static),
    ];
    for spec in specs {
        let pairs = spec.terminals / 2;
        let name = spec.name.clone();
        let (received, forwarded) = pair_traffic(spec, Protocol::Rvma);
        assert_eq!(received as u32, pairs, "{name}: lost messages");
        assert!(forwarded > 0, "{name}: no switch traffic");
    }
}

#[test]
fn every_topology_delivers_pair_traffic_rdma() {
    let specs = [
        torus3d(
            TorusParams {
                dims: [3, 3, 2],
                tps: 2,
            },
            RoutingKind::Static,
        ),
        fattree(FatTreeParams { k: 4 }, RoutingKind::Static),
        hyperx(HyperXParams { d: [3, 3], tps: 2 }, RoutingKind::Static),
        dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Static),
    ];
    for spec in specs {
        let pairs = spec.terminals / 2;
        let name = spec.name.clone();
        let (received, _) = pair_traffic(spec, Protocol::Rdma);
        assert_eq!(received as u32, pairs, "{name}: lost messages");
    }
}

#[test]
fn fabric_reserves_terminal_ids_for_cluster() {
    let spec = torus3d(
        TorusParams {
            dims: [2, 2, 2],
            tps: 1,
        },
        RoutingKind::Static,
    );
    let mut engine: Engine<NetEvent> = Engine::new(0);
    let fabric = build_fabric(&mut engine, &spec, &FabricConfig::at_gbps(100));
    assert_eq!(fabric.switch_cids.len(), 8);
    assert_eq!(fabric.terminal_cids.len(), 8);
    // Terminals must follow switches contiguously.
    assert_eq!(
        fabric.terminal_cids[0].as_usize(),
        fabric.switch_cids.last().unwrap().as_usize() + 1
    );
}

#[test]
fn motif_runner_reports_consistent_counters() {
    let motif = Halo3dConfig {
        pgrid: [2, 2, 1],
        cells: [16, 16, 16],
        elem_bytes: 8,
        iters: 2,
        compute: SimTime::from_us(1),
    };
    let spec = hyperx(HyperXParams { d: [2, 2], tps: 1 }, RoutingKind::Static);
    let r = run_motif(
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rdma,
        3,
        |n| Box::new(Halo3dNode::new(motif, n)) as Box<dyn HostLogic>,
    );
    assert_eq!(r.msgs_sent, motif.total_messages());
    assert_eq!(r.fences, r.msgs_sent);
    assert_eq!(r.rtrs, r.msgs_sent);
    // A 2x2x1 grid has 8 directed x-links + 8 directed y-links... compute
    // from the config instead of hand-counting:
    let channels: u64 = (0..motif.nodes())
        .map(|n| motif.neighbors(n).len() as u64)
        .sum();
    assert_eq!(r.handshakes, channels);
    assert!(r.packets >= r.msgs_sent);
    assert!(r.quiesce >= r.makespan);
}

#[test]
fn idle_node_completes_instantly() {
    let spec = star(4, RoutingKind::Static);
    let mut engine: Engine<NetEvent> = Engine::new(1);
    build_cluster(
        &mut engine,
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        Protocol::Rvma,
        |_| Box::new(IdleNode) as Box<dyn HostLogic>,
    );
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("motif.nodes_done"), 4);
    let hist = engine.stats().get_histogram(MOTIF_DONE_HIST).unwrap();
    assert_eq!(hist.max(), Some(0.0));
}

#[test]
fn facade_reexports_compose() {
    // The facade's quickstart path: core primitives reachable via `rvma::core`.
    use rvma::core::{LoopbackNetwork, NodeAddr, Threshold, VirtAddr};
    let net = LoopbackNetwork::new();
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    let win = server
        .init_window(VirtAddr::new(1), Threshold::bytes(8))
        .unwrap();
    let mut n = win.post_buffer(vec![0; 8]).unwrap();
    client
        .put(NodeAddr::node(0), VirtAddr::new(1), &[1; 8])
        .unwrap();
    assert_eq!(n.poll().unwrap().data(), &[1; 8]);
}
