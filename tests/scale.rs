//! Scale checks: the speedup ratios the figures report must be stable as
//! the simulated machine grows (they are per-message protocol effects, not
//! artifacts of a small fabric).
//!
//! The 1,024-node case is `#[ignore]`d (minutes in debug builds); run it
//! with `cargo test --release --test scale -- --ignored`.

use rvma::motifs::{compare_protocols, IdleNode, Sweep3dConfig, Sweep3dNode};
use rvma::net::fabric::FabricConfig;
use rvma::net::router::RoutingKind;
use rvma::net::topology::{dragonfly, DragonflyParams};
use rvma::nic::{HostLogic, NicConfig};
use rvma::sim::SimTime;

fn sweep_speedup(nodes: u32, params: DragonflyParams) -> f64 {
    let side = (nodes as f64).sqrt() as u32;
    let motif = Sweep3dConfig {
        pgrid: [side, nodes / side],
        cells: [64, 64, 256],
        zblock: 32,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 4,
    };
    let spec = dragonfly(params, RoutingKind::Adaptive);
    assert!(spec.terminals >= nodes);
    let active = nodes;
    compare_protocols(
        &spec,
        &FabricConfig::at_gbps(400),
        NicConfig::default(),
        11,
        |n| {
            if n < active {
                Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
            } else {
                Box::new(IdleNode) as Box<dyn HostLogic>
            }
        },
    )
    .2
}

#[test]
fn speedup_stable_from_16_to_64_nodes() {
    let small = sweep_speedup(16, DragonflyParams { a: 4, p: 2, h: 2 });
    let medium = sweep_speedup(64, DragonflyParams { a: 4, p: 2, h: 2 });
    assert!(small > 1.5 && medium > 1.5);
    let drift = (medium / small - 1.0).abs();
    assert!(
        drift < 0.5,
        "speedup drifted {:.0}% from 16 to 64 nodes ({small:.2} -> {medium:.2})",
        drift * 100.0
    );
}

#[test]
#[ignore = "minutes-long; run with --release -- --ignored"]
fn speedup_stable_at_1024_nodes() {
    let medium = sweep_speedup(64, DragonflyParams { a: 4, p: 2, h: 2 });
    let large = sweep_speedup(1024, DragonflyParams { a: 8, p: 4, h: 4 });
    let drift = (large / medium - 1.0).abs();
    assert!(
        drift < 0.6,
        "speedup drifted {:.0}% from 64 to 1024 nodes ({medium:.2} -> {large:.2})",
        drift * 100.0
    );
}
