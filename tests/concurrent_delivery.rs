//! Multi-threaded stress of the sharded datapath: many senders through
//! `AsyncNetwork` worker pools, to disjoint and to shared mailboxes.
//!
//! Invariants checked:
//! * no lost bytes — every completed buffer carries exactly the payload the
//!   senders submitted;
//! * no double completions — epochs advance exactly once per threshold, and
//!   endpoint stats agree with the submitted totals;
//! * per-mailbox ordering survives the worker pool (Managed-mode stream).

use rvma::core::transport::DeliveryOrder;
use rvma::core::{AsyncNetwork, MailboxMode, NodeAddr, Threshold, VirtAddr};
use std::time::Duration;

const SENDERS: usize = 8;

/// 8 senders, each with its own mailbox, racing through a 4-worker pool:
/// every byte lands, every epoch completes exactly once.
#[test]
fn disjoint_mailboxes_lose_nothing() {
    const PUTS: usize = 16;
    const MSG: usize = 2048;
    let net = AsyncNetwork::with_options(256, DeliveryOrder::InOrder, Duration::ZERO, 4);
    let server = net.add_endpoint(NodeAddr::node(0));

    let mut notes = Vec::new();
    for i in 0..SENDERS {
        let win = server
            .init_window(VirtAddr::new(i as u64), Threshold::bytes(MSG as u64))
            .unwrap();
        notes.push(win.post_buffers(vec![vec![0u8; MSG]; PUTS]).unwrap());
    }

    std::thread::scope(|s| {
        for i in 0..SENDERS {
            let init = net.initiator(NodeAddr::node(i as u32 + 1));
            s.spawn(move || {
                for p in 0..PUTS {
                    // Payload identifies (sender, put) so corruption or
                    // cross-delivery is detectable.
                    let payload = vec![(i * PUTS + p) as u8; MSG];
                    init.put(NodeAddr::node(0), VirtAddr::new(i as u64), &payload)
                        .unwrap();
                }
            });
        }
    });

    for (i, sender_notes) in notes.iter_mut().enumerate() {
        for (p, n) in sender_notes.iter_mut().enumerate() {
            let buf = n.wait();
            assert_eq!(buf.epoch(), p as u64, "double or skipped completion");
            assert_eq!(
                buf.data(),
                vec![(i * PUTS + p) as u8; MSG].as_slice(),
                "lost or corrupted bytes (sender {i}, put {p})"
            );
        }
    }
    let stats = server.stats();
    assert_eq!(stats.epochs_completed, (SENDERS * PUTS) as u64);
    assert_eq!(stats.bytes_accepted, (SENDERS * PUTS * MSG) as u64);
    assert_eq!(stats.fragments_discarded, 0);
}

/// 8 senders converging on ONE shared mailbox at disjoint offsets, through
/// an 8-worker pool: the copies overlap outside the mailbox lock, yet the
/// epoch completes exactly once with every region intact.
#[test]
fn shared_mailbox_disjoint_offsets() {
    const REGION: usize = 4096; // per-sender slice of the shared buffer
    let net = AsyncNetwork::with_options(512, DeliveryOrder::InOrder, Duration::ZERO, 8);
    let server = net.add_endpoint(NodeAddr::node(0));
    let win = server
        .init_window(
            VirtAddr::new(42),
            Threshold::bytes((SENDERS * REGION) as u64),
        )
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; SENDERS * REGION]).unwrap();

    std::thread::scope(|s| {
        for i in 0..SENDERS {
            let init = net.initiator(NodeAddr::node(i as u32 + 1));
            s.spawn(move || {
                // Each sender fills its region with 4 puts of REGION/4.
                let step = REGION / 4;
                for k in 0..4 {
                    let payload = vec![i as u8 + 1; step];
                    init.put_at(
                        NodeAddr::node(0),
                        VirtAddr::new(42),
                        i * REGION + k * step,
                        &payload,
                    )
                    .unwrap();
                }
            });
        }
    });

    let buf = note.wait();
    for i in 0..SENDERS {
        assert_eq!(
            &buf.data()[i * REGION..(i + 1) * REGION],
            vec![i as u8 + 1; REGION].as_slice(),
            "sender {i}'s region lost bytes"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.epochs_completed, 1, "double completion");
    assert_eq!(stats.bytes_accepted, (SENDERS * REGION) as u64);
}

/// Mixed workload: half the senders hammer a shared op-counted mailbox,
/// half stream to private mailboxes, across a 4-worker pool.
#[test]
fn mixed_shared_and_private_mailboxes() {
    const OPS_PER_SENDER: usize = 32;
    let net = AsyncNetwork::with_options(128, DeliveryOrder::InOrder, Duration::ZERO, 4);
    let server = net.add_endpoint(NodeAddr::node(0));

    // Shared mailbox completes on an op count from 4 writers.
    let shared_total = 4 * OPS_PER_SENDER;
    let shared = server
        .init_window(VirtAddr::new(100), Threshold::ops(shared_total as u64))
        .unwrap();
    let mut shared_note = shared.post_buffer(vec![0u8; shared_total * 16]).unwrap();

    // Private mailboxes complete on bytes.
    let mut private_notes = Vec::new();
    for i in 0..4u64 {
        let win = server
            .init_window(VirtAddr::new(i), Threshold::bytes(1024))
            .unwrap();
        private_notes.push(win.post_buffer(vec![0u8; 1024]).unwrap());
    }

    std::thread::scope(|s| {
        for i in 0..4usize {
            // Shared-mailbox writers, disjoint 16-byte slots.
            let init = net.initiator(NodeAddr::node(i as u32 + 1));
            s.spawn(move || {
                for k in 0..OPS_PER_SENDER {
                    let slot = (i * OPS_PER_SENDER + k) * 16;
                    init.put_at(NodeAddr::node(0), VirtAddr::new(100), slot, &[0xAB; 16])
                        .unwrap();
                }
            });
            // Private-mailbox writers.
            let init = net.initiator(NodeAddr::node(i as u32 + 10));
            s.spawn(move || {
                init.put(NodeAddr::node(0), VirtAddr::new(i as u64), &[i as u8; 1024])
                    .unwrap();
            });
        }
    });

    let buf = shared_note.wait();
    assert!(buf.data().iter().all(|&b| b == 0xAB), "lost shared bytes");
    for (i, n) in private_notes.iter_mut().enumerate() {
        assert_eq!(n.wait().data(), vec![i as u8; 1024].as_slice());
    }
    assert_eq!(server.stats().epochs_completed, 5);
}

/// Ordering stress: a Managed (cursor-append) stream must arrive in
/// submission order even through the widest pool.
#[test]
fn managed_stream_order_survives_worker_pool() {
    let net = AsyncNetwork::with_options(32, DeliveryOrder::InOrder, Duration::ZERO, 8);
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    let win = server
        .init_window_mode(
            VirtAddr::new(7),
            Threshold::bytes(4096),
            MailboxMode::Managed,
        )
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; 4096]).unwrap();
    let expected: Vec<u8> = (0..4096usize).map(|i| (i / 64) as u8).collect();
    for chunk in expected.chunks(64) {
        client
            .put(NodeAddr::node(0), VirtAddr::new(7), chunk)
            .unwrap();
    }
    assert_eq!(note.wait().data(), expected.as_slice());
}
