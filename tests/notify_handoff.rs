//! Seeded races of the lock-free completion handoff: a delivery thread's
//! completing write racing `poll`, `wait`, `wait_timeout`, and `wait_any`
//! on the consumer side, across a sweep of completer delays that straddle
//! both the spin fast path and the parked slow path.
//!
//! Invariants checked:
//! * exactly one consumer call obtains the buffer, with the right bytes;
//! * a timeout racing the completing write either returns the buffer or
//!   leaves it takeable — a completion is never lost in the gap;
//! * `wait_any` returns each completion exactly once however the
//!   completer interleaves;
//! * `wait_any_timeout` honors one overall deadline (regression: it used
//!   to restart the clock every park round).
//!
//! These races are *sampled* here with real threads and delay sweeps; the
//! completing-write vs. poll/wait/future handoff (including
//! wake-before-register and dropped-future reuse) is *exhaustively
//! enumerated* by the model checker — see the `notify_*` models in
//! `crates/core/src/check/models.rs` (`cargo test -p rvma-core
//! --features check`).

use rvma::core::transport::DeliveryOrder;
use rvma::core::{
    wait_any, wait_any_timeout, AsyncNetwork, NodeAddr, Notification, Threshold, VirtAddr,
};
use std::time::{Duration, Instant};

fn one_put_setup(msg: usize) -> (AsyncNetwork, Notification) {
    let net = AsyncNetwork::new(1024, DeliveryOrder::InOrder, Duration::ZERO);
    let server = net.add_endpoint(NodeAddr::node(0));
    let win = server
        .init_window(VirtAddr::new(1), Threshold::bytes(msg as u64))
        .unwrap();
    let note = win.post_buffer(vec![0u8; msg]).unwrap();
    (net, note)
}

/// Delays (µs) chosen to land the completing write before the consumer
/// looks, mid-spin, and after the consumer parked.
const DELAYS_US: [u64; 6] = [0, 5, 20, 100, 500, 2_000];

#[test]
fn completing_write_races_poll() {
    for &delay in &DELAYS_US {
        let (net, mut note) = one_put_setup(32);
        let init = net.initiator(NodeAddr::node(1));
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_micros(delay));
                init.put(NodeAddr::node(0), VirtAddr::new(1), &[7u8; 32])
                    .unwrap();
            });
            let buf = loop {
                if let Some(b) = note.poll() {
                    break b;
                }
                std::hint::spin_loop();
            };
            assert_eq!(buf.data(), &[7u8; 32], "delay {delay}us");
            assert!(note.poll().is_none(), "second poll must not re-deliver");
            assert!(note.is_consumed());
        });
    }
}

#[test]
fn completing_write_races_wait() {
    for &delay in &DELAYS_US {
        let (net, mut note) = one_put_setup(64);
        let init = net.initiator(NodeAddr::node(1));
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_micros(delay));
                init.put(NodeAddr::node(0), VirtAddr::new(1), &[9u8; 64])
                    .unwrap();
            });
            assert_eq!(note.wait().data(), &[9u8; 64], "delay {delay}us");
        });
    }
}

#[test]
fn completing_write_races_wait_timeout() {
    // The timeout sits inside the delay sweep, so some rounds time out and
    // some complete — both must be coherent, and a timed-out round must
    // still surface the late completion afterwards.
    for &delay in &DELAYS_US {
        let (net, mut note) = one_put_setup(16);
        let init = net.initiator(NodeAddr::node(1));
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_micros(delay));
                init.put(NodeAddr::node(0), VirtAddr::new(1), &[3u8; 16])
                    .unwrap();
            });
            match note.wait_timeout(Duration::from_micros(300)) {
                Some(buf) => {
                    assert_eq!(buf.data(), &[3u8; 16], "delay {delay}us");
                    assert!(note.is_consumed());
                }
                None => {
                    // Completion must not be lost in the timeout race.
                    assert!(!note.is_consumed());
                    assert_eq!(note.wait().data(), &[3u8; 16], "delay {delay}us");
                }
            }
        });
    }
}

#[test]
fn completer_interleaves_with_wait_any() {
    const SLOTS: u64 = 6;
    let net = AsyncNetwork::new(1024, DeliveryOrder::InOrder, Duration::ZERO);
    let server = net.add_endpoint(NodeAddr::node(0));
    let mut notes = Vec::new();
    for m in 0..SLOTS {
        let win = server
            .init_window(VirtAddr::new(m), Threshold::bytes(8))
            .unwrap();
        notes.push(win.post_buffer(vec![0u8; 8]).unwrap());
    }
    let init = net.initiator(NodeAddr::node(1));
    std::thread::scope(|s| {
        s.spawn(move || {
            // Complete in scrambled order with pauses that push the waiter
            // from its spin phase into the parked eventcount path.
            for (k, m) in [3u64, 0, 5, 1, 4, 2].iter().enumerate() {
                std::thread::sleep(Duration::from_micros(200 * k as u64));
                init.put(NodeAddr::node(0), VirtAddr::new(*m), &[*m as u8; 8])
                    .unwrap();
            }
        });
        let mut seen = [false; SLOTS as usize];
        for _ in 0..SLOTS {
            let (idx, buf) = wait_any(&mut notes).expect("a completion is pending");
            assert!(!seen[idx], "slot {idx} delivered twice");
            seen[idx] = true;
            assert_eq!(buf.data(), &[idx as u8; 8]);
        }
        assert!(seen.iter().all(|&s| s), "missing completions");
        assert!(
            wait_any(&mut notes).is_none(),
            "all consumed: wait_any must report exhaustion"
        );
    });
}

/// Regression: `wait_any_timeout` computes one deadline up front. With 4
/// never-completing slots, the old per-round clock restart stretched a
/// 50 ms timeout to several multiples of it.
#[test]
fn wait_any_timeout_is_one_deadline_overall() {
    let net = AsyncNetwork::new(1024, DeliveryOrder::InOrder, Duration::ZERO);
    let server = net.add_endpoint(NodeAddr::node(0));
    let mut notes = Vec::new();
    for m in 0..4u64 {
        let win = server
            .init_window(VirtAddr::new(m), Threshold::ops(u64::MAX))
            .unwrap();
        notes.push(win.post_buffer(vec![0u8; 8]).unwrap());
    }
    let timeout = Duration::from_millis(50);
    let start = Instant::now();
    assert!(wait_any_timeout(&mut notes, timeout).is_none());
    let elapsed = start.elapsed();
    assert!(elapsed >= timeout, "returned before the deadline");
    assert!(
        elapsed < timeout * 4,
        "deadline restarted while parking: took {elapsed:?} for a {timeout:?} timeout"
    );
}
