//! Property-based tests of the RVMA core invariants (DESIGN.md §7).

use proptest::collection::vec;
use proptest::prelude::*;
use rvma::core::{
    DeliverResult, DeliveryOrder, Fragment, LoopbackNetwork, NodeAddr, RvmaEndpoint, Threshold,
    VirtAddr,
};

fn frag_at(va: u64, offset: usize, data: Vec<u8>, op_id: u64, total: u64) -> Fragment {
    Fragment {
        initiator: NodeAddr::node(1),
        op_id,
        dst_vaddr: VirtAddr::new(va),
        op_total_len: total,
        offset,
        data: bytes::Bytes::from(data),
    }
}

proptest! {
    /// Threshold completion is order-independent: delivering the fragments
    /// of a message in ANY permutation yields the same completed buffer
    /// contents and exactly one notification.
    #[test]
    fn completion_is_order_independent(
        chunks in vec(1usize..64, 1..12),
        perm_seed in any::<u64>(),
    ) {
        let total: usize = chunks.iter().sum();
        // Build non-overlapping fragments covering [0, total).
        let mut frags = Vec::new();
        let mut off = 0usize;
        for (i, len) in chunks.iter().enumerate() {
            frags.push(frag_at(0xAA, off, vec![(i % 251) as u8 + 1; *len], 1, total as u64));
            off += len;
        }
        // Reference: in-order delivery.
        let deliver_all = |frags: &[Fragment]| -> Result<Vec<u8>, TestCaseError> {
            let ep = RvmaEndpoint::new(NodeAddr::node(0));
            let win = ep.init_window(VirtAddr::new(0xAA), Threshold::bytes(total as u64)).unwrap();
            let mut n = win.post_buffer(vec![0; total]).unwrap();
            let mut completions = 0;
            for f in frags {
                if let DeliverResult::Ok { completed_epoch: true } = ep.deliver(f) {
                    completions += 1;
                }
            }
            prop_assert_eq!(completions, 1);
            Ok(n.poll().expect("one completion").data().to_vec())
        };
        let reference = deliver_all(&frags)?;

        // Permute deterministically from the seed.
        let mut shuffled = frags.clone();
        let mut s = perm_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let permuted = deliver_all(&shuffled)?;
        prop_assert_eq!(reference, permuted);
    }

    /// Epoch rotation is FIFO and get_epoch counts completions exactly.
    #[test]
    fn epochs_rotate_fifo(msgs in vec(1u8..255, 1..10)) {
        let ep = RvmaEndpoint::new(NodeAddr::node(0));
        let win = ep.init_window(VirtAddr::new(1), Threshold::bytes(4)).unwrap();
        let mut notes = Vec::new();
        for _ in &msgs {
            notes.push(win.post_buffer(vec![0; 4]).unwrap());
        }
        for (i, m) in msgs.iter().enumerate() {
            prop_assert_eq!(win.epoch(), i as u64);
            ep.deliver(&frag_at(1, 0, vec![*m; 4], i as u64 + 1, 4));
        }
        prop_assert_eq!(win.epoch(), msgs.len() as u64);
        for (i, (n, m)) in notes.iter_mut().zip(&msgs).enumerate() {
            let buf = n.poll().expect("completed in order");
            prop_assert_eq!(buf.epoch(), i as u64);
            let want = vec![*m; 4];
            prop_assert_eq!(buf.data(), want.as_slice());
        }
    }

    /// A byte-counted epoch completes exactly when `threshold` bytes have
    /// landed — never before.
    #[test]
    fn byte_threshold_is_exact(threshold in 1u64..256, step in 1usize..32) {
        let ep = RvmaEndpoint::new(NodeAddr::node(0));
        let win = ep.init_window(VirtAddr::new(2), Threshold::bytes(threshold)).unwrap();
        let mut n = win.post_buffer(vec![0; threshold as usize]).unwrap();
        let mut sent = 0u64;
        let mut op = 0u64;
        while sent < threshold {
            prop_assert!(n.poll().is_none(), "completed early at {} / {}", sent, threshold);
            let len = step.min((threshold - sent) as usize);
            ep.deliver(&frag_at(2, sent as usize, vec![1; len], op, len as u64));
            op += 1;
            sent += len as u64;
        }
        prop_assert!(n.poll().is_some(), "did not complete at threshold");
    }

    /// Rewind(k) returns the buffer completed k epochs ago, contents
    /// intact, for every k within the retained ring.
    #[test]
    fn rewind_returns_history(count in 1usize..8, retain in 1usize..8) {
        let ep = RvmaEndpoint::with_config(NodeAddr::node(0), rvma::core::EndpointConfig {
            retain_epochs: retain,
            ..Default::default()
        });
        let win = ep.init_window(VirtAddr::new(3), Threshold::bytes(2)).unwrap();
        for _ in 0..count {
            let _ = win.post_buffer(vec![0; 2]).unwrap();
        }
        for i in 0..count {
            ep.deliver(&frag_at(3, 0, vec![i as u8 + 1; 2], i as u64, 2));
        }
        let retained = count.min(retain);
        for back in 1..=retained {
            let buf = win.rewind(back as u64).unwrap();
            let expect = (count - back) as u8 + 1;
            let want = vec![expect; 2];
            prop_assert_eq!(buf.data(), want.as_slice());
            prop_assert_eq!(buf.epoch(), (count - back) as u64);
        }
        prop_assert!(win.rewind(retained as u64 + 1).is_err());
    }

    /// Transport-level: a put of arbitrary size over an out-of-order
    /// network arrives bit-exact.
    #[test]
    fn transport_roundtrip_any_size(
        payload in vec(any::<u8>(), 0..3000),
        mtu in 1usize..512,
        seed in any::<u64>(),
    ) {
        let net = LoopbackNetwork::with_options(mtu, DeliveryOrder::OutOfOrder { seed });
        let target = net.add_endpoint(NodeAddr::node(1));
        let init = net.initiator(NodeAddr::node(2));
        let win = target
            .init_window(VirtAddr::new(4), Threshold::ops(1))
            .unwrap();
        let buf_len = payload.len().max(1);
        let mut n = win.post_buffer(vec![0; buf_len]).unwrap();
        init.put(NodeAddr::node(1), VirtAddr::new(4), &payload).unwrap();
        let buf = n.poll().expect("op threshold fired");
        prop_assert_eq!(buf.data(), payload.as_slice());
    }

    /// Closed windows never complete and never corrupt state, regardless
    /// of traffic.
    #[test]
    fn closed_windows_discard_everything(ops in vec(1usize..64, 1..16)) {
        let ep = RvmaEndpoint::new(NodeAddr::node(0));
        let win = ep.init_window(VirtAddr::new(5), Threshold::bytes(64)).unwrap();
        let mut n = win.post_buffer(vec![0; 64]).unwrap();
        win.close();
        for (i, len) in ops.iter().enumerate() {
            let r = ep.deliver(&frag_at(5, 0, vec![9; *len], i as u64, *len as u64));
            prop_assert!(matches!(r, DeliverResult::Nack(_)));
        }
        prop_assert!(n.poll().is_none());
        prop_assert_eq!(ep.stats().bytes_accepted, 0);
        prop_assert_eq!(ep.stats().fragments_discarded, ops.len() as u64);
    }
}
