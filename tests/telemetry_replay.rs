//! Deterministic-replay harness for the op-level telemetry layer.
//!
//! Two runs of the combined fault model with the same `RVMA_FAULT_SEED`
//! must record *identical* telemetry event sequences — same op ids, same
//! kinds, same per-kind counts, in the same order. The inline lossy
//! transport makes this exact: the fault dice are a pure function of
//! (seed, transmission sequence), and the recorder's global sequence
//! stamp preserves record order across shards. A different seed must
//! produce a different sequence, or the harness would pass vacuously.
//!
//! Also covers the exported artifacts (JSON snapshot and Chrome
//! `trace_event` file, schema-checked with the mini JSON parser below)
//! and the telemetry-disabled path (no recorder anywhere, no per-put
//! allocation).

use std::time::Duration;

use rvma::core::{
    EndpointConfig, EventKind, FaultModel, LossyNetwork, NodeAddr, RvmaEndpoint, Span,
    TelemetrySnapshot, Threshold, VirtAddr,
};

const SERVER: NodeAddr = NodeAddr::node(0);
const CLIENT: NodeAddr = NodeAddr::node(1);

/// Fixed replay seeds, plus whatever `RVMA_FAULT_SEED` adds (mirrors
/// `tests/fault_recovery.rs`).
fn seeds() -> Vec<u64> {
    let mut s = vec![0xBAD_5EED, 42, 0x7EA5_E77E];
    if let Ok(v) = std::env::var("RVMA_FAULT_SEED") {
        match v.trim().parse::<u64>() {
            Ok(extra) => {
                eprintln!("telemetry_replay: adding randomized seed RVMA_FAULT_SEED={extra}");
                s.push(extra);
            }
            Err(e) => panic!("RVMA_FAULT_SEED={v:?} is not a u64: {e}"),
        }
    }
    s
}

/// The combined model the acceptance runs use.
fn combined() -> FaultModel {
    FaultModel {
        drop_p: 0.05,
        dup_p: 0.05,
        reorder_p: 0.05,
        ..FaultModel::NONE
    }
}

/// One telemetry-enabled run over the lossy fabric: `epochs` reliable
/// puts, each completing one epoch. Returns the drained snapshot.
fn traced_run(model: FaultModel, seed: u64, epochs: usize) -> TelemetrySnapshot {
    let cfg = EndpointConfig {
        dedup_window: 1 << 15,
        telemetry: true,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(16, model, seed, cfg);
    let server = net.add_endpoint(SERVER);
    let init = net.reliable_initiator(CLIENT);
    let win = server
        .init_window(VirtAddr::new(0x10), Threshold::bytes(64))
        .unwrap();
    for e in 0..epochs {
        let mut note = win.post_buffer(vec![0u8; 64]).unwrap();
        let fill = (e % 251) as u8;
        init.put(SERVER, VirtAddr::new(0x10), &[fill; 64])
            .unwrap_or_else(|err| panic!("seed {seed}: epoch {e}: put failed: {err:?}"));
        net.flush_delayed();
        let buf = note
            .wait_timeout(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("seed {seed}: epoch {e}: receiver hung"));
        assert!(buf.data().iter().all(|&b| b == fill), "seed {seed}");
    }
    net.telemetry().expect("telemetry enabled").snapshot()
}

#[test]
fn same_seed_replays_identical_event_sequences() {
    for seed in seeds() {
        let a = traced_run(combined(), seed, 50);
        let b = traced_run(combined(), seed, 50);
        assert_eq!(
            a.counts, b.counts,
            "seed {seed}: per-kind event counts diverged between replays"
        );
        assert_eq!(
            a.canonical_sequence(),
            b.canonical_sequence(),
            "seed {seed}: event sequences diverged between replays"
        );
        assert_eq!(a.dropped, b.dropped, "seed {seed}: drop counters diverged");
        // The run must actually exercise the lifecycle, or determinism
        // holds vacuously.
        assert_eq!(a.count(EventKind::Submit), 50, "seed {seed}");
        assert_eq!(a.count(EventKind::EpochComplete), 50, "seed {seed}");
        assert_eq!(a.count(EventKind::NotifyHandoff), 50, "seed {seed}");
        assert!(
            a.count(EventKind::Retransmit) > 0,
            "seed {seed}: the fault model never forced a retransmission"
        );
        assert!(
            a.count(EventKind::WireDeliver) > a.count(EventKind::Submit),
            "seed {seed}: multi-fragment puts must deliver more fragments than ops"
        );
    }
}

/// The async lane of `traced_run`: same lossy fabric, same put sequence,
/// but the receiver completes through the Future/Waker path on even
/// epochs and a [`CompletionQueue`](rvma::core::CompletionQueue) on odd
/// ones. `NotifyWake` is recorded inside the mailbox's completion funnel
/// (under the mailbox lock, from the slot's post-time async flag) and
/// `CqPoll` at the consumer's — here deterministic — drain points, so the
/// whole async event stream must replay exactly like the blocking one.
fn async_traced_run(model: FaultModel, seed: u64, epochs: usize) -> TelemetrySnapshot {
    use rvma::core::CompletionQueue;

    let cfg = EndpointConfig {
        dedup_window: 1 << 15,
        telemetry: true,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(16, model, seed, cfg);
    let server = net.add_endpoint(SERVER);
    let init = net.reliable_initiator(CLIENT);
    let win = server
        .init_window(VirtAddr::new(0x10), Threshold::bytes(64))
        .unwrap();
    let cq = CompletionQueue::new(8);
    let mut drained = Vec::new();
    for e in 0..epochs {
        let fut = if e % 2 == 0 {
            Some(win.post_buffer_async(vec![0u8; 64]).unwrap())
        } else {
            win.post_buffer_cq(vec![0u8; 64], &cq, e as u64).unwrap();
            None
        };
        let fill = (e % 251) as u8;
        init.put(SERVER, VirtAddr::new(0x10), &[fill; 64])
            .unwrap_or_else(|err| panic!("seed {seed}: epoch {e}: put failed: {err:?}"));
        net.flush_delayed();
        match fut {
            Some(fut) => {
                // Inline transport: the epoch completed during put (or
                // flush), so the future resolves on its first poll.
                let buf = pollster::block_on(fut);
                assert!(buf.data().iter().all(|&b| b == fill), "seed {seed}");
            }
            None => {
                let n = cq.wait_batch(8, &mut drained, Duration::from_secs(10));
                assert_eq!(n, 1, "seed {seed}: epoch {e}: CQ drain");
                let c = drained.pop().unwrap();
                assert_eq!(c.user, e as u64, "seed {seed}");
                assert!(c.buffer.data().iter().all(|&b| b == fill), "seed {seed}");
            }
        }
    }
    net.telemetry().expect("telemetry enabled").snapshot()
}

#[test]
fn async_lane_replays_identical_event_sequences() {
    for seed in seeds() {
        let a = async_traced_run(combined(), seed, 50);
        let b = async_traced_run(combined(), seed, 50);
        assert_eq!(
            a.counts, b.counts,
            "seed {seed}: async-lane per-kind counts diverged between replays"
        );
        assert_eq!(
            a.canonical_sequence(),
            b.canonical_sequence(),
            "seed {seed}: async-lane event sequences diverged between replays"
        );
        // Every epoch's slot was async-armed: one wake funnel event each.
        assert_eq!(a.count(EventKind::NotifyWake), 50, "seed {seed}");
        // One non-empty drain per CQ epoch (odd epochs).
        assert_eq!(a.count(EventKind::CqPoll), 25, "seed {seed}");
        assert_eq!(a.count(EventKind::EpochComplete), 50, "seed {seed}");
        assert!(a.count(EventKind::Retransmit) > 0, "seed {seed}");
    }
}

#[test]
fn async_and_blocking_lanes_share_the_op_stream() {
    // The async lane changes only the completion side: the wire-facing
    // event stream (submits, deliveries, retransmissions) must be
    // identical to the blocking lane's for the same seed.
    let blocking = traced_run(combined(), 42, 50);
    let async_ = async_traced_run(combined(), 42, 50);
    for kind in [
        EventKind::Submit,
        EventKind::WireDeliver,
        EventKind::Retransmit,
        EventKind::EpochComplete,
    ] {
        assert_eq!(
            blocking.count(kind),
            async_.count(kind),
            "lane divergence in {}",
            kind.as_str()
        );
    }
    assert_eq!(blocking.count(EventKind::NotifyWake), 0);
    assert_eq!(blocking.count(EventKind::CqPoll), 0);
}

#[test]
fn different_seeds_produce_different_sequences() {
    let a = traced_run(combined(), 0xBAD_5EED, 50);
    let b = traced_run(combined(), 42, 50);
    assert_ne!(
        a.canonical_sequence(),
        b.canonical_sequence(),
        "different fault seeds must perturb the event stream"
    );
}

#[test]
fn span_histograms_pair_the_lifecycle() {
    let snap = traced_run(combined(), 42, 50);
    // Inline transport: no ring, so no submit→enqueue pairs.
    assert_eq!(snap.span(Span::SubmitToEnqueue).count(), 0);
    // Every op's first fragment delivery pairs with its submit.
    assert_eq!(snap.span(Span::SubmitToDeliver).count(), 50);
    // Every completed epoch was handed to a waiter.
    assert_eq!(snap.span(Span::CompleteToHandoff).count(), 50);
    let h = snap.span(Span::CompleteToHandoff);
    // Quantiles report bucket *lower* bounds, so they may sit below the
    // exact min (when samples cluster in one bucket) — only monotonicity
    // in q and the max ceiling are guaranteed.
    assert!(h.min() <= h.max());
    assert!(h.quantile(0.5) <= h.quantile(0.99));
    assert!(h.quantile(0.99) <= h.max().max(1));
}

/// With `EndpointConfig::telemetry` left off (the default) no recorder
/// exists anywhere — the hot path's entire cost is one `None` check —
/// and a steady-state small put performs no heap allocation (payloads at
/// or below the `Bytes` inline cap never reach the allocator, which the
/// pool counters prove).
#[test]
fn disabled_telemetry_leaves_no_recorder_and_no_per_put_allocation() {
    use rvma::core::transport::DeliveryOrder;
    use rvma::core::AsyncNetwork;

    let cfg = EndpointConfig::default();
    assert!(!cfg.telemetry, "telemetry must be opt-in");
    let net = AsyncNetwork::for_endpoint_config(64, DeliveryOrder::InOrder, Duration::ZERO, &cfg);
    assert!(net.telemetry().is_none());
    let server = net.add_endpoint(SERVER);
    assert!(server.telemetry().is_none());
    let standalone = RvmaEndpoint::new(NodeAddr::node(7));
    assert!(standalone.telemetry().is_none());

    const PUTS: u64 = 256;
    let win = server
        .init_window(VirtAddr::new(0x90), Threshold::ops(PUTS))
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; 64]).unwrap();
    let init = net.initiator(CLIENT);
    for _ in 0..PUTS {
        init.put(SERVER, VirtAddr::new(0x90), &[7u8; 8]).unwrap();
    }
    net.quiesce();
    assert!(note.wait_timeout(Duration::from_secs(10)).is_some());

    let pool = init.pool_stats();
    assert_eq!(
        (pool.inline, pool.misses),
        (PUTS, 0),
        "an 8-byte put must ride inline in its Bytes handle: no allocation"
    );
    assert_eq!(pool.hit_rate(), 1.0);
}

// ---------------------------------------------------------------------------
// Exported artifacts: a mini JSON parser (values we emit only: objects,
// arrays, strings without escapes, and plain numbers) schema-checks the
// snapshot and the Chrome trace.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.i, p.s.len(), "trailing bytes after JSON value");
        v
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.s.get(self.i),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        *self.s.get(self.i).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.ws();
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(fields);
        }
        loop {
            let k = self.string();
            self.eat(b':');
            fields.push((k, self.value()));
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(fields);
                }
                c => panic!("expected ',' or '}}', got {:?}", c as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                c => panic!("expected ',' or ']', got {:?}", c as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let start = self.i;
        while self.s[self.i] != b'"' {
            assert_ne!(self.s[self.i], b'\\', "escapes are never emitted");
            self.i += 1;
        }
        let out = std::str::from_utf8(&self.s[start..self.i]).unwrap().into();
        self.i += 1;
        out
    }

    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        Json::Num(
            std::str::from_utf8(&self.s[start..self.i])
                .unwrap()
                .parse()
                .unwrap_or_else(|e| panic!("bad number at byte {start}: {e}")),
        )
    }
}

#[test]
fn json_snapshot_matches_schema() {
    let snap = traced_run(combined(), 42, 20);
    let doc = Parser::parse(&snap.to_json());
    assert_eq!(doc.get("schema").unwrap().str(), "rvma-telemetry-v1");
    assert_eq!(doc.get("events").unwrap().num() as usize, snap.events.len());
    assert_eq!(doc.get("dropped").unwrap().num() as u64, snap.dropped);
    let counts = doc.get("counts").unwrap();
    for kind in EventKind::ALL {
        assert_eq!(
            counts.get(kind.as_str()).unwrap().num() as u64,
            snap.count(kind),
            "count mismatch for {}",
            kind.as_str()
        );
    }
    let spans = doc.get("spans").unwrap();
    for span in Span::ALL {
        let s = spans.get(span.as_str()).unwrap();
        let h = snap.span(span);
        assert_eq!(s.get("count").unwrap().num() as u64, h.count());
        assert_eq!(s.get("p50_ns").unwrap().num() as u64, h.quantile(0.50));
        assert_eq!(s.get("p99_ns").unwrap().num() as u64, h.quantile(0.99));
        let bucket_total: u64 = s
            .get("buckets")
            .unwrap()
            .arr()
            .iter()
            .map(|b| b.arr()[1].num() as u64)
            .sum();
        assert_eq!(bucket_total, h.count(), "bucket counts must sum to count");
    }
}

#[test]
fn chrome_trace_matches_schema() {
    let snap = traced_run(combined(), 42, 20);
    let doc = Parser::parse(&snap.to_chrome_trace());
    assert_eq!(doc.get("displayTimeUnit").unwrap().str(), "ns");
    let events = doc.get("traceEvents").unwrap().arr();
    assert!(!events.is_empty());
    let mut instants = 0u64;
    let mut spans = 0u64;
    for ev in events {
        let ph = ev.get("ph").unwrap().str();
        assert!(ev.get("ts").unwrap().num() >= 0.0);
        assert_eq!(ev.get("pid").unwrap().num() as u64, 1);
        match ph {
            "i" => {
                instants += 1;
                let name = ev.get("name").unwrap().str().to_string();
                assert!(
                    EventKind::ALL.iter().any(|k| k.as_str() == name),
                    "unknown instant name {name:?}"
                );
            }
            "X" => {
                spans += 1;
                assert!(ev.get("dur").unwrap().num() >= 0.0);
                let name = ev.get("name").unwrap().str().to_string();
                assert!(
                    Span::ALL.iter().any(|s| s.as_str() == name),
                    "unknown span name {name:?}"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(instants as usize, snap.events.len());
    // The trace draws one duration slice per paired submit→deliver and
    // complete→handoff gap (submit→enqueue is histogram-only).
    let paired =
        snap.span(Span::SubmitToDeliver).count() + snap.span(Span::CompleteToHandoff).count();
    assert_eq!(spans, paired, "one complete span per paired lifecycle gap");
}
