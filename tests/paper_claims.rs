//! Cross-crate regression tests pinning the reproduction to the paper's
//! claims: if a refactor silently changes a protocol model and the
//! headline numbers drift outside their bands, these fail.

use rvma::microbench::{
    amortization_figure, peak_reduction, ucx_connectx5, verbs_omnipath, Routing,
};
use rvma::motifs::{compare_protocols, Halo3dConfig, Halo3dNode, Sweep3dConfig, Sweep3dNode};
use rvma::net::fabric::FabricConfig;
use rvma::net::router::RoutingKind;
use rvma::net::topology::{dragonfly, hyperx, DragonflyParams, HyperXParams};
use rvma::nic::{HostLogic, NicConfig};
use rvma::sim::SimTime;

#[test]
fn fig4_verbs_headline_65_8_percent() {
    let r = peak_reduction(&verbs_omnipath());
    assert!(
        (r - 0.658).abs() < 0.02,
        "Verbs peak reduction {r:.3} outside 65.8% ± 2%"
    );
}

#[test]
fn fig5_ucx_headline_45_8_percent() {
    let r = peak_reduction(&ucx_connectx5());
    assert!(
        (r - 0.458).abs() < 0.02,
        "UCX peak reduction {r:.3} outside 45.8% ± 2%"
    );
}

#[test]
fn fig6_many_exchanges_needed_for_small_messages() {
    // Paper: "a large number of exchanges are needed to amortize away
    // setup costs", within a 3% margin.
    let rows = amortization_figure(&ucx_connectx5(), 0.03);
    assert!(rows[0].exchanges_static > 30);
    // Monotone non-increasing with size; adaptive needs <= static.
    for w in rows.windows(2) {
        assert!(w[1].exchanges_static <= w[0].exchanges_static);
    }
    for r in &rows {
        assert!(r.exchanges_adaptive <= r.exchanges_static);
    }
}

#[test]
fn microbench_rvma_never_slower_on_adaptive() {
    for m in [verbs_omnipath(), ucx_connectx5()] {
        for size in rvma::microbench::latency_sizes() {
            assert!(
                m.rvma_put(size) < m.rdma_put(size, Routing::Adaptive),
                "{}: RVMA slower at {size}",
                m.name
            );
        }
    }
}

fn sweep_cfg(nodes: u32) -> Sweep3dConfig {
    let side = (nodes as f64).sqrt() as u32;
    Sweep3dConfig {
        pgrid: [side, nodes / side],
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    }
}

#[test]
fn fig7_sweep3d_rvma_wins_big_on_adaptive_dragonfly() {
    // The paper's flagship cell (scaled down): adaptive dragonfly. At
    // 400 Gbps the speedup should sit in the 2x–6x band around the paper's
    // 2x-4.4x range.
    let motif = sweep_cfg(16);
    let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
    let nodes = motif.nodes();
    let (_rdma, _rvma, speedup) = compare_protocols(
        &spec,
        &FabricConfig::at_gbps(400),
        NicConfig::default(),
        7,
        |n| {
            if n < nodes {
                Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
            } else {
                Box::new(rvma::motifs::IdleNode) as Box<dyn HostLogic>
            }
        },
    );
    assert!(
        speedup > 2.0 && speedup < 6.0,
        "sweep3d dragonfly-adaptive speedup {speedup:.2} outside [2, 6]"
    );
}

#[test]
fn fig7_speedup_grows_with_link_speed() {
    // Paper: ≥2x contemporary, 4.4x at 2 Tbps — the advantage grows as
    // serialization shrinks and fixed coordination dominates.
    let motif = sweep_cfg(16);
    let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
    let nodes = motif.nodes();
    let at = |gbps| {
        compare_protocols(
            &spec,
            &FabricConfig::at_gbps(gbps),
            NicConfig::default(),
            7,
            |n| {
                if n < nodes {
                    Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
                } else {
                    Box::new(rvma::motifs::IdleNode) as Box<dyn HostLogic>
                }
            },
        )
        .2
    };
    let slow = at(100);
    let fast = at(2000);
    assert!(
        fast > slow,
        "speedup should grow with link speed: {slow:.2} -> {fast:.2}"
    );
}

#[test]
fn fig8_halo3d_band_on_hyperx_dor() {
    // Paper: HyperX DOR 1.64x @400G, 1.89x @2T. Accept a generous band
    // around the paper's 1.57x average: [1.1, 2.5].
    let motif = Halo3dConfig {
        pgrid: [2, 2, 2],
        cells: [32, 32, 32],
        elem_bytes: 8,
        iters: 10,
        compute: SimTime::from_ns(200),
    };
    let spec = hyperx(HyperXParams { d: [4, 2], tps: 1 }, RoutingKind::Static);
    let (_rdma, _rvma, speedup) = compare_protocols(
        &spec,
        &FabricConfig::at_gbps(400),
        NicConfig::default(),
        7,
        |n| Box::new(Halo3dNode::new(motif, n)) as Box<dyn HostLogic>,
    );
    assert!(
        speedup > 1.1 && speedup < 2.5,
        "halo3d hyperx-dor speedup {speedup:.2} outside [1.1, 2.5]"
    );
}

#[test]
fn sweep3d_beats_halo3d_in_relative_gain() {
    // The paper's figs 7 vs 8: the latency-bound motif gains far more than
    // the bandwidth-bound one.
    let sweep = sweep_cfg(16);
    let halo = Halo3dConfig {
        pgrid: [4, 2, 2],
        cells: [32, 32, 32],
        elem_bytes: 8,
        iters: 10,
        compute: SimTime::from_ns(200),
    };
    let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
    let fcfg = FabricConfig::at_gbps(400);
    let nodes = 16;
    let s = compare_protocols(&spec, &fcfg, NicConfig::default(), 7, |n| {
        if n < nodes {
            Box::new(Sweep3dNode::new(sweep, n)) as Box<dyn HostLogic>
        } else {
            Box::new(rvma::motifs::IdleNode) as Box<dyn HostLogic>
        }
    })
    .2;
    let h = compare_protocols(&spec, &fcfg, NicConfig::default(), 7, |n| {
        if n < nodes {
            Box::new(Halo3dNode::new(halo, n)) as Box<dyn HostLogic>
        } else {
            Box::new(rvma::motifs::IdleNode) as Box<dyn HostLogic>
        }
    })
    .2;
    assert!(s > h, "sweep {s:.2}x should exceed halo {h:.2}x");
}
