//! Bounded-ring backpressure under incast, and the park/doorbell idle
//! path, exercised through the public `AsyncNetwork` API.
//!
//! Invariants checked:
//! * a full wire ring *blocks* producers — it never drops a fragment, so
//!   every put still lands and every epoch completes;
//! * resident ring entries never exceed the configured capacity
//!   (`max_depth <= wire_queue_cap`), which bounds queue memory under any
//!   incast pattern;
//! * the stall and doorbell counters surface through `EndpointStats`;
//! * a ring held at capacity deadlocks neither `quiesce` nor `Drop`.

use rvma::core::transport::DeliveryOrder;
use rvma::core::{AsyncNetwork, EndpointConfig, NodeAddr, Threshold, VirtAddr};
use std::time::Duration;

const RING_CAP: usize = 8;

fn tiny_ring_net(workers: usize) -> AsyncNetwork {
    let config = EndpointConfig {
        wire_queue_cap: RING_CAP,
        wire_workers: workers,
        ..EndpointConfig::default()
    };
    AsyncNetwork::for_endpoint_config(256, DeliveryOrder::InOrder, Duration::ZERO, &config)
}

/// Incast: 4 senders hammer single-fragment puts through rings of
/// capacity 8. The ring must stall the producers (never drop), so every
/// byte arrives and the observed depth stays within the cap.
#[test]
fn incast_through_a_tiny_ring_loses_nothing() {
    const SENDERS: u64 = 4;
    const PUTS: u64 = 512;
    const MSG: usize = 64; // <= MTU: one ring entry per put

    let net = tiny_ring_net(2);
    let server = net.add_endpoint(NodeAddr::node(0));
    let mut notes = Vec::new();
    for m in 0..SENDERS {
        let win = server
            .init_window(VirtAddr::new(m), Threshold::ops(PUTS))
            .unwrap();
        notes.push(win.post_buffer(vec![0u8; MSG]).unwrap());
    }

    std::thread::scope(|s| {
        for m in 0..SENDERS {
            let init = net.initiator(NodeAddr::node(m as u32 + 1));
            s.spawn(move || {
                let payload = vec![m as u8 + 1; MSG];
                for _ in 0..PUTS {
                    // Writes land on the same 64 bytes; the op *count*
                    // drives the threshold, so the epoch completes after
                    // exactly PUTS puts.
                    init.put_at(NodeAddr::node(0), VirtAddr::new(m), 0, &payload)
                        .unwrap();
                }
            });
        }
    });

    for (m, n) in notes.iter_mut().enumerate() {
        let buf = n.wait();
        assert_eq!(
            buf.data(),
            vec![m as u8 + 1; MSG].as_slice(),
            "lost or corrupted bytes (sender {m})"
        );
    }
    net.quiesce();

    let stats = server.stats();
    assert_eq!(stats.epochs_completed, SENDERS, "every epoch exactly once");
    assert_eq!(
        stats.fragments_accepted,
        SENDERS * PUTS,
        "a full ring must block, never drop"
    );
    assert!(
        stats.max_depth <= RING_CAP as u64,
        "resident entries exceeded the ring cap: {} > {RING_CAP}",
        stats.max_depth
    );
    assert!(stats.max_depth > 0, "high-water mark never observed a push");
    // 2048 single-fragment puts through 16 slots of ring: producers must
    // have hit a full ring at least once.
    assert!(
        stats.full_stalls > 0,
        "incast through a cap-{RING_CAP} ring never stalled a producer"
    );
}

/// A paced sender lets the wire worker park between puts; the doorbell
/// must wake it every time (counted in `park_wakeups`), and teardown of a
/// recently-parked pool must not hang.
#[test]
fn parked_workers_wake_on_the_doorbell() {
    let net = tiny_ring_net(1);
    let server = net.add_endpoint(NodeAddr::node(0));
    const PUTS: u64 = 5;
    let win = server
        .init_window(VirtAddr::new(7), Threshold::ops(PUTS))
        .unwrap();
    let mut note = win.post_buffer(vec![0u8; 64]).unwrap();
    let init = net.initiator(NodeAddr::node(1));
    for _ in 0..PUTS {
        // Long enough for the worker to exhaust any idle budget and park.
        std::thread::sleep(Duration::from_millis(5));
        init.put_at(NodeAddr::node(0), VirtAddr::new(7), 0, &[1u8; 8])
            .unwrap();
    }
    // Valid length mirrors the hardware's received-byte count: 5 puts of
    // 8 bytes over the same offset.
    assert_eq!(note.wait().len(), PUTS as usize * 8);
    let stats = server.stats();
    assert!(
        stats.park_wakeups > 0,
        "worker never parked/woke across {PUTS} paced puts"
    );
}

/// Drop the network while producers are mid-stream against a full ring:
/// blocked `push` calls must resolve (the rings close only after the
/// workers drain and join), not deadlock. Losing a racing put to the
/// closed network is acceptable; hanging is not.
#[test]
fn drop_races_blocked_producers_without_deadlock() {
    for round in 0..8u64 {
        let net = tiny_ring_net(1);
        let server = net.add_endpoint(NodeAddr::node(0));
        let win = server
            .init_window(VirtAddr::new(round), Threshold::ops(u64::MAX))
            .unwrap();
        let _note = win.post_buffer(vec![0u8; 64]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        std::thread::scope(|s| {
            s.spawn(move || {
                // Errors (network torn down mid-put) are expected here;
                // the assertion is that this thread terminates.
                for _ in 0..512 {
                    if init
                        .put_at(NodeAddr::node(0), VirtAddr::new(round), 0, &[9u8; 32])
                        .is_err()
                    {
                        break;
                    }
                }
            });
            // Tear down while the producer is likely stalled on the ring.
            std::thread::sleep(Duration::from_micros(200 * round));
            drop(net);
        });
    }
}
