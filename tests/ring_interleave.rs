//! Interleaving stress for the wire ring's close/push races.
//!
//! N producers hammer the blocking `push` while the single consumer
//! drains and then `close()`s mid-stream. The contract under test: every
//! value is either delivered to the consumer or returned to its producer
//! with the error — **exactly once**, never both, never lost — and the
//! shared counters stay consistent (`max_depth` bounded by the capacity,
//! `full_stalls` counted once per stalled push).
//!
//! These invariants are *sampled* here under real contention; the same
//! partition and per-producer FIFO properties are *exhaustively
//! enumerated* on a scaled-down program by the model checker — see
//! `ring_push_close_pop_partition` in `crates/core/src/check/models.rs`
//! (`cargo test -p rvma-core --features check`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rvma::core::{PushError, RingQueue, RingStats};

const PRODUCERS: u64 = 4;
const OPS_PER_PRODUCER: u64 = 20_000;

/// Tag a value with its producer so the partition check can attribute it.
fn val(producer: u64, seq: u64) -> u64 {
    (producer << 32) | seq
}

#[test]
fn close_push_race_delivers_or_returns_every_value_exactly_once() {
    // Several close points: early (most pushes see the closed ring), late
    // (most deliver), and mid-stream (the interesting interleavings).
    for close_after in [64usize, 1_000, 30_000] {
        let stats = Arc::new(RingStats::default());
        let ring = Arc::new(RingQueue::<u64>::with_stats(64, stats.clone()));
        let done = Arc::new(AtomicUsize::new(0));

        let consumer = {
            let ring = ring.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut closed = false;
                loop {
                    match ring.try_pop() {
                        Some(v) => {
                            got.push(v);
                            if !closed && got.len() >= close_after {
                                // Close mid-stream: racing pushes either
                                // land (a slot was already claimed) or
                                // bounce back to their producer.
                                ring.close();
                                closed = true;
                            }
                        }
                        None => {
                            if done.load(Ordering::Acquire) == PRODUCERS as usize
                                && ring.try_pop().is_none()
                            {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                if !closed {
                    ring.close();
                }
                got
            })
        };

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = ring.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut rejected = Vec::new();
                    for i in 0..OPS_PER_PRODUCER {
                        if let Err(v) = ring.push(val(p, i)) {
                            rejected.push(v);
                        }
                    }
                    done.fetch_add(1, Ordering::Release);
                    rejected
                })
            })
            .collect();

        let mut rejected = Vec::new();
        for h in producers {
            rejected.extend(h.join().unwrap());
        }
        let delivered = consumer.join().unwrap();

        // Exactly-once partition: delivered ∪ rejected == every value,
        // with no overlap and no duplicates on either side.
        let mut all: Vec<u64> = delivered.iter().chain(rejected.iter()).copied().collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..PRODUCERS)
            .flat_map(|p| (0..OPS_PER_PRODUCER).map(move |i| val(p, i)))
            .collect();
        expected.sort_unstable();
        assert_eq!(
            all,
            expected,
            "close_after={close_after}: {} delivered + {} rejected must partition all {} ops",
            delivered.len(),
            rejected.len(),
            expected.len()
        );

        // Per-producer FIFO holds for the delivered prefix interleaving:
        // the single consumer sees each producer's values in push order.
        let mut last: Vec<Option<u64>> = vec![None; PRODUCERS as usize];
        for v in &delivered {
            let (p, i) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
            if let Some(prev) = last[p] {
                assert!(
                    prev < i,
                    "close_after={close_after}: producer {p} delivered out of order"
                );
            }
            last[p] = Some(i);
        }

        let snap = stats.snapshot();
        assert!(
            snap.max_depth <= ring.capacity() as u64,
            "close_after={close_after}: max_depth {} exceeds capacity {}",
            snap.max_depth,
            ring.capacity()
        );
        assert!(
            snap.max_depth > 0,
            "close_after={close_after}: the ring was never observed non-empty"
        );
        // 80k blocking pushes through a 64-slot ring cannot all have found
        // room, except in the early-close case where most bounce off the
        // closed check without ever contending.
        if close_after >= 30_000 {
            assert!(
                snap.full_stalls > 0,
                "close_after={close_after}: backpressure never engaged"
            );
        }
        assert!(
            snap.full_stalls <= PRODUCERS * OPS_PER_PRODUCER,
            "full_stalls counted more than once per push"
        );
    }
}

/// Deterministic stall accounting: a push into a full ring counts exactly
/// one stall no matter how long it spins, and the high-water depth is
/// exactly the capacity it filled.
#[test]
fn full_stalls_count_once_per_stalled_push() {
    let stats = Arc::new(RingStats::default());
    let ring = Arc::new(RingQueue::<u64>::with_stats(2, stats.clone()));
    for i in 0..ring.capacity() as u64 {
        assert!(ring.try_push(i).is_ok());
    }
    assert_eq!(stats.snapshot().full_stalls, 0, "try_push never stalls");
    assert!(matches!(ring.try_push(99), Err(PushError::Full(99))));

    let pusher = {
        let ring = ring.clone();
        std::thread::spawn(move || ring.push(100))
    };
    // Let the pusher hit the full ring and settle into its spin/yield loop
    // before freeing a slot; the stall must still count exactly once.
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(ring.try_pop(), Some(0));
    pusher.join().unwrap().unwrap();

    let snap = stats.snapshot();
    assert_eq!(snap.full_stalls, 1, "one stalled push, one stall");
    assert_eq!(snap.max_depth, ring.capacity() as u64);
    assert_eq!(ring.try_pop(), Some(1));
    assert_eq!(ring.try_pop(), Some(100));
}

/// A closed ring fails fast on both push flavors and returns the value,
/// while values already resident stay poppable.
#[test]
fn close_fails_new_pushes_but_keeps_resident_values() {
    let ring = RingQueue::<u64>::new(8);
    ring.try_push(7).map_err(|_| ()).unwrap();
    ring.close();
    assert!(matches!(ring.try_push(8), Err(PushError::Closed(8))));
    assert_eq!(ring.push(9), Err(9));
    assert_eq!(ring.try_pop(), Some(7));
    assert_eq!(ring.try_pop(), None);
}
