//! Property tests for the telemetry histogram: merge conserves sample
//! counts (and min/max/mean accounting), and nearest-rank quantiles stay
//! within one bucket width of the exact sorted-sample quantile across the
//! whole `u64` range.

use proptest::collection::vec;
use proptest::prelude::*;
use rvma::core::Histogram;

/// Exact nearest-rank quantile of a sorted sample set.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.observe(v);
    }
    h
}

prop_compose! {
    /// Mixed-magnitude sample: plain `any::<u64>()` almost never generates
    /// the small values real latencies have, so shift a full-range draw
    /// right by a random amount to cover every octave.
    fn latency_sample()(v in any::<u64>(), s in 0..64u32) -> u64 {
        v >> s
    }
}

fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    vec(latency_sample(), 1..max_len)
}

proptest! {
    #[test]
    fn merge_preserves_total_count(a in samples(200), b in samples(200)) {
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.min(), ha.min().min(hb.min()));
        prop_assert_eq!(merged.max(), ha.max().max(hb.max()));
        // Merged buckets are the element-wise sum: every non-empty bucket
        // count across both inputs is conserved.
        let total: u64 = merged.nonzero_buckets().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, merged.count());
        // Merging in an empty histogram changes nothing.
        let mut noop = merged.clone();
        noop.merge(&Histogram::new());
        prop_assert_eq!(noop.count(), merged.count());
        prop_assert_eq!(noop.nonzero_buckets(), merged.nonzero_buckets());
    }

    #[test]
    fn quantiles_within_one_bucket_width_of_exact(xs in samples(300)) {
        let h = hist_of(&xs);
        let mut xs = xs;
        xs.sort_unstable();
        for q in [0.50, 0.99] {
            let exact = exact_quantile(&xs, q);
            let approx = h.quantile(q);
            // The reported value is the lower bound of the bucket holding
            // the rank-th sample: never above the exact value, and within
            // that bucket's width below it.
            let idx = Histogram::bucket_index(exact);
            prop_assert!(
                approx <= exact,
                "q={}: approx {} above exact {}", q, approx, exact
            );
            prop_assert!(
                exact - approx < Histogram::bucket_width(idx),
                "q={}: approx {} more than one bucket width ({}) below exact {}",
                q, approx, Histogram::bucket_width(idx), exact
            );
            // And it is exactly the bucket lower bound of the exact value.
            prop_assert_eq!(approx, Histogram::bucket_lower(idx));
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in samples(300)) {
        let h = hist_of(&xs);
        let qs = [0.01, 0.25, 0.50, 0.90, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
        // Quantiles report bucket lower bounds, so the whole range is
        // bracketed by the min's bucket floor and the exact max.
        prop_assert!(Histogram::bucket_lower(Histogram::bucket_index(h.min())) <= h.quantile(0.01));
        prop_assert!(h.quantile(1.0) <= h.max());
    }
}
