#!/usr/bin/env bash
# Regenerate every table/figure of the RVMA paper reproduction.
# Outputs: stdout tables + CSVs under results/.
# Usage: scripts/reproduce.sh [--nodes N | --full-scale]
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")

echo "== building (release) =="
cargo build --release -p rvma-bench

run() { echo; echo "== $1 =="; shift; cargo run -q --release -p rvma-bench --bin "$@"; }

run "Fig 4 (Verbs latency)"        fig4_verbs_latency
run "Fig 5 (UCX latency)"          fig5_ucx_latency
run "Fig 6 (setup amortization)"   fig6_amortization
run "Fig 7 (Sweep3D matrix)"       fig7_sweep3d -- "${ARGS[@]}"
run "Fig 8 (Halo3D matrix)"        fig8_halo3d -- "${ARGS[@]}"
run "Headline summary"             headline_summary -- "${ARGS[@]}"
run "Ablation: completion"         ablation_completion -- "${ARGS[@]}"
run "Ablation: PCIe"               ablation_pcie -- "${ARGS[@]}"
run "Ablation: counters"           ablation_counters
run "Ablation: lookup"             ablation_lookup
run "Many-to-one"                  manytoone
run "Topology report"              topo_report

echo
echo "CSVs written to results/"
