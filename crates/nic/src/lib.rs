//! # rvma-nic — simulated RDMA and RVMA network interface controllers
//!
//! Terminal (NIC + host) models for the large-scale simulations of the
//! paper's Figs. 7–8. A [`Terminal`] attaches to an `rvma-net` fabric,
//! speaks either [`Protocol::Rdma`] or [`Protocol::Rvma`], and hosts an
//! application behaviour ([`HostLogic`]) — the motifs live in `rvma-motifs`.
//!
//! The protocol differences modeled here are exactly the paper's:
//!
//! | | RDMA | RVMA |
//! |---|---|---|
//! | first contact | registration handshake (REQ → pin/register → RESP) | none |
//! | per message | RTR credit from the receiver's single buffer | none (bucket of buffers) |
//! | unordered nets | trailing send/recv fence per message | threshold completion |
//! | completion | last-byte poll (ordered) / fence + CQ (unordered) | completion-pointer write |
//!
//! Both share identical timing for everything else (links, switches, PCIe
//! at 150 ns, MTU) per the paper's methodology.
//!
//! ```
//! use rvma_net::{FabricConfig, RoutingKind, topology::star, packet::NetEvent};
//! use rvma_nic::{build_cluster, HostLogic, NicConfig, Protocol, RecvInfo, TermApi};
//! use rvma_sim::Engine;
//!
//! struct Ping;
//! impl HostLogic for Ping {
//!     fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
//!         if api.node() == 0 { api.send(1, 7, 4096); }
//!     }
//!     fn on_recv(&mut self, m: RecvInfo, api: &mut TermApi<'_, '_>) {
//!         assert_eq!(m.bytes, 4096);
//!         api.count("got");
//!     }
//! }
//!
//! let mut engine: Engine<NetEvent> = Engine::new(1);
//! build_cluster(
//!     &mut engine,
//!     &star(2, RoutingKind::Static),
//!     &FabricConfig::at_gbps(100),
//!     NicConfig::default(),
//!     Protocol::Rvma,
//!     |_| Box::new(Ping) as Box<dyn HostLogic>,
//! );
//! engine.run_to_completion();
//! assert_eq!(engine.stats().counter_value("got"), 1);
//! ```

pub mod cluster;
pub mod config;
pub mod host;
pub mod terminal;

pub use cluster::{build_cluster, Cluster};
pub use config::{NicConfig, Protocol};
pub use host::{HostLogic, RecvInfo, TermApi};
pub use terminal::Terminal;
