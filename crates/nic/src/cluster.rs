//! Cluster assembly: fabric + one terminal per node, started at t = 0.

use crate::config::{NicConfig, Protocol};
use crate::host::HostLogic;
use crate::terminal::{NicLocal, Terminal};
use rvma_net::fabric::{build_fabric, Fabric, FabricConfig, TopologySpec};
use rvma_net::packet::NetEvent;
use rvma_sim::{ComponentId, SimBuilder, SimTime};

/// Handle to a fully assembled simulated cluster.
pub struct Cluster {
    /// The underlying fabric (switch/terminal component ids, name).
    pub fabric: Fabric,
    /// Which protocol the terminals speak.
    pub protocol: Protocol,
}

impl Cluster {
    /// Terminal component ids, indexed by node.
    pub fn terminals(&self) -> &[ComponentId] {
        &self.fabric.terminal_cids
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.fabric.terminal_cids.len()
    }
}

/// Build the fabric and its terminals inside `engine` (sequential or
/// parallel, via [`SimBuilder`]), and schedule every terminal's `on_start`
/// at t = 0. `logic` is called once per node index to produce that node's
/// application behaviour.
pub fn build_cluster<B: SimBuilder<NetEvent>>(
    engine: &mut B,
    spec: &TopologySpec,
    fcfg: &FabricConfig,
    ncfg: NicConfig,
    protocol: Protocol,
    mut logic: impl FnMut(u32) -> Box<dyn HostLogic>,
) -> Cluster {
    let fabric = build_fabric(engine, spec, fcfg);
    let ordered = spec.router.ordered();
    for t in 0..spec.terminals {
        let cid = engine.register_component(Terminal::new(
            t,
            ncfg,
            protocol,
            ordered,
            fabric.terminal_attach[t as usize],
            fabric.injection_link,
            logic(t),
        ));
        debug_assert_eq!(cid, fabric.terminal_cids[t as usize]);
    }
    fabric.assert_terminals_added(engine);
    for &cid in &fabric.terminal_cids {
        engine.seed_event(SimTime::ZERO, cid, NetEvent::local(NicLocal::Start));
    }
    Cluster { fabric, protocol }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{RecvInfo, TermApi};
    use rvma_net::router::RoutingKind;
    use rvma_net::topology::{star, torus3d, TorusParams};
    use rvma_sim::Engine;

    struct Probe;
    impl HostLogic for Probe {
        fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
            api.count("probe.started");
        }
        fn on_recv(&mut self, _m: RecvInfo, _api: &mut TermApi<'_, '_>) {}
    }

    #[test]
    fn every_terminal_starts_at_t_zero() {
        let spec = star(5, RoutingKind::Static);
        let mut engine = Engine::new(0);
        let cluster = build_cluster(
            &mut engine,
            &spec,
            &rvma_net::fabric::FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rvma,
            |_| Box::new(Probe) as Box<dyn HostLogic>,
        );
        assert_eq!(cluster.nodes(), 5);
        assert_eq!(cluster.terminals().len(), 5);
        assert_eq!(cluster.protocol, Protocol::Rvma);
        engine.run_to_completion();
        assert_eq!(engine.stats().counter_value("probe.started"), 5);
        assert_eq!(engine.now(), SimTime::ZERO, "starts fire at t=0");
    }

    #[test]
    fn terminal_ids_match_fabric_reservation() {
        let spec = torus3d(
            TorusParams {
                dims: [2, 2, 2],
                tps: 2,
            },
            RoutingKind::Adaptive,
        );
        let mut engine = Engine::new(0);
        let cluster = build_cluster(
            &mut engine,
            &spec,
            &rvma_net::fabric::FabricConfig::at_gbps(100),
            NicConfig::default(),
            Protocol::Rdma,
            |_| Box::new(Probe) as Box<dyn HostLogic>,
        );
        // 8 switches then 16 terminals, contiguous.
        assert_eq!(cluster.terminals()[0].as_usize(), 8);
        assert_eq!(cluster.terminals()[15].as_usize(), 23);
        assert_eq!(engine.component_count(), 24);
    }
}
