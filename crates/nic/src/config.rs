//! NIC model configuration.

use rvma_sim::SimTime;

/// Which wire protocol a terminal speaks (the comparison axis of the
/// paper's Figs. 7–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Traditional RDMA: per-buffer registration handshake, per-message
    /// receiver-side buffer coordination (RTR credit), and — on unordered
    /// networks — a trailing send/recv fence per message.
    Rdma,
    /// RVMA: no handshake, receiver-posted buffer buckets, threshold
    /// completion; correct on any delivery order.
    Rvma,
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Protocol::Rdma => "RDMA",
            Protocol::Rvma => "RVMA",
        })
    }
}

/// Timing and sizing parameters of the NIC model.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Max payload bytes per packet.
    pub mtu: u32,
    /// Host↔NIC bus latency. The paper models 150 ns (balancing PCIe
    /// Gen 4/5); its PCIe Gen 6 discussion motivates the ablation sweep.
    pub pcie_latency: SimTime,
    /// Host-side memory-registration cost paid once per RDMA buffer
    /// handshake (pinning + MR setup).
    pub reg_latency: SimTime,
    /// Payload bytes of control packets (setup/RTR/fence).
    pub ctrl_bytes: u32,
    /// RTR credits granted per RDMA channel at handshake — the number of
    /// exclusive receive buffers the target dedicates to the initiator.
    /// Traditional RDMA's "single pre-negotiated buffer" is 1.
    pub rdma_credits: u32,
    /// RVMA NIC threshold-counter capacity: messages concurrently tracked
    /// in on-NIC counters. Beyond it, counters spill to host memory and
    /// completions pay [`NicConfig::spill_penalty`]. `None` = unbounded.
    pub rvma_counter_capacity: Option<usize>,
    /// Allow RDMA to complete by polling the last byte of the buffer on
    /// *ordered* networks, skipping the completion send/recv. This is the
    /// common real-world optimization the paper notes **violates the
    /// InfiniBand specification**; the paper's SST RDMA model (and our
    /// default) is spec-compliant — a completion message per put on every
    /// network. Enable for the completion-mechanism ablation.
    pub rdma_last_byte_poll: bool,
    /// Host-side cost of consuming a send/recv completion (posting the
    /// matching recv, CQE handling) per fenced message, calibrated from
    /// the microbenchmark fence overhead net of wire time.
    pub fence_cq_overhead: SimTime,
}

impl NicConfig {
    /// Per-completion penalty when an RVMA counter spilled to host memory:
    /// one round trip over the host bus.
    pub fn spill_penalty(&self) -> SimTime {
        self.pcie_latency * 2
    }
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            mtu: 2048,
            pcie_latency: SimTime::from_ns(150),
            reg_latency: SimTime::from_us(2),
            ctrl_bytes: 16,
            rdma_credits: 1,
            rvma_counter_capacity: None,
            rdma_last_byte_poll: false,
            fence_cq_overhead: SimTime::from_ns(800),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NicConfig::default();
        assert_eq!(c.pcie_latency, SimTime::from_ns(150));
        assert_eq!(c.rdma_credits, 1);
        assert_eq!(c.mtu, 2048);
        assert_eq!(c.spill_penalty(), SimTime::from_ns(300));
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Rdma.to_string(), "RDMA");
        assert_eq!(Protocol::Rvma.to_string(), "RVMA");
    }
}
