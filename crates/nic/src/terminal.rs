//! The simulated NIC + host terminal.
//!
//! One [`Terminal`] per node. It owns the node's uplink to its switch, the
//! host↔NIC bus (PCIe) timing, the protocol state machines, and the host
//! application logic. The two protocols differ exactly where the paper says
//! they do:
//!
//! **RDMA send path** (per channel = `(peer, tag)`):
//! 1. First use: registration handshake — `SetupReq` → receiver host pins
//!    and registers a buffer (`reg_latency`) → `SetupResp` carrying the
//!    remote address and the initial RTR credit(s).
//! 2. Every message consumes an RTR credit (the receiver's single
//!    pre-negotiated buffer must be free); with no credit the send queues.
//! 3. Data packets; on *unordered* (adaptively-routed) networks a trailing
//!    send/recv **fence** packet follows, per the InfiniBand specification.
//! 4. Receive completion: ordered networks poll the last byte (data DMA
//!    visibility only); unordered networks complete at
//!    `max(all data, fence)` + CQ write.
//! 5. After the host consumes a message it re-posts the buffer, returning
//!    an RTR credit to the sender.
//!
//! **RVMA send path**: packetize and go. The receiver counts bytes against
//! the message total (the threshold known a priori), completing in any
//! arrival order; the completion-pointer write rides the host bus with the
//! final data DMA. No handshake, no credits, no fence.

use crate::config::{NicConfig, Protocol};
use crate::host::{HostCmd, HostLogic, RecvInfo, TermApi};
use rvma_net::link::LinkParams;
use rvma_net::packet::{NetEvent, Packet, PacketHeader, PacketKind, RouteState};
use rvma_sim::{Component, ComponentId, Ctx, SimTime};
use std::collections::{HashMap, VecDeque};

/// A message the host asked the NIC to send.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutMsg {
    pub dst: u32,
    pub tag: u64,
    pub bytes: u64,
    pub msg_id: u64,
}

/// Terminal-local events (scheduled by the terminal to itself).
#[derive(Debug)]
pub(crate) enum NicLocal {
    /// Kick the host logic's `on_start`.
    Start,
    /// A host send command arrived at the NIC (crossed the host bus).
    NicSend(OutMsg),
    /// A host compute block finished.
    ComputeDone { tag: u64 },
    /// A receive completion became visible to the host.
    HostRecv(RecvInfo),
    /// A send-side completion became visible to the host.
    HostSendComplete { msg_id: u64 },
    /// The host finished registering a buffer for a setup request; the NIC
    /// should now emit the SetupResp.
    EmitSetupResp { dst: u32, tag: u64 },
    /// The host re-posted a consumed RDMA buffer; emit the RTR credit.
    EmitRtr { dst: u32, tag: u64 },
    /// A host get command arrived at the NIC.
    NicGet(OutMsg),
    /// The target NIC finished the local DMA read for a GetReq; stream the
    /// response data back to the requester.
    EmitGetResp {
        dst: u32,
        tag: u64,
        msg_id: u64,
        bytes: u64,
    },
    /// A get's response data fully arrived; notify the host.
    HostGetComplete { msg_id: u64 },
}

/// RDMA sender-side channel state.
#[derive(Debug)]
enum ChanState {
    /// SetupReq sent; messages queue here until the SetupResp.
    HandshakePending { queued: VecDeque<OutMsg> },
    /// Registered; `credits` RTRs available.
    Ready {
        credits: u32,
        queued: VecDeque<OutMsg>,
    },
}

/// Receive-side progress of one in-flight message.
#[derive(Debug)]
struct RecvProgress {
    expected: u64,
    got: u64,
    tag: u64,
    data_done: bool,
    fence_seen: bool,
    /// RVMA counter spilled to host memory (capacity exceeded at creation).
    spilled: bool,
    /// True for get-response tracking (completion goes to `on_get_complete`).
    is_get: bool,
}

/// A simulated node: NIC + host.
pub struct Terminal {
    id: u32,
    cfg: NicConfig,
    proto: Protocol,
    /// Does the network deliver per-flow in order? (From the router.)
    ordered: bool,
    switch: ComponentId,
    uplink: LinkParams,
    uplink_free: SimTime,
    next_msg_id: u64,
    next_pkt_id: u64,
    channels: HashMap<(u32, u64), ChanState>,
    recvs: HashMap<(u32, u64), RecvProgress>,
    /// RDMA gets waiting for their channel's registration handshake.
    pending_gets: HashMap<(u32, u64), Vec<OutMsg>>,
    logic: Option<Box<dyn HostLogic>>,
}

impl Terminal {
    /// Build a terminal. `ordered` must reflect the fabric router's
    /// delivery-order guarantee.
    pub fn new(
        id: u32,
        cfg: NicConfig,
        proto: Protocol,
        ordered: bool,
        switch: ComponentId,
        uplink: LinkParams,
        logic: Box<dyn HostLogic>,
    ) -> Self {
        Terminal {
            id,
            cfg,
            proto,
            ordered,
            switch,
            uplink,
            uplink_free: SimTime::ZERO,
            next_msg_id: 1,
            next_pkt_id: 1,
            channels: HashMap::new(),
            recvs: HashMap::new(),
            pending_gets: HashMap::new(),
            logic: Some(logic),
        }
    }

    /// Terminal id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// True when RDMA may skip the completion fence: the spec-violating
    /// last-byte-poll optimization is enabled *and* the network delivers
    /// in order.
    fn last_byte_poll_active(&self) -> bool {
        self.cfg.rdma_last_byte_poll && self.ordered
    }

    /// Inject one packet onto the uplink; returns the serialization-finish
    /// instant (when the last bit leaves the NIC).
    #[allow(clippy::too_many_arguments)] // mirrors the wire-header fields
    fn inject(
        &mut self,
        ctx: &mut Ctx<'_, NetEvent>,
        kind: PacketKind,
        dst: u32,
        payload: u32,
        msg_id: u64,
        msg_bytes: u64,
        offset: u64,
        tag: u64,
    ) -> SimTime {
        let pkt = Packet {
            id: self.next_pkt_id,
            src: self.id,
            dst,
            payload_bytes: payload,
            header: PacketHeader {
                kind,
                msg_id,
                msg_bytes,
                offset,
                vaddr: tag,
                tag,
            },
            route: RouteState::default(),
            injected_at: ctx.now(),
        };
        self.next_pkt_id += 1;
        let start = ctx.now().max(self.uplink_free);
        let finish = start + self.uplink.serialize(pkt.wire_bytes());
        self.uplink_free = finish;
        ctx.schedule_at(
            finish + self.uplink.latency,
            self.switch,
            NetEvent::Packet(pkt),
        );
        ctx.stats().counter("nic.packets_injected").inc();
        finish
    }

    /// Emit a message's data packets (plus the RDMA fence on unordered
    /// networks) and schedule the sender-side completion.
    fn send_data(&mut self, ctx: &mut Ctx<'_, NetEvent>, m: OutMsg) {
        let kind = match self.proto {
            Protocol::Rdma => PacketKind::RdmaData,
            Protocol::Rvma => PacketKind::RvmaData,
        };
        let mtu = self.cfg.mtu as u64;
        let mut finish = SimTime::ZERO;
        if m.bytes == 0 {
            finish = self.inject(ctx, kind, m.dst, 0, m.msg_id, 0, 0, m.tag);
        } else {
            let mut off = 0u64;
            while off < m.bytes {
                let chunk = mtu.min(m.bytes - off) as u32;
                finish = self.inject(ctx, kind, m.dst, chunk, m.msg_id, m.bytes, off, m.tag);
                off += chunk as u64;
            }
        }
        if self.proto == Protocol::Rdma && !self.last_byte_poll_active() {
            // Spec-compliant RDMA completion: trailing send/recv fence per
            // put. (On ordered networks the spec-violating last-byte-poll
            // optimization may skip it — see `NicConfig::rdma_last_byte_poll`.)
            finish = self.inject(
                ctx,
                PacketKind::RdmaFence,
                m.dst,
                self.cfg.ctrl_bytes,
                m.msg_id,
                m.bytes,
                0,
                m.tag,
            );
            ctx.stats().counter("nic.fences_sent").inc();
        }
        ctx.stats().counter("nic.msgs_sent").inc();
        let me = ctx.self_id();
        ctx.schedule_at(
            finish + self.cfg.pcie_latency,
            me,
            NetEvent::local(NicLocal::HostSendComplete { msg_id: m.msg_id }),
        );
    }

    /// RDMA: drain a channel's queue while credits remain.
    fn flush_channel(&mut self, ctx: &mut Ctx<'_, NetEvent>, key: (u32, u64)) {
        loop {
            let Some(ChanState::Ready { credits, queued }) = self.channels.get_mut(&key) else {
                return;
            };
            if *credits == 0 || queued.is_empty() {
                return;
            }
            *credits -= 1;
            let m = queued.pop_front().expect("checked non-empty");
            self.send_data(ctx, m);
        }
    }

    /// Run a host-logic callback and execute the commands it issued.
    fn with_logic(
        &mut self,
        ctx: &mut Ctx<'_, NetEvent>,
        f: impl FnOnce(&mut dyn HostLogic, &mut TermApi<'_, '_>),
    ) {
        let mut logic = self.logic.take().expect("logic re-entered");
        let mut api = TermApi {
            node: self.id,
            cmds: Vec::new(),
            next_msg_id: &mut self.next_msg_id,
            ctx,
        };
        f(logic.as_mut(), &mut api);
        let cmds = api.cmds;
        self.logic = Some(logic);
        let me = ctx.self_id();
        for cmd in cmds {
            match cmd {
                HostCmd::Send {
                    dst,
                    tag,
                    bytes,
                    msg_id,
                } => {
                    // Host command crosses the host bus to the NIC.
                    ctx.schedule_in(
                        self.cfg.pcie_latency,
                        me,
                        NetEvent::local(NicLocal::NicSend(OutMsg {
                            dst,
                            tag,
                            bytes,
                            msg_id,
                        })),
                    );
                }
                HostCmd::Get {
                    dst,
                    tag,
                    bytes,
                    msg_id,
                } => {
                    ctx.schedule_in(
                        self.cfg.pcie_latency,
                        me,
                        NetEvent::local(NicLocal::NicGet(OutMsg {
                            dst,
                            tag,
                            bytes,
                            msg_id,
                        })),
                    );
                }
                HostCmd::Compute { dur, tag } => {
                    ctx.schedule_in(dur, me, NetEvent::local(NicLocal::ComputeDone { tag }));
                }
            }
        }
    }

    fn on_nic_send(&mut self, ctx: &mut Ctx<'_, NetEvent>, m: OutMsg) {
        match self.proto {
            Protocol::Rvma => self.send_data(ctx, m),
            Protocol::Rdma => {
                let key = (m.dst, m.tag);
                match self.channels.get_mut(&key) {
                    None => {
                        // First touch: start the registration handshake.
                        self.channels.insert(
                            key,
                            ChanState::HandshakePending {
                                queued: VecDeque::from([m]),
                            },
                        );
                        self.inject(
                            ctx,
                            PacketKind::RdmaSetupReq,
                            m.dst,
                            self.cfg.ctrl_bytes,
                            0,
                            0,
                            0,
                            m.tag,
                        );
                        ctx.stats().counter("nic.handshakes").inc();
                    }
                    Some(ChanState::HandshakePending { queued })
                    | Some(ChanState::Ready { queued, .. }) => {
                        queued.push_back(m);
                        self.flush_channel(ctx, key);
                    }
                }
            }
        }
    }

    fn emit_get_req(&mut self, ctx: &mut Ctx<'_, NetEvent>, m: OutMsg) {
        self.inject(
            ctx,
            PacketKind::GetReq,
            m.dst,
            self.cfg.ctrl_bytes,
            m.msg_id,
            m.bytes,
            0,
            m.tag,
        );
        ctx.stats().counter("nic.gets_sent").inc();
    }

    fn on_nic_get(&mut self, ctx: &mut Ctx<'_, NetEvent>, m: OutMsg) {
        match self.proto {
            // RVMA: the mailbox address is all a read needs.
            Protocol::Rvma => self.emit_get_req(ctx, m),
            // RDMA: a read needs the channel's rkey — registered state.
            Protocol::Rdma => {
                let key = (m.dst, m.tag);
                match self.channels.get_mut(&key) {
                    Some(ChanState::Ready { .. }) => self.emit_get_req(ctx, m),
                    Some(ChanState::HandshakePending { .. }) => {
                        self.pending_gets.entry(key).or_default().push(m);
                    }
                    None => {
                        self.channels.insert(
                            key,
                            ChanState::HandshakePending {
                                queued: VecDeque::new(),
                            },
                        );
                        self.pending_gets.entry(key).or_default().push(m);
                        self.inject(
                            ctx,
                            PacketKind::RdmaSetupReq,
                            m.dst,
                            self.cfg.ctrl_bytes,
                            0,
                            0,
                            0,
                            m.tag,
                        );
                        ctx.stats().counter("nic.handshakes").inc();
                    }
                }
            }
        }
    }

    fn flush_pending_gets(&mut self, ctx: &mut Ctx<'_, NetEvent>, key: (u32, u64)) {
        if let Some(gets) = self.pending_gets.remove(&key) {
            for g in gets {
                self.emit_get_req(ctx, g);
            }
        }
    }

    /// Handle an arriving data or fence packet; fire the completion when
    /// the protocol's condition is met.
    fn on_wire_recv(&mut self, ctx: &mut Ctx<'_, NetEvent>, pkt: &Packet) {
        let key = (pkt.src, pkt.header.msg_id);
        let spill_cap = self.cfg.rvma_counter_capacity;
        let active = self.recvs.len();
        let is_get = pkt.header.kind == PacketKind::GetResp;
        let fenced = self.proto == Protocol::Rdma && !self.last_byte_poll_active() && !is_get;
        let entry = self.recvs.entry(key).or_insert_with(|| RecvProgress {
            expected: pkt.header.msg_bytes,
            got: 0,
            tag: pkt.header.tag,
            data_done: false,
            fence_seen: false,
            spilled: spill_cap.is_some_and(|cap| active >= cap),
            is_get,
        });
        match pkt.header.kind {
            PacketKind::RdmaData | PacketKind::RvmaData | PacketKind::GetResp => {
                entry.got += pkt.payload_bytes as u64;
                if entry.got >= entry.expected {
                    entry.data_done = true;
                }
            }
            PacketKind::RdmaFence => {
                entry.fence_seen = true;
                ctx.stats().counter("nic.fences_recv").inc();
            }
            _ => unreachable!("on_wire_recv only handles data/fence"),
        }

        // RVMA: threshold reached, any order. RDMA with last-byte polling:
        // data visibility. Spec-compliant RDMA: data AND fence.
        let complete = entry.data_done && (!fenced || entry.fence_seen);
        if !complete {
            return;
        }
        let spilled = entry.spilled;
        let completed_get = entry.is_get;
        let info = RecvInfo {
            src: pkt.src,
            tag: entry.tag,
            bytes: entry.expected,
            msg_id: pkt.header.msg_id,
        };
        self.recvs.remove(&key);
        if spilled {
            ctx.stats().counter("nic.counter_spills").inc();
        }
        // Data DMA visibility (+ host-memory counter round trip if spilled;
        // + recv/CQE host processing for fenced completions).
        let mut delay = self.cfg.pcie_latency;
        if spilled {
            delay += self.cfg.spill_penalty();
        }
        if fenced {
            delay += self.cfg.fence_cq_overhead;
        }
        let me = ctx.self_id();
        if completed_get {
            ctx.schedule_in(
                delay,
                me,
                NetEvent::local(NicLocal::HostGetComplete {
                    msg_id: info.msg_id,
                }),
            );
        } else {
            ctx.schedule_in(delay, me, NetEvent::local(NicLocal::HostRecv(info)));
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, NetEvent>, pkt: Packet) {
        debug_assert_eq!(pkt.dst, self.id, "packet delivered to wrong terminal");
        match pkt.header.kind {
            PacketKind::RvmaData
            | PacketKind::RdmaData
            | PacketKind::RdmaFence
            | PacketKind::GetResp => {
                self.on_wire_recv(ctx, &pkt);
            }
            PacketKind::GetReq => {
                // One-sided read service, entirely on the NIC: local DMA
                // read (one bus crossing), then stream the response.
                let me = ctx.self_id();
                ctx.schedule_in(
                    self.cfg.pcie_latency,
                    me,
                    NetEvent::local(NicLocal::EmitGetResp {
                        dst: pkt.src,
                        tag: pkt.header.tag,
                        msg_id: pkt.header.msg_id,
                        bytes: pkt.header.msg_bytes,
                    }),
                );
            }
            PacketKind::RdmaSetupReq => {
                // Cross to the host, register (pin) the buffer, respond.
                let me = ctx.self_id();
                ctx.schedule_in(
                    self.cfg.pcie_latency + self.cfg.reg_latency,
                    me,
                    NetEvent::local(NicLocal::EmitSetupResp {
                        dst: pkt.src,
                        tag: pkt.header.tag,
                    }),
                );
            }
            PacketKind::RdmaSetupResp => {
                let key = (pkt.src, pkt.header.tag);
                let prev = self.channels.insert(
                    key,
                    ChanState::Ready {
                        credits: self.cfg.rdma_credits,
                        queued: VecDeque::new(),
                    },
                );
                if let Some(ChanState::HandshakePending { queued }) = prev {
                    if let Some(ChanState::Ready { queued: q, .. }) = self.channels.get_mut(&key) {
                        *q = queued;
                    }
                }
                self.flush_channel(ctx, key);
                self.flush_pending_gets(ctx, key);
            }
            PacketKind::RdmaRtr => {
                let key = (pkt.src, pkt.header.tag);
                if let Some(ChanState::Ready { credits, .. }) = self.channels.get_mut(&key) {
                    *credits += 1;
                }
                self.flush_channel(ctx, key);
            }
            PacketKind::Ctrl => {
                // Small app-level message: deliver directly.
                let info = RecvInfo {
                    src: pkt.src,
                    tag: pkt.header.tag,
                    bytes: pkt.payload_bytes as u64,
                    msg_id: pkt.header.msg_id,
                };
                let me = ctx.self_id();
                ctx.schedule_in(
                    self.cfg.pcie_latency,
                    me,
                    NetEvent::local(NicLocal::HostRecv(info)),
                );
            }
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NicLocal) {
        match ev {
            NicLocal::Start => self.with_logic(ctx, |l, api| l.on_start(api)),
            NicLocal::NicSend(m) => self.on_nic_send(ctx, m),
            NicLocal::ComputeDone { tag } => {
                self.with_logic(ctx, |l, api| l.on_compute_done(tag, api))
            }
            NicLocal::HostRecv(info) => {
                self.with_logic(ctx, |l, api| l.on_recv(info, api));
                if self.proto == Protocol::Rdma {
                    // The host re-posts the consumed buffer; the RTR credit
                    // crosses the host bus and then the wire.
                    let me = ctx.self_id();
                    ctx.schedule_in(
                        self.cfg.pcie_latency,
                        me,
                        NetEvent::local(NicLocal::EmitRtr {
                            dst: info.src,
                            tag: info.tag,
                        }),
                    );
                }
            }
            NicLocal::HostSendComplete { msg_id } => {
                self.with_logic(ctx, |l, api| l.on_send_complete(msg_id, api))
            }
            NicLocal::EmitSetupResp { dst, tag } => {
                self.inject(
                    ctx,
                    PacketKind::RdmaSetupResp,
                    dst,
                    self.cfg.ctrl_bytes,
                    0,
                    0,
                    0,
                    tag,
                );
            }
            NicLocal::EmitRtr { dst, tag } => {
                self.inject(
                    ctx,
                    PacketKind::RdmaRtr,
                    dst,
                    self.cfg.ctrl_bytes,
                    0,
                    0,
                    0,
                    tag,
                );
                ctx.stats().counter("nic.rtrs_sent").inc();
            }
            NicLocal::NicGet(m) => self.on_nic_get(ctx, m),
            NicLocal::EmitGetResp {
                dst,
                tag,
                msg_id,
                bytes,
            } => {
                // Stream the read data back, fragmented at the MTU.
                let mtu = self.cfg.mtu as u64;
                if bytes == 0 {
                    self.inject(ctx, PacketKind::GetResp, dst, 0, msg_id, 0, 0, tag);
                } else {
                    let mut off = 0u64;
                    while off < bytes {
                        let chunk = mtu.min(bytes - off) as u32;
                        self.inject(
                            ctx,
                            PacketKind::GetResp,
                            dst,
                            chunk,
                            msg_id,
                            bytes,
                            off,
                            tag,
                        );
                        off += chunk as u64;
                    }
                }
                ctx.stats().counter("nic.get_resps_served").inc();
            }
            NicLocal::HostGetComplete { msg_id } => {
                self.with_logic(ctx, |l, api| l.on_get_complete(msg_id, api));
            }
        }
    }
}

impl Component<NetEvent> for Terminal {
    fn handle(&mut self, ev: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
        match ev {
            NetEvent::Packet(pkt) => self.on_packet(ctx, pkt),
            NetEvent::Local(any) => {
                let local = any
                    .downcast::<NicLocal>()
                    .expect("terminal received foreign local event");
                self.on_local(ctx, *local);
            }
        }
    }
}
