//! The host-application interface of a simulated node.
//!
//! Application behaviour (the motifs) plugs into a [`Terminal`] as a
//! [`HostLogic`] trait object. Callbacks receive a [`TermApi`] through which
//! the logic issues sends, schedules compute, and records measurements into
//! the engine's stats registry.
//!
//! [`Terminal`]: crate::terminal::Terminal

use rvma_net::packet::NetEvent;
use rvma_sim::{Ctx, SimTime};

/// A message delivered to the host (completion fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvInfo {
    /// Sending terminal.
    pub src: u32,
    /// Application tag (RVMA mailbox address / RDMA channel tag).
    pub tag: u64,
    /// Message payload bytes.
    pub bytes: u64,
    /// Sender-assigned message id.
    pub msg_id: u64,
}

/// Node-level application behaviour (one instance per terminal).
pub trait HostLogic: Send {
    /// Simulation start (t = 0).
    fn on_start(&mut self, api: &mut TermApi<'_, '_>);

    /// A message this node sent has fully left the NIC (send-side
    /// completion; the send buffer is reusable).
    fn on_send_complete(&mut self, msg_id: u64, api: &mut TermApi<'_, '_>) {
        let _ = (msg_id, api);
    }

    /// A message arrived and its receive completion reached the host.
    fn on_recv(&mut self, msg: RecvInfo, api: &mut TermApi<'_, '_>);

    /// A compute block scheduled via [`TermApi::compute`] finished.
    fn on_compute_done(&mut self, tag: u64, api: &mut TermApi<'_, '_>) {
        let _ = (tag, api);
    }

    /// A one-sided read issued via [`TermApi::get`] completed: all response
    /// data has landed in local memory.
    fn on_get_complete(&mut self, msg_id: u64, api: &mut TermApi<'_, '_>) {
        let _ = (msg_id, api);
    }
}

/// Commands a [`HostLogic`] may issue during a callback. The terminal
/// executes them after the callback returns (sends incur the host→NIC bus
/// latency; compute timers run purely on the host).
#[derive(Debug)]
pub(crate) enum HostCmd {
    Send {
        dst: u32,
        tag: u64,
        bytes: u64,
        msg_id: u64,
    },
    Get {
        dst: u32,
        tag: u64,
        bytes: u64,
        msg_id: u64,
    },
    Compute {
        dur: SimTime,
        tag: u64,
    },
}

/// The API surface handed to [`HostLogic`] callbacks.
pub struct TermApi<'a, 'c> {
    pub(crate) node: u32,
    pub(crate) cmds: Vec<HostCmd>,
    pub(crate) next_msg_id: &'a mut u64,
    pub(crate) ctx: &'a mut Ctx<'c, NetEvent>,
}

impl TermApi<'_, '_> {
    /// This node's terminal id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Send `bytes` to terminal `dst` under application `tag`. Returns the
    /// message id (reported back via `on_send_complete`). The protocol
    /// machinery (handshake, credits, fences) is applied by the terminal.
    pub fn send(&mut self, dst: u32, tag: u64, bytes: u64) -> u64 {
        let id = *self.next_msg_id;
        *self.next_msg_id += 1;
        self.cmds.push(HostCmd::Send {
            dst,
            tag,
            bytes,
            msg_id: id,
        });
        id
    }

    /// One-sided read: fetch `bytes` from `dst`'s buffer under `tag`.
    /// Completion is initiator-side (`on_get_complete(msg_id)` fires when
    /// all response data has arrived) — correct in any delivery order for
    /// both protocols, though RDMA must first hold a registered channel.
    pub fn get(&mut self, dst: u32, tag: u64, bytes: u64) -> u64 {
        let id = *self.next_msg_id;
        *self.next_msg_id += 1;
        self.cmds.push(HostCmd::Get {
            dst,
            tag,
            bytes,
            msg_id: id,
        });
        id
    }

    /// Run host compute for `dur`; `on_compute_done(tag)` fires when done.
    pub fn compute(&mut self, dur: SimTime, tag: u64) {
        self.cmds.push(HostCmd::Compute { dur, tag });
    }

    /// Record a sample into the engine-wide histogram `name`.
    pub fn record(&mut self, name: &str, value: f64) {
        self.ctx.stats().histogram(name).record(value);
    }

    /// Record a [`SimTime`] sample (in ns) into histogram `name`.
    pub fn record_time(&mut self, name: &str, t: SimTime) {
        self.ctx.stats().histogram(name).record_time(t);
    }

    /// Bump the engine-wide counter `name`.
    pub fn count(&mut self, name: &str) {
        self.ctx.stats().counter(name).inc();
    }
}
