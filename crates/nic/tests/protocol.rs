//! Protocol-behaviour tests: the NIC models must reproduce the paper's
//! qualitative claims before any figure is trusted.

use rvma_net::fabric::FabricConfig;
use rvma_net::packet::NetEvent;
use rvma_net::router::RoutingKind;
use rvma_net::topology::star;
use rvma_nic::{build_cluster, HostLogic, NicConfig, Protocol, RecvInfo, TermApi};
use rvma_sim::Engine;

/// Sends `count` messages of `bytes` to node 1 at start.
struct Sender {
    count: usize,
    bytes: u64,
}

impl HostLogic for Sender {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        for _ in 0..self.count {
            api.send(1, 0xAB, self.bytes);
        }
    }
    fn on_recv(&mut self, _m: RecvInfo, _api: &mut TermApi<'_, '_>) {}
}

/// Records every completion time into the `recv_ns` histogram.
struct Receiver;

impl HostLogic for Receiver {
    fn on_start(&mut self, _api: &mut TermApi<'_, '_>) {}
    fn on_recv(&mut self, _m: RecvInfo, api: &mut TermApi<'_, '_>) {
        let now = api.now();
        api.record_time("recv_ns", now);
        api.count("recvs");
    }
}

fn run(
    proto: Protocol,
    kind: RoutingKind,
    count: usize,
    bytes: u64,
    ncfg: NicConfig,
) -> Engine<NetEvent> {
    let spec = star(2, kind);
    let mut engine = Engine::new(42);
    let _cluster = build_cluster(
        &mut engine,
        &spec,
        &FabricConfig::at_gbps(100),
        ncfg,
        proto,
        |node| -> Box<dyn HostLogic> {
            if node == 0 {
                Box::new(Sender { count, bytes })
            } else {
                Box::new(Receiver)
            }
        },
    );
    engine.run_to_completion();
    engine
}

fn first_recv_ns(e: &Engine<NetEvent>) -> f64 {
    e.stats()
        .get_histogram("recv_ns")
        .expect("at least one recv")
        .min()
        .unwrap()
}

fn last_recv_ns(e: &Engine<NetEvent>) -> f64 {
    e.stats().get_histogram("recv_ns").unwrap().max().unwrap()
}

#[test]
fn rvma_message_arrives_with_sane_latency() {
    let e = run(
        Protocol::Rvma,
        RoutingKind::Static,
        1,
        4096,
        NicConfig::default(),
    );
    assert_eq!(e.stats().counter_value("recvs"), 1);
    let t = first_recv_ns(&e);
    // Lower bound: pcie + 2x(link latency) + switch + data serialization.
    assert!(t > 550.0, "implausibly fast: {t} ns");
    assert!(t < 10_000.0, "implausibly slow: {t} ns");
}

#[test]
fn rvma_needs_no_handshake_rtr_or_fence() {
    let e = run(
        Protocol::Rvma,
        RoutingKind::Adaptive,
        4,
        4096,
        NicConfig::default(),
    );
    assert_eq!(e.stats().counter_value("recvs"), 4);
    assert_eq!(e.stats().counter_value("nic.handshakes"), 0);
    assert_eq!(e.stats().counter_value("nic.rtrs_sent"), 0);
    assert_eq!(e.stats().counter_value("nic.fences_sent"), 0);
}

#[test]
fn rdma_first_message_pays_registration_handshake() {
    let rvma = run(
        Protocol::Rvma,
        RoutingKind::Static,
        1,
        4096,
        NicConfig::default(),
    );
    let rdma = run(
        Protocol::Rdma,
        RoutingKind::Static,
        1,
        4096,
        NicConfig::default(),
    );
    assert_eq!(rdma.stats().counter_value("nic.handshakes"), 1);
    let gap = first_recv_ns(&rdma) - first_recv_ns(&rvma);
    // The handshake costs at least the registration latency (2 us) plus a
    // round trip.
    assert!(gap > 2000.0, "handshake gap too small: {gap} ns");
}

#[test]
fn rdma_always_fences_by_default() {
    // Spec-compliant RDMA sends a completion send/recv per put on every
    // network (the paper: last-byte polling violates the IB spec).
    let ordered = run(
        Protocol::Rdma,
        RoutingKind::Static,
        3,
        4096,
        NicConfig::default(),
    );
    let unordered = run(
        Protocol::Rdma,
        RoutingKind::Adaptive,
        3,
        4096,
        NicConfig::default(),
    );
    assert_eq!(ordered.stats().counter_value("nic.fences_sent"), 3);
    assert_eq!(unordered.stats().counter_value("nic.fences_sent"), 3);
    assert_eq!(unordered.stats().counter_value("nic.fences_recv"), 3);
}

#[test]
fn rdma_last_byte_poll_skips_fence_on_ordered_networks_only() {
    let cfg = NicConfig {
        rdma_last_byte_poll: true,
        ..Default::default()
    };
    let ordered = run(Protocol::Rdma, RoutingKind::Static, 3, 4096, cfg);
    let unordered = run(Protocol::Rdma, RoutingKind::Adaptive, 3, 4096, cfg);
    // Ordered network: the optimization applies, no fences, faster recv.
    assert_eq!(ordered.stats().counter_value("nic.fences_sent"), 0);
    // Unordered network: the optimization cannot apply.
    assert_eq!(unordered.stats().counter_value("nic.fences_sent"), 3);
    assert!(last_recv_ns(&unordered) > last_recv_ns(&ordered));
}

#[test]
fn rdma_rtr_credits_serialize_messages() {
    // 8 back-to-back sends: RVMA pipelines them onto the wire; RDMA with a
    // single-buffer channel (1 credit) must wait for an RTR round trip per
    // message.
    let n = 8;
    let rvma = run(
        Protocol::Rvma,
        RoutingKind::Static,
        n,
        4096,
        NicConfig::default(),
    );
    let rdma = run(
        Protocol::Rdma,
        RoutingKind::Static,
        n,
        4096,
        NicConfig::default(),
    );
    assert_eq!(rvma.stats().counter_value("recvs"), n as u64);
    assert_eq!(rdma.stats().counter_value("recvs"), n as u64);
    // Each consumed message returns one RTR credit.
    assert_eq!(rdma.stats().counter_value("nic.rtrs_sent"), n as u64);
    let speedup = last_recv_ns(&rdma) / last_recv_ns(&rvma);
    assert!(
        speedup > 1.5,
        "RTR serialization should hurt RDMA: speedup {speedup}"
    );
}

#[test]
fn rdma_more_credits_recover_pipelining() {
    let deep = NicConfig {
        rdma_credits: 8,
        ..Default::default()
    };
    let shallow = run(
        Protocol::Rdma,
        RoutingKind::Static,
        8,
        4096,
        NicConfig::default(),
    );
    let deep = run(Protocol::Rdma, RoutingKind::Static, 8, 4096, deep);
    assert!(last_recv_ns(&deep) < last_recv_ns(&shallow));
}

#[test]
fn rvma_counter_spill_penalty() {
    let tight = NicConfig {
        rvma_counter_capacity: Some(0), // every message spills
        ..Default::default()
    };
    let free = run(
        Protocol::Rvma,
        RoutingKind::Static,
        2,
        4096,
        NicConfig::default(),
    );
    let spilled = run(Protocol::Rvma, RoutingKind::Static, 2, 4096, tight);
    assert_eq!(free.stats().counter_value("nic.counter_spills"), 0);
    assert_eq!(spilled.stats().counter_value("nic.counter_spills"), 2);
    let penalty = first_recv_ns(&spilled) - first_recv_ns(&free);
    // One host-bus round trip = 300 ns.
    assert!((penalty - 300.0).abs() < 1.0, "spill penalty {penalty} ns");
}

#[test]
fn multi_packet_messages_fragment_at_mtu() {
    let e = run(
        Protocol::Rvma,
        RoutingKind::Static,
        1,
        10_000,
        NicConfig::default(),
    );
    // 10_000 B at MTU 2048 = 5 packets.
    assert_eq!(e.stats().counter_value("nic.packets_injected"), 5);
}

#[test]
fn zero_byte_message_is_one_packet() {
    let e = run(
        Protocol::Rvma,
        RoutingKind::Static,
        1,
        0,
        NicConfig::default(),
    );
    assert_eq!(e.stats().counter_value("nic.packets_injected"), 1);
    assert_eq!(e.stats().counter_value("recvs"), 1);
}

#[test]
fn runs_are_deterministic() {
    let a = run(
        Protocol::Rdma,
        RoutingKind::Adaptive,
        4,
        8192,
        NicConfig::default(),
    );
    let b = run(
        Protocol::Rdma,
        RoutingKind::Adaptive,
        4,
        8192,
        NicConfig::default(),
    );
    assert_eq!(a.now(), b.now());
    assert_eq!(a.events_fired(), b.events_fired());
}

#[test]
fn bandwidth_scaling_reduces_latency() {
    let run_at = |gbps: u64| {
        let spec = star(2, RoutingKind::Static);
        let mut engine = Engine::new(1);
        build_cluster(
            &mut engine,
            &spec,
            &FabricConfig::at_gbps(gbps),
            NicConfig::default(),
            Protocol::Rvma,
            |node| -> Box<dyn HostLogic> {
                if node == 0 {
                    Box::new(Sender {
                        count: 1,
                        bytes: 1 << 20,
                    })
                } else {
                    Box::new(Receiver)
                }
            },
        );
        engine.run_to_completion();
        first_recv_ns(&engine)
    };
    let slow = run_at(100);
    let fast = run_at(400);
    // A 1 MiB message is serialization-dominated: ~4x less time at 4x rate.
    assert!(slow / fast > 3.0, "scaling off: {slow} vs {fast}");
}

/// Issues `count` gets of `bytes` from node 1 at start; records completion
/// times into `get_ns`.
struct Getter {
    count: usize,
    bytes: u64,
}

impl HostLogic for Getter {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        for _ in 0..self.count {
            api.get(1, 0xAB, self.bytes);
        }
    }
    fn on_recv(&mut self, _m: RecvInfo, _api: &mut TermApi<'_, '_>) {}
    fn on_get_complete(&mut self, _msg_id: u64, api: &mut TermApi<'_, '_>) {
        let now = api.now();
        api.record_time("get_ns", now);
        api.count("gets_done");
    }
}

struct Silent;
impl HostLogic for Silent {
    fn on_start(&mut self, _api: &mut TermApi<'_, '_>) {}
    fn on_recv(&mut self, _m: RecvInfo, _api: &mut TermApi<'_, '_>) {}
}

fn run_get(proto: Protocol, kind: RoutingKind, count: usize, bytes: u64) -> Engine<NetEvent> {
    let spec = star(2, kind);
    let mut engine = Engine::new(42);
    build_cluster(
        &mut engine,
        &spec,
        &FabricConfig::at_gbps(100),
        NicConfig::default(),
        proto,
        |node| -> Box<dyn HostLogic> {
            if node == 0 {
                Box::new(Getter { count, bytes })
            } else {
                Box::new(Silent)
            }
        },
    );
    engine.run_to_completion();
    engine
}

#[test]
fn rvma_get_needs_no_handshake() {
    let e = run_get(Protocol::Rvma, RoutingKind::Adaptive, 3, 8192);
    assert_eq!(e.stats().counter_value("gets_done"), 3);
    assert_eq!(e.stats().counter_value("nic.gets_sent"), 3);
    assert_eq!(e.stats().counter_value("nic.get_resps_served"), 3);
    assert_eq!(e.stats().counter_value("nic.handshakes"), 0);
    assert_eq!(e.stats().counter_value("nic.fences_sent"), 0);
}

#[test]
fn rdma_get_pays_handshake_once_per_channel() {
    let e = run_get(Protocol::Rdma, RoutingKind::Adaptive, 3, 8192);
    assert_eq!(e.stats().counter_value("gets_done"), 3);
    assert_eq!(e.stats().counter_value("nic.handshakes"), 1);
    // Reads never fence: completion is requester-side counting.
    assert_eq!(e.stats().counter_value("nic.fences_sent"), 0);
}

#[test]
fn get_latency_includes_round_trip() {
    let e = run_get(Protocol::Rvma, RoutingKind::Static, 1, 0);
    // Req one way + response back: two wire traversals + bus crossings.
    let t = e.stats().get_histogram("get_ns").unwrap().min().unwrap();
    assert!(t > 1000.0, "get RTT implausibly fast: {t} ns");
}

#[test]
fn rvma_get_completes_out_of_order_fragments() {
    // Multi-packet read response on an unordered network completes at the
    // requester by byte counting, like puts.
    let e = run_get(Protocol::Rvma, RoutingKind::Adaptive, 1, 100_000);
    assert_eq!(e.stats().counter_value("gets_done"), 1);
    // 100_000 B at MTU 2048 = 49 response packets + 1 request.
    assert_eq!(e.stats().counter_value("nic.packets_injected"), 50);
}
