//! Terminal edge cases, driven by hand-crafted packet sequences scheduled
//! straight into a terminal component — conditions a fabric only produces
//! under rare interleavings.

use rvma_net::link::LinkParams;
use rvma_net::packet::{NetEvent, Packet, PacketHeader, PacketKind, RouteState};
use rvma_nic::{HostLogic, NicConfig, Protocol, RecvInfo, TermApi, Terminal};
use rvma_sim::{Component, ComponentId, Ctx, Engine, SimTime};

/// Absorbs anything the terminal transmits (it believes this is its switch).
struct Blackhole;
impl Component<NetEvent> for Blackhole {
    fn handle(&mut self, _ev: NetEvent, _ctx: &mut Ctx<'_, NetEvent>) {}
}

struct Recorder;
impl HostLogic for Recorder {
    fn on_start(&mut self, _api: &mut TermApi<'_, '_>) {}
    fn on_recv(&mut self, m: RecvInfo, api: &mut TermApi<'_, '_>) {
        let now = api.now();
        api.record_time("edge.recv_ns", now);
        api.record("edge.recv_bytes", m.bytes as f64);
        api.count("edge.recvs");
    }
}

fn pkt(
    kind: PacketKind,
    dst: u32,
    msg_id: u64,
    msg_bytes: u64,
    offset: u64,
    payload: u32,
) -> Packet {
    Packet {
        id: 1,
        src: 7,
        dst,
        payload_bytes: payload,
        header: PacketHeader {
            kind,
            msg_id,
            msg_bytes,
            offset,
            vaddr: 3,
            tag: 3,
        },
        route: RouteState::default(),
        injected_at: SimTime::ZERO,
    }
}

/// Engine with: blackhole switch (component 0) + one terminal (component 1).
fn receiver(proto: Protocol, ordered: bool) -> (Engine<NetEvent>, ComponentId) {
    let mut engine: Engine<NetEvent> = Engine::new(1);
    let bh = engine.add_component(Blackhole);
    let term = engine.add_component(Terminal::new(
        1,
        NicConfig::default(),
        proto,
        ordered,
        bh,
        LinkParams::gbps_ns(100, 100),
        Box::new(Recorder),
    ));
    (engine, term)
}

#[test]
fn fence_overtaking_data_does_not_complete_early() {
    // Adaptive routing can deliver the fence before the data it fences.
    // The spec-compliant completion must wait for BOTH.
    let (mut engine, term) = receiver(Protocol::Rdma, false);
    engine.schedule(
        SimTime::from_ns(10),
        term,
        NetEvent::Packet(pkt(PacketKind::RdmaFence, 1, 5, 4096, 0, 16)),
    );
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("edge.recvs"), 0);

    engine.schedule(
        SimTime::from_us(1),
        term,
        NetEvent::Packet(pkt(PacketKind::RdmaData, 1, 5, 4096, 0, 4096)),
    );
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("edge.recvs"), 1);
    // Completion timestamp is after the (late) data arrival, not the fence.
    let t = engine
        .stats()
        .get_histogram("edge.recv_ns")
        .unwrap()
        .min()
        .unwrap();
    assert!(t >= 1000.0, "completed at {t} ns, before the data arrived");
}

#[test]
fn stray_rtr_for_unknown_channel_is_ignored() {
    let (mut engine, term) = receiver(Protocol::Rdma, true);
    engine.schedule(
        SimTime::ZERO,
        term,
        NetEvent::Packet(pkt(PacketKind::RdmaRtr, 1, 0, 0, 0, 16)),
    );
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("edge.recvs"), 0);
}

#[test]
fn duplicate_setup_resp_is_tolerated() {
    let (mut engine, term) = receiver(Protocol::Rdma, true);
    for t in [0u64, 100] {
        engine.schedule(
            SimTime::from_ns(t),
            term,
            NetEvent::Packet(pkt(PacketKind::RdmaSetupResp, 1, 0, 0, 0, 16)),
        );
    }
    engine.run_to_completion(); // must not panic or livelock
}

#[test]
fn interleaved_messages_from_one_source_complete_independently() {
    // Fragments of two messages interleave; each completes on its own
    // byte count.
    let (mut engine, term) = receiver(Protocol::Rvma, false);
    let frags = [
        (1u64, 0u64, 2048u32),
        (2, 0, 2048),
        (1, 2048, 2048),
        (2, 2048, 2048),
    ];
    for (i, (msg, off, len)) in frags.iter().enumerate() {
        engine.schedule(
            SimTime::from_ns(i as u64 * 50),
            term,
            NetEvent::Packet(pkt(PacketKind::RvmaData, 1, *msg, 4096, *off, *len)),
        );
    }
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("edge.recvs"), 2);
}

#[test]
fn rvma_ignores_fence_requirement_entirely() {
    // An RVMA receiver on an unordered network completes on data alone.
    let (mut engine, term) = receiver(Protocol::Rvma, false);
    engine.schedule(
        SimTime::ZERO,
        term,
        NetEvent::Packet(pkt(PacketKind::RvmaData, 1, 9, 1024, 0, 1024)),
    );
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("edge.recvs"), 1);
    // Completion = arrival + pcie only (150 ns), no fence_cq.
    let t = engine
        .stats()
        .get_histogram("edge.recv_ns")
        .unwrap()
        .min()
        .unwrap();
    assert!((t - 150.0).abs() < 1.0, "RVMA completion at {t} ns");
}

#[test]
fn get_req_is_served_without_host_logic_involvement() {
    // A GetReq arriving at a terminal is answered purely by the NIC; the
    // host logic sees nothing.
    let (mut engine, term) = receiver(Protocol::Rvma, false);
    engine.schedule(
        SimTime::ZERO,
        term,
        NetEvent::Packet(pkt(PacketKind::GetReq, 1, 11, 10_000, 0, 16)),
    );
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("edge.recvs"), 0);
    assert_eq!(engine.stats().counter_value("nic.get_resps_served"), 1);
    // 10_000 B at MTU 2048 = 5 response packets.
    assert_eq!(engine.stats().counter_value("nic.packets_injected"), 5);
}
