//! Congestion behaviour: adaptive routing must spread load that static
//! routing serializes — the property that makes adaptive networks worth
//! their loss of ordering, and hence makes RVMA's order-independence
//! valuable.

use rvma_net::fabric::{build_fabric, FabricConfig};
use rvma_net::packet::{NetEvent, Packet, PacketHeader, PacketKind, RouteState};
use rvma_net::router::RoutingKind;
use rvma_net::topology::{fattree, FatTreeParams};
use rvma_sim::{Component, Ctx, Engine, SimTime};

/// Terminal that records the arrival time of each packet.
struct Sink {
    last_arrival: SimTime,
    received: u64,
}

impl Component<NetEvent> for Sink {
    fn handle(&mut self, ev: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
        if let NetEvent::Packet(_) = ev {
            self.received += 1;
            self.last_arrival = ctx.now();
            ctx.stats().counter("sink.received").inc();
            let now_ns = ctx.now().as_ns_f64() as u64;
            let prev = ctx.stats().counter_value("sink.finish_ns");
            if now_ns > prev {
                ctx.stats().counter("sink.finish_ns").add(now_ns - prev);
            }
        }
    }
}

fn pkt(id: u64, src: u32, dst: u32, bytes: u32) -> Packet {
    Packet {
        id,
        src,
        dst,
        payload_bytes: bytes,
        header: PacketHeader {
            kind: PacketKind::RvmaData,
            msg_id: id,
            msg_bytes: bytes as u64,
            offset: 0,
            vaddr: 0,
            tag: 0,
        },
        route: RouteState::default(),
        injected_at: SimTime::ZERO,
    }
}

/// Burst 64 packets from 4 same-pod sources toward 4 destinations whose
/// d-mod-k hashes collide on one up-port; return (finish time, queue-wait).
fn run_burst(kind: RoutingKind) -> (SimTime, u64) {
    let spec = fattree(FatTreeParams { k: 4 }, kind);
    let mut engine: Engine<NetEvent> = Engine::new(3);
    let fabric = build_fabric(&mut engine, &spec, &FabricConfig::at_gbps(100));
    for _ in 0..spec.terminals {
        engine.add_component(Sink {
            last_arrival: SimTime::ZERO,
            received: 0,
        });
    }
    fabric.assert_terminals_added(&engine);

    // Sources 0..4 (pod 0); destinations 8, 10, 12, 14: all even, so the
    // static d-mod-k up-port hash (dst % 2) sends every flow up the SAME
    // edge->agg link. Adaptive up-routing can use both.
    let dsts = [8u32, 10, 12, 14];
    let mut id = 0;
    for (s, &d) in dsts.iter().enumerate() {
        let src_switch = fabric.terminal_attach[s.min(3)];
        for k in 0..16 {
            id += 1;
            // Inject directly at the source's switch, as a terminal would.
            engine.schedule(
                SimTime::from_ns(k * 10),
                src_switch,
                NetEvent::Packet(pkt(id, s as u32, d, 2048)),
            );
        }
    }
    engine.run_to_completion();
    assert_eq!(engine.stats().counter_value("sink.received"), 64);
    (
        engine.now(),
        engine.stats().counter_value("net.queue_wait_ns"),
    )
}

#[test]
fn adaptive_up_routing_spreads_colliding_flows() {
    let (static_finish, static_wait) = run_burst(RoutingKind::Static);
    let (adaptive_finish, adaptive_wait) = run_burst(RoutingKind::Adaptive);
    assert!(
        adaptive_finish < static_finish,
        "adaptive should finish sooner: {adaptive_finish} vs {static_finish}"
    );
    assert!(
        adaptive_wait < static_wait,
        "adaptive should queue less: {adaptive_wait} vs {static_wait} ns"
    );
}

#[test]
fn wire_byte_accounting_matches_hops() {
    // A single packet from terminal 0 to terminal 15 in a k=4 fat-tree
    // crosses 5 switches; each forwards wire_bytes = payload + header.
    let spec = fattree(FatTreeParams { k: 4 }, RoutingKind::Static);
    let mut engine: Engine<NetEvent> = Engine::new(1);
    let fabric = build_fabric(&mut engine, &spec, &FabricConfig::at_gbps(100));
    for _ in 0..spec.terminals {
        engine.add_component(Sink {
            last_arrival: SimTime::ZERO,
            received: 0,
        });
    }
    engine.schedule(
        SimTime::ZERO,
        fabric.terminal_attach[0],
        NetEvent::Packet(pkt(1, 0, 15, 1000)),
    );
    engine.run_to_completion();
    let wire = 1000 + rvma_net::HEADER_BYTES as u64;
    assert_eq!(engine.stats().counter_value("net.switch_forwarded"), 5);
    assert_eq!(engine.stats().counter_value("net.wire_bytes"), 5 * wire);
    // Uncontended: zero queueing.
    assert_eq!(engine.stats().counter_value("net.queue_wait_ns"), 0);
}
