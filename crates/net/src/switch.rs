//! The output-queued switch model.
//!
//! Each switch port models a link with a `next_free` horizon: a packet
//! eligible at time *t* begins serialization at `max(t, next_free)` and the
//! port's horizon advances by the serialization time. Queue depth for
//! adaptive routing decisions is exactly that horizon minus now — the time a
//! new packet would wait. Per the paper's simulation setup, queues are
//! effectively unbounded ("we ensured that full queue stalls were not a
//! constraining factor ... by providing ample queue depths"), so no
//! credit-based flow control is modeled.
//!
//! The crossbar is modeled as a fixed traversal latency plus serialization
//! at the crossbar rate (the paper: "crossbar bandwidth is always 50%
//! greater than link bandwidth").

use crate::link::LinkParams;
use crate::packet::NetEvent;
use crate::router::Router;
use rvma_sim::{Bandwidth, Component, ComponentId, Ctx, SimTime};
use std::sync::Arc;

/// One output port: where it leads and when its link is next idle.
#[derive(Debug, Clone)]
pub struct OutPort {
    /// Component (switch or terminal) at the far end.
    pub to: ComponentId,
    /// Link characteristics.
    pub link: LinkParams,
    /// Horizon: the instant the link finishes its last accepted packet.
    pub next_free: SimTime,
}

/// Read-only view of a switch's ports for routing decisions.
pub struct PortView<'a> {
    now: SimTime,
    ports: &'a [OutPort],
}

impl<'a> PortView<'a> {
    /// Construct a view over a port slice at instant `now`.
    pub fn new(now: SimTime, ports: &'a [OutPort]) -> Self {
        PortView { now, ports }
    }

    /// Time a packet handed to `port` right now would wait before its first
    /// bit hits the wire (the adaptive-routing congestion signal).
    pub fn busy(&self, port: usize) -> SimTime {
        self.ports[port].next_free.saturating_sub(self.now)
    }

    /// Among `candidates`, the port with the smallest backlog (first wins
    /// ties, keeping static tie-breaks deterministic).
    pub fn least_busy(&self, candidates: impl IntoIterator<Item = usize>) -> Option<usize> {
        let mut best: Option<(usize, SimTime)> = None;
        for c in candidates {
            let b = self.busy(c);
            match best {
                Some((_, bb)) if bb <= b => {}
                _ => best = Some((c, b)),
            }
        }
        best.map(|(p, _)| p)
    }

    /// Number of ports on the switch.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True when the switch has no ports (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

/// An output-queued switch.
pub struct Switch {
    id: u32,
    /// Terminals `[term_base, term_base + term_count)` attach to ports
    /// `[0, term_count)`.
    term_base: u32,
    term_count: u32,
    ports: Vec<OutPort>,
    router: Arc<dyn Router>,
    /// Fixed per-hop traversal latency (arbitration + internal pipeline).
    switch_latency: SimTime,
    /// Crossbar serialization rate (1.5× link rate per the paper).
    xbar: Bandwidth,
    /// Packets forwarded (for stats).
    forwarded: u64,
}

impl Switch {
    /// Build a switch. Ports must already be fully wired.
    pub fn new(
        id: u32,
        term_base: u32,
        term_count: u32,
        ports: Vec<OutPort>,
        router: Arc<dyn Router>,
        switch_latency: SimTime,
        xbar: Bandwidth,
    ) -> Self {
        Switch {
            id,
            term_base,
            term_count,
            ports,
            router,
            switch_latency,
            xbar,
            forwarded: 0,
        }
    }

    /// This switch's topology-level id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Packets this switch has forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn is_local_terminal(&self, dst: u32) -> bool {
        dst >= self.term_base && dst < self.term_base + self.term_count
    }
}

impl Component<NetEvent> for Switch {
    fn handle(&mut self, ev: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
        let NetEvent::Packet(mut pkt) = ev else {
            // Switches schedule no local events; stray ones are a model bug.
            debug_assert!(false, "switch received a Local event");
            return;
        };

        let out = if self.is_local_terminal(pkt.dst) {
            (pkt.dst - self.term_base) as usize
        } else {
            let view = PortView {
                now: ctx.now(),
                ports: &self.ports,
            };
            self.router.route(self.id, &mut pkt, &view, ctx.rng())
        };
        debug_assert!(out < self.ports.len(), "router returned invalid port");

        pkt.route.hops += 1;
        let wire = pkt.wire_bytes();
        // Crossbar traversal, then queue at the output port.
        let eligible = ctx.now() + self.switch_latency + self.xbar.serialization_time(wire as u64);
        let port = &mut self.ports[out];
        let start = eligible.max(port.next_free);
        let done = start + port.link.serialize(wire);
        port.next_free = done;
        self.forwarded += 1;
        ctx.stats().counter("net.switch_forwarded").inc();
        ctx.stats().counter("net.wire_bytes").add(wire as u64);
        // Aggregate queueing delay (ns): how long the packet waited for the
        // output link beyond its crossbar-eligible instant.
        ctx.stats()
            .counter("net.queue_wait_ns")
            .add(start.saturating_sub(eligible).as_ns_f64() as u64);
        let arrive = done + port.link.latency;
        let to = port.to;
        ctx.schedule_at(arrive, to, NetEvent::Packet(pkt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketHeader, PacketKind, RouteState};
    use rvma_sim::{Engine, SimRng};

    /// A terminal that records packet arrival times.
    pub struct Sink {
        pub arrived: Vec<(u64, SimTime)>,
    }

    impl Component<NetEvent> for Sink {
        fn handle(&mut self, ev: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
            if let NetEvent::Packet(p) = ev {
                self.arrived.push((p.id, ctx.now()));
            }
        }

        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }

        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    struct ToZero;
    impl Router for ToZero {
        fn route(&self, _sw: u32, _p: &mut Packet, _v: &PortView<'_>, _r: &mut SimRng) -> usize {
            0
        }
        fn ordered(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "to-zero"
        }
    }

    fn pkt(id: u64, dst: u32, bytes: u32) -> Packet {
        Packet {
            id,
            src: 0,
            dst,
            payload_bytes: bytes,
            header: PacketHeader {
                kind: PacketKind::Ctrl,
                msg_id: 0,
                msg_bytes: bytes as u64,
                offset: 0,
                vaddr: 0,
                tag: 0,
            },
            route: RouteState::default(),
            injected_at: SimTime::ZERO,
        }
    }

    /// One switch with a single terminal port to a sink; link 100 Gbps,
    /// 100 ns latency; switch latency 100 ns; xbar 150 Gbps.
    fn one_switch() -> (Engine<NetEvent>, ComponentId, ComponentId) {
        let mut eng = Engine::new(1);
        // Sink gets id 0, switch id 1; wire the switch's port 0 to the sink.
        let sink = eng.add_component(Sink { arrived: vec![] });
        let port = OutPort {
            to: sink,
            link: LinkParams::gbps_ns(100, 100),
            next_free: SimTime::ZERO,
        };
        let sw = eng.add_component(Switch::new(
            0,
            0,
            1,
            vec![port],
            Arc::new(ToZero),
            SimTime::from_ns(100),
            Bandwidth::from_gbps(150),
        ));
        (eng, sw, sink)
    }

    #[test]
    fn single_packet_latency_decomposes() {
        let (mut eng, sw, _sink) = one_switch();
        // 1210-byte payload -> 1250 wire bytes: 100ns on the link, 66.67ns xbar.
        eng.schedule(SimTime::ZERO, sw, NetEvent::Packet(pkt(1, 0, 1210)));
        eng.run_to_completion();
        // switch 100ns + xbar 1250B@150G = 66.667ns + ser 100ns + link 100ns
        let expect_ns = 100.0 + (1250.0 * 8.0 / 150.0) + 100.0 + 100.0;
        assert!((eng.now().as_ns_f64() - expect_ns).abs() < 0.01);
    }

    #[test]
    fn back_to_back_packets_queue_at_port() {
        let (mut eng, sw, sink) = one_switch();
        for i in 0..3 {
            eng.schedule(SimTime::ZERO, sw, NetEvent::Packet(pkt(i, 0, 1210)));
        }
        eng.run_to_completion();
        // Arrival spacing must equal the serialization time (100 ns per
        // 1250-byte packet), i.e. the port serialized them sequentially.
        let arrived = &eng.component_as::<Sink>(sink).expect("sink").arrived;
        assert_eq!(arrived.len(), 3);
        for w in arrived.windows(2) {
            assert_eq!(w[1].1 - w[0].1, SimTime::from_ns(100));
        }
        assert_eq!(eng.stats().counter_value("net.switch_forwarded"), 3);
        // Total time = first-packet pipeline + 2 extra serializations.
        let first = 100.0 + (1250.0 * 8.0 / 150.0) + 100.0 + 100.0;
        let expect = first + 2.0 * 100.0;
        assert!(
            (eng.now().as_ns_f64() - expect).abs() < 0.01,
            "got {} want {}",
            eng.now().as_ns_f64(),
            expect
        );
    }

    #[test]
    fn port_view_reports_backlog() {
        let ports = vec![
            OutPort {
                to: ComponentId::from_raw(0),
                link: LinkParams::gbps_ns(100, 0),
                next_free: SimTime::from_ns(500),
            },
            OutPort {
                to: ComponentId::from_raw(0),
                link: LinkParams::gbps_ns(100, 0),
                next_free: SimTime::from_ns(100),
            },
        ];
        let v = PortView {
            now: SimTime::from_ns(200),
            ports: &ports,
        };
        assert_eq!(v.busy(0), SimTime::from_ns(300));
        assert_eq!(v.busy(1), SimTime::ZERO); // already free
        assert_eq!(v.least_busy([0, 1]), Some(1));
        assert_eq!(v.least_busy([0]), Some(0));
        assert_eq!(v.least_busy([]), None);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn least_busy_breaks_ties_by_first() {
        let ports = vec![
            OutPort {
                to: ComponentId::from_raw(0),
                link: LinkParams::gbps_ns(100, 0),
                next_free: SimTime::ZERO,
            };
            3
        ];
        let v = PortView {
            now: SimTime::ZERO,
            ports: &ports,
        };
        assert_eq!(v.least_busy([2, 1, 0]), Some(2));
    }
}
