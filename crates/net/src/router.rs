//! The routing interface: how a switch chooses an output port.
//!
//! Each topology module provides two [`Router`] implementations: a *static*
//! (deterministic-path, hence in-order) one and an *adaptive* one that picks
//! among candidate ports by instantaneous output-queue depth. Adaptive
//! routing is what breaks packet ordering — the property RDMA completion
//! relies on and RVMA does not.

use crate::packet::Packet;
use crate::switch::PortView;
use rvma_sim::SimRng;

/// Route-selection policy (paper Figs. 7–8 compare both per topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingKind {
    /// Deterministic paths; per-flow in-order delivery.
    Static,
    /// Load-adaptive paths; packets may arrive out of order.
    Adaptive,
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutingKind::Static => "static",
            RoutingKind::Adaptive => "adaptive",
        })
    }
}

/// A routing algorithm for one concrete topology instance.
///
/// `route` is called at every switch a packet traverses, *except* when the
/// packet's destination terminal is attached to the current switch (the
/// switch delivers those directly). It may mutate the packet's
/// [`RouteState`](crate::packet::RouteState) (e.g. to pin a Valiant
/// intermediate group).
pub trait Router: Send + Sync {
    /// Pick the output port index at switch `sw` for `pkt`.
    fn route(&self, sw: u32, pkt: &mut Packet, view: &PortView<'_>, rng: &mut SimRng) -> usize;

    /// True when paths are deterministic per (src, dst) — i.e. the network
    /// delivers each flow in order.
    fn ordered(&self) -> bool;

    /// Human-readable algorithm name (for reports).
    fn name(&self) -> &'static str;
}
