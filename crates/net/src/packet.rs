//! Packets and the fabric event type.
//!
//! The fabric moves [`Packet`]s between terminals (NICs). A packet carries a
//! flat, hardware-like header ([`PacketHeader`]) whose fields the NIC
//! protocol layer interprets — the fabric itself only reads `dst` and the
//! routing scratch state. Payload bytes are not materialized; only sizes
//! travel through the simulator (timing is what we measure).

use rvma_sim::SimTime;
use std::any::Any;

/// Per-packet wire header overhead, bytes. Covers PHY/LLR/route headers of a
/// typical HPC fabric.
pub const HEADER_BYTES: u32 = 40;

/// Protocol-level packet kinds, interpreted by the NIC layer. The fabric
/// treats them opaquely, except that `kind` participates in nothing —
/// routing uses only `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// RDMA buffer-registration request (handshake step 1).
    RdmaSetupReq,
    /// RDMA buffer-registration response carrying the remote address
    /// (handshake step 2).
    RdmaSetupResp,
    /// Receiver-side "ready to receive" notification (per-message buffer
    /// coordination an RDMA sender must await before writing).
    RdmaRtr,
    /// RDMA put payload fragment.
    RdmaData,
    /// The trailing send/recv completion fence RDMA needs on
    /// adaptively-routed networks.
    RdmaFence,
    /// RVMA put payload fragment (carries vaddr + offset; no handshake).
    RvmaData,
    /// One-sided read request (RVMA get needs no handshake; RDMA read
    /// needs the registered channel's rkey).
    GetReq,
    /// Read-response payload fragment, counted at the *initiator*.
    GetResp,
    /// Generic small control message used by application logic.
    Ctrl,
}

/// The protocol header the NIC layer stamps on each packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Protocol discriminant.
    pub kind: PacketKind,
    /// Message id, unique per (initiator, message).
    pub msg_id: u64,
    /// Total payload bytes of the message this packet belongs to.
    pub msg_bytes: u64,
    /// Byte offset of this fragment within the message/buffer.
    pub offset: u64,
    /// RVMA virtual mailbox address, or RDMA rkey/buffer tag.
    pub vaddr: u64,
    /// Extra protocol field (e.g. epoch, app tag).
    pub tag: u64,
}

/// Scratch state the routing algorithm carries across hops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteState {
    /// Hops taken so far.
    pub hops: u8,
    /// Valiant intermediate destination (dragonfly: group id), chosen once
    /// at the source switch.
    pub via: Option<u32>,
    /// True once the packet has reached its Valiant intermediate (or chose
    /// the minimal path outright).
    pub via_reached: bool,
}

/// A packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Fabric-unique packet id (for tracing).
    pub id: u64,
    /// Source terminal index.
    pub src: u32,
    /// Destination terminal index.
    pub dst: u32,
    /// Payload bytes carried by this packet (excluding header).
    pub payload_bytes: u32,
    /// Protocol header.
    pub header: PacketHeader,
    /// Routing scratch state.
    pub route: RouteState,
    /// Injection timestamp (set by the sending terminal).
    pub injected_at: SimTime,
}

impl Packet {
    /// Total bytes this packet occupies on a wire.
    pub fn wire_bytes(&self) -> u32 {
        self.payload_bytes + HEADER_BYTES
    }
}

/// The engine event type for the fabric and everything above it.
pub enum NetEvent {
    /// A packet arrives at a component (switch or terminal).
    Packet(Packet),
    /// A component-local event (pipeline stage timers, host commands).
    /// Only the component that scheduled it interprets the payload.
    Local(Box<dyn Any + Send>),
}

impl NetEvent {
    /// Construct a local event from any payload.
    pub fn local<T: Any + Send>(payload: T) -> Self {
        NetEvent::Local(Box::new(payload))
    }
}

impl std::fmt::Debug for NetEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetEvent::Packet(p) => f.debug_tuple("Packet").field(p).finish(),
            NetEvent::Local(_) => f.write_str("Local(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(payload: u32) -> Packet {
        Packet {
            id: 1,
            src: 0,
            dst: 1,
            payload_bytes: payload,
            header: PacketHeader {
                kind: PacketKind::RvmaData,
                msg_id: 0,
                msg_bytes: payload as u64,
                offset: 0,
                vaddr: 0,
                tag: 0,
            },
            route: RouteState::default(),
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn wire_bytes_includes_header() {
        assert_eq!(pkt(2048).wire_bytes(), 2048 + HEADER_BYTES);
        assert_eq!(pkt(0).wire_bytes(), HEADER_BYTES);
    }

    #[test]
    fn local_event_downcasts() {
        let ev = NetEvent::local(42u32);
        match ev {
            NetEvent::Local(b) => assert_eq!(*b.downcast::<u32>().unwrap(), 42),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn debug_formatting() {
        assert!(format!("{:?}", NetEvent::local(1u8)).contains("Local"));
        assert!(format!("{:?}", NetEvent::Packet(pkt(10))).contains("Packet"));
    }
}
