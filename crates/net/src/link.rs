//! Link parameters: bandwidth + propagation latency.

use rvma_sim::{Bandwidth, SimTime};

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Link bandwidth (serialization rate).
    pub bandwidth: Bandwidth,
    /// Propagation latency (cable + SerDes).
    pub latency: SimTime,
}

impl LinkParams {
    /// Construct from a gigabit rate and nanosecond latency.
    pub fn gbps_ns(gbps: u64, latency_ns: u64) -> Self {
        LinkParams {
            bandwidth: Bandwidth::from_gbps(gbps),
            latency: SimTime::from_ns(latency_ns),
        }
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialize(&self, bytes: u32) -> SimTime {
        self.bandwidth.serialization_time(bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_uses_bandwidth() {
        let l = LinkParams::gbps_ns(100, 50);
        assert_eq!(l.serialize(1250), SimTime::from_ns(100));
        assert_eq!(l.latency, SimTime::from_ns(50));
    }
}
