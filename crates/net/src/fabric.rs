//! Fabric assembly: turn a [`TopologySpec`] into engine components.
//!
//! A topology module produces a `TopologySpec` — pure wiring data plus a
//! router. `build_fabric` instantiates one [`Switch`] component per spec
//! switch and reserves component ids for the terminals (NICs), which the
//! caller must add immediately afterwards, in terminal order. Switch ports
//! that lead to terminals are wired against those reserved ids.

use crate::link::LinkParams;
use crate::packet::NetEvent;
use crate::router::Router;
use crate::switch::{OutPort, Switch};
use rvma_sim::{Bandwidth, ComponentId, SimBuilder, SimTime};
use std::sync::Arc;

/// Pure description of a topology instance: wiring + routing.
pub struct TopologySpec {
    /// Human-readable name, e.g. `dragonfly(a=8,p=4,h=4)`.
    pub name: String,
    /// Number of terminals (NIC attachment points).
    pub terminals: u32,
    /// Number of switches.
    pub switches: u32,
    /// Per switch: `(term_base, term_count)` — terminals
    /// `[term_base, term_base+term_count)` attach to ports `[0, term_count)`.
    pub switch_terms: Vec<(u32, u32)>,
    /// Per switch: neighbor switch ids in canonical port order; the link to
    /// `switch_links[s][n]` uses port `term_count + n`.
    pub switch_links: Vec<Vec<u32>>,
    /// The routing algorithm (knows the same canonical port order).
    pub router: Arc<dyn Router>,
}

impl TopologySpec {
    /// The switch a terminal attaches to.
    pub fn terminal_switch(&self, t: u32) -> u32 {
        for (s, &(base, count)) in self.switch_terms.iter().enumerate() {
            if t >= base && t < base + count {
                return s as u32;
            }
        }
        panic!("terminal {t} not attached to any switch");
    }

    /// Sanity-check the wiring: every inter-switch link must be symmetric
    /// (as many links s→n as n→s) and every terminal attached exactly once.
    pub fn validate(&self) -> Result<(), String> {
        if self.switch_terms.len() != self.switches as usize {
            return Err("switch_terms length mismatch".into());
        }
        if self.switch_links.len() != self.switches as usize {
            return Err("switch_links length mismatch".into());
        }
        let mut covered = vec![0u32; self.terminals as usize];
        for &(base, count) in &self.switch_terms {
            for t in base..base + count {
                let slot = covered
                    .get_mut(t as usize)
                    .ok_or_else(|| format!("terminal {t} out of range"))?;
                *slot += 1;
            }
        }
        if let Some(t) = covered.iter().position(|&c| c != 1) {
            return Err(format!("terminal {t} attached {} times", covered[t]));
        }
        for (s, links) in self.switch_links.iter().enumerate() {
            for &n in links {
                if n >= self.switches {
                    return Err(format!("switch {s} links to nonexistent switch {n}"));
                }
                let fwd = links.iter().filter(|&&x| x == n).count();
                let back = self.switch_links[n as usize]
                    .iter()
                    .filter(|&&x| x == s as u32)
                    .count();
                if fwd != back {
                    return Err(format!(
                        "asymmetric wiring between switches {s} and {n}: {fwd} vs {back}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Link-speed and switch-timing configuration for a fabric build.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Inter-switch (and terminal) link bandwidth.
    pub link_bandwidth: Bandwidth,
    /// Per-link propagation latency.
    pub link_latency: SimTime,
    /// Per-hop switch traversal latency.
    pub switch_latency: SimTime,
}

impl FabricConfig {
    /// Typical HPC parameters at a given link rate: 100 ns cables/SerDes,
    /// 100 ns switch traversal.
    pub fn at_gbps(gbps: u64) -> Self {
        FabricConfig {
            link_bandwidth: Bandwidth::from_gbps(gbps),
            link_latency: SimTime::from_ns(100),
            switch_latency: SimTime::from_ns(100),
        }
    }

    /// Crossbar rate: 50% above link rate (paper Sec. V-B).
    pub fn xbar_bandwidth(&self) -> Bandwidth {
        self.link_bandwidth.scale(3, 2)
    }

    /// The fabric's *lookahead*: the minimum latency of any cross-component
    /// event. Every packet hop (terminal→switch, switch→switch,
    /// switch→terminal) pays at least one link propagation delay, and all
    /// other NIC/host events are self-scheduled, so the parallel engine's
    /// conservative window (`SimConfig::window`) may be as wide as this.
    pub fn lookahead(&self) -> SimTime {
        self.link_latency
    }
}

/// Handle to an assembled fabric.
pub struct Fabric {
    /// Component ids of the switches, by spec switch index.
    pub switch_cids: Vec<ComponentId>,
    /// Reserved component ids for the terminals, by terminal index. The
    /// caller **must** add exactly one component per terminal, in order,
    /// immediately after `build_fabric` (verify with
    /// [`Fabric::assert_terminals_added`]).
    pub terminal_cids: Vec<ComponentId>,
    /// Per-terminal injection target: the attached switch's component id.
    pub terminal_attach: Vec<ComponentId>,
    /// The link every terminal injects on (same rate as fabric links).
    pub injection_link: LinkParams,
    /// Topology name (for reports).
    pub name: String,
}

impl Fabric {
    /// Panic unless the caller added the promised terminal components.
    pub fn assert_terminals_added(&self, engine: &impl SimBuilder<NetEvent>) {
        let last = self.terminal_cids.last().map(|c| c.as_usize()).unwrap_or(0);
        assert!(
            engine.registered() > last,
            "terminal components were not added after build_fabric"
        );
    }
}

/// Instantiate the fabric's switches in `engine` — either the sequential
/// [`rvma_sim::Engine`] or the parallel [`rvma_sim::ParEngine`], via
/// [`SimBuilder`].
///
/// # Panics
/// Panics if the spec fails validation.
pub fn build_fabric<B: SimBuilder<NetEvent>>(
    engine: &mut B,
    spec: &TopologySpec,
    cfg: &FabricConfig,
) -> Fabric {
    spec.validate().expect("invalid topology spec");
    let base = engine.registered();
    let switch_cids: Vec<ComponentId> = (0..spec.switches as usize)
        .map(|i| ComponentId::from_raw(base + i))
        .collect();
    let term_base = base + spec.switches as usize;
    let terminal_cids: Vec<ComponentId> = (0..spec.terminals as usize)
        .map(|i| ComponentId::from_raw(term_base + i))
        .collect();

    let link = LinkParams {
        bandwidth: cfg.link_bandwidth,
        latency: cfg.link_latency,
    };
    let xbar = cfg.xbar_bandwidth();

    let mut terminal_attach = vec![ComponentId::from_raw(0); spec.terminals as usize];
    for s in 0..spec.switches as usize {
        let (tb, tc) = spec.switch_terms[s];
        let mut ports = Vec::with_capacity(tc as usize + spec.switch_links[s].len());
        for t in tb..tb + tc {
            ports.push(OutPort {
                to: terminal_cids[t as usize],
                link,
                next_free: SimTime::ZERO,
            });
            terminal_attach[t as usize] = switch_cids[s];
        }
        for &n in &spec.switch_links[s] {
            ports.push(OutPort {
                to: switch_cids[n as usize],
                link,
                next_free: SimTime::ZERO,
            });
        }
        let cid = engine.register_component(Switch::new(
            s as u32,
            tb,
            tc,
            ports,
            spec.router.clone(),
            cfg.switch_latency,
            xbar,
        ));
        debug_assert_eq!(cid, switch_cids[s]);
    }

    Fabric {
        switch_cids,
        terminal_cids,
        terminal_attach,
        injection_link: link,
        name: spec.name.clone(),
    }
}

/// Topology-aware component→shard map for the parallel engine, assuming the
/// fabric occupies component ids `0..switches + terminals` (switches first,
/// then terminals — the layout `build_fabric` produces in a fresh engine).
///
/// Switches split into `shards` contiguous blocks — topology modules number
/// neighbors contiguously (torus x-major order, fat-tree pods, dragonfly
/// groups), so block-contiguous assignment co-locates most inter-switch
/// links. Each terminal lands in its attached switch's shard, keeping the
/// injection path and the NIC's self-events shard-local.
pub fn partition_fabric(spec: &TopologySpec, shards: usize) -> Vec<usize> {
    let shards = shards.max(1).min(spec.switches.max(1) as usize);
    let nsw = spec.switches.max(1) as usize;
    let switch_shard = |s: usize| s * shards / nsw;
    let mut map = Vec::with_capacity((spec.switches + spec.terminals) as usize);
    for s in 0..spec.switches as usize {
        map.push(switch_shard(s));
    }
    for t in 0..spec.terminals {
        map.push(switch_shard(spec.terminal_switch(t) as usize));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::router::Router;
    use crate::switch::PortView;
    use rvma_sim::{Engine, SimRng};

    struct Dummy;
    impl Router for Dummy {
        fn route(&self, _s: u32, _p: &mut Packet, _v: &PortView<'_>, _r: &mut SimRng) -> usize {
            0
        }
        fn ordered(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    fn two_switch_spec() -> TopologySpec {
        TopologySpec {
            name: "pair".into(),
            terminals: 4,
            switches: 2,
            switch_terms: vec![(0, 2), (2, 2)],
            switch_links: vec![vec![1], vec![0]],
            router: Arc::new(Dummy),
        }
    }

    #[test]
    fn validate_accepts_symmetric_wiring() {
        assert!(two_switch_spec().validate().is_ok());
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let mut s = two_switch_spec();
        s.switch_links[1].clear();
        assert!(s.validate().unwrap_err().contains("asymmetric"));
    }

    #[test]
    fn validate_rejects_unattached_terminal() {
        let mut s = two_switch_spec();
        s.switch_terms[1] = (2, 1); // terminal 3 unattached
        assert!(s.validate().unwrap_err().contains("attached 0 times"));
    }

    #[test]
    fn validate_rejects_dangling_link() {
        let mut s = two_switch_spec();
        s.switch_links[0][0] = 9;
        assert!(s.validate().unwrap_err().contains("nonexistent"));
    }

    #[test]
    fn terminal_switch_lookup() {
        let s = two_switch_spec();
        assert_eq!(s.terminal_switch(0), 0);
        assert_eq!(s.terminal_switch(3), 1);
    }

    #[test]
    fn build_reserves_terminal_ids() {
        let mut eng: Engine<NetEvent> = Engine::new(0);
        let spec = two_switch_spec();
        let fabric = build_fabric(&mut eng, &spec, &FabricConfig::at_gbps(100));
        assert_eq!(eng.component_count(), 2); // switches only so far
        assert_eq!(fabric.switch_cids.len(), 2);
        assert_eq!(fabric.terminal_cids.len(), 4);
        assert_eq!(fabric.terminal_cids[0].as_usize(), 2);
        assert_eq!(fabric.terminal_attach[2], fabric.switch_cids[1]);
        assert_eq!(fabric.name, "pair");
    }

    #[test]
    fn xbar_is_fifty_percent_faster() {
        let cfg = FabricConfig::at_gbps(400);
        assert_eq!(cfg.xbar_bandwidth(), Bandwidth::from_gbps(600));
    }

    #[test]
    fn lookahead_is_link_latency() {
        let cfg = FabricConfig::at_gbps(100);
        assert_eq!(cfg.lookahead(), SimTime::from_ns(100));
    }

    #[test]
    fn partition_colocates_terminals_with_switches() {
        let spec = two_switch_spec();
        let map = partition_fabric(&spec, 2);
        // Layout: switches 0..2, then terminals 2..6.
        assert_eq!(map.len(), 6);
        assert_eq!(&map[..2], &[0, 1]);
        for t in 0..4u32 {
            let sw = spec.terminal_switch(t) as usize;
            assert_eq!(map[2 + t as usize], map[sw]);
        }
        // More shards than switches clamps; every entry stays in range.
        let wide = partition_fabric(&spec, 16);
        assert!(wide.iter().all(|&s| s < 2));
    }

    #[test]
    fn build_into_parallel_engine() {
        use rvma_sim::{ParEngine, SimConfig};
        let mut eng: ParEngine<NetEvent> = ParEngine::new(0, SimConfig::default());
        let spec = two_switch_spec();
        let fabric = build_fabric(&mut eng, &spec, &FabricConfig::at_gbps(100));
        assert_eq!(eng.component_count(), 2);
        assert_eq!(fabric.terminal_cids.len(), 4);
    }
}
