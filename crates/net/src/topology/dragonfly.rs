//! Dragonfly(a, p, h) with minimal (static) and UGAL-style adaptive routing.
//!
//! Standard balanced dragonfly: groups of `a` switches, each switch with
//! `p` terminals and `h` global links; `g = a·h + 1` groups so that every
//! pair of groups shares exactly one global link. Switches within a group
//! are fully connected.
//!
//! Canonical port order per switch `(G, i)`: terminals `[0, p)`, local links
//! to switches `j ≠ i` in increasing `j` (`a − 1` ports), then `h` global
//! ports. Global channel `c = i·h + k` of group `G` connects to group
//! `D = (G + c + 1) mod g`; the far end is channel `c' = (G − D − 1) mod g`
//! of group `D`, i.e. switch `c'/h`, global port `c' mod h`.
//!
//! * **Minimal** routing: at most local→global→local (3 switch-hops).
//! * **Adaptive (UGAL-L)**: at the source switch, compare the backlog of
//!   the minimal first hop against a Valiant detour through a random
//!   intermediate group (weighted 1:2 for the doubled path length); commit
//!   to one. This is the scheme that makes dragonflies deliver packets out
//!   of order — the case the paper's 4.4× Sweep3D headline targets.

use crate::fabric::TopologySpec;
use crate::packet::Packet;
use crate::router::{Router, RoutingKind};
use crate::switch::PortView;
use rvma_sim::{SimRng, SimTime};
use std::sync::Arc;

/// Dragonfly shape.
#[derive(Debug, Clone, Copy)]
pub struct DragonflyParams {
    /// Switches per group.
    pub a: u32,
    /// Terminals per switch.
    pub p: u32,
    /// Global links per switch.
    pub h: u32,
}

impl DragonflyParams {
    /// Number of groups: `a·h + 1` (balanced, single link per group pair).
    pub fn groups(&self) -> u32 {
        self.a * self.h + 1
    }

    /// Total switches.
    pub fn switches(&self) -> u32 {
        self.groups() * self.a
    }

    /// Total terminals.
    pub fn terminals(&self) -> u32 {
        self.switches() * self.p
    }

    fn group_of_switch(&self, s: u32) -> u32 {
        s / self.a
    }

    fn index_in_group(&self, s: u32) -> u32 {
        s % self.a
    }

    /// The global channel index (within the source group) of the single
    /// link from group `g_from` to `g_to`.
    fn channel_to(&self, g_from: u32, g_to: u32) -> u32 {
        debug_assert_ne!(g_from, g_to);
        let g = self.groups();
        (g_to + g - g_from - 1) % g
    }

    /// `(switch index in group, global port k)` owning channel `c`.
    fn channel_owner(&self, c: u32) -> (u32, u32) {
        (c / self.h, c % self.h)
    }
}

/// UGAL bias toward the minimal path (added to the weighted Valiant queue
/// estimate), in nanoseconds of backlog.
const UGAL_MIN_BIAS: SimTime = SimTime::from_ns(50);

struct DragonflyRouter {
    p: DragonflyParams,
    kind: RoutingKind,
}

impl DragonflyRouter {
    fn local_port(&self, i: u32, j: u32) -> usize {
        debug_assert_ne!(i, j);
        self.p.p as usize + if j < i { j } else { j - 1 } as usize
    }

    fn global_port(&self, k: u32) -> usize {
        (self.p.p + self.p.a - 1 + k) as usize
    }

    /// First-hop port from switch `(cur_g, i)` toward group `target_g`.
    fn port_toward_group(&self, cur_g: u32, i: u32, target_g: u32) -> usize {
        let c = self.p.channel_to(cur_g, target_g);
        let (owner, k) = self.p.channel_owner(c);
        if owner == i {
            self.global_port(k)
        } else {
            self.local_port(i, owner)
        }
    }

    /// Minimal next port toward destination terminal `dst`.
    fn minimal(&self, sw: u32, dst: u32) -> usize {
        let cur_g = self.p.group_of_switch(sw);
        let i = self.p.index_in_group(sw);
        let dst_sw = dst / self.p.p;
        let dst_g = self.p.group_of_switch(dst_sw);
        if cur_g == dst_g {
            self.local_port(i, self.p.index_in_group(dst_sw))
        } else {
            self.port_toward_group(cur_g, i, dst_g)
        }
    }
}

impl Router for DragonflyRouter {
    fn route(&self, sw: u32, pkt: &mut Packet, view: &PortView<'_>, rng: &mut SimRng) -> usize {
        if self.kind == RoutingKind::Static {
            return self.minimal(sw, pkt.dst);
        }

        let cur_g = self.p.group_of_switch(sw);
        let i = self.p.index_in_group(sw);
        let dst_g = self.p.group_of_switch(pkt.dst / self.p.p);

        // Arrived at the Valiant intermediate (or already in the
        // destination group): from here on, minimal.
        if let Some(via) = pkt.route.via {
            if cur_g == via || cur_g == dst_g {
                pkt.route.via_reached = true;
            }
        }
        if pkt.route.via_reached || pkt.route.via.is_none() && pkt.route.hops > 0 {
            return self.minimal(sw, pkt.dst);
        }
        if let Some(via) = pkt.route.via {
            // Still traveling toward the intermediate group.
            return self.port_toward_group(cur_g, i, via);
        }

        // Source switch: UGAL-L decision.
        if cur_g == dst_g {
            pkt.route.via_reached = true;
            return self.minimal(sw, pkt.dst);
        }
        let g = self.p.groups();
        // Pick a random intermediate group distinct from source and dest.
        let mut via = rng.below(g as u64 - 2) as u32;
        for taken in [cur_g.min(dst_g), cur_g.max(dst_g)] {
            if via >= taken {
                via += 1;
            }
        }
        let min_port = self.minimal(sw, pkt.dst);
        let val_port = self.port_toward_group(cur_g, i, via);
        // UGAL-L: weighted queue comparison (minimal path ~half the hops).
        let q_min = view.busy(min_port);
        let q_val = view.busy(val_port);
        if q_min <= q_val * 2 + UGAL_MIN_BIAS {
            pkt.route.via_reached = true;
            min_port
        } else {
            pkt.route.via = Some(via);
            val_port
        }
    }

    fn ordered(&self) -> bool {
        self.kind == RoutingKind::Static
    }

    fn name(&self) -> &'static str {
        match self.kind {
            RoutingKind::Static => "dragonfly-minimal",
            RoutingKind::Adaptive => "dragonfly-ugal",
        }
    }
}

/// Build a balanced dragonfly spec.
///
/// # Panics
/// Panics if `a < 2`, `p < 1`, or `h < 1`.
pub fn dragonfly(params: DragonflyParams, kind: RoutingKind) -> TopologySpec {
    assert!(params.a >= 2, "need at least 2 switches per group");
    assert!(params.p >= 1 && params.h >= 1, "p and h must be positive");
    let g = params.groups();
    let switches = params.switches();

    let mut switch_terms = Vec::with_capacity(switches as usize);
    let mut switch_links = Vec::with_capacity(switches as usize);
    for s in 0..switches {
        switch_terms.push((s * params.p, params.p));
        let grp = params.group_of_switch(s);
        let i = params.index_in_group(s);
        let mut links = Vec::with_capacity((params.a - 1 + params.h) as usize);
        // Local all-to-all.
        for j in 0..params.a {
            if j != i {
                links.push(grp * params.a + j);
            }
        }
        // Global channels owned by this switch.
        for k in 0..params.h {
            let c = i * params.h + k;
            let dest_g = (grp + c + 1) % g;
            let back = params.channel_to(dest_g, grp);
            let (owner, _k2) = params.channel_owner(back);
            links.push(dest_g * params.a + owner);
        }
        switch_links.push(links);
    }

    TopologySpec {
        name: format!(
            "dragonfly(a={},p={},h={},g={},{})",
            params.a, params.p, params.h, g, kind
        ),
        terminals: params.terminals(),
        switches,
        switch_terms,
        switch_links,
        router: Arc::new(DragonflyRouter { p: params, kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::testutil::{check_all_pairs, trace_path};

    fn params() -> DragonflyParams {
        DragonflyParams { a: 4, p: 2, h: 2 }
    }

    #[test]
    fn group_count_is_balanced() {
        assert_eq!(params().groups(), 9);
        assert_eq!(params().switches(), 36);
        assert_eq!(params().terminals(), 72);
    }

    #[test]
    fn spec_validates() {
        dragonfly(params(), RoutingKind::Static).validate().unwrap();
        dragonfly(params(), RoutingKind::Adaptive)
            .validate()
            .unwrap();
    }

    #[test]
    fn channel_mapping_is_involutive() {
        let p = params();
        let g = p.groups();
        for g1 in 0..g {
            for g2 in 0..g {
                if g1 != g2 {
                    let c = p.channel_to(g1, g2);
                    assert!(c < p.a * p.h);
                    // Forward then backward returns to g1.
                    let back = p.channel_to(g2, g1);
                    assert!(back < p.a * p.h);
                    // Each pair uses exactly one channel per side:
                    assert_eq!((g1 + c + 1) % g, g2);
                    assert_eq!((g2 + back + 1) % g, g1);
                }
            }
        }
    }

    #[test]
    fn minimal_paths_within_three_hops() {
        let s = dragonfly(params(), RoutingKind::Static);
        let max = check_all_pairs(&s, 5);
        assert!(max <= 3, "minimal dragonfly exceeded l-g-l: {max}");
    }

    #[test]
    fn adaptive_paths_terminate_within_valiant_bound() {
        let s = dragonfly(params(), RoutingKind::Adaptive);
        // Valiant worst case: l-g-l to intermediate + l-g-l to dest = 6.
        let max = check_all_pairs(&s, 5);
        assert!(max <= 6, "UGAL exceeded Valiant bound: {max}");
    }

    #[test]
    fn intra_group_is_one_local_hop() {
        let s = dragonfly(params(), RoutingKind::Static);
        // Terminals 0 (switch 0) and 3 (switch 1), both group 0.
        let path = trace_path(&s, 0, 3, 1);
        assert_eq!(path, vec![0, 1]);
    }

    #[test]
    fn inter_group_minimal_is_lgl() {
        let s = dragonfly(params(), RoutingKind::Static);
        let p = params();
        // Check several cross-group pairs take <= 3 switch hops and cross
        // exactly one global link (group changes exactly once).
        for (src, dst) in [(0u32, 70u32), (5, 40), (10, 60)] {
            let path = trace_path(&s, src, dst, 1);
            let groups: Vec<u32> = path.iter().map(|&sw| p.group_of_switch(sw)).collect();
            let changes = groups.windows(2).filter(|w| w[0] != w[1]).count();
            assert_eq!(changes, 1, "path {path:?} crossed {changes} globals");
        }
    }

    #[test]
    fn ugal_idle_network_prefers_minimal() {
        // On an idle network every queue is 0, so q_min <= 2*q_val + bias
        // always holds: adaptive routing must follow minimal paths.
        let s = dragonfly(params(), RoutingKind::Adaptive);
        let max = check_all_pairs(&s, 7);
        assert!(max <= 3, "idle UGAL should be minimal, got {max}");
    }

    #[test]
    fn ordering_flags() {
        assert!(dragonfly(params(), RoutingKind::Static).router.ordered());
        assert!(!dragonfly(params(), RoutingKind::Adaptive).router.ordered());
    }
}
