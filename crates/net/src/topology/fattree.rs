//! 3-level k-ary fat-tree (Clos) with d-mod-k static and adaptive
//! up-routing.
//!
//! For even `k`: `k` pods; each pod has `k/2` edge and `k/2` aggregation
//! switches; `(k/2)²` core switches; `k³/4` terminals (hosts), `k/2` per
//! edge switch.
//!
//! Up-routing (edge→agg, agg→core) chooses among `k/2` equivalent ports:
//! statically by a destination-hash (d-mod-k, deterministic per
//! destination, hence per-flow ordered) or adaptively by queue depth.
//! Down-routing is always deterministic (a fat-tree has a unique down path).
//!
//! Canonical port order: edge = `[terminals, aggs-in-pod]`; agg =
//! `[edges-in-pod, cores]`; core = `[agg-per-pod for each pod]`.

use crate::fabric::TopologySpec;
use crate::packet::Packet;
use crate::router::{Router, RoutingKind};
use crate::switch::PortView;
use rvma_sim::SimRng;
use std::sync::Arc;

/// Fat-tree shape.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeParams {
    /// Switch radix; must be even and ≥ 2. Terminals = k³/4.
    pub k: u32,
}

impl FatTreeParams {
    fn h(&self) -> u32 {
        self.k / 2
    }

    fn edges(&self) -> u32 {
        self.k * self.h()
    }

    fn terminals(&self) -> u32 {
        self.k * self.k * self.k / 4
    }

    fn pod_of_terminal(&self, t: u32) -> u32 {
        t / (self.h() * self.h())
    }

    fn edge_index_of_terminal(&self, t: u32) -> u32 {
        (t / self.h()) % self.h()
    }
}

struct FatTreeRouter {
    p: FatTreeParams,
    kind: RoutingKind,
}

enum Role {
    Edge,
    Agg { pod: u32 },
    Core,
}

impl FatTreeRouter {
    fn role(&self, sw: u32) -> Role {
        let e = self.p.edges();
        if sw < e {
            Role::Edge
        } else if sw < 2 * e {
            Role::Agg {
                pod: (sw - e) / self.p.h(),
            }
        } else {
            Role::Core
        }
    }
}

impl Router for FatTreeRouter {
    fn route(&self, sw: u32, pkt: &mut Packet, view: &PortView<'_>, _rng: &mut SimRng) -> usize {
        let h = self.p.h() as usize;
        let dst = pkt.dst;
        match self.role(sw) {
            Role::Edge => {
                // Up to an agg (local terminals are delivered by the switch).
                match self.kind {
                    // d-mod-k: spread flows by destination terminal.
                    RoutingKind::Static => h + (dst as usize % h),
                    RoutingKind::Adaptive => view.least_busy(h..2 * h).expect("edge has up ports"),
                }
            }
            Role::Agg { pod } => {
                if self.p.pod_of_terminal(dst) == pod {
                    // Down to the destination edge.
                    self.p.edge_index_of_terminal(dst) as usize
                } else {
                    // Up to a core.
                    match self.kind {
                        RoutingKind::Static => h + ((dst as usize / h) % h),
                        RoutingKind::Adaptive => {
                            view.least_busy(h..2 * h).expect("agg has up ports")
                        }
                    }
                }
            }
            // Down to the destination pod (unique path).
            Role::Core => self.p.pod_of_terminal(dst) as usize,
        }
    }

    fn ordered(&self) -> bool {
        self.kind == RoutingKind::Static
    }

    fn name(&self) -> &'static str {
        match self.kind {
            RoutingKind::Static => "fattree-dmodk",
            RoutingKind::Adaptive => "fattree-adaptive",
        }
    }
}

/// Build a 3-level k-ary fat-tree spec.
///
/// # Panics
/// Panics if `k` is odd or < 2.
pub fn fattree(params: FatTreeParams, kind: RoutingKind) -> TopologySpec {
    let k = params.k;
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree k must be even and >= 2"
    );
    let h = params.h();
    let edges = params.edges(); // == aggs
    let cores = h * h;
    let switches = 2 * edges + cores;
    let agg0 = edges;
    let core0 = 2 * edges;

    let mut switch_terms = vec![(0u32, 0u32); switches as usize];
    let mut switch_links = vec![Vec::new(); switches as usize];

    for pod in 0..k {
        for i in 0..h {
            let e = pod * h + i;
            switch_terms[e as usize] = (e * h, h);
            // Edge links: up to every agg in the pod.
            switch_links[e as usize] = (0..h).map(|j| agg0 + pod * h + j).collect();
        }
        for j in 0..h {
            let a = agg0 + pod * h + j;
            // Agg links: down to every edge in the pod, then up to cores
            // j*h .. j*h+h.
            let mut links: Vec<u32> = (0..h).map(|i| pod * h + i).collect();
            links.extend((0..h).map(|m| core0 + j * h + m));
            switch_links[a as usize] = links;
        }
    }
    for c in 0..cores {
        let j = c / h;
        // Core links: to agg j of every pod, pod order = port order.
        switch_links[(core0 + c) as usize] = (0..k).map(|pod| agg0 + pod * h + j).collect();
    }

    TopologySpec {
        name: format!("fattree(k={k},{kind})"),
        terminals: params.terminals(),
        switches,
        switch_terms,
        switch_links,
        router: Arc::new(FatTreeRouter { p: params, kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::testutil::{check_all_pairs, trace_path};

    fn params() -> FatTreeParams {
        FatTreeParams { k: 4 }
    }

    #[test]
    fn spec_validates() {
        fattree(params(), RoutingKind::Static).validate().unwrap();
        fattree(params(), RoutingKind::Adaptive).validate().unwrap();
    }

    #[test]
    fn counts() {
        let s = fattree(params(), RoutingKind::Static);
        assert_eq!(s.terminals, 16);
        assert_eq!(s.switches, 8 + 8 + 4);
    }

    #[test]
    fn larger_tree_validates() {
        fattree(FatTreeParams { k: 8 }, RoutingKind::Static)
            .validate()
            .unwrap();
    }

    #[test]
    fn paths_within_diameter() {
        for kind in [RoutingKind::Static, RoutingKind::Adaptive] {
            let s = fattree(params(), kind);
            // Max switch path: edge-agg-core-agg-edge = 4 hops.
            let max = check_all_pairs(&s, 1);
            assert!(max <= 4, "{}: exceeded fat-tree diameter: {max}", s.name);
        }
    }

    #[test]
    fn same_pod_stays_in_pod() {
        let s = fattree(params(), RoutingKind::Static);
        // Terminals 0 (edge 0) and 2 (edge 1), both pod 0.
        let path = trace_path(&s, 0, 2, 1);
        assert_eq!(path.len(), 3); // edge0 -> agg -> edge1
        for &sw in &path {
            assert!(sw < 16, "stayed below core level");
        }
    }

    #[test]
    fn same_edge_is_zero_switch_hops() {
        let s = fattree(params(), RoutingKind::Static);
        let path = trace_path(&s, 0, 1, 1);
        assert_eq!(path, vec![0]);
    }

    #[test]
    fn cross_pod_goes_through_core() {
        let s = fattree(params(), RoutingKind::Static);
        // Terminal 0 (pod 0) to terminal 15 (pod 3).
        let path = trace_path(&s, 0, 15, 1);
        assert_eq!(path.len(), 5);
        assert!(path[2] >= 16, "middle hop is a core switch");
    }

    #[test]
    fn static_paths_are_deterministic() {
        let s = fattree(params(), RoutingKind::Static);
        assert_eq!(trace_path(&s, 0, 15, 1), trace_path(&s, 0, 15, 999));
    }

    #[test]
    fn ordering_flags() {
        assert!(fattree(params(), RoutingKind::Static).router.ordered());
        assert!(!fattree(params(), RoutingKind::Adaptive).router.ordered());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        fattree(FatTreeParams { k: 3 }, RoutingKind::Static);
    }
}
