//! Topology constructors.
//!
//! Each module builds a [`TopologySpec`](crate::fabric::TopologySpec) for
//! one topology family, in a static (deterministic, in-order) and an
//! adaptive (load-balanced, out-of-order) routing variant — the axes of the
//! paper's Figs. 7 and 8:
//!
//! * [`mod@fattree`] — 3-level k-ary fat-tree (d-mod-k static up-routing vs.
//!   least-loaded adaptive up-routing),
//! * [`mod@torus`] — 3-D torus (dimension-order routing vs. minimal-adaptive),
//! * [`mod@dragonfly`] — dragonfly(a, p, h) (minimal vs. UGAL-style adaptive
//!   with Valiant detours),
//! * [`mod@hyperx`] — 2-D HyperX / flattened butterfly (dimension-order vs.
//!   minimal-adaptive).

pub mod dragonfly;
pub mod fattree;
pub mod hyperx;
pub mod star;
pub mod torus;

pub use dragonfly::{dragonfly, DragonflyParams};
pub use fattree::{fattree, FatTreeParams};
pub use hyperx::{hyperx, HyperXParams};
pub use star::star;
pub use torus::{torus3d, TorusParams};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared routing-trace helper: walk a packet through the spec's
    //! switches using idle-port views, asserting termination.

    use crate::fabric::TopologySpec;
    use crate::link::LinkParams;
    use crate::packet::{Packet, PacketHeader, PacketKind, RouteState};
    use crate::switch::{OutPort, PortView};
    use rvma_sim::{ComponentId, SimRng, SimTime};

    pub fn mk_packet(src: u32, dst: u32) -> Packet {
        Packet {
            id: 0,
            src,
            dst,
            payload_bytes: 1024,
            header: PacketHeader {
                kind: PacketKind::RvmaData,
                msg_id: 0,
                msg_bytes: 1024,
                offset: 0,
                vaddr: 0,
                tag: 0,
            },
            route: RouteState::default(),
            injected_at: SimTime::ZERO,
        }
    }

    /// Trace the switch path from `src` to `dst` terminal. Returns the list
    /// of switch ids visited. Panics after `max_hops` (routing loop).
    pub fn trace_path(spec: &TopologySpec, src: u32, dst: u32, seed: u64) -> Vec<u32> {
        let mut rng = SimRng::new(seed);
        let mut pkt = mk_packet(src, dst);
        let mut sw = spec.terminal_switch(src);
        let dst_sw = spec.terminal_switch(dst);
        let mut path = vec![sw];
        let max_hops = 32;
        while sw != dst_sw {
            assert!(path.len() <= max_hops, "routing loop: {path:?}");
            let (tb, tc) = spec.switch_terms[sw as usize];
            let nports = tc as usize + spec.switch_links[sw as usize].len();
            let ports: Vec<OutPort> = (0..nports)
                .map(|_| OutPort {
                    to: ComponentId::from_raw(0),
                    link: LinkParams::gbps_ns(100, 100),
                    next_free: SimTime::ZERO,
                })
                .collect();
            let view = PortView::new(SimTime::ZERO, &ports);
            let port = spec.router.route(sw, &mut pkt, &view, &mut rng);
            assert!(
                port >= tc as usize,
                "routed to a terminal port at switch {sw} (terms {tb}+{tc}, dst {dst})"
            );
            pkt.route.hops += 1;
            sw = spec.switch_links[sw as usize][port - tc as usize];
            path.push(sw);
        }
        path
    }

    /// Exhaustively (or sampled) check all-pairs reachability and return the
    /// maximum observed path length in switch-hops.
    pub fn check_all_pairs(spec: &TopologySpec, sample_stride: u32) -> usize {
        let mut max_len = 0;
        let mut t1 = 0;
        while t1 < spec.terminals {
            let mut t2 = 0;
            while t2 < spec.terminals {
                if t1 != t2 {
                    let p = trace_path(spec, t1, t2, 7 + t1 as u64 * 131 + t2 as u64);
                    max_len = max_len.max(p.len() - 1);
                }
                t2 += sample_stride;
            }
            t1 += sample_stride;
        }
        max_len
    }
}
