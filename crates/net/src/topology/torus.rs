//! 3-D torus with dimension-order (static) and minimal-adaptive routing.
//!
//! Switches form a `dx × dy × dz` grid with wraparound links in every
//! dimension; `tps` terminals attach per switch. Canonical port order after
//! the terminal ports: `[x+, x−, y+, y−, z+, z−]`.

use crate::fabric::TopologySpec;
use crate::packet::Packet;
use crate::router::{Router, RoutingKind};
use crate::switch::PortView;
use rvma_sim::SimRng;
use std::sync::Arc;

/// Torus shape.
#[derive(Debug, Clone, Copy)]
pub struct TorusParams {
    /// Grid extents; every dimension must be ≥ 2.
    pub dims: [u32; 3],
    /// Terminals per switch.
    pub tps: u32,
}

impl TorusParams {
    fn switches(&self) -> u32 {
        self.dims.iter().product()
    }

    fn coords(&self, s: u32) -> [u32; 3] {
        let [dx, dy, _] = self.dims;
        [s % dx, (s / dx) % dy, s / (dx * dy)]
    }

    fn switch_at(&self, c: [u32; 3]) -> u32 {
        let [dx, dy, _] = self.dims;
        c[0] + dx * (c[1] + dy * c[2])
    }

    fn neighbor(&self, s: u32, dim: usize, positive: bool) -> u32 {
        let mut c = self.coords(s);
        let n = self.dims[dim];
        c[dim] = if positive {
            (c[dim] + 1) % n
        } else {
            (c[dim] + n - 1) % n
        };
        self.switch_at(c)
    }

    /// Shortest direction in `dim` from `from` to `to`: `Some(positive)`,
    /// or `None` when already aligned. Ties go positive.
    fn shortest_dir(&self, dim: usize, from: u32, to: u32) -> Option<bool> {
        if from == to {
            return None;
        }
        let n = self.dims[dim];
        let fwd = (to + n - from) % n;
        Some(fwd * 2 <= n)
    }
}

struct TorusRouter {
    params: TorusParams,
    kind: RoutingKind,
}

impl TorusRouter {
    /// Port index for (dim, direction) given `tps` terminal ports.
    fn port(&self, dim: usize, positive: bool) -> usize {
        self.params.tps as usize + dim * 2 + usize::from(!positive)
    }
}

impl Router for TorusRouter {
    fn route(&self, sw: u32, pkt: &mut Packet, view: &PortView<'_>, _rng: &mut SimRng) -> usize {
        let dst_sw = pkt.dst / self.params.tps;
        let cur = self.params.coords(sw);
        let dst = self.params.coords(dst_sw);
        debug_assert_ne!(sw, dst_sw, "switch should deliver local terminals");
        match self.kind {
            RoutingKind::Static => {
                // Dimension-order: resolve x, then y, then z.
                for dim in 0..3 {
                    if let Some(pos) = self.params.shortest_dir(dim, cur[dim], dst[dim]) {
                        return self.port(dim, pos);
                    }
                }
                unreachable!("dst switch equals current switch");
            }
            RoutingKind::Adaptive => {
                // Minimal-adaptive: among productive dimensions, take the
                // least-backlogged (shortest-direction) port.
                let candidates = (0..3).filter_map(|dim| {
                    self.params
                        .shortest_dir(dim, cur[dim], dst[dim])
                        .map(|pos| self.port(dim, pos))
                });
                view.least_busy(candidates)
                    .expect("at least one productive dimension")
            }
        }
    }

    fn ordered(&self) -> bool {
        self.kind == RoutingKind::Static
    }

    fn name(&self) -> &'static str {
        match self.kind {
            RoutingKind::Static => "torus3d-dor",
            RoutingKind::Adaptive => "torus3d-adaptive",
        }
    }
}

/// Build a 3-D torus spec.
///
/// # Panics
/// Panics if any dimension is < 2 or `tps` is 0.
pub fn torus3d(params: TorusParams, kind: RoutingKind) -> TopologySpec {
    assert!(
        params.dims.iter().all(|&d| d >= 2),
        "torus dims must be >= 2"
    );
    assert!(params.tps >= 1, "need at least one terminal per switch");
    let switches = params.switches();
    let mut switch_terms = Vec::with_capacity(switches as usize);
    let mut switch_links = Vec::with_capacity(switches as usize);
    for s in 0..switches {
        switch_terms.push((s * params.tps, params.tps));
        let mut links = Vec::with_capacity(6);
        for dim in 0..3 {
            links.push(params.neighbor(s, dim, true));
            links.push(params.neighbor(s, dim, false));
        }
        switch_links.push(links);
    }
    TopologySpec {
        name: format!(
            "torus3d({}x{}x{},tps={},{})",
            params.dims[0], params.dims[1], params.dims[2], params.tps, kind
        ),
        terminals: switches * params.tps,
        switches,
        switch_terms,
        switch_links,
        router: Arc::new(TorusRouter { params, kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::testutil::{check_all_pairs, trace_path};

    fn params() -> TorusParams {
        TorusParams {
            dims: [4, 3, 2],
            tps: 2,
        }
    }

    #[test]
    fn spec_validates() {
        torus3d(params(), RoutingKind::Static).validate().unwrap();
        torus3d(params(), RoutingKind::Adaptive).validate().unwrap();
    }

    #[test]
    fn counts() {
        let s = torus3d(params(), RoutingKind::Static);
        assert_eq!(s.switches, 24);
        assert_eq!(s.terminals, 48);
        assert!(s.switch_links.iter().all(|l| l.len() == 6));
    }

    #[test]
    fn dor_paths_reach_and_are_minimal() {
        let s = torus3d(params(), RoutingKind::Static);
        // Worst-case torus distance: 4/2 + 3/2 + 2/2 = 2+1+1 = 4 hops.
        let max = check_all_pairs(&s, 5);
        assert!(max <= 4, "DOR exceeded torus diameter: {max}");
    }

    #[test]
    fn adaptive_paths_reach_and_are_minimal() {
        let s = torus3d(params(), RoutingKind::Adaptive);
        let max = check_all_pairs(&s, 5);
        assert!(max <= 4, "minimal-adaptive exceeded diameter: {max}");
    }

    #[test]
    fn dor_resolves_x_first() {
        let s = torus3d(params(), RoutingKind::Static);
        // terminal 0 at switch 0 = (0,0,0); dst terminal at switch (2,1,0)=6.
        let path = trace_path(&s, 0, 6 * 2, 1);
        // x: 0->1->2, then y: ->(2,1,0). Switch ids: 0,1,2,6.
        assert_eq!(path, vec![0, 1, 2, 6]);
    }

    #[test]
    fn wraparound_takes_short_way() {
        let p = params();
        // x: from 3 to 0 is +1 hop via wraparound.
        assert_eq!(p.shortest_dir(0, 3, 0), Some(true));
        // x: from 0 to 3 is -1 hop.
        assert_eq!(p.shortest_dir(0, 0, 3), Some(false));
        // tie (distance 2 both ways in dim of size 4) goes positive.
        assert_eq!(p.shortest_dir(0, 0, 2), Some(true));
        assert_eq!(p.shortest_dir(0, 1, 1), None);
    }

    #[test]
    fn ordering_flags() {
        assert!(torus3d(params(), RoutingKind::Static).router.ordered());
        assert!(!torus3d(params(), RoutingKind::Adaptive).router.ordered());
    }

    #[test]
    #[should_panic(expected = "dims must be >= 2")]
    fn rejects_degenerate_dims() {
        torus3d(
            TorusParams {
                dims: [1, 4, 4],
                tps: 1,
            },
            RoutingKind::Static,
        );
    }
}
