//! Single-switch "star": all terminals on one switch.
//!
//! Not a paper topology — a minimal fabric for NIC-protocol unit tests and
//! two-node latency microbenchmarks, where topology effects must be zero.

use crate::fabric::TopologySpec;
use crate::packet::Packet;
use crate::router::{Router, RoutingKind};
use crate::switch::PortView;
use rvma_sim::SimRng;
use std::sync::Arc;

struct StarRouter {
    kind: RoutingKind,
}

impl Router for StarRouter {
    fn route(&self, _sw: u32, _pkt: &mut Packet, _v: &PortView<'_>, _rng: &mut SimRng) -> usize {
        unreachable!("star: every terminal is local to the single switch")
    }

    fn ordered(&self) -> bool {
        self.kind == RoutingKind::Static
    }

    fn name(&self) -> &'static str {
        match self.kind {
            RoutingKind::Static => "star-static",
            RoutingKind::Adaptive => "star-adaptive",
        }
    }
}

/// Build a single-switch star with `terminals` attached terminals.
///
/// `kind` only controls the `ordered()` flag (there is a single path, but
/// NIC protocols key their fence behaviour off that flag, so both variants
/// are useful in tests).
pub fn star(terminals: u32, kind: RoutingKind) -> TopologySpec {
    assert!(terminals >= 1);
    TopologySpec {
        name: format!("star({terminals},{kind})"),
        terminals,
        switches: 1,
        switch_terms: vec![(0, terminals)],
        switch_links: vec![vec![]],
        router: Arc::new(StarRouter { kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_validates() {
        star(4, RoutingKind::Static).validate().unwrap();
        star(1, RoutingKind::Adaptive).validate().unwrap();
    }

    #[test]
    fn ordered_flag_follows_kind() {
        assert!(star(2, RoutingKind::Static).router.ordered());
        assert!(!star(2, RoutingKind::Adaptive).router.ordered());
    }

    #[test]
    fn terminal_mapping() {
        let s = star(3, RoutingKind::Static);
        assert_eq!(s.terminal_switch(0), 0);
        assert_eq!(s.terminal_switch(2), 0);
    }
}
