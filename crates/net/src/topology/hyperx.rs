//! 2-D HyperX (flattened butterfly): all-to-all links in each dimension.
//!
//! Switches form a `d0 × d1` grid where every switch connects directly to
//! every other switch sharing a row or column. Canonical port order after
//! the terminal ports: dim-0 neighbors (increasing x, skipping self), then
//! dim-1 neighbors (increasing y, skipping self).
//!
//! The paper's Fig. 8 headline case is "HyperX Dimension Order Routing";
//! the adaptive variant picks the least-loaded productive dimension.

use crate::fabric::TopologySpec;
use crate::packet::Packet;
use crate::router::{Router, RoutingKind};
use crate::switch::PortView;
use rvma_sim::SimRng;
use std::sync::Arc;

/// HyperX shape.
#[derive(Debug, Clone, Copy)]
pub struct HyperXParams {
    /// Switches per dimension; each must be ≥ 2.
    pub d: [u32; 2],
    /// Terminals per switch.
    pub tps: u32,
}

impl HyperXParams {
    fn coords(&self, s: u32) -> [u32; 2] {
        [s % self.d[0], s / self.d[0]]
    }

    fn switch_at(&self, c: [u32; 2]) -> u32 {
        c[0] + self.d[0] * c[1]
    }
}

struct HyperXRouter {
    params: HyperXParams,
    kind: RoutingKind,
}

impl HyperXRouter {
    /// Port toward coordinate `target` in `dim`, from a switch at `cur`.
    fn port(&self, dim: usize, cur: u32, target: u32) -> usize {
        debug_assert_ne!(cur, target);
        let base = self.params.tps as usize
            + if dim == 0 {
                0
            } else {
                self.params.d[0] as usize - 1
            };
        let idx = if target < cur { target } else { target - 1 } as usize;
        base + idx
    }
}

impl Router for HyperXRouter {
    fn route(&self, sw: u32, pkt: &mut Packet, view: &PortView<'_>, _rng: &mut SimRng) -> usize {
        let dst_sw = pkt.dst / self.params.tps;
        let cur = self.params.coords(sw);
        let dst = self.params.coords(dst_sw);
        debug_assert_ne!(sw, dst_sw);
        match self.kind {
            RoutingKind::Static => {
                // Dimension order: fix dim 0, then dim 1 (one hop each).
                if cur[0] != dst[0] {
                    self.port(0, cur[0], dst[0])
                } else {
                    self.port(1, cur[1], dst[1])
                }
            }
            RoutingKind::Adaptive => {
                let candidates = (0..2)
                    .filter(|&dim| cur[dim] != dst[dim])
                    .map(|dim| self.port(dim, cur[dim], dst[dim]));
                view.least_busy(candidates)
                    .expect("at least one productive dimension")
            }
        }
    }

    fn ordered(&self) -> bool {
        self.kind == RoutingKind::Static
    }

    fn name(&self) -> &'static str {
        match self.kind {
            RoutingKind::Static => "hyperx-dor",
            RoutingKind::Adaptive => "hyperx-adaptive",
        }
    }
}

/// Build a 2-D HyperX spec.
///
/// # Panics
/// Panics if a dimension is < 2 or `tps` is 0.
pub fn hyperx(params: HyperXParams, kind: RoutingKind) -> TopologySpec {
    assert!(params.d.iter().all(|&d| d >= 2), "hyperx dims must be >= 2");
    assert!(params.tps >= 1, "need at least one terminal per switch");
    let switches = params.d[0] * params.d[1];
    let mut switch_terms = Vec::with_capacity(switches as usize);
    let mut switch_links = Vec::with_capacity(switches as usize);
    for s in 0..switches {
        switch_terms.push((s * params.tps, params.tps));
        let c = params.coords(s);
        let mut links = Vec::new();
        for x in 0..params.d[0] {
            if x != c[0] {
                links.push(params.switch_at([x, c[1]]));
            }
        }
        for y in 0..params.d[1] {
            if y != c[1] {
                links.push(params.switch_at([c[0], y]));
            }
        }
        switch_links.push(links);
    }
    TopologySpec {
        name: format!(
            "hyperx({}x{},tps={},{})",
            params.d[0], params.d[1], params.tps, kind
        ),
        terminals: switches * params.tps,
        switches,
        switch_terms,
        switch_links,
        router: Arc::new(HyperXRouter { params, kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::testutil::{check_all_pairs, trace_path};

    fn params() -> HyperXParams {
        HyperXParams { d: [4, 3], tps: 2 }
    }

    #[test]
    fn spec_validates() {
        hyperx(params(), RoutingKind::Static).validate().unwrap();
        hyperx(params(), RoutingKind::Adaptive).validate().unwrap();
    }

    #[test]
    fn counts_and_degree() {
        let s = hyperx(params(), RoutingKind::Static);
        assert_eq!(s.switches, 12);
        assert_eq!(s.terminals, 24);
        // Degree: (d0-1) + (d1-1) = 3 + 2 = 5.
        assert!(s.switch_links.iter().all(|l| l.len() == 5));
    }

    #[test]
    fn diameter_is_two_hops() {
        for kind in [RoutingKind::Static, RoutingKind::Adaptive] {
            let s = hyperx(params(), kind);
            let max = check_all_pairs(&s, 3);
            assert!(max <= 2, "{}: path exceeded 2 hops: {max}", s.name);
        }
    }

    #[test]
    fn dor_goes_x_then_y() {
        let s = hyperx(params(), RoutingKind::Static);
        // From switch (0,0)=0 to switch (3,2)=11: via (3,0)=3.
        let path = trace_path(&s, 0, 11 * 2, 1);
        assert_eq!(path, vec![0, 3, 11]);
    }

    #[test]
    fn same_row_is_single_hop() {
        let s = hyperx(params(), RoutingKind::Static);
        let path = trace_path(&s, 0, 3 * 2, 1); // (0,0) -> (3,0)
        assert_eq!(path, vec![0, 3]);
    }

    #[test]
    fn ordering_flags() {
        assert!(hyperx(params(), RoutingKind::Static).router.ordered());
        assert!(!hyperx(params(), RoutingKind::Adaptive).router.ordered());
    }
}
