//! Topology summaries: structural metrics of a [`TopologySpec`].
//!
//! Useful for sanity-checking generated instances (radix, diameter,
//! bisection estimates) and for the `topo_report` binary that documents
//! the fabrics each figure ran on.

use crate::fabric::TopologySpec;
use std::collections::VecDeque;

/// Structural metrics of one topology instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Topology name.
    pub name: String,
    /// Terminal count.
    pub terminals: u32,
    /// Switch count.
    pub switches: u32,
    /// Unidirectional inter-switch link count.
    pub links: u64,
    /// Minimum switch radix (terminal + switch ports).
    pub min_radix: usize,
    /// Maximum switch radix.
    pub max_radix: usize,
    /// Graph diameter in switch hops (BFS over the switch graph).
    pub diameter: u32,
    /// Mean shortest-path length between switches.
    pub mean_distance: f64,
}

/// Compute a [`TopologySummary`] (BFS from every switch; fine for the
/// instance sizes the benches use).
pub fn summarize(spec: &TopologySpec) -> TopologySummary {
    let n = spec.switches as usize;
    let mut links = 0u64;
    let mut min_radix = usize::MAX;
    let mut max_radix = 0usize;
    for s in 0..n {
        let radix = spec.switch_terms[s].1 as usize + spec.switch_links[s].len();
        min_radix = min_radix.min(radix);
        max_radix = max_radix.max(radix);
        links += spec.switch_links[s].len() as u64;
    }

    let mut diameter = 0u32;
    let mut dist_sum = 0u64;
    let mut pairs = 0u64;
    let mut dist = vec![u32::MAX; n];
    for start in 0..n {
        dist.fill(u32::MAX);
        dist[start] = 0;
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            for &v in &spec.switch_links[u] {
                let v = v as usize;
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            assert_ne!(d, u32::MAX, "switch graph disconnected at {start}->{v}");
            if v != start {
                diameter = diameter.max(d);
                dist_sum += d as u64;
                pairs += 1;
            }
        }
    }

    TopologySummary {
        name: spec.name.clone(),
        terminals: spec.terminals,
        switches: spec.switches,
        links,
        min_radix,
        max_radix,
        diameter,
        mean_distance: if pairs == 0 {
            0.0
        } else {
            dist_sum as f64 / pairs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutingKind;
    use crate::topology::{
        dragonfly, fattree, hyperx, star, torus3d, DragonflyParams, FatTreeParams, HyperXParams,
        TorusParams,
    };

    #[test]
    fn star_summary() {
        let s = summarize(&star(8, RoutingKind::Static));
        assert_eq!(s.switches, 1);
        assert_eq!(s.links, 0);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.min_radix, 8);
    }

    #[test]
    fn torus_diameter() {
        let s = summarize(&torus3d(
            TorusParams {
                dims: [4, 4, 4],
                tps: 1,
            },
            RoutingKind::Static,
        ));
        assert_eq!(s.diameter, 6); // 2+2+2 with wraparound
        assert_eq!(s.min_radix, 7); // 1 terminal + 6 links
        assert_eq!(s.links, 64 * 6);
    }

    #[test]
    fn hyperx_diameter_two() {
        let s = summarize(&hyperx(
            HyperXParams { d: [4, 4], tps: 2 },
            RoutingKind::Static,
        ));
        assert_eq!(s.diameter, 2);
        assert_eq!(s.min_radix, 2 + 3 + 3);
    }

    #[test]
    fn fattree_diameter_four() {
        let s = summarize(&fattree(FatTreeParams { k: 4 }, RoutingKind::Static));
        assert_eq!(s.diameter, 4); // edge-agg-core-agg-edge
        assert_eq!(s.max_radix, 4);
    }

    #[test]
    fn dragonfly_diameter_three() {
        let s = summarize(&dragonfly(
            DragonflyParams { a: 4, p: 2, h: 2 },
            RoutingKind::Static,
        ));
        assert_eq!(s.diameter, 3); // local-global-local
        assert!(s.mean_distance > 1.0 && s.mean_distance < 3.0);
    }
}
