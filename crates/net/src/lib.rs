//! # rvma-net — packet-level network models
//!
//! The fabric substrate for the RVMA reproduction's large-scale simulations
//! (the SST networking-layer substitute). It provides:
//!
//! * [`Packet`]/[`NetEvent`] — the wire unit and the engine event type,
//! * [`Switch`] — an output-queued switch with a crossbar modeled at 1.5×
//!   the link rate (the paper's stated ratio) and queue-backlog signals for
//!   adaptive routing,
//! * [`Router`] — the routing interface, with static (ordered) and adaptive
//!   (out-of-order) implementations per topology,
//! * [`topology`] — fat-tree, 3-D torus, dragonfly and 2-D HyperX builders,
//! * [`build_fabric`] — assembly of a topology into engine components.
//!
//! Terminals (NICs) are provided by the `rvma-nic` crate; this crate only
//! reserves their component ids during fabric assembly.
//!
//! ```
//! use rvma_net::{build_fabric, FabricConfig, RoutingKind};
//! use rvma_net::topology::{dragonfly, DragonflyParams};
//! use rvma_net::packet::NetEvent;
//! use rvma_sim::Engine;
//!
//! // A 72-terminal UGAL-routed dragonfly, 400 Gbps links.
//! let spec = dragonfly(DragonflyParams { a: 4, p: 2, h: 2 }, RoutingKind::Adaptive);
//! spec.validate().unwrap();
//! let mut engine: Engine<NetEvent> = Engine::new(42);
//! let fabric = build_fabric(&mut engine, &spec, &FabricConfig::at_gbps(400));
//! assert_eq!(fabric.switch_cids.len(), 36);
//! assert_eq!(fabric.terminal_cids.len(), 72);
//! // ... add one terminal component per reserved id, then run the engine.
//! ```

pub mod fabric;
pub mod link;
pub mod packet;
pub mod router;
pub mod summary;
pub mod switch;
pub mod topology;

pub use fabric::{build_fabric, partition_fabric, Fabric, FabricConfig, TopologySpec};
pub use link::LinkParams;
pub use packet::{NetEvent, Packet, PacketHeader, PacketKind, RouteState, HEADER_BYTES};
pub use router::{Router, RoutingKind};
pub use summary::{summarize, TopologySummary};
pub use switch::{OutPort, PortView, Switch};
pub use topology::{
    dragonfly, fattree, hyperx, star, torus3d, DragonflyParams, FatTreeParams, HyperXParams,
    TorusParams,
};
