//! # rvma-bench — figure-regeneration harness
//!
//! Shared machinery for the per-figure binaries (`fig4_verbs_latency`,
//! `fig5_ucx_latency`, `fig6_amortization`, `fig7_sweep3d`, `fig8_halo3d`,
//! `headline_summary`, and the ablations) and the Criterion benches.
//!
//! The motif figures sweep `topology × routing × link speed × protocol`;
//! [`topology_for`] picks the smallest instance of each family with at
//! least the requested terminal count (spare terminals run
//! [`IdleNode`](rvma_motifs::IdleNode)), and [`factor3`]/[`factor2`] shape
//! the motif process grids.

pub mod report;
pub mod sweep;

pub use report::{print_table, write_csv};
pub use sweep::{
    factor2, factor3, motif_matrix, topology_for, MatrixCell, SweepConfig, TopologyFamily,
    LINK_SPEEDS_GBPS,
};
