//! The topology × routing × link-speed × protocol sweep behind Figs. 7–8.

use rvma_motifs::{run_motif, run_motif_par, IdleNode, MotifResult};
use rvma_net::fabric::{FabricConfig, TopologySpec};
use rvma_net::router::RoutingKind;
use rvma_net::topology::{
    dragonfly, fattree, hyperx, torus3d, DragonflyParams, FatTreeParams, HyperXParams, TorusParams,
};
use rvma_nic::{HostLogic, NicConfig, Protocol};
use rvma_sim::{SimConfig, SimTime};

/// Link speeds of the paper's sweep: three contemporary rates plus the
/// future 2 Tbps point where the 4.4× headline lives.
pub const LINK_SPEEDS_GBPS: [u64; 4] = [100, 200, 400, 2000];

/// The four topology families of Figs. 7–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyFamily {
    /// 3-level fat-tree.
    FatTree,
    /// 3-D torus.
    Torus,
    /// Dragonfly.
    Dragonfly,
    /// 2-D HyperX.
    HyperX,
}

impl TopologyFamily {
    /// All families, figure order.
    pub const ALL: [TopologyFamily; 4] = [
        TopologyFamily::FatTree,
        TopologyFamily::Torus,
        TopologyFamily::Dragonfly,
        TopologyFamily::HyperX,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TopologyFamily::FatTree => "fat-tree",
            TopologyFamily::Torus => "torus3d",
            TopologyFamily::Dragonfly => "dragonfly",
            TopologyFamily::HyperX => "hyperx",
        }
    }
}

/// Near-cubic factorization of `n` (largest factors last). Works well for
/// powers of two; falls back to flat shapes otherwise.
pub fn factor3(n: u32) -> [u32; 3] {
    let mut best = [1, 1, n];
    let mut best_score = u32::MAX;
    for a in 1..=n {
        if a * a * a > n {
            break;
        }
        if !n.is_multiple_of(a) {
            continue;
        }
        let m = n / a;
        for b in a..=m {
            if b * b > m || !m.is_multiple_of(b) {
                continue;
            }
            let c = m / b;
            let score = c - a; // spread: smaller is more cubic
            if score < best_score {
                best_score = score;
                best = [a, b, c];
            }
        }
    }
    best
}

/// Near-square factorization of `n`.
pub fn factor2(n: u32) -> [u32; 2] {
    let mut best = [1, n];
    for a in 1..=n {
        if a * a > n {
            break;
        }
        if n.is_multiple_of(a) {
            best = [a, n / a];
        }
    }
    best
}

/// The smallest instance of `family` with at least `min_terminals`
/// terminals, under `kind` routing.
pub fn topology_for(family: TopologyFamily, kind: RoutingKind, min_terminals: u32) -> TopologySpec {
    match family {
        TopologyFamily::Torus => {
            // One terminal per switch, near-cubic dims (>= 2 each).
            let mut dims = factor3(min_terminals);
            for d in &mut dims {
                *d = (*d).max(2);
            }
            torus3d(TorusParams { dims, tps: 1 }, kind)
        }
        TopologyFamily::HyperX => {
            // Four terminals per switch, near-square switch grid.
            let switches = min_terminals.div_ceil(4);
            let mut d = factor2(switches);
            for x in &mut d {
                *x = (*x).max(2);
            }
            hyperx(HyperXParams { d, tps: 4 }, kind)
        }
        TopologyFamily::FatTree => {
            // Smallest even k with k^3/4 terminals.
            let mut k = 4;
            while k * k * k / 4 < min_terminals {
                k += 2;
            }
            fattree(FatTreeParams { k }, kind)
        }
        TopologyFamily::Dragonfly => {
            // Balanced dragonflies from a small ladder of (a, p, h).
            let ladder = [
                DragonflyParams { a: 4, p: 2, h: 2 },  // 72
                DragonflyParams { a: 4, p: 4, h: 2 },  // 144
                DragonflyParams { a: 6, p: 3, h: 3 },  // 342
                DragonflyParams { a: 8, p: 4, h: 4 },  // 1,056
                DragonflyParams { a: 12, p: 6, h: 6 }, // 5,256
                DragonflyParams { a: 16, p: 8, h: 8 }, // 16,512
            ];
            let p = ladder
                .into_iter()
                .find(|p| p.terminals() >= min_terminals)
                .unwrap_or(ladder[ladder.len() - 1]);
            dragonfly(p, kind)
        }
    }
}

/// One cell of the Fig. 7/8 matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Topology family label.
    pub family: &'static str,
    /// Routing kind.
    pub routing: RoutingKind,
    /// Link speed, Gbps.
    pub gbps: u64,
    /// RDMA run.
    pub rdma: MotifResult,
    /// RVMA run.
    pub rvma: MotifResult,
    /// Makespan ratio RDMA/RVMA (>1 ⇒ RVMA faster).
    pub speedup: f64,
}

/// Sweep parameters for a motif matrix.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Motif process count (motif grid is shaped from this).
    pub nodes: u32,
    /// RNG seed.
    pub seed: u64,
    /// Restrict to one family (None = all four).
    pub only_family: Option<TopologyFamily>,
    /// Restrict to one routing kind (None = both).
    pub only_routing: Option<RoutingKind>,
    /// Link speeds to sweep.
    pub speeds: Vec<u64>,
    /// Worker threads: 1 = the sequential reference engine, >1 = the
    /// sharded parallel engine (same results at any thread count, but the
    /// two engines draw rng differently, so absolute makespans may differ
    /// slightly between `1` and `>1`).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            nodes: 64,
            seed: 42,
            only_family: None,
            only_routing: None,
            speeds: LINK_SPEEDS_GBPS.to_vec(),
            threads: 1,
        }
    }
}

impl SweepConfig {
    /// Parse figure-binary CLI flags: `--nodes N`, `--seed S`,
    /// `--family fat-tree|torus|dragonfly|hyperx`,
    /// `--routing static|adaptive`, `--speeds 100,400,2000`,
    /// `--threads T` (parallel engine when > 1),
    /// `--full-scale` (= the paper's 8,192 nodes).
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or bad values.
    pub fn from_args(args: impl Iterator<Item = String>) -> SweepConfig {
        let mut cfg = SweepConfig::default();
        let mut it = args.peekable();
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--nodes" => cfg.nodes = val("--nodes").parse().expect("--nodes: u32"),
                "--seed" => cfg.seed = val("--seed").parse().expect("--seed: u64"),
                "--family" => {
                    cfg.only_family = Some(match val("--family").as_str() {
                        "fat-tree" | "fattree" => TopologyFamily::FatTree,
                        "torus" | "torus3d" => TopologyFamily::Torus,
                        "dragonfly" => TopologyFamily::Dragonfly,
                        "hyperx" => TopologyFamily::HyperX,
                        other => panic!("unknown family {other}"),
                    })
                }
                "--routing" => {
                    cfg.only_routing = Some(match val("--routing").as_str() {
                        "static" => RoutingKind::Static,
                        "adaptive" => RoutingKind::Adaptive,
                        other => panic!("unknown routing {other}"),
                    })
                }
                "--speeds" => {
                    cfg.speeds = val("--speeds")
                        .split(',')
                        .map(|s| s.parse().expect("--speeds: Gbps list"))
                        .collect()
                }
                "--threads" => cfg.threads = val("--threads").parse().expect("--threads: usize"),
                "--full-scale" => cfg.nodes = 8192,
                other => panic!(
                    "unknown flag {other}; flags: --nodes --seed --family --routing --speeds --threads --full-scale"
                ),
            }
        }
        cfg
    }
}

/// Run the full `topology × routing × speed` matrix for a motif whose
/// per-node behaviour comes from `make_logic(node)` (nodes ≥ `cfg.nodes`
/// become [`IdleNode`]s). Returns one cell per configuration.
pub fn motif_matrix(
    cfg: &SweepConfig,
    ncfg: NicConfig,
    make_logic: impl Fn(u32) -> Box<dyn HostLogic> + Copy,
) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for family in TopologyFamily::ALL {
        if cfg.only_family.is_some_and(|f| f != family) {
            continue;
        }
        for routing in [RoutingKind::Static, RoutingKind::Adaptive] {
            if cfg.only_routing.is_some_and(|r| r != routing) {
                continue;
            }
            for &gbps in &cfg.speeds {
                let spec = topology_for(family, routing, cfg.nodes);
                let fcfg = FabricConfig::at_gbps(gbps);
                let active = cfg.nodes;
                let run = |proto| {
                    let logic = |n| {
                        if n < active {
                            make_logic(n)
                        } else {
                            Box::new(IdleNode) as Box<dyn HostLogic>
                        }
                    };
                    if cfg.threads > 1 {
                        // Window is clamped to the fabric lookahead inside
                        // run_motif_par; MAX just means "as wide as legal".
                        let sim = SimConfig::new(cfg.threads, SimTime::MAX);
                        run_motif_par(&spec, &fcfg, ncfg, proto, cfg.seed, sim, logic)
                    } else {
                        run_motif(&spec, &fcfg, ncfg, proto, cfg.seed, logic)
                    }
                };
                let rdma = run(Protocol::Rdma);
                let rvma = run(Protocol::Rvma);
                let speedup = rdma.makespan.as_ns_f64() / rvma.makespan.as_ns_f64();
                cells.push(MatrixCell {
                    family: family.label(),
                    routing,
                    gbps,
                    rdma,
                    rvma,
                    speedup,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor3_cubic_for_powers_of_two() {
        assert_eq!(factor3(8), [2, 2, 2]);
        assert_eq!(factor3(64), [4, 4, 4]);
        assert_eq!(factor3(512), [8, 8, 8]);
        assert_eq!(factor3(128), [4, 4, 8]);
    }

    #[test]
    fn factor2_square_for_powers_of_two() {
        assert_eq!(factor2(64), [8, 8]);
        assert_eq!(factor2(128), [8, 16]);
        assert_eq!(factor2(7), [1, 7]);
    }

    #[test]
    fn topologies_cover_requested_terminals() {
        for family in TopologyFamily::ALL {
            for n in [16u32, 64, 200] {
                let spec = topology_for(family, RoutingKind::Static, n);
                assert!(
                    spec.terminals >= n,
                    "{}: {} < {n}",
                    spec.name,
                    spec.terminals
                );
                spec.validate().unwrap();
            }
        }
    }

    #[test]
    fn fat_tree_size_ladder() {
        let s = topology_for(TopologyFamily::FatTree, RoutingKind::Static, 16);
        assert_eq!(s.terminals, 16); // k=4
        let s = topology_for(TopologyFamily::FatTree, RoutingKind::Static, 17);
        assert_eq!(s.terminals, 54); // k=6
    }
}

#[cfg(test)]
mod cli_tests {
    use super::*;

    fn parse(args: &[&str]) -> SweepConfig {
        SweepConfig::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_flags() {
        let c = parse(&[]);
        assert_eq!(c.nodes, 64);
        assert_eq!(c.speeds, LINK_SPEEDS_GBPS.to_vec());
        assert!(c.only_family.is_none());
        assert!(c.only_routing.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let c = parse(&[
            "--nodes",
            "256",
            "--seed",
            "9",
            "--family",
            "dragonfly",
            "--routing",
            "adaptive",
            "--speeds",
            "100,2000",
        ]);
        assert_eq!(c.nodes, 256);
        assert_eq!(c.seed, 9);
        assert_eq!(c.only_family, Some(TopologyFamily::Dragonfly));
        assert_eq!(c.only_routing, Some(RoutingKind::Adaptive));
        assert_eq!(c.speeds, vec![100, 2000]);
    }

    #[test]
    fn full_scale_flag() {
        assert_eq!(parse(&["--full-scale"]).nodes, 8192);
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse(&[]).threads, 1);
        assert_eq!(parse(&["--threads", "8"]).threads, 8);
    }

    #[test]
    fn family_aliases() {
        assert_eq!(
            parse(&["--family", "fattree"]).only_family,
            Some(TopologyFamily::FatTree)
        );
        assert_eq!(
            parse(&["--family", "torus3d"]).only_family,
            Some(TopologyFamily::Torus)
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flag() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn rejects_missing_value() {
        parse(&["--nodes"]);
    }
}
