//! Table and CSV output for the figure binaries.

use std::fs;
use std::path::Path;

/// Print an aligned text table: `headers` then `rows`.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write rows as CSV under `results/<name>.csv` (creating the directory),
/// and return the path written.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| csv_escape(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path.display().to_string())
}

/// Quote a CSV cell when needed.
fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escape_quotes_commas() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
