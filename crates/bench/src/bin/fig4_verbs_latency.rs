//! Fig. 4 — RVMA vs. RDMA put latency over the Verbs interface
//! (OmniPath 100 Gb / Skylake model), 10 runs × 1,000 iterations.
//!
//! RDMA follows the InfiniBand spec on adaptively-routed networks: each put
//! is completed by a trailing 1-byte send/recv. RVMA completes via the
//! receiver-side threshold. Paper headline: up to 65.8 % latency reduction.

use rvma_bench::{print_table, write_csv};
use rvma_microbench::{latency_figure, static_comparison, verbs_omnipath};

fn main() {
    let model = verbs_omnipath();
    let rows = latency_figure(&model, 10, 4);

    println!("Fig. 4 — RVMA vs RDMA latency, Verbs ({})", model.name);
    println!("(RDMA = put + spec-compliant send/recv completion; mean of 10 runs)\n");
    let headers = ["size(B)", "RDMA(ns)", "±sd", "RVMA(ns)", "±sd", "reduction"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{:.0}", r.rdma_ns),
                format!("{:.0}", r.rdma_sd),
                format!("{:.0}", r.rvma_ns),
                format!("{:.0}", r.rvma_sd),
                format!("{:.1}%", r.reduction * 100.0),
            ]
        })
        .collect();
    print_table(&headers, &table);

    let peak = rows.iter().map(|r| r.reduction).fold(0.0f64, f64::max);
    println!(
        "\npeak latency reduction: {:.1}% (paper: 65.8%)",
        peak * 100.0
    );

    // The paper's side claim: RVMA ~ statically-routed RDMA (last-byte
    // polling) regardless of routing.
    let worst = static_comparison(&model)
        .iter()
        .map(|r| r.overhead.abs())
        .fold(0.0f64, f64::max);
    println!(
        "vs statically-routed RDMA best case: within {:.1}% at all sizes (paper: \"comparable\")",
        worst * 100.0
    );
    match write_csv("fig4_verbs_latency", &headers, &table) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
