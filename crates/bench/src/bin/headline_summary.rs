//! Sec. V headline numbers, regenerated in one place:
//!
//! * Verbs latency reduction (paper: up to 65.8 %),
//! * UCX latency reduction (paper: 45.8 %),
//! * Sweep3D average / best speedup (paper: 3.56× avg, 4.4× @ 2 Tb
//!   adaptive dragonfly, ≥ 2× contemporary adaptive),
//! * Halo3D average speedup (paper: 1.57× avg; HyperX DOR 1.64× @ 400 Gb,
//!   1.89× @ 2 Tb).

use rvma_bench::{motif_matrix, print_table, SweepConfig};
use rvma_core::transport::DeliveryOrder;
use rvma_core::{AsyncNetwork, EndpointConfig, EventKind, NodeAddr, Span, Threshold, VirtAddr};
use rvma_microbench::{peak_reduction, ucx_connectx5, verbs_omnipath};
use rvma_motifs::{Halo3dConfig, Halo3dNode, Sweep3dConfig, Sweep3dNode};
use rvma_nic::{HostLogic, NicConfig};
use rvma_sim::SimTime;
use std::time::Duration;

/// A short incast burst through the threaded datapath, sized to exercise
/// ring backpressure (cap 64, 4 senders × 4,096 puts), reporting the
/// endpoint's wire-queue counters: high-water depth (bounded by the cap),
/// producer stalls on a full ring, and doorbell wakeups of parked workers.
fn datapath_counters() -> Vec<Vec<String>> {
    const SENDERS: u64 = 4;
    const PUTS: u64 = 4096;
    let config = EndpointConfig {
        wire_queue_cap: 64,
        ..EndpointConfig::default()
    };
    let net =
        AsyncNetwork::for_endpoint_config(2048, DeliveryOrder::InOrder, Duration::ZERO, &config);
    let server = net.add_endpoint(NodeAddr::node(0));
    let mut notes = Vec::new();
    for m in 0..SENDERS {
        let win = server
            .init_window(VirtAddr::new(m), Threshold::ops(PUTS))
            .expect("window");
        notes.push(win.post_buffer(vec![0u8; 64]).expect("post"));
    }
    std::thread::scope(|s| {
        for m in 0..SENDERS {
            let init = net.initiator(NodeAddr::node(m as u32 + 1));
            s.spawn(move || {
                for _ in 0..PUTS {
                    init.put_at(NodeAddr::node(0), VirtAddr::new(m), 0, &[m as u8; 8])
                        .expect("put");
                }
            });
        }
    });
    for n in notes.iter_mut() {
        n.wait();
    }
    net.quiesce();
    let stats = server.stats();
    let row = |k: &str, v: String| vec![k.into(), v];
    vec![
        row(
            "wire ring high-water depth",
            format!("{} (cap {})", stats.max_depth, config.wire_queue_cap),
        ),
        row("producer full-ring stalls", stats.full_stalls.to_string()),
        row("worker doorbell wakeups", stats.park_wakeups.to_string()),
        row("epochs completed", stats.epochs_completed.to_string()),
    ]
}

/// A short async-completion burst: 2,048 CQ-posted epochs drained by one
/// consumer in batches, plus a handful of Future/Waker completions (one
/// deliberately cancelled), reporting the endpoint's async counters and
/// the CQ's batch-size quantiles.
fn async_counters() -> Vec<Vec<String>> {
    use rvma_core::CompletionQueue;

    const PUTS: u64 = 2048;
    let net = AsyncNetwork::with_options(2048, DeliveryOrder::InOrder, Duration::ZERO, 1);
    let server = net.add_endpoint(NodeAddr::node(0));
    let win = server
        .init_window(VirtAddr::new(0), Threshold::ops(1))
        .expect("window");
    let cq = CompletionQueue::new(1024);
    for _ in 0..PUTS {
        win.post_pooled_cq(16, &cq, 0).expect("post");
    }
    let mut drained = 0u64;
    std::thread::scope(|s| {
        let init = net.initiator(NodeAddr::node(1));
        s.spawn(move || {
            for _ in 0..PUTS {
                init.put(NodeAddr::node(0), VirtAddr::new(0), &[9u8; 16])
                    .expect("put");
            }
        });
        let mut out = Vec::with_capacity(64);
        while drained < PUTS {
            drained += cq.wait_batch(64, &mut out, Duration::from_secs(10)) as u64;
            out.clear();
        }
    });
    // Future path: one awaited completion, one cancelled mid-flight.
    let fut = win.post_pooled_async(16).expect("post");
    let cancelled = win.post_pooled_async(16).expect("post");
    drop(cancelled);
    let init = net.initiator(NodeAddr::node(2));
    init.put(NodeAddr::node(0), VirtAddr::new(0), &[9u8; 16])
        .expect("put");
    init.put(NodeAddr::node(0), VirtAddr::new(0), &[9u8; 16])
        .expect("put");
    let _ = pollster::block_on(fut);
    net.quiesce();

    let ep = server.stats();
    let cqs = cq.stats();
    let row = |k: &str, v: String| vec![k.into(), v];
    vec![
        row("notify wakes issued", ep.notify_wakes.to_string()),
        row("spurious future polls", ep.spurious_polls.to_string()),
        row("futures dropped mid-flight", ep.futures_dropped.to_string()),
        row("CQ completions", ep.cq_completions.to_string()),
        row(
            "CQ batch size p50 / p99",
            format!("{} / {}", cqs.batch_p50, cqs.batch_p99),
        ),
        row("CQ ring overflow spills", cqs.overflowed.to_string()),
        row("CQ consumer wakes", cqs.wakes.to_string()),
    ]
}

/// Large-message lane summary: 256 KiB puts, forced-fragmentation vs the
/// zero-copy/rendezvous lane, on the threaded and shared-memory
/// transports. Goodput from a byte-threshold epoch covering the run;
/// copies-per-byte from live counters (initiator staging
/// [`rvma_core::Transport::staged_bytes`] + shm slot-pop staging +
/// receiver gather, over bytes accepted). The shm half runs in-process
/// (`shm_pair`) so the client-side counters are directly observable.
fn bulk_lane_rows() -> Vec<Vec<String>> {
    use rvma_core::{shm_pair, shm_supported, Bytes, Transport};

    const SIZE: usize = 256 << 10;
    const PUTS: usize = 32;
    const MTU: usize = 4096;
    let mailbox = VirtAddr::new(0x10);
    let total = (PUTS * SIZE) as u64;

    let mut rows = Vec::new();
    for backend in ["threaded", "shm"] {
        if backend == "shm" && !shm_supported() {
            continue;
        }
        for (lane, threshold) in [("frag", usize::MAX), ("zerocopy", 0usize)] {
            let cfg = EndpointConfig {
                eager_threshold: threshold,
                ..EndpointConfig::default()
            };
            if backend == "shm" && lane == "zerocopy" {
                // The shm zero-copy lane is the registered-extent path:
                // payload written once into a small ring of reserved
                // extents, every put a bare RTS descriptor (see
                // `bulk_bw`). staged_bytes stays 0 by measurement, not
                // by construction.
                let (server, client) = shm_pair(MTU, cfg, NodeAddr::node(1)).expect("shm pair");
                let ep = server.add_endpoint(NodeAddr::node(0));
                let win = ep
                    .init_window(mailbox, Threshold::bytes(total))
                    .expect("window");
                let mut note = win.post_buffer(vec![0u8; total as usize]).expect("post");
                let mut ring: Vec<_> = (0..8)
                    .map(|_| {
                        let mut ext = client.reserve_extent(SIZE).expect("bulk region");
                        ext.as_mut_slice().fill(0xB5);
                        ext
                    })
                    .collect();
                let start = std::time::Instant::now();
                let mut k = 0;
                while k < PUTS {
                    let burst = ring.len().min(PUTS - k);
                    for ext in ring.iter().take(burst) {
                        // The flush barrier is the completion signal.
                        drop(
                            client
                                .put_from_extent(ext, NodeAddr::node(0), mailbox, k * SIZE)
                                .expect("put"),
                        );
                        k += 1;
                    }
                    client.flush().expect("flush");
                }
                note.wait();
                let elapsed = start.elapsed();
                let stats = ep.stats();
                let copies = (client.staged_bytes() + server.wire_copied() + stats.bytes_copied)
                    as f64
                    / stats.bytes_accepted as f64;
                ring.clear();
                rows.push(vec![
                    backend.into(),
                    lane.into(),
                    format!("{:.0}", total as f64 / elapsed.as_secs_f64() / 1e6),
                    format!("{copies:.2}"),
                ]);
                continue;
            }
            let (holder_net, holder_shm, ep, t): (
                Option<AsyncNetwork>,
                Option<rvma_core::ShmServer>,
                _,
                Box<dyn Transport>,
            ) = match backend {
                "threaded" => {
                    let net = AsyncNetwork::for_endpoint_config(
                        MTU,
                        DeliveryOrder::InOrder,
                        Duration::ZERO,
                        &cfg,
                    );
                    let ep = net.add_endpoint(NodeAddr::node(0));
                    let t: Box<dyn Transport> = Box::new(net.initiator(NodeAddr::node(1)));
                    (Some(net), None, ep, t)
                }
                _ => {
                    let (server, client) = shm_pair(MTU, cfg, NodeAddr::node(1)).expect("shm pair");
                    let ep = server.add_endpoint(NodeAddr::node(0));
                    (None, Some(server), ep, Box::new(client))
                }
            };
            let win = ep
                .init_window(mailbox, Threshold::bytes(total))
                .expect("window");
            let mut note = win.post_buffer(vec![0u8; total as usize]).expect("post");
            let payload = Bytes::from(vec![0xB5u8; SIZE]);
            let start = std::time::Instant::now();
            for k in 0..PUTS {
                t.put_bytes_at(NodeAddr::node(0), mailbox, k * SIZE, payload.clone())
                    .expect("put");
            }
            t.flush().expect("flush");
            note.wait();
            let elapsed = start.elapsed();
            drop(holder_net);
            let stats = ep.stats();
            let wire = holder_shm.as_ref().map_or(0, |s| s.wire_copied());
            let copies =
                (t.staged_bytes() + wire + stats.bytes_copied) as f64 / stats.bytes_accepted as f64;
            rows.push(vec![
                backend.into(),
                lane.into(),
                format!("{:.0}", total as f64 / elapsed.as_secs_f64() / 1e6),
                format!("{copies:.2}"),
            ]);
        }
    }
    rows
}

/// Render nanoseconds compactly (ns below 10 µs, µs above).
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else {
        format!("{:.1} us", ns as f64 / 1_000.0)
    }
}

/// Re-run the incast burst with op-level telemetry enabled and render the
/// per-span latency histograms (log-scale buckets, nearest-rank
/// quantiles) plus the lifecycle event counts.
fn telemetry_histograms() -> (Vec<Vec<String>>, Vec<Vec<String>>) {
    const SENDERS: u64 = 4;
    const PUTS: u64 = 2048;
    let config = EndpointConfig {
        telemetry: true,
        ..EndpointConfig::default()
    };
    let net =
        AsyncNetwork::for_endpoint_config(2048, DeliveryOrder::InOrder, Duration::ZERO, &config);
    let server = net.add_endpoint(NodeAddr::node(0));
    let mut notes = Vec::new();
    for m in 0..SENDERS {
        let win = server
            .init_window(VirtAddr::new(m), Threshold::ops(PUTS))
            .expect("window");
        notes.push(win.post_buffer(vec![0u8; 64]).expect("post"));
    }
    std::thread::scope(|s| {
        for m in 0..SENDERS {
            let init = net.initiator(NodeAddr::node(m as u32 + 1));
            s.spawn(move || {
                for _ in 0..PUTS {
                    init.put_at(NodeAddr::node(0), VirtAddr::new(m), 0, &[m as u8; 8])
                        .expect("put");
                }
            });
        }
    });
    for n in notes.iter_mut() {
        n.wait();
    }
    net.quiesce();
    let snap = net.telemetry().expect("telemetry enabled").snapshot();
    let spans = Span::ALL
        .iter()
        .map(|&sp| {
            let h = snap.span(sp);
            vec![
                sp.as_str().into(),
                h.count().to_string(),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.90)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.max()),
            ]
        })
        .collect();
    let mut counts: Vec<Vec<String>> = EventKind::ALL
        .iter()
        .map(|&k| vec![k.as_str().into(), snap.count(k).to_string()])
        .collect();
    counts.push(vec![
        "dropped (buffer full)".into(),
        snap.dropped.to_string(),
    ]);
    (spans, counts)
}

fn main() {
    let cfg = SweepConfig::from_args(std::env::args().skip(1));

    let verbs = peak_reduction(&verbs_omnipath()) * 100.0;
    let ucx = peak_reduction(&ucx_connectx5()) * 100.0;

    let sweep_motif = Sweep3dConfig {
        pgrid: rvma_bench::factor2(cfg.nodes),
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    };
    let sweep = motif_matrix(&cfg, NicConfig::default(), |n| {
        Box::new(Sweep3dNode::new(sweep_motif, n)) as Box<dyn HostLogic>
    });
    let sweep_avg = sweep.iter().map(|c| c.speedup).sum::<f64>() / sweep.len() as f64;
    let sweep_best = sweep.iter().map(|c| c.speedup).fold(0.0f64, f64::max);

    let halo_motif = Halo3dConfig {
        pgrid: rvma_bench::factor3(cfg.nodes),
        cells: [32, 32, 32],
        elem_bytes: 8,
        iters: 10,
        compute: SimTime::from_ns(200),
    };
    let halo = motif_matrix(&cfg, NicConfig::default(), |n| {
        Box::new(Halo3dNode::new(halo_motif, n)) as Box<dyn HostLogic>
    });
    let halo_avg = halo.iter().map(|c| c.speedup).sum::<f64>() / halo.len() as f64;

    println!(
        "RVMA reproduction — headline summary ({} motif nodes)\n",
        cfg.nodes
    );
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "Fig4 Verbs peak latency reduction".into(),
                "65.8%".into(),
                format!("{verbs:.1}%"),
            ],
            vec![
                "Fig5 UCX peak latency reduction".into(),
                "45.8%".into(),
                format!("{ucx:.1}%"),
            ],
            vec![
                "Fig7 Sweep3D average speedup".into(),
                "3.56x".into(),
                format!("{sweep_avg:.2}x"),
            ],
            vec![
                "Fig7 Sweep3D best cell".into(),
                "4.4x".into(),
                format!("{sweep_best:.2}x"),
            ],
            vec![
                "Fig8 Halo3D average speedup".into(),
                "1.57x".into(),
                format!("{halo_avg:.2}x"),
            ],
        ],
    );

    println!("\ndatapath counters (incast burst, ring cap 64):\n");
    print_table(&["counter", "value"], &datapath_counters());

    println!("\nasync completion counters (CQ burst + Future/Waker completions):\n");
    print_table(&["counter", "value"], &async_counters());

    println!(
        "\nlarge-message lanes (256 KiB puts, forced-fragmentation vs zero-copy/rendezvous):\n"
    );
    print_table(
        &["backend", "lane", "goodput_MBps", "copies_per_byte"],
        &bulk_lane_rows(),
    );

    let (spans, counts) = telemetry_histograms();
    println!("\nput lifecycle latency histograms (telemetry-enabled incast burst):\n");
    print_table(&["span", "count", "p50", "p90", "p99", "max"], &spans);
    println!("\nlifecycle event counts:\n");
    print_table(&["event", "count"], &counts);
}
