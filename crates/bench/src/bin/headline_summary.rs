//! Sec. V headline numbers, regenerated in one place:
//!
//! * Verbs latency reduction (paper: up to 65.8 %),
//! * UCX latency reduction (paper: 45.8 %),
//! * Sweep3D average / best speedup (paper: 3.56× avg, 4.4× @ 2 Tb
//!   adaptive dragonfly, ≥ 2× contemporary adaptive),
//! * Halo3D average speedup (paper: 1.57× avg; HyperX DOR 1.64× @ 400 Gb,
//!   1.89× @ 2 Tb).

use rvma_bench::{motif_matrix, print_table, SweepConfig};
use rvma_microbench::{peak_reduction, ucx_connectx5, verbs_omnipath};
use rvma_motifs::{Halo3dConfig, Halo3dNode, Sweep3dConfig, Sweep3dNode};
use rvma_nic::{HostLogic, NicConfig};
use rvma_sim::SimTime;

fn main() {
    let cfg = SweepConfig::from_args(std::env::args().skip(1));

    let verbs = peak_reduction(&verbs_omnipath()) * 100.0;
    let ucx = peak_reduction(&ucx_connectx5()) * 100.0;

    let sweep_motif = Sweep3dConfig {
        pgrid: rvma_bench::factor2(cfg.nodes),
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    };
    let sweep = motif_matrix(&cfg, NicConfig::default(), |n| {
        Box::new(Sweep3dNode::new(sweep_motif, n)) as Box<dyn HostLogic>
    });
    let sweep_avg = sweep.iter().map(|c| c.speedup).sum::<f64>() / sweep.len() as f64;
    let sweep_best = sweep.iter().map(|c| c.speedup).fold(0.0f64, f64::max);

    let halo_motif = Halo3dConfig {
        pgrid: rvma_bench::factor3(cfg.nodes),
        cells: [32, 32, 32],
        elem_bytes: 8,
        iters: 10,
        compute: SimTime::from_ns(200),
    };
    let halo = motif_matrix(&cfg, NicConfig::default(), |n| {
        Box::new(Halo3dNode::new(halo_motif, n)) as Box<dyn HostLogic>
    });
    let halo_avg = halo.iter().map(|c| c.speedup).sum::<f64>() / halo.len() as f64;

    println!(
        "RVMA reproduction — headline summary ({} motif nodes)\n",
        cfg.nodes
    );
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "Fig4 Verbs peak latency reduction".into(),
                "65.8%".into(),
                format!("{verbs:.1}%"),
            ],
            vec![
                "Fig5 UCX peak latency reduction".into(),
                "45.8%".into(),
                format!("{ucx:.1}%"),
            ],
            vec![
                "Fig7 Sweep3D average speedup".into(),
                "3.56x".into(),
                format!("{sweep_avg:.2}x"),
            ],
            vec![
                "Fig7 Sweep3D best cell".into(),
                "4.4x".into(),
                format!("{sweep_best:.2}x"),
            ],
            vec![
                "Fig8 Halo3D average speedup".into(),
                "1.57x".into(),
                format!("{halo_avg:.2}x"),
            ],
        ],
    );
}
