//! Ablation — host-bus (PCIe) latency sweep.
//!
//! The paper models 150 ns (balancing PCIe Gen 4/5) and remarks that
//! Gen 6 brings tens of nanoseconds, making the bus negligible against the
//! cables. This sweep runs Sweep3D at 10/50/150/300 ns for both protocols:
//! RVMA's relative advantage persists because its savings are *network*
//! messages, not bus crossings.

use rvma_bench::{print_table, topology_for, write_csv, SweepConfig, TopologyFamily};
use rvma_motifs::{run_motif, IdleNode, Sweep3dConfig, Sweep3dNode};
use rvma_net::fabric::FabricConfig;
use rvma_net::router::RoutingKind;
use rvma_nic::{HostLogic, NicConfig, Protocol};
use rvma_sim::SimTime;

fn main() {
    let cfg = SweepConfig::from_args(std::env::args().skip(1));
    let motif = Sweep3dConfig {
        pgrid: rvma_bench::factor2(cfg.nodes),
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    };
    let spec = topology_for(TopologyFamily::Dragonfly, RoutingKind::Adaptive, cfg.nodes);
    let fcfg = FabricConfig::at_gbps(400);
    let active = cfg.nodes;

    println!(
        "Ablation — PCIe latency, Sweep3D on {} @400G ({} nodes)\n",
        spec.name, cfg.nodes
    );
    let headers = ["pcie(ns)", "RDMA(us)", "RVMA(us)", "speedup"];
    let mut rows = Vec::new();
    for pcie_ns in [10u64, 50, 150, 300] {
        let ncfg = NicConfig {
            pcie_latency: SimTime::from_ns(pcie_ns),
            ..Default::default()
        };
        let run = |proto: Protocol| {
            run_motif(&spec, &fcfg, ncfg, proto, cfg.seed, |n| {
                if n < active {
                    Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
                } else {
                    Box::new(IdleNode)
                }
            })
        };
        let rdma = run(Protocol::Rdma);
        let rvma = run(Protocol::Rvma);
        rows.push(vec![
            pcie_ns.to_string(),
            format!("{:.1}", rdma.makespan_us()),
            format!("{:.1}", rvma.makespan_us()),
            format!(
                "{:.2}x",
                rdma.makespan.as_ns_f64() / rvma.makespan.as_ns_f64()
            ),
        ]);
    }
    print_table(&headers, &rows);
    println!("\n(paper: results at 150 ns are a conservative estimate of RVMA's future impact)");
    match write_csv("ablation_pcie", &headers, &rows) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
