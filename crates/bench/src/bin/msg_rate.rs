//! Small-message put rate: the batched submission path vs the seed path.
//!
//! RVMA's receive side amortizes per-message costs (one LUT lookup, one
//! counter update — paper Fig. 6); this benchmark measures the matching
//! initiator-side work. The seed/PR-1 submission path paid, per put: an
//! endpoint-table `RwLock` read, a fresh payload allocation, a fragment
//! vector, and one channel send + NACK-sink Arc clone per fragment. The
//! batched path replaces those with a lock-free route cache, a recycling
//! payload pool, an inline single-fragment fast path, and doorbell
//! batching that crosses the channel once per batch.
//!
//! Setup: 8 sender threads, each streaming small puts (8–256 B, far below
//! the MTU) to its own mailbox on one server endpoint, zero wire latency —
//! so the measurement is pure per-message overhead. Each sender paces
//! itself against its mailbox's lock-free epoch-progress counter to bound
//! queue depth. Three submission paths share the identical delivery
//! fabric:
//!
//! * `legacy`  — `put_at_legacy`, the seed/PR-1 path (the A/B baseline);
//! * `put`     — the reworked `put_at` (route cache + pool + inline path);
//! * `batch`   — a `PutBatch` with the default doorbell threshold.
//!
//! `speedup` is against `legacy` at the same message size and worker
//! count. Every (size, workers, path) cell is the **median of several
//! interleaved trials**: with all sender and worker threads timesharing
//! whatever cores the container grants, single-shot rates swing wildly
//! with scheduling luck, and interleaving the paths within each trial
//! round decorrelates that noise from the A/B comparison. Run with
//! `--quick` for a single-shot CI smoke (tiny put count, no CSV).

use rvma_bench::{print_table, write_csv};
use rvma_core::transport::DeliveryOrder;
use rvma_core::{AsyncNetwork, NodeAddr, Threshold, VirtAddr};
use std::time::{Duration, Instant};

const SENDERS: usize = 8;
/// Max puts a sender may run ahead of its mailbox's op counter.
const PIPELINE: u64 = 1024;
/// Offsets cycle over this many slots per mailbox, so in-flight puts of
/// one pipeline window never overlap in the buffer.
const SLOTS: usize = 2048;

#[derive(Clone, Copy, PartialEq)]
enum Path {
    Legacy,
    Put,
    Batch,
}

impl Path {
    fn name(self) -> &'static str {
        match self {
            Path::Legacy => "legacy",
            Path::Put => "put",
            Path::Batch => "batch",
        }
    }
}

fn run_rate(msg_bytes: usize, puts: u64, workers: usize, path: Path) -> f64 {
    let net = AsyncNetwork::with_options(1024, DeliveryOrder::InOrder, Duration::ZERO, workers);
    let server = net.add_endpoint(NodeAddr::node(0));

    // One mailbox per sender, one op-threshold epoch covering the whole
    // run: completion is observed via the single epoch notification, and
    // pacing via the mailbox's lock-free progress counter.
    let mut notes = Vec::with_capacity(SENDERS);
    let mut progress = Vec::with_capacity(SENDERS);
    for i in 0..SENDERS {
        let win = server
            .init_window(VirtAddr::new(i as u64), Threshold::ops(puts))
            .expect("window");
        notes.push(win.post_buffer(vec![0u8; SLOTS * msg_bytes]).expect("post"));
        progress.push(win.progress());
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for (i, progress) in progress.iter().enumerate() {
            let init = net.initiator(NodeAddr::node(i as u32 + 1));
            let payload = vec![i as u8 + 1; msg_bytes];
            s.spawn(move || {
                let dest = NodeAddr::node(0);
                let vaddr = VirtAddr::new(i as u64);
                let mut batch = init.batch();
                for k in 0..puts {
                    while k.saturating_sub(progress.ops()) > PIPELINE {
                        std::thread::yield_now();
                    }
                    let off = (k as usize % SLOTS) * msg_bytes;
                    match path {
                        Path::Legacy => init.put_at_legacy(dest, vaddr, off, &payload),
                        Path::Put => init.put_at(dest, vaddr, off, &payload),
                        Path::Batch => batch.put_at(dest, vaddr, off, &payload),
                    }
                    .expect("put");
                }
                batch.flush().expect("flush");
            });
        }
    });
    for n in notes.iter_mut() {
        let buf = n.wait();
        assert!(!buf.full_buffer().is_empty(), "lost completion");
    }
    let elapsed = start.elapsed();
    (SENDERS as u64 * puts) as f64 / elapsed.as_secs_f64()
}

/// Median of the collected trial rates.
fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rate"));
    rates[rates.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (puts, trials, sizes): (u64, usize, &[usize]) = if quick {
        (2048, 1, &[8, 256])
    } else {
        (1 << 15, 5, &[8, 32, 64, 256])
    };

    println!(
        "small-message put rate: {SENDERS} senders x {puts} puts, \
         median of {trials} trial(s), MTU 1024, zero wire latency\n"
    );

    const PATHS: [Path; 3] = [Path::Legacy, Path::Put, Path::Batch];
    let headers = [
        "size_B",
        "workers",
        "path",
        "puts_per_s",
        "speedup_vs_legacy",
    ];
    let mut rows = Vec::new();
    for &size in sizes {
        for workers in [1usize, 8] {
            // Interleave: each trial round measures all three paths
            // back-to-back so slow phases of the box hit them alike.
            let mut samples: [Vec<f64>; 3] = Default::default();
            for _ in 0..trials {
                for (p, &path) in PATHS.iter().enumerate() {
                    samples[p].push(run_rate(size, puts, workers, path));
                }
            }
            let mut baseline = None;
            for (p, &path) in PATHS.iter().enumerate() {
                let rate = median(&mut samples[p]);
                let base = *baseline.get_or_insert(rate);
                rows.push(vec![
                    size.to_string(),
                    workers.to_string(),
                    path.name().to_string(),
                    format!("{rate:.0}"),
                    format!("{:.2}x", rate / base),
                ]);
            }
        }
    }
    print_table(&headers, &rows);
    println!(
        "\nSame delivery fabric in every row; only the submission path differs.\n\
         legacy = seed/PR-1 path (RwLock + alloc + send per fragment)."
    );
    if !quick {
        match write_csv("msg_rate", &headers, &rows) {
            Ok(p) => println!("csv: {p}"),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
