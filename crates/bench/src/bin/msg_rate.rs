//! Small-message put rate: the batched submission path vs the seed path.
//!
//! RVMA's receive side amortizes per-message costs (one LUT lookup, one
//! counter update — paper Fig. 6); this benchmark measures the matching
//! initiator-side work. The seed/PR-1 submission path paid, per put: an
//! endpoint-table `RwLock` read, a fresh payload allocation, a fragment
//! vector, and one channel send + NACK-sink Arc clone per fragment. The
//! batched path replaces those with a lock-free route cache, a recycling
//! payload pool, an inline single-fragment fast path, and doorbell
//! batching that crosses the channel once per batch.
//!
//! Setup: 8 sender threads, each streaming small puts (8–256 B, far below
//! the MTU) to its own mailbox on one server endpoint, zero wire latency —
//! so the measurement is pure per-message overhead. Each sender paces
//! itself against its mailbox's lock-free epoch-progress counter to bound
//! queue depth. Three submission paths share the identical delivery
//! fabric:
//!
//! * `legacy`  — `put_at_legacy`, the seed/PR-1 path (the A/B baseline);
//! * `put`     — the reworked `put_at` (route cache + pool + inline path);
//! * `batch`   — a `PutBatch` with the default doorbell threshold.
//!
//! `speedup` is against `legacy` at the same message size and worker
//! count. Every (size, workers, path) cell is the **median of several
//! interleaved trials**: with all sender and worker threads timesharing
//! whatever cores the container grants, single-shot rates swing wildly
//! with scheduling luck, and interleaving the paths within each trial
//! round decorrelates that noise from the A/B comparison. Run with
//! `--quick` for a single-shot CI smoke (tiny put count, no CSV).
//!
//! # The `--async` receiver lane
//!
//! The second sweep measures the **receive side** at high in-flight
//! counts — the epoll argument. A receiver tracking N outstanding
//! completions through blocking notifications pays an O(N) scan per
//! consumed completion (`wait_any` re-walks the whole handle array), so
//! its per-thread consumption rate collapses as N grows. A
//! [`CompletionQueue`] aggregates the same N
//! slots into one ready-list the completing writes push onto: O(1) per
//! completion regardless of N. Both lanes run the identical sender
//! (credit-paced to hold the in-flight window) and identical fabric; only
//! the receiver's completion-discovery structure differs. Rates are
//! completions consumed per second on the one receiver thread
//! (ops/thread), duration-bounded so the O(N²) lane terminates.

use rvma_bench::{print_table, write_csv};
use rvma_core::transport::DeliveryOrder;
use rvma_core::{
    shm_supported, wait_any_timeout, AsyncNetwork, CompletionQueue, EndpointConfig, NodeAddr,
    Notification, ShmClient, ShmServer, Threshold, VirtAddr,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SENDERS: usize = 8;
/// Max puts a sender may run ahead of its mailbox's op counter.
const PIPELINE: u64 = 1024;
/// Offsets cycle over this many slots per mailbox, so in-flight puts of
/// one pipeline window never overlap in the buffer.
const SLOTS: usize = 2048;

#[derive(Clone, Copy, PartialEq)]
enum Path {
    Legacy,
    Put,
    Batch,
}

impl Path {
    fn name(self) -> &'static str {
        match self {
            Path::Legacy => "legacy",
            Path::Put => "put",
            Path::Batch => "batch",
        }
    }
}

fn run_rate(msg_bytes: usize, puts: u64, workers: usize, path: Path) -> f64 {
    let net = AsyncNetwork::with_options(1024, DeliveryOrder::InOrder, Duration::ZERO, workers);
    let server = net.add_endpoint(NodeAddr::node(0));

    // One mailbox per sender, one op-threshold epoch covering the whole
    // run: completion is observed via the single epoch notification, and
    // pacing via the mailbox's lock-free progress counter.
    let mut notes = Vec::with_capacity(SENDERS);
    let mut progress = Vec::with_capacity(SENDERS);
    for i in 0..SENDERS {
        let win = server
            .init_window(VirtAddr::new(i as u64), Threshold::ops(puts))
            .expect("window");
        notes.push(win.post_buffer(vec![0u8; SLOTS * msg_bytes]).expect("post"));
        progress.push(win.progress());
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for (i, progress) in progress.iter().enumerate() {
            let init = net.initiator(NodeAddr::node(i as u32 + 1));
            let payload = vec![i as u8 + 1; msg_bytes];
            s.spawn(move || {
                let dest = NodeAddr::node(0);
                let vaddr = VirtAddr::new(i as u64);
                let mut batch = init.batch();
                for k in 0..puts {
                    while k.saturating_sub(progress.ops()) > PIPELINE {
                        std::thread::yield_now();
                    }
                    let off = (k as usize % SLOTS) * msg_bytes;
                    match path {
                        Path::Legacy => init.put_at_legacy(dest, vaddr, off, &payload),
                        Path::Put => init.put_at(dest, vaddr, off, &payload),
                        Path::Batch => batch.put_at(dest, vaddr, off, &payload),
                    }
                    .expect("put");
                }
                batch.flush().expect("flush");
            });
        }
    });
    for n in notes.iter_mut() {
        let buf = n.wait();
        assert!(!buf.full_buffer().is_empty(), "lost completion");
    }
    let elapsed = start.elapsed();
    (SENDERS as u64 * puts) as f64 / elapsed.as_secs_f64()
}

/// The `--shm` lane: the same shape as `run_rate` — `SENDERS` sender
/// threads, one op-threshold epoch per mailbox — but the senders live in
/// a **separate OS process** (this binary re-exec'd in `--shm-child`
/// role) and the wire is the shared-memory segment transport. The clock
/// starts at the first delivered fragment, so child spawn + connect time
/// is excluded; pacing is the request ring's own backpressure.
fn run_shm_rate(msg_bytes: usize, puts: u64) -> f64 {
    let server = ShmServer::create_default(1024, EndpointConfig::default()).expect("segment");
    let ep = server.add_endpoint(NodeAddr::node(0));
    let mut notes = Vec::with_capacity(SENDERS);
    for i in 0..SENDERS {
        let win = ep
            .init_window(VirtAddr::new(i as u64), Threshold::ops(puts))
            .expect("window");
        notes.push(win.post_buffer(vec![0u8; SLOTS * msg_bytes]).expect("post"));
    }
    let exe = std::env::current_exe().expect("bench binary path");
    let mut child = std::process::Command::new(exe)
        .arg("--shm-child")
        .arg(server.path())
        .arg(SENDERS.to_string())
        .arg(puts.to_string())
        .arg(msg_bytes.to_string())
        .spawn()
        .expect("spawn shm sender process");
    while server.delivered() == 0 {
        std::thread::yield_now();
    }
    let start = Instant::now();
    for n in notes.iter_mut() {
        let buf = n.wait();
        assert!(!buf.full_buffer().is_empty(), "lost completion");
    }
    let elapsed = start.elapsed();
    assert!(
        child.wait().expect("child exit").success(),
        "sender process failed"
    );
    (SENDERS as u64 * puts) as f64 / elapsed.as_secs_f64()
}

/// Child role of the `--shm` lane: pure initiator process. Connects to
/// the parent's segment and blasts the put stream; the bounded request
/// ring provides the flow control.
fn shm_child(args: &[String]) {
    let path = std::path::PathBuf::from(&args[0]);
    let senders: usize = args[1].parse().expect("senders");
    let puts: u64 = args[2].parse().expect("puts");
    let msg_bytes: usize = args[3].parse().expect("msg_bytes");
    let client = ShmClient::connect(&path, NodeAddr::node(1)).expect("connect to segment");
    std::thread::scope(|s| {
        for i in 0..senders {
            let client = &client;
            let payload = vec![i as u8 + 1; msg_bytes];
            s.spawn(move || {
                let dest = NodeAddr::node(0);
                let vaddr = VirtAddr::new(i as u64);
                for k in 0..puts {
                    let off = (k as usize % SLOTS) * msg_bytes;
                    client.put_at(dest, vaddr, off, &payload).expect("put");
                }
            });
        }
    });
    client.flush().expect("final flush");
}

/// Median of the collected trial rates.
fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rate"));
    rates[rates.len() / 2]
}

/// Message size of the async receiver lane (small: the lane measures
/// completion discovery, not payload movement).
const ASYNC_MSG: usize = 16;

#[derive(Clone, Copy, PartialEq)]
enum RecvLane {
    /// Blocking notifications, discovered by `wait_any` over all
    /// outstanding handles: O(in-flight) per consumed completion.
    WaitAny,
    /// One `CompletionQueue` over the same slots: O(1) per completion.
    Cq,
}

impl RecvLane {
    fn name(self) -> &'static str {
        match self {
            RecvLane::WaitAny => "recv_wait_any",
            RecvLane::Cq => "recv_cq",
        }
    }
}

/// One duration-bounded async-lane cell: a single receiver thread holding
/// `inflight` outstanding completions, a sender credit-paced against the
/// receiver's consumption counter. Returns completions consumed per
/// second on the receiver thread.
fn run_recv_lane(inflight: usize, duration: Duration, lane: RecvLane) -> f64 {
    let net = AsyncNetwork::with_options(1024, DeliveryOrder::InOrder, Duration::ZERO, 1);
    let server = net.add_endpoint(NodeAddr::node(0));
    let win = server
        .init_window(VirtAddr::new(0), Threshold::ops(1))
        .expect("window");

    let stop = AtomicBool::new(false);
    let consumed = AtomicU64::new(0);
    let mut rate = 0.0f64;
    std::thread::scope(|s| {
        // Sender: keep exactly `inflight` puts outstanding against the
        // receiver's consumption counter. Every put lands in an already
        // posted epoch (the receiver reposts one buffer per consumption),
        // so no completion is ever lost to BufferNotPosted.
        let init = net.initiator(NodeAddr::node(1));
        let (stop_ref, consumed_ref) = (&stop, &consumed);
        s.spawn(move || {
            let payload = [7u8; ASYNC_MSG];
            let mut issued = 0u64;
            while !stop_ref.load(Ordering::Acquire) {
                if issued - consumed_ref.load(Ordering::Acquire) >= inflight as u64 {
                    std::thread::yield_now();
                    continue;
                }
                init.put(NodeAddr::node(0), VirtAddr::new(0), &payload)
                    .expect("put");
                issued += 1;
            }
        });

        // Receiver: pre-post the whole in-flight window, then consume and
        // repost until the deadline. Only this loop is timed.
        match lane {
            RecvLane::WaitAny => {
                let mut notes: Vec<Notification> = (0..inflight)
                    .map(|_| win.post_pooled(ASYNC_MSG).expect("post"))
                    .collect();
                let start = Instant::now();
                let deadline = start + duration;
                let mut count = 0u64;
                while Instant::now() < deadline {
                    if let Some((i, _buf)) = wait_any_timeout(&mut notes, Duration::from_millis(5))
                    {
                        notes[i] = win.post_pooled(ASYNC_MSG).expect("repost");
                        count += 1;
                        consumed.store(count, Ordering::Release);
                    }
                }
                rate = count as f64 / start.elapsed().as_secs_f64();
            }
            RecvLane::Cq => {
                let cq = CompletionQueue::new(4096);
                for _ in 0..inflight {
                    win.post_pooled_cq(ASYNC_MSG, &cq, 0).expect("post");
                }
                let start = Instant::now();
                let deadline = start + duration;
                let mut count = 0u64;
                let mut out = Vec::with_capacity(1024);
                while Instant::now() < deadline {
                    let n = cq.wait_batch(1024, &mut out, Duration::from_millis(5));
                    for _ in out.drain(..) {
                        win.post_pooled_cq(ASYNC_MSG, &cq, 0).expect("repost");
                    }
                    count += n as u64;
                    consumed.store(count, Ordering::Release);
                }
                rate = count as f64 / start.elapsed().as_secs_f64();
            }
        }
        stop.store(true, Ordering::Release);
    });
    rate
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--shm-child") {
        shm_child(&args[pos + 1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let async_only = args.iter().any(|a| a == "--async");
    let shm_only = args.iter().any(|a| a == "--shm");
    let (puts, trials, sizes): (u64, usize, &[usize]) = if quick {
        (2048, 1, &[8, 256])
    } else {
        (1 << 15, 5, &[8, 32, 64, 256])
    };

    if shm_only {
        if !shm_supported() {
            println!(
                "msg_rate --shm: shared-memory transport unsupported on this platform; skipping"
            );
            return;
        }
        println!(
            "cross-process put rate (--shm): {SENDERS} sender threads in a child process x \
             {puts} puts over one shared-memory segment, median of {trials} trial(s)\n"
        );
        let headers = ["size_B", "workers", "path", "inflight", "puts_per_s"];
        let mut rows = Vec::new();
        for &size in sizes {
            let mut samples: Vec<f64> = (0..trials).map(|_| run_shm_rate(size, puts)).collect();
            let rate = median(&mut samples);
            rows.push(vec![
                size.to_string(),
                "1".to_string(),
                "shm".to_string(),
                "ring".to_string(),
                format!("{rate:.0}"),
            ]);
        }
        print_table(&headers, &rows);
        println!(
            "\nInitiators and receiver are separate OS processes; the clock starts at the \
             first delivered fragment (spawn + connect excluded); in-flight depth is the \
             request ring's capacity."
        );
        if !quick {
            match write_csv("msg_rate_shm", &headers, &rows) {
                Ok(p) => println!("csv: {p}"),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
        return;
    }

    // Shared schema: submission-path rows carry the pipeline credit as
    // their in-flight column; receiver-lane rows carry the swept window.
    let headers = [
        "size_B",
        "workers",
        "path",
        "inflight",
        "puts_per_s",
        "speedup_vs_base",
    ];
    let mut rows = Vec::new();

    if !async_only {
        println!(
            "small-message put rate: {SENDERS} senders x {puts} puts, \
             median of {trials} trial(s), MTU 1024, zero wire latency\n"
        );

        const PATHS: [Path; 3] = [Path::Legacy, Path::Put, Path::Batch];
        for &size in sizes {
            for workers in [1usize, 8] {
                // Interleave: each trial round measures all three paths
                // back-to-back so slow phases of the box hit them alike.
                let mut samples: [Vec<f64>; 3] = Default::default();
                for _ in 0..trials {
                    for (p, &path) in PATHS.iter().enumerate() {
                        samples[p].push(run_rate(size, puts, workers, path));
                    }
                }
                let mut baseline = None;
                for (p, &path) in PATHS.iter().enumerate() {
                    let rate = median(&mut samples[p]);
                    let base = *baseline.get_or_insert(rate);
                    rows.push(vec![
                        size.to_string(),
                        workers.to_string(),
                        path.name().to_string(),
                        PIPELINE.to_string(),
                        format!("{rate:.0}"),
                        format!("{:.2}x", rate / base),
                    ]);
                }
            }
        }
        print_table(&headers, &rows);
        println!(
            "\nSame delivery fabric in every row; only the submission path differs.\n\
             legacy = seed/PR-1 path (RwLock + alloc + send per fragment).\n"
        );
    }

    // ---- async receiver lane: completions/s per receiver thread ----
    let (windows, lane_secs, lane_trials): (&[usize], f64, usize) = if quick {
        (&[1024, 4096], 0.25, 1)
    } else {
        (&[1024, 16384, 262144], 1.0, 3)
    };
    println!(
        "async receiver lane: 1 receiver thread, {ASYNC_MSG} B puts, \
         sender credit-paced to the in-flight window, \
         median of {lane_trials} x {lane_secs}s trial(s)\n"
    );
    let lane_start = rows.len();
    for &inflight in windows {
        let mut wa: Vec<f64> = Vec::new();
        let mut cq: Vec<f64> = Vec::new();
        for _ in 0..lane_trials {
            wa.push(run_recv_lane(
                inflight,
                Duration::from_secs_f64(lane_secs),
                RecvLane::WaitAny,
            ));
            cq.push(run_recv_lane(
                inflight,
                Duration::from_secs_f64(lane_secs),
                RecvLane::Cq,
            ));
        }
        let wa = median(&mut wa);
        let cq = median(&mut cq);
        for (lane, rate) in [(RecvLane::WaitAny, wa), (RecvLane::Cq, cq)] {
            rows.push(vec![
                ASYNC_MSG.to_string(),
                "1".to_string(),
                lane.name().to_string(),
                inflight.to_string(),
                format!("{rate:.0}"),
                format!("{:.2}x", rate / wa),
            ]);
        }
    }
    print_table(&headers, &rows[lane_start..]);
    println!(
        "\nrecv_wait_any = blocking wait_any over all outstanding handles \
         (O(in-flight) discovery per completion);\n\
         recv_cq = one CompletionQueue over the same slots (O(1)). \
         speedup_vs_base = vs recv_wait_any at the same in-flight window."
    );

    // The CSV pairs both sweeps; an --async-only run would clobber the
    // submission-path rows, so it prints without writing.
    if !quick && !async_only {
        match write_csv("msg_rate", &headers, &rows) {
            Ok(p) => println!("csv: {p}"),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
