//! Many-to-one (incast) study — the paper's introduction scenario.
//!
//! "RDMA \[is\] unattractive for use in many-to-one communication models
//! such as those found in public internet client-server situations":
//! either all clients coordinate one shared buffer, or the server
//! dedicates exclusive resources per client indefinitely. This binary
//! sweeps the client count and reports sink-completion time and the
//! per-client server resources each protocol consumed.

use rvma_bench::{print_table, write_csv};
use rvma_motifs::{run_motif, IncastConfig, IncastNode};
use rvma_net::fabric::FabricConfig;
use rvma_net::router::RoutingKind;
use rvma_net::topology::star;
use rvma_nic::{NicConfig, Protocol};

fn main() {
    println!("Many-to-one (incast): RVMA vs RDMA as the client count grows\n");
    let headers = [
        "clients",
        "RDMA sink-done(us)",
        "RVMA sink-done(us)",
        "speedup",
        "RDMA channels",
        "RVMA channels",
    ];
    let mut rows = Vec::new();
    for clients in [4u32, 8, 16, 32, 64] {
        let cfg = IncastConfig {
            nodes: clients + 1,
            msgs: 16,
            bytes: 8192,
        };
        let spec = star(cfg.nodes, RoutingKind::Adaptive);
        let run = |p| {
            run_motif(
                &spec,
                &FabricConfig::at_gbps(100),
                NicConfig::default(),
                p,
                5,
                |n| Box::new(IncastNode::new(cfg, n)) as _,
            )
        };
        let rdma = run(Protocol::Rdma);
        let rvma = run(Protocol::Rvma);
        rows.push(vec![
            clients.to_string(),
            format!("{:.1}", rdma.makespan_us()),
            format!("{:.1}", rvma.makespan_us()),
            format!(
                "{:.2}x",
                rdma.makespan.as_ns_f64() / rvma.makespan.as_ns_f64()
            ),
            rdma.handshakes.to_string(),
            rvma.handshakes.to_string(),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nRDMA registers one exclusive buffer (channel) per client; the RVMA sink\n\
         posts one shared bucket and dedicates nothing per client (paper Sec. I)."
    );
    match write_csv("manytoone", &headers, &rows) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
