//! Structural report of every fabric instance the figure binaries use:
//! the documentation behind each run's "system under simulation".

use rvma_bench::{print_table, topology_for, write_csv, TopologyFamily};
use rvma_net::router::RoutingKind;
use rvma_net::summary::summarize;

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    println!("Fabric inventory at >= {nodes} terminals\n");
    let headers = [
        "topology",
        "terminals",
        "switches",
        "links",
        "radix",
        "diameter",
        "mean dist",
    ];
    let mut rows = Vec::new();
    for family in TopologyFamily::ALL {
        let spec = topology_for(family, RoutingKind::Static, nodes);
        let s = summarize(&spec);
        rows.push(vec![
            s.name.clone(),
            s.terminals.to_string(),
            s.switches.to_string(),
            s.links.to_string(),
            format!("{}-{}", s.min_radix, s.max_radix),
            s.diameter.to_string(),
            format!("{:.2}", s.mean_distance),
        ]);
    }
    print_table(&headers, &rows);
    match write_csv("topo_report", &headers, &rows) {
        Ok(p) => println!("\ncsv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
