//! Large-message goodput: eager staging vs the zero-copy/rendezvous lane.
//!
//! Small puts ride the eager fragment path (stage into a pooled payload,
//! fragment at the MTU, deliver per-fragment) — per-byte cost is dominated
//! by the staging copy and per-fragment bookkeeping. Above
//! `EndpointConfig::eager_threshold` the datapath switches lanes:
//!
//! * in-process backends carry shared [`Bytes`] slices end to end — the
//!   initiator never copies the payload at all (copies/byte = 1: only the
//!   receiver's gather into the epoch buffer remains);
//! * the shared-memory backend's `put_at` reserves an extent in the
//!   segment's bulk region, writes the payload **once**, and sends an
//!   8-byte rendezvous descriptor through the request ring; the server
//!   gathers straight from the extent into the window buffer
//!   (copies/byte = 2, vs 3 for eager's slot-stage + slot-pop + gather);
//! * the shm **registered-extent** path (`ShmClient::reserve_extent` +
//!   `put_from_extent`) drops the staging copy too: the application
//!   writes into registered bulk memory and every put is a bare RTS
//!   descriptor (copies/byte = 1 — only the gather remains). The forced
//!   zero-copy lane below measures this path, reusing a ring of
//!   registered extents the way `ib_send_bw` resends a registered
//!   buffer.
//!
//! This bench sweeps message size across three **lane policies** on the
//! same fabric:
//!
//! * `frag`     — `eager_threshold = usize::MAX`: every put staged and
//!   fragmented (the pre-rendezvous datapath, the A/B baseline);
//! * `adaptive` — the default threshold (8 KiB): the shipping policy;
//! * `zerocopy` — `eager_threshold = 0`: every non-empty put takes the
//!   large-message lane.
//!
//! Goodput is bytes landed per second of wall clock, measured by a
//! byte-threshold epoch covering the whole run (the clock stops at the
//! completing write). The shm lane runs the initiator in a **separate OS
//! process** (this binary re-exec'd with `--bulk-child`); the child owns
//! the clock — first put to final flush-ack — so spawn + connect are
//! excluded and a one-quantum run can't slip between two parent-side
//! observations.
//!
//! `copies_pb` is copies per byte: initiator staging + wire staging +
//! receiver gather, divided by bytes accepted. For the in-process
//! backends both terms come from live counters
//! ([`Transport::staged_bytes`], `StatsSnapshot::bytes_copied`); for shm
//! the client-side stage lives in the child process, so it is counted
//! analytically (one segment write per payload byte on the staged
//! lanes, none on the registered lane) and added to the server's
//! observed slot-pop + gather counters.
//!
//! Run with `--quick` for a CI smoke: two sizes, fewer bytes, no CSV,
//! plus hard assertions that the threaded and shm zero-copy lanes are
//! exactly one copy per byte.

use rvma_bench::{print_table, write_csv};
use rvma_core::transport::DeliveryOrder;
use rvma_core::{
    shm_supported, AsyncNetwork, Bytes, EndpointConfig, FaultModel, LossyNetwork, NodeAddr,
    ShmClient, ShmServer, Threshold, Transport, VirtAddr,
};
use std::time::{Duration, Instant};

const SERVER: NodeAddr = NodeAddr::node(0);
const CLIENT: NodeAddr = NodeAddr::node(1);
const MAILBOX: VirtAddr = VirtAddr(0x10);
const MTU: usize = 4096;
/// Initiator-side pacing window (in-process lanes): bytes allowed in
/// flight ahead of the receiver's epoch-progress counter.
const WINDOW_BYTES: u64 = 8 << 20;
/// Bulk region sized so the rendezvous lane keeps a deep pipeline even
/// at the 4 MiB point of the sweep.
const BULK_BYTES: usize = 32 << 20;

#[derive(Clone, Copy, PartialEq)]
enum Lane {
    Frag,
    Adaptive,
    ZeroCopy,
}

impl Lane {
    const ALL: [Lane; 3] = [Lane::Frag, Lane::Adaptive, Lane::ZeroCopy];

    fn name(self) -> &'static str {
        match self {
            Lane::Frag => "frag",
            Lane::Adaptive => "adaptive",
            Lane::ZeroCopy => "zerocopy",
        }
    }

    fn threshold(self) -> usize {
        match self {
            Lane::Frag => usize::MAX,
            Lane::Adaptive => EndpointConfig::default().eager_threshold,
            Lane::ZeroCopy => 0,
        }
    }

    fn cfg(self) -> EndpointConfig {
        EndpointConfig {
            eager_threshold: self.threshold(),
            shm_bulk_bytes: BULK_BYTES,
            // The inline lane's reliable initiator requires receiver-side
            // dedup; harmless for the other backends.
            dedup_window: 1 << 15,
            ..Default::default()
        }
    }
}

struct Cell {
    goodput_mbps: f64,
    copies_pb: f64,
    staged: u64,
}

/// A zeroed window buffer with every page touched, so the receiver's
/// gather measures copies, not first-touch allocation faults (the same
/// one-time cost every lane would otherwise pay inside the clock).
fn prefaulted(len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    for page in buf.iter_mut().step_by(4096) {
        unsafe { std::ptr::write_volatile(page, 0) };
    }
    buf
}

/// One in-process cell: `puts` puts of `size` bytes into a single
/// byte-threshold epoch; goodput from put-issue to completing write.
fn run_inproc(backend: &str, lane: Lane, size: usize, puts: usize) -> Cell {
    let cfg = lane.cfg();
    let (_net_inline, _net_threaded, ep, t): (
        Option<std::sync::Arc<LossyNetwork>>,
        Option<AsyncNetwork>,
        _,
        Box<dyn Transport>,
    ) = match backend {
        "inline-lossy" => {
            let net = LossyNetwork::with_config(MTU, FaultModel::NONE, 7, cfg);
            let ep = net.add_endpoint(SERVER);
            let t: Box<dyn Transport> = Box::new(net.inline_channel(CLIENT));
            (Some(net), None, ep, t)
        }
        "threaded" => {
            let net = AsyncNetwork::for_endpoint_config(
                MTU,
                DeliveryOrder::InOrder,
                Duration::ZERO,
                &cfg,
            );
            let ep = net.add_endpoint(SERVER);
            let t: Box<dyn Transport> = Box::new(net.initiator(CLIENT));
            (None, Some(net), ep, t)
        }
        other => panic!("unknown in-process backend {other}"),
    };
    let total = (puts * size) as u64;
    let win = ep
        .init_window(MAILBOX, Threshold::bytes(total))
        .expect("window");
    let progress = win.progress();
    let mut note = win.post_buffer(prefaulted(total as usize)).expect("post");
    let payload = Bytes::from(vec![0xB5u8; size]);

    let start = Instant::now();
    for k in 0..puts {
        let issued = (k * size) as u64;
        while issued.saturating_sub(progress.bytes()) > WINDOW_BYTES {
            std::thread::yield_now();
        }
        t.put_bytes_at(SERVER, MAILBOX, k * size, payload.clone())
            .expect("put");
    }
    t.flush().expect("flush");
    let buf = note.wait();
    let elapsed = start.elapsed();
    assert_eq!(buf.full_buffer().len(), total as usize, "short completion");
    assert!(t.take_nacks().is_empty(), "unexpected NACKs");

    let stats = ep.stats();
    let staged = t.staged_bytes();
    Cell {
        goodput_mbps: total as f64 / elapsed.as_secs_f64() / 1e6,
        copies_pb: (staged + stats.bytes_copied) as f64 / stats.bytes_accepted as f64,
        staged,
    }
}

/// One cross-process shm cell: initiator in a re-exec'd child, lane
/// policy published to it through the segment header. The *child* owns
/// the clock — first put to final flush-ack (every byte delivered
/// server-side) — and reports it on stdout; a parent-side clock keyed
/// on observing the first delivery can miss the whole cell on a small
/// host where the server thread drains the run in one quantum.
fn run_shm(lane: Lane, size: usize, puts: usize) -> Cell {
    let server = ShmServer::create_default(MTU, lane.cfg()).expect("segment");
    let ep = server.add_endpoint(SERVER);
    let total = (puts * size) as u64;
    let win = ep
        .init_window(MAILBOX, Threshold::bytes(total))
        .expect("window");
    let mut note = win.post_buffer(prefaulted(total as usize)).expect("post");

    let exe = std::env::current_exe().expect("bench binary path");
    let child = std::process::Command::new(exe)
        .arg("--bulk-child")
        .arg(server.path())
        .arg(puts.to_string())
        .arg(size.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn shm initiator process");
    let buf = note.wait();
    assert_eq!(buf.full_buffer().len(), total as usize, "short completion");
    let out = child.wait_with_output().expect("child exit");
    assert!(out.status.success(), "initiator process failed");
    let elapsed_ns: u64 = String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("elapsed_ns=").map(str::to_owned))
        .expect("child reports elapsed_ns")
        .parse()
        .expect("elapsed_ns value");
    let elapsed = Duration::from_nanos(elapsed_ns.max(1));

    let stats = ep.stats();
    // Client-side stage is analytic (the counter lives in the child):
    // one segment write per payload byte on the staged lanes; zero on
    // the registered-extent lane, whose one-time ring fill is setup —
    // symmetric with the payload-`Vec` creation the staged lanes don't
    // count either. wire_copied is the observed slot-pop copy (zero on
    // the rendezvous lane).
    let staged = if lane == Lane::ZeroCopy { 0 } else { total };
    let wire = server.wire_copied();
    Cell {
        goodput_mbps: total as f64 / elapsed.as_secs_f64() / 1e6,
        copies_pb: (staged + wire + stats.bytes_copied) as f64 / stats.bytes_accepted as f64,
        staged,
    }
}

/// Child role: pure initiator process. Lane policy (eager threshold,
/// bulk region) arrives via the segment header at connect. The forced
/// zero-copy lane (`eager_threshold == 0`) runs the registered-extent
/// path: a ring of extents filled once up front, each put a bare RTS
/// descriptor — the RDMA-style "send repeatedly from registered memory"
/// bandwidth discipline (cf. `ib_send_bw`). The other lanes go through
/// `put_at` (stage-and-fragment below the threshold, staged rendezvous
/// above it).
fn bulk_child(args: &[String]) {
    let path = std::path::PathBuf::from(&args[0]);
    let puts: usize = args[1].parse().expect("puts");
    let size: usize = args[2].parse().expect("size");
    let client = ShmClient::connect(&path, CLIENT).expect("connect to segment");
    let start;
    if client.eager_threshold() == 0 && size > 0 {
        // Registered ring deep enough to pipeline, shallow enough to
        // leave buddy-allocator slack (extents are pow2-rounded).
        let depth = (WINDOW_BYTES as usize / size.next_power_of_two()).clamp(1, 64);
        let ring: Vec<_> = (0..depth.min(puts))
            .map(|_| {
                let mut ext = client.reserve_extent(size).expect("bulk region exhausted");
                ext.as_mut_slice().fill(0xB5);
                ext
            })
            .collect();
        // Burst a ring's worth of descriptors, then flush: the barrier
        // both paces the pipeline and proves every extent in the ring is
        // gathered (ack'd) before its next reuse. Sleeping in the flush
        // instead of spinning on per-put futures matters on small hosts,
        // where a polling initiator steals cycles from the gather.
        start = Instant::now();
        let mut k = 0;
        while k < puts {
            let burst = ring.len().min(puts - k);
            for ext in ring.iter().take(burst) {
                // The flush barrier is the completion signal; the
                // per-put future is deliberately dropped.
                drop(
                    client
                        .put_from_extent(ext, SERVER, MAILBOX, k * size)
                        .expect("put"),
                );
                k += 1;
            }
            client.flush().expect("burst flush");
        }
    } else {
        let payload = vec![0xB5u8; size];
        start = Instant::now();
        for k in 0..puts {
            client
                .put_at(SERVER, MAILBOX, k * size, &payload)
                .expect("put");
        }
    }
    // The flush ack certifies every put reached its final disposition
    // server-side — the child-owned clock ends on delivered bytes, not
    // on locally-queued ones.
    client.flush().expect("final flush");
    println!("elapsed_ns={}", start.elapsed().as_nanos());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--bulk-child") {
        bulk_child(&args[pos + 1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    // Single-cell filters (debug/profiling aid): --backend <name>,
    // --lane <frag|adaptive|zerocopy>, --size <bytes>.
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|p| args[p + 1].clone())
    };
    let only_backend = flag("--backend");
    let only_lane = flag("--lane");
    let only_size: Option<usize> = flag("--size").map(|s| s.parse().expect("size"));
    let (sizes, total_per_cell): (&[usize], usize) = if quick {
        (&[64 << 10, 256 << 10], 8 << 20)
    } else {
        (
            &[4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20],
            64 << 20,
        )
    };
    let backends: &[&str] = &["inline-lossy", "threaded", "shm"];

    println!(
        "large-message goodput: one initiator, single byte-threshold epoch per cell, \
         MTU {MTU}, bulk region {} MiB\n\
         lanes: frag = forced fragmentation (threshold MAX), adaptive = default \
         threshold ({} B), zerocopy = threshold 0 (registered extents over shm)\n",
        BULK_BYTES >> 20,
        EndpointConfig::default().eager_threshold,
    );

    let headers = [
        "backend",
        "size_B",
        "lane",
        "puts",
        "goodput_MBps",
        "copies_per_byte",
        "speedup_vs_frag",
    ];
    let mut rows = Vec::new();
    for &backend in backends {
        if backend == "shm" && !shm_supported() {
            eprintln!("bulk_bw: skipping shm backend (unsupported platform)");
            continue;
        }
        if only_backend.as_deref().is_some_and(|b| b != backend) {
            continue;
        }
        for &size in sizes {
            if only_size.is_some_and(|s| s != size) {
                continue;
            }
            let puts = (total_per_cell / size).max(4);
            let mut frag_base = None;
            for lane in Lane::ALL {
                if only_lane.as_deref().is_some_and(|l| l != lane.name()) {
                    continue;
                }
                let cell = if backend == "shm" {
                    run_shm(lane, size, puts)
                } else {
                    run_inproc(backend, lane, size, puts)
                };
                let base = *frag_base.get_or_insert(cell.goodput_mbps);
                if quick && backend == "threaded" && lane == Lane::ZeroCopy {
                    assert_eq!(
                        cell.staged, 0,
                        "threaded zero-copy lane staged bytes (must be none)"
                    );
                    assert_eq!(
                        cell.copies_pb, 1.0,
                        "threaded zero-copy lane must be exactly one copy per byte"
                    );
                }
                if quick && backend == "shm" && lane == Lane::ZeroCopy {
                    // wire_copied and the receiver gather are live
                    // counters: a reintroduced slot-stage or double
                    // gather fails here, not just in the numbers.
                    assert_eq!(
                        cell.copies_pb, 1.0,
                        "shm registered-extent lane must be exactly one copy per byte"
                    );
                }
                rows.push(vec![
                    backend.to_string(),
                    size.to_string(),
                    lane.name().to_string(),
                    puts.to_string(),
                    format!("{:.0}", cell.goodput_mbps),
                    format!("{:.2}", cell.copies_pb),
                    format!("{:.2}x", cell.goodput_mbps / base),
                ]);
            }
        }
    }
    print_table(&headers, &rows);
    println!(
        "\nGoodput = payload bytes landed / wall clock (byte-threshold completion).\n\
         copies_per_byte = (initiator staging + wire staging + receiver gather) / bytes \
         accepted;\n\
         the receiver gather is the one copy no lane can avoid. shm rows count the \
         client's\n\
         segment write analytically (the counter lives in the child process); the \
         registered\n\
         zerocopy lane stages nothing, its one-time ring fill being setup like any \
         lane's\n\
         payload allocation.\n\
         speedup_vs_frag = vs the forced-fragmentation lane at the same backend and size."
    );
    if !quick {
        match write_csv("bulk_bw", &headers, &rows) {
            Ok(p) => println!("csv: {p}"),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
