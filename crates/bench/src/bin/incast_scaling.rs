//! Wire-worker scaling on an 8-way incast to disjoint mailboxes.
//!
//! The seed's `AsyncNetwork` ran a single wire thread: every fragment of
//! every flow serialized through one queue, so an incast to *disjoint*
//! mailboxes — the workload RVMA's per-mailbox addressing is supposed to
//! keep independent — was throttled to one delivery at a time. The sharded
//! LUT, copy-outside-the-lock mailbox delivery, and per-mailbox-sharded
//! worker pool remove every shared lock from that path; this binary
//! measures the payoff.
//!
//! Setup: 8 senders, each streaming puts to its own mailbox on one server
//! endpoint, through `AsyncNetwork::with_options(.., workers)` with a fixed
//! per-fragment wire latency (modelling the per-packet cost of a real NIC
//! pipeline). Sweeping workers ∈ {1, 2, 4, 8} reports delivered GB/s and
//! epoch completions/s; `speedup` is against the 1-worker baseline.
//!
//! Run with `--quick` for a single-iteration CI smoke (tiny message count,
//! no CSV).

use rvma_bench::{print_table, write_csv};
use rvma_core::transport::DeliveryOrder;
use rvma_core::{AsyncNetwork, NodeAddr, Threshold, VirtAddr};
use std::time::{Duration, Instant};

const SENDERS: usize = 8;

struct Config {
    /// Puts per sender; each put completes one epoch on its mailbox.
    puts: usize,
    /// Bytes per put.
    msg_bytes: usize,
    /// Wire MTU (each put fragments into msg_bytes / mtu packets).
    mtu: usize,
    /// Fixed per-fragment wire latency.
    latency: Duration,
}

struct Sample {
    gbps: f64,
    completions_per_s: f64,
}

fn run_incast(cfg: &Config, workers: usize) -> Sample {
    let net = AsyncNetwork::with_options(cfg.mtu, DeliveryOrder::InOrder, cfg.latency, workers);
    let server = net.add_endpoint(NodeAddr::node(0));

    // One mailbox per sender, pre-loaded with one buffer per put so every
    // put completes an epoch with no reposting on the timed path.
    let mut notes = Vec::with_capacity(SENDERS);
    for i in 0..SENDERS {
        let win = server
            .init_window(
                VirtAddr::new(i as u64),
                Threshold::bytes(cfg.msg_bytes as u64),
            )
            .expect("window");
        let bufs = vec![vec![0u8; cfg.msg_bytes]; cfg.puts];
        notes.push(win.post_buffers(bufs).expect("post"));
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for i in 0..SENDERS {
            let init = net.initiator(NodeAddr::node(i as u32 + 1));
            let payload = vec![i as u8 + 1; cfg.msg_bytes];
            s.spawn(move || {
                for _ in 0..cfg.puts {
                    init.put(NodeAddr::node(0), VirtAddr::new(i as u64), &payload)
                        .expect("put");
                }
            });
        }
    });
    // Senders returned the moment their fragments were queued; wait for
    // every epoch completion (written by the wire workers).
    for sender_notes in &mut notes {
        for n in sender_notes.iter_mut() {
            let buf = n.wait();
            assert_eq!(buf.len(), cfg.msg_bytes, "lost bytes");
        }
    }
    let elapsed = start.elapsed();

    let completions = (SENDERS * cfg.puts) as f64;
    let bytes = completions * cfg.msg_bytes as f64;
    let secs = elapsed.as_secs_f64();
    Sample {
        gbps: bytes / secs / 1e9,
        completions_per_s: completions / secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            puts: 2,
            msg_bytes: 2048,
            mtu: 1024,
            latency: Duration::from_micros(20),
        }
    } else {
        Config {
            puts: 32,
            msg_bytes: 4096,
            mtu: 1024,
            latency: Duration::from_micros(50),
        }
    };

    println!(
        "8-way incast to disjoint mailboxes: {} puts/sender x {} B, MTU {}, {:?}/fragment wire latency\n",
        cfg.puts, cfg.msg_bytes, cfg.mtu, cfg.latency
    );

    let headers = ["workers", "GB/s", "completions/s", "speedup"];
    let mut rows = Vec::new();
    let mut baseline_gbps = None;
    for workers in [1usize, 2, 4, 8] {
        let sample = run_incast(&cfg, workers);
        let base = *baseline_gbps.get_or_insert(sample.gbps);
        rows.push(vec![
            workers.to_string(),
            format!("{:.4}", sample.gbps),
            format!("{:.0}", sample.completions_per_s),
            format!("{:.2}x", sample.gbps / base),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nEvery fragment pays the same wire latency; with the datapath lock-free\n\
         across mailboxes, N workers overlap N fragments in flight."
    );
    if !quick {
        match write_csv("incast_scaling", &headers, &rows) {
            Ok(p) => println!("csv: {p}"),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
