//! Fig. 5 — RVMA vs. RDMA put latency over UCX/UCP
//! (ConnectX-5 EDR / ThunderX2 model), 10 runs × 100,000 iterations with
//! standard-deviation error bars. Paper headline: 45.8 % latency reduction.

use rvma_bench::{print_table, write_csv};
use rvma_microbench::{latency_figure, ucx_connectx5};

fn main() {
    let model = ucx_connectx5();
    let rows = latency_figure(&model, 10, 5);

    println!("Fig. 5 — RVMA vs RDMA latency, UCX ({})", model.name);
    println!("(RDMA = UCP put + send/recv completion; mean ± stddev of 10 runs)\n");
    let headers = ["size(B)", "RDMA(ns)", "±sd", "RVMA(ns)", "±sd", "reduction"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{:.0}", r.rdma_ns),
                format!("{:.0}", r.rdma_sd),
                format!("{:.0}", r.rvma_ns),
                format!("{:.0}", r.rvma_sd),
                format!("{:.1}%", r.reduction * 100.0),
            ]
        })
        .collect();
    print_table(&headers, &table);

    let peak = rows.iter().map(|r| r.reduction).fold(0.0f64, f64::max);
    println!(
        "\npeak latency reduction: {:.1}% (paper: 45.8%)",
        peak * 100.0
    );
    match write_csv("fig5_ucx_latency", &headers, &table) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
