//! Single-put round-trip latency through the threaded datapath.
//!
//! One client, one server mailbox, one wire worker, zero modeled wire
//! latency: each iteration pre-posts a pooled buffer, issues one `put_at`,
//! and stamps the time until `Notification::wait` returns — so the
//! measurement is the full submission → ring → delivery → completing
//! write → wake chain and nothing else. Every sample is kept; the
//! percentiles are computed from the full sorted vector, because the
//! datapath rework (bounded rings, adaptive spin/park workers, lock-free
//! completion handoff) targets exactly the tail that means and medians
//! hide.
//!
//! Two configurations share the identical delivery fabric:
//!
//! * `tuned`    — the current datapath: bounded wire rings with a spin →
//!   yield → park idle policy on the workers, and the lock-free
//!   spin-then-park completion slot.
//! * `baseline` — the pre-rework behavior, recreated through config: an
//!   effectively unbounded ring (cap 2^20), workers that park immediately
//!   when the ring is empty (a futex wake per message, like the old
//!   channel), and `notify_baseline` (mutex + unconditional
//!   `notify_all` completion, no waiter spin phase).
//!
//! A third lane, `async`, shares the tuned fabric but completes through
//! the Future/Waker path: the receiver pre-posts with
//! `post_pooled_async` and `block_on`s the returned future. Against
//! `tuned` it bounds the async machinery's single-op overhead — the waker
//! handoff replaces the notification slot's spin-then-park wait, so a
//! lone blocking op may pay one futex round-trip the spinning path
//! avoids; the async lane buys scalability (thousands of cheap parked
//! futures), not single-op latency.
//!
//! A fourth lane, `--shm`, leaves the process: the receiver is this
//! binary re-exec'd as a shared-memory [`ShmServer`] (`--shm-child`
//! role), and each sample times `put_notify_at` → `block_on` on the
//! [`ShmClient`]. Unlike the in-process lanes (timed to the completing
//! write), the shm sample is a full **round trip**: request ring →
//! cross-process delivery → `PutDone` response ring → future wake — the
//! honest unit of cost for a cross-process initiator, which cannot
//! observe the remote completing write directly.
//!
//! Flags: `--quick` (tiny CI smoke, no CSV), `--baseline` / `--tuned` /
//! `--async` (run only that configuration), `--shm` (run only the
//! cross-process lane). Default runs the three in-process lanes and
//! writes `results/put_latency.csv`.

use rvma_bench::{print_table, write_csv};
use rvma_core::transport::DeliveryOrder;
use rvma_core::{
    shm_supported, AsyncNetwork, EndpointConfig, NodeAddr, ShmClient, ShmServer, Threshold,
    VirtAddr, DEFAULT_MTU,
};
use std::time::{Duration, Instant};

/// 8 B – 4 KiB: below, at, and above the 2 KiB MTU (the last two sizes
/// cross from the inline single-fragment path into the batched path).
const SIZES: [usize; 5] = [8, 64, 512, 2048, 4096];

fn config_for(baseline: bool) -> EndpointConfig {
    if baseline {
        EndpointConfig {
            wire_queue_cap: 1 << 20,
            wire_idle_spins: 0,
            wire_idle_yields: 0,
            notify_baseline: true,
            ..EndpointConfig::default()
        }
    } else {
        EndpointConfig::default()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Lane {
    Baseline,
    Tuned,
    /// Tuned fabric, Future/Waker completion: `post_pooled_async` +
    /// `block_on` instead of `Notification::wait`.
    Async,
}

/// All measured round-trip samples (ns), in issue order.
fn run(size: usize, warmup: usize, iters: usize, lane: Lane) -> Vec<u64> {
    let net = AsyncNetwork::for_endpoint_config(
        DEFAULT_MTU,
        DeliveryOrder::InOrder,
        Duration::ZERO,
        &config_for(lane == Lane::Baseline),
    );
    let server = net.add_endpoint(NodeAddr::node(0));
    let client = net.initiator(NodeAddr::node(1));
    let vaddr = VirtAddr::new(1);
    let win = server
        .init_window(vaddr, Threshold::bytes(size as u64))
        .expect("window");
    let payload = vec![0xA5u8; size];

    let mut samples = Vec::with_capacity(iters);
    for i in 0..warmup + iters {
        // Pre-post (receiver-side work, outside the timed region); the
        // pool recycles the previous epoch's allocation.
        let elapsed = if lane == Lane::Async {
            let fut = win.post_pooled_async(size).expect("post");
            let start = Instant::now();
            client
                .put_at(NodeAddr::node(0), vaddr, 0, &payload)
                .expect("put");
            let buf = pollster::block_on(fut);
            let elapsed = start.elapsed();
            debug_assert_eq!(buf.len(), size);
            elapsed
        } else {
            let mut note = win.post_pooled(size).expect("post");
            let start = Instant::now();
            client
                .put_at(NodeAddr::node(0), vaddr, 0, &payload)
                .expect("put");
            let buf = note.wait();
            let elapsed = start.elapsed();
            debug_assert_eq!(buf.len(), size);
            elapsed
        };
        if i >= warmup {
            samples.push(elapsed.as_nanos() as u64);
        }
    }
    samples
}

/// The `--shm` lane: round-trip samples (ns) against a receiver in a
/// separate OS process. The child owns the segment and the mailbox; the
/// parent connects, then times `put_notify_at` → `block_on` per
/// iteration — submission, request-ring crossing, remote delivery,
/// `PutDone` response, and the future wake, all in one number.
fn run_shm(size: usize, warmup: usize, iters: usize) -> Vec<u64> {
    let total = (warmup + iters) as u64;
    let path = rvma_core::shm::default_segment_path("lat");
    let exe = std::env::current_exe().expect("bench binary path");
    let mut child = std::process::Command::new(exe)
        .arg("--shm-child")
        .arg(&path)
        .arg(total.to_string())
        .arg(size.to_string())
        .spawn()
        .expect("spawn shm receiver process");
    // `connect` retries until the child publishes the segment (≤ 10 s).
    let client = ShmClient::connect(&path, NodeAddr::node(1)).expect("connect to segment");
    let dest = NodeAddr::node(0);
    let vaddr = VirtAddr::new(1);
    let payload = vec![0xA5u8; size];

    // The segment turns READY before the child's mailboxes exist; probe
    // the handshake mailbox (which the child posts *after* the measured
    // one) until a put lands, so the timed loop never sees a NACK.
    loop {
        let fut = client
            .put_notify_at(dest, VirtAddr::new(2), 0, &[1u8])
            .expect("probe");
        if !pollster::block_on(fut).nacked {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = client.take_nacks();

    let mut samples = Vec::with_capacity(iters);
    for i in 0..warmup + iters {
        let start = Instant::now();
        let fut = client.put_notify_at(dest, vaddr, 0, &payload).expect("put");
        let delivery = pollster::block_on(fut);
        let elapsed = start.elapsed();
        assert!(!delivery.nacked, "put NACKed mid-measurement");
        if i >= warmup {
            samples.push(elapsed.as_nanos() as u64);
        }
    }
    // No trailing flush: every sample already round-tripped, and the
    // child tears the segment down as soon as its epoch completes.
    drop(client);
    assert!(
        child.wait().expect("child exit").success(),
        "receiver process failed"
    );
    samples
}

/// Child role of the `--shm` lane: pure receiver process. Owns the
/// segment, posts one op-threshold epoch spanning the whole run, and
/// exits when it completes. Args: `<path> <total_ops> <size>`.
fn shm_child(args: &[String]) {
    let path = std::path::PathBuf::from(&args[0]);
    let total: u64 = args[1].parse().expect("total ops");
    let size: usize = args[2].parse().expect("size");
    let server = ShmServer::create(&path, DEFAULT_MTU, EndpointConfig::default()).expect("segment");
    let ep = server.add_endpoint(NodeAddr::node(0));
    let win = ep
        .init_window(VirtAddr::new(1), Threshold::ops(total))
        .expect("window");
    let mut note = win.post_buffer(vec![0u8; size.max(1)]).expect("post");
    // Handshake mailbox, posted only once the measured window is live:
    // the parent probes it to know the receiver is ready.
    let ready = ep
        .init_window(VirtAddr::new(2), Threshold::ops(1))
        .expect("handshake window");
    let _ready_note = ready.post_buffer(vec![0u8; 8]).expect("handshake post");
    note.wait();
}

/// Nearest-rank percentile of an already-sorted sample vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Summary {
    p50: u64,
    p90: u64,
    p99: u64,
    p999: u64,
    min: u64,
    mean: u64,
}

fn summarize(mut samples: Vec<u64>) -> Summary {
    samples.sort_unstable();
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    Summary {
        p50: percentile(&samples, 0.50),
        p90: percentile(&samples, 0.90),
        p99: percentile(&samples, 0.99),
        p999: percentile(&samples, 0.999),
        min: samples[0],
        mean,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--shm-child") {
        shm_child(&args[pos + 1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let only_baseline = args.iter().any(|a| a == "--baseline");
    let only_tuned = args.iter().any(|a| a == "--tuned");
    let only_async = args.iter().any(|a| a == "--async");
    let only_shm = args.iter().any(|a| a == "--shm");
    let (warmup, iters) = if quick { (50, 300) } else { (2_000, 20_000) };

    if only_shm {
        if !shm_supported() {
            println!(
                "put_latency --shm: shared-memory transport unsupported on this platform; skipping"
            );
            return;
        }
        println!(
            "cross-process put round-trip (--shm): {iters} samples/cell after {warmup} warmup, \
             MTU {DEFAULT_MTU}, receiver in a separate OS process\n"
        );
        let headers = [
            "config", "size_B", "iters", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "min_ns",
            "mean_ns",
        ];
        let mut rows = Vec::new();
        for &size in &SIZES {
            let s = summarize(run_shm(size, warmup, iters));
            rows.push(vec![
                "shm".to_string(),
                size.to_string(),
                iters.to_string(),
                s.p50.to_string(),
                s.p90.to_string(),
                s.p99.to_string(),
                s.p999.to_string(),
                s.min.to_string(),
                s.mean.to_string(),
            ]);
        }
        print_table(&headers, &rows);
        println!(
            "\nEach sample is a full round trip (request ring -> cross-process delivery -> \
             PutDone response -> future wake); not comparable 1:1 with the in-process lanes, \
             which stop the clock at the completing write."
        );
        if !quick {
            match write_csv("put_latency_shm", &headers, &rows) {
                Ok(p) => println!("csv: {p}"),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
        return;
    }

    let configs: &[(&str, Lane)] = match (only_baseline, only_tuned, only_async) {
        (true, false, false) => &[("baseline", Lane::Baseline)],
        (false, true, false) => &[("tuned", Lane::Tuned)],
        (false, false, true) => &[("async", Lane::Async)],
        _ => &[
            ("baseline", Lane::Baseline),
            ("tuned", Lane::Tuned),
            ("async", Lane::Async),
        ],
    };

    println!(
        "single-put round-trip latency: {iters} samples/cell after {warmup} warmup, \
         MTU {DEFAULT_MTU}, zero wire latency, 1 worker\n"
    );

    let headers = [
        "config", "size_B", "iters", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "min_ns", "mean_ns",
    ];
    let mut rows = Vec::new();
    // (size, baseline, tuned, async) — whichever lanes ran.
    type Cell = (usize, Option<Summary>, Option<Summary>, Option<Summary>);
    let mut per_size: Vec<Cell> = Vec::new();
    for &size in &SIZES {
        let mut cell: Cell = (size, None, None, None);
        for &(name, lane) in configs {
            let s = summarize(run(size, warmup, iters, lane));
            rows.push(vec![
                name.to_string(),
                size.to_string(),
                iters.to_string(),
                s.p50.to_string(),
                s.p90.to_string(),
                s.p99.to_string(),
                s.p999.to_string(),
                s.min.to_string(),
                s.mean.to_string(),
            ]);
            match lane {
                Lane::Baseline => cell.1 = Some(s),
                Lane::Tuned => cell.2 = Some(s),
                Lane::Async => cell.3 = Some(s),
            }
        }
        per_size.push(cell);
    }
    print_table(&headers, &rows);

    // A/B verdicts for whichever pairs ran.
    if per_size
        .iter()
        .any(|(_, b, t, _)| b.is_some() && t.is_some())
    {
        println!("\ntuned vs baseline (same fabric, config-only difference):");
        for (size, baseline, tuned, _) in &per_size {
            let (Some(b), Some(t)) = (baseline, tuned) else {
                continue;
            };
            println!(
                "  {size:>5} B: p50 {:.2}x, p99 {:.2}x, p999 {:.2}x  (baseline/tuned; >1 = tuned faster)",
                b.p50 as f64 / t.p50 as f64,
                b.p99 as f64 / t.p99 as f64,
                b.p999 as f64 / t.p999 as f64,
            );
        }
    }
    if per_size
        .iter()
        .any(|(_, _, t, a)| t.is_some() && a.is_some())
    {
        println!(
            "\nasync vs tuned (same fabric; async-path single-op overhead, <1 = async slower):"
        );
        for (size, _, tuned, async_) in &per_size {
            let (Some(t), Some(a)) = (tuned, async_) else {
                continue;
            };
            println!(
                "  {size:>5} B: p50 {:.2}x, p99 {:.2}x  (tuned/async)",
                t.p50 as f64 / a.p50 as f64,
                t.p99 as f64 / a.p99 as f64,
            );
        }
    }

    if !quick {
        match write_csv("put_latency", &headers, &rows) {
            Ok(p) => println!("\ncsv: {p}"),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
