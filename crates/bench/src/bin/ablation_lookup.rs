//! Ablation — lookup mechanism: RVMA's single-lookup table vs. a
//! Portals-style ordered wildcard match list (paper Secs. II / IV-A).
//!
//! The paper's argument: MPI-style matching "involves significantly more
//! complex message matching hardware than a known single lookup resolution
//! in RVMA". We quantify the software analogue: entries examined (and wall
//! time) per lookup as the posted-list depth grows, with the matching
//! entry placed at the list tail (the adversarial-but-common case of a
//! receiver servicing its oldest posts first).

use rvma_bench::{print_table, write_csv};
use rvma_core::{MatchEntry, MatchList, NodeAddr, RvmaEndpoint, Threshold, VirtAddr};
use std::time::Instant;

fn lut_lookup_cost(entries: u64, lookups: u64) -> f64 {
    let ep = RvmaEndpoint::new(NodeAddr::node(0));
    let mut keep = Vec::new();
    for i in 0..entries {
        keep.push(
            ep.init_window(VirtAddr::new(i), Threshold::bytes(64))
                .expect("window"),
        );
    }
    let t0 = Instant::now();
    let mut found = 0u64;
    for k in 0..lookups {
        if ep.mailbox(VirtAddr::new(k % entries)).is_some() {
            found += 1;
        }
    }
    let dt = t0.elapsed();
    assert_eq!(found, lookups);
    dt.as_nanos() as f64 / lookups as f64
}

fn matchlist_lookup_cost(entries: u64, lookups: u64) -> (f64, f64) {
    // Re-fill and resolve the tail entry each round (entries are use-once).
    let mut total_ns = 0.0;
    let mut list = MatchList::new();
    let rounds = lookups.min(256);
    for _ in 0..rounds {
        for i in 0..entries {
            list.post(MatchEntry {
                source: Some(NodeAddr::node(1)),
                match_bits: i,
                ignore_bits: 0,
                buffer_id: i,
            });
        }
        let t0 = Instant::now();
        let hit = list.resolve(NodeAddr::node(1), entries - 1);
        total_ns += t0.elapsed().as_nanos() as f64;
        assert!(hit.is_some());
        // Drain the rest so the next round starts clean.
        while list.resolve(NodeAddr::node(1), u64::MAX).is_some() {}
        list = MatchList::new();
    }
    (total_ns / rounds as f64, entries as f64)
}

fn main() {
    println!("Ablation — single-lookup LUT vs Portals-style ordered matching\n");
    let headers = [
        "posted entries",
        "LUT ns/lookup",
        "matchlist ns/lookup",
        "entries scanned",
    ];
    let mut rows = Vec::new();
    for entries in [16u64, 64, 256, 1024, 4096] {
        let lut = lut_lookup_cost(entries, 100_000);
        let (ml, scanned) = matchlist_lookup_cost(entries, 100_000);
        rows.push(vec![
            entries.to_string(),
            format!("{lut:.1}"),
            format!("{ml:.1}"),
            format!("{scanned:.0}"),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nLUT cost is flat (hash lookup); match-list cost grows linearly with\n\
         posted depth — the hardware-complexity contrast of paper Sec. IV-A."
    );
    match write_csv("ablation_lookup", &headers, &rows) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
