//! Fig. 7 — Sweep3D motif, RVMA vs. RDMA across topologies, routing
//! strategies, and link speeds (100 Gb … 2 Tb).
//!
//! Paper headlines: RVMA ≥ 2× on contemporary adaptively-routed networks,
//! 4.4× at 2 Tbps on the adaptive dragonfly, 3.56× average across the
//! matrix. Paper scale: 8,192 nodes × 32 cores; default here is a
//! laptop-scale 64-node grid (`--nodes N` / `--full-scale` to grow it —
//! speedup ratios are per-message effects and stabilize at small scale).

use rvma_bench::{motif_matrix, print_table, write_csv, SweepConfig};
use rvma_motifs::{Sweep3dConfig, Sweep3dNode};
use rvma_net::router::RoutingKind;
use rvma_nic::{HostLogic, NicConfig};
use rvma_sim::SimTime;

fn main() {
    let cfg = SweepConfig::from_args(std::env::args().skip(1));
    let grid = rvma_bench::factor2(cfg.nodes);
    let motif = Sweep3dConfig {
        pgrid: grid,
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    };
    println!(
        "Fig. 7 — Sweep3D ({}x{} grid = {} nodes, {} z-blocks/octant, 8 octants)\n",
        grid[0],
        grid[1],
        cfg.nodes,
        motif.blocks()
    );

    let cells = motif_matrix(&cfg, NicConfig::default(), |n| {
        Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
    });

    let headers = [
        "topology", "routing", "link", "RDMA(us)", "RVMA(us)", "speedup",
    ];
    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.family.to_string(),
                c.routing.to_string(),
                format!("{}G", c.gbps),
                format!("{:.1}", c.rdma.makespan_us()),
                format!("{:.1}", c.rvma.makespan_us()),
                format!("{:.2}x", c.speedup),
            ]
        })
        .collect();
    print_table(&headers, &table);

    let avg: f64 = cells.iter().map(|c| c.speedup).sum::<f64>() / cells.len() as f64;
    let best = cells
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("non-empty matrix");
    let adaptive_2t = cells
        .iter()
        .filter(|c| c.routing == RoutingKind::Adaptive && c.gbps == 2000)
        .map(|c| c.speedup)
        .fold(0.0f64, f64::max);
    println!("\naverage speedup: {avg:.2}x (paper: 3.56x)");
    println!(
        "best cell: {} {} {}G at {:.2}x (paper best: adaptive dragonfly 2T, 4.4x)",
        best.family, best.routing, best.gbps, best.speedup
    );
    if adaptive_2t > 0.0 {
        println!("best adaptive @2Tbps: {adaptive_2t:.2}x");
    }
    match write_csv("fig7_sweep3d", &headers, &table) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
