//! Fig. 6 — UCX amortization analysis: how many data exchanges are needed
//! before RDMA's one-time buffer setup (registration + address exchange)
//! is amortized to within the latency test's 3 % margin of error.
//!
//! RVMA needs zero: transfers begin without any buffer coordination.

use rvma_bench::{print_table, write_csv};
use rvma_microbench::{amortization_figure, ucx_connectx5};

fn main() {
    let model = ucx_connectx5();
    let tolerance = 0.03;
    let rows = amortization_figure(&model, tolerance);

    println!(
        "Fig. 6 — exchanges needed to amortize RDMA buffer setup ({}, {:.0}% margin)",
        model.name,
        tolerance * 100.0
    );
    println!(
        "(setup = registration {} + address exchange RTT; RVMA needs 0 exchanges)\n",
        model.registration
    );
    let headers = ["size(B)", "static-routing", "adaptive-routing", "RVMA"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                r.exchanges_static.to_string(),
                r.exchanges_adaptive.to_string(),
                "0".to_string(),
            ]
        })
        .collect();
    print_table(&headers, &table);

    println!(
        "\nsmall-message worst case: {} exchanges (paper: \"a large number of \
         exchanges are needed to amortize away setup costs\")",
        rows[0].exchanges_static
    );
    match write_csv("fig6_amortization", &headers, &table) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
