//! Ablation — RVMA NIC threshold-counter capacity.
//!
//! The paper (Sec. III-B): completion counters live on the NIC, one per
//! virtual address with an active buffer; "in cases where the NIC counters
//! are fully occupied, host memory can be used, albeit with a potentially
//! significant performance penalty" (~200 ns host-bus round trip today,
//! ~10 ns with PCIe Gen 6).
//!
//! Workload: an incast — 15 senders each stream 32 messages at one
//! receiver, so up to 15 messages are concurrently tracked. Sweeping the
//! counter capacity shows the spill penalty appearing as capacity drops
//! below the concurrency.

use rvma_bench::{print_table, write_csv};
use rvma_motifs::MOTIF_DONE_HIST;
use rvma_net::fabric::FabricConfig;
use rvma_net::router::RoutingKind;
use rvma_net::topology::star;
use rvma_nic::{build_cluster, HostLogic, NicConfig, Protocol, RecvInfo, TermApi};
use rvma_sim::{Engine, SimTime};

const SENDERS: u32 = 15;
const MSGS_PER_SENDER: usize = 32;
const MSG_BYTES: u64 = 8192;

struct IncastSender;
impl HostLogic for IncastSender {
    fn on_start(&mut self, api: &mut TermApi<'_, '_>) {
        for _ in 0..MSGS_PER_SENDER {
            api.send(0, 0x1000, MSG_BYTES);
        }
        let now = api.now();
        api.record_time(MOTIF_DONE_HIST, now);
        api.count("motif.nodes_done");
    }
    fn on_recv(&mut self, _m: RecvInfo, _api: &mut TermApi<'_, '_>) {}
}

struct IncastReceiver {
    got: usize,
}
impl HostLogic for IncastReceiver {
    fn on_start(&mut self, _api: &mut TermApi<'_, '_>) {}
    fn on_recv(&mut self, _m: RecvInfo, api: &mut TermApi<'_, '_>) {
        self.got += 1;
        if self.got == SENDERS as usize * MSGS_PER_SENDER {
            let now = api.now();
            api.record("incast.done_us", now.as_us_f64());
        }
    }
}

fn run(capacity: Option<usize>) -> (f64, u64) {
    let spec = star(SENDERS + 1, RoutingKind::Adaptive);
    let ncfg = NicConfig {
        rvma_counter_capacity: capacity,
        ..Default::default()
    };
    let mut engine = Engine::new(11);
    build_cluster(
        &mut engine,
        &spec,
        &FabricConfig::at_gbps(100),
        ncfg,
        Protocol::Rvma,
        |n| {
            if n == 0 {
                Box::new(IncastReceiver { got: 0 }) as Box<dyn HostLogic>
            } else {
                Box::new(IncastSender) as Box<dyn HostLogic>
            }
        },
    );
    engine.run_to_completion();
    let done = engine
        .stats()
        .get_histogram("incast.done_us")
        .and_then(|h| h.max())
        .expect("incast completed");
    (done, engine.stats().counter_value("nic.counter_spills"))
}

fn main() {
    println!(
        "Ablation — RVMA counter capacity ({} senders x {} msgs of {} B incast)\n",
        SENDERS, MSGS_PER_SENDER, MSG_BYTES
    );
    let headers = ["capacity", "incast-finish(us)", "spilled-completions"];
    let mut rows = Vec::new();
    for cap in [None, Some(64usize), Some(16), Some(8), Some(4), Some(0)] {
        let (done, spills) = run(cap);
        rows.push(vec![
            cap.map_or("unbounded".to_string(), |c| c.to_string()),
            format!("{done:.1}"),
            spills.to_string(),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\n(penalty per spilled completion: one host-bus round trip = {})",
        SimTime::from_ns(300)
    );
    match write_csv("ablation_counters", &headers, &rows) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
