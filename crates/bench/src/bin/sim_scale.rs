//! Engine-scaling benchmark: events/sec of the sharded parallel engine on
//! Sweep3D, across cluster sizes and thread counts.
//!
//! This is the PR's tentpole measurement: the conservative-window engine
//! exists so the paper's full-scale 8,192-node fabrics are simulable in
//! reasonable wall time. Each cell runs the same Sweep3D workload on a
//! fat-tree sized for `nodes` and reports the median-of-`reps` wall time
//! and event throughput, plus the speedup over the 1-thread run of the
//! same engine (same shard count, so results are bit-identical — only the
//! wall clock changes).
//!
//! Flags: `--nodes 512,2048,8192`, `--threads 1,2,4,8`, `--reps 5`,
//! `--quick` (CI smoke: one small size, 1–2 threads, single rep).
//! Writes `results/sim_scale.csv`.

use rvma_bench::{print_table, topology_for, write_csv, TopologyFamily};
use rvma_motifs::{build_motif_engine, IdleNode, Sweep3dConfig, Sweep3dNode};
use rvma_net::fabric::FabricConfig;
use rvma_net::router::RoutingKind;
use rvma_nic::{HostLogic, NicConfig, Protocol};
use rvma_sim::{SimConfig, SimTime};
use std::time::Instant;

struct Args {
    nodes: Vec<u32>,
    threads: Vec<usize>,
    reps: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        nodes: vec![512, 2048, 8192],
        threads: vec![1, 2, 4, 8],
        reps: 5,
        seed: 42,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--nodes" => {
                a.nodes = val("--nodes")
                    .split(',')
                    .map(|s| s.parse().expect("--nodes: u32 list"))
                    .collect()
            }
            "--threads" => {
                a.threads = val("--threads")
                    .split(',')
                    .map(|s| s.parse().expect("--threads: usize list"))
                    .collect()
            }
            "--reps" => a.reps = val("--reps").parse().expect("--reps: usize"),
            "--seed" => a.seed = val("--seed").parse().expect("--seed: u64"),
            "--quick" => {
                a.nodes = vec![128];
                a.threads = vec![1, 2];
                a.reps = 1;
            }
            other => {
                panic!("unknown flag {other}; flags: --nodes --threads --reps --seed --quick")
            }
        }
    }
    assert!(a.reps >= 1, "--reps must be >= 1");
    a
}

/// One timed run; returns (simulated events, wall seconds).
fn run_once(nodes: u32, threads: usize, seed: u64) -> (u64, f64) {
    let grid = rvma_bench::factor2(nodes);
    let motif = Sweep3dConfig {
        pgrid: grid,
        cells: [16, 16, 64],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 2,
    };
    let spec = topology_for(TopologyFamily::FatTree, RoutingKind::Adaptive, nodes);
    let fcfg = FabricConfig::at_gbps(400);
    // Shards fixed at 64 regardless of thread count, so every cell of a
    // size runs the identical simulation and only wall time varies.
    let mut sim = SimConfig::new(threads, SimTime::MAX);
    sim.shards = 64;
    let (mut eng, _n) = build_motif_engine(
        &spec,
        &fcfg,
        NicConfig::default(),
        Protocol::Rvma,
        seed,
        sim,
        |n| {
            if n < nodes {
                Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
            } else {
                Box::new(IdleNode) as Box<dyn HostLogic>
            }
        },
    );
    let t0 = Instant::now();
    let events = eng.run_to_completion();
    (events, t0.elapsed().as_secs_f64())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "sim_scale — Sweep3D on the parallel engine ({} host core{})\n",
        cores,
        if cores == 1 { "" } else { "s" }
    );
    if args.threads.iter().any(|&t| t > cores) {
        println!(
            "  note: thread counts above {cores} cannot speed up on this host;\n\
             \x20 they still run (and stay bit-identical) but contend for cores.\n"
        );
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for &nodes in &args.nodes {
        let mut base_eps: Option<f64> = None;
        for &threads in &args.threads {
            let mut events = 0;
            let mut walls = Vec::with_capacity(args.reps);
            for _ in 0..args.reps {
                let (ev, wall) = run_once(nodes, threads, args.seed);
                events = ev;
                walls.push(wall);
            }
            let wall = median(walls);
            let eps = events as f64 / wall;
            let speedup = eps / *base_eps.get_or_insert(eps);
            rows.push(vec![
                nodes.to_string(),
                threads.to_string(),
                events.to_string(),
                format!("{:.1}", wall * 1e3),
                format!("{:.0}", eps),
                format!("{speedup:.2}x"),
            ]);
            csv.push(vec![
                nodes.to_string(),
                threads.to_string(),
                events.to_string(),
                format!("{:.3}", wall * 1e3),
                format!("{eps:.0}"),
                format!("{speedup:.4}"),
            ]);
        }
    }

    let headers = [
        "nodes", "threads", "events", "wall(ms)", "events/s", "vs 1t",
    ];
    print_table(&headers, &rows);
    let csv_headers = [
        "nodes",
        "threads",
        "events",
        "wall_ms_median",
        "events_per_sec",
        "speedup_vs_1t",
    ];
    match write_csv("sim_scale", &csv_headers, &csv) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncsv write failed: {e}"),
    }
}
