//! Fig. 8 — Halo3D motif, RVMA vs. RDMA across topologies, routing
//! strategies, and link speeds.
//!
//! Paper headlines: 1.57× average speedup; best case HyperX DOR at
//! 400 Gb = 1.64×, at 2 Tb = 1.89×. Halo3D is bandwidth-bound, so topology
//! matters more and the protocol gap is smaller than Sweep3D's.

use rvma_bench::{motif_matrix, print_table, write_csv, SweepConfig};
use rvma_motifs::{Halo3dConfig, Halo3dNode};
use rvma_nic::{HostLogic, NicConfig};
use rvma_sim::SimTime;

fn main() {
    let cfg = SweepConfig::from_args(std::env::args().skip(1));
    let grid = rvma_bench::factor3(cfg.nodes);
    let motif = Halo3dConfig {
        pgrid: grid,
        cells: [32, 32, 32],
        elem_bytes: 8,
        iters: 10,
        compute: SimTime::from_ns(200),
    };
    println!(
        "Fig. 8 — Halo3D ({}x{}x{} grid = {} nodes, 32^3 cells/node, {} iters)\n",
        grid[0], grid[1], grid[2], cfg.nodes, motif.iters
    );

    let cells = motif_matrix(&cfg, NicConfig::default(), |n| {
        Box::new(Halo3dNode::new(motif, n)) as Box<dyn HostLogic>
    });

    let headers = [
        "topology", "routing", "link", "RDMA(us)", "RVMA(us)", "speedup",
    ];
    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.family.to_string(),
                c.routing.to_string(),
                format!("{}G", c.gbps),
                format!("{:.1}", c.rdma.makespan_us()),
                format!("{:.1}", c.rvma.makespan_us()),
                format!("{:.2}x", c.speedup),
            ]
        })
        .collect();
    print_table(&headers, &table);

    let avg: f64 = cells.iter().map(|c| c.speedup).sum::<f64>() / cells.len() as f64;
    println!("\naverage speedup: {avg:.2}x (paper: 1.57x)");
    let hyperx_dor: Vec<_> = cells
        .iter()
        .filter(|c| c.family == "hyperx" && c.routing.to_string() == "static")
        .collect();
    for c in hyperx_dor {
        println!(
            "hyperx DOR @{}G: {:.2}x (paper: 1.64x @400G, 1.89x @2T)",
            c.gbps, c.speedup
        );
    }
    match write_csv("fig8_halo3d", &headers, &table) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
