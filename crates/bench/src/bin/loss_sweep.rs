//! Goodput of the reliable-delivery layer as the fabric degrades.
//!
//! Sweeps `drop_p` ∈ {0, 0.01, 0.02, 0.05, 0.10, 0.20} over a
//! [`LossyNetwork`] with a fixed side order of duplication and reordering
//! (`dup_p = reorder_p = 0.02`), pushing a stream of reliable puts through
//! [`rvma_core::ReliableInitiator`] and measuring delivered goodput plus
//! the retransmission overhead the retry layer paid to keep every epoch
//! byte-exact. The seeded dice make every row reproducible.
//!
//! Writes `results/loss_sweep.csv`. Run with `--quick` for a CI smoke
//! (tiny op count, same CSV columns) — the CI `fault_recovery` job uses it
//! to keep goodput-vs-loss data fresh without a long bench run.
//!
//! `--trace <prefix>` additionally re-runs the `drop_p = 0.05` point with
//! op-level telemetry enabled and writes `<prefix>.trace.json` (Chrome
//! `trace_event` format, load in `chrome://tracing` or Perfetto) and
//! `<prefix>.snapshot.json` (the `rvma-telemetry-v1` histogram snapshot).

use rvma_bench::{print_table, write_csv};
use rvma_core::{
    EndpointConfig, FaultModel, LossyNetwork, NodeAddr, RetryConfig, TelemetrySnapshot, Threshold,
    VirtAddr,
};
use std::time::Instant;

const SEED: u64 = 0x105_5EED;
const DROP_RATES: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];

struct Config {
    /// Reliable puts per sweep point; each put completes one epoch.
    ops: usize,
    /// Bytes per put.
    msg_bytes: usize,
    /// Wire MTU.
    mtu: usize,
}

struct Sample {
    goodput_mbps: f64,
    /// Retransmitted fragment copies per delivered fragment.
    retransmit_rate: f64,
    /// Fragments the fabric dropped (including retransmitted copies).
    dropped: u64,
}

fn run_point(cfg: &Config, drop_p: f64, telemetry: bool) -> (Sample, Option<TelemetrySnapshot>) {
    let model = FaultModel {
        drop_p,
        dup_p: 0.02,
        reorder_p: 0.02,
        ..FaultModel::NONE
    };
    let endpoint_config = EndpointConfig {
        dedup_window: 1 << 15,
        telemetry,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(cfg.mtu, model, SEED, endpoint_config);
    let server = net.add_endpoint(NodeAddr::node(0));
    // The default 8-round budget is sized for drop_p ≈ 0.05; at the sweep's
    // 0.20 tail a fragment survives all 8 rounds with p ≈ 0.22^8 ≈ 5e-6,
    // which across ~10^5 fragments fails a run every few sweeps. A deeper
    // budget keeps the sweep deterministic without affecting the measured
    // goodput at realistic loss rates (extra rounds only run when needed).
    let init = net.reliable_initiator_with(
        NodeAddr::node(1),
        RetryConfig {
            max_attempts: 32,
            ..Default::default()
        },
    );
    let vaddr = VirtAddr::new(0x10);
    let win = server
        .init_window(vaddr, Threshold::bytes(cfg.msg_bytes as u64))
        .expect("window");

    let payload = vec![0xA5u8; cfg.msg_bytes];
    let mut fragments = 0u64;
    let mut transmissions = 0u64;
    let start = Instant::now();
    for _ in 0..cfg.ops {
        let mut note = win.post_buffer(vec![0u8; cfg.msg_bytes]).expect("post");
        let report = init
            .put(NodeAddr::node(0), vaddr, &payload)
            .expect("reliable put");
        fragments += report.fragments;
        transmissions += report.transmissions;
        net.flush_delayed();
        let buf = note.wait();
        assert!(
            buf.data().iter().all(|&b| b == 0xA5),
            "epoch corrupted at drop_p={drop_p}"
        );
    }
    let elapsed = start.elapsed();

    let bytes = (cfg.ops * cfg.msg_bytes) as f64;
    let sample = Sample {
        goodput_mbps: bytes / elapsed.as_secs_f64() / 1e6,
        retransmit_rate: (transmissions - fragments) as f64 / fragments as f64,
        dropped: net.dropped(),
    };
    (sample, net.telemetry().map(|t| t.snapshot()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_prefix = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let cfg = if quick {
        Config {
            ops: 200,
            msg_bytes: 512,
            mtu: 64,
        }
    } else {
        Config {
            ops: 5_000,
            msg_bytes: 4096,
            mtu: 256,
        }
    };

    println!(
        "loss_sweep: {} ops x {} B (mtu {}), dup_p = reorder_p = 0.02, seed {:#x}{}",
        cfg.ops,
        cfg.msg_bytes,
        cfg.mtu,
        SEED,
        if quick { " [--quick]" } else { "" }
    );

    let mut rows = Vec::new();
    for drop_p in DROP_RATES {
        let (s, _) = run_point(&cfg, drop_p, false);
        rows.push(vec![
            format!("{drop_p:.2}"),
            format!("{:.1}", s.goodput_mbps),
            format!("{:.4}", s.retransmit_rate),
            s.dropped.to_string(),
        ]);
    }

    let headers = ["drop_p", "goodput_mbps", "retransmit_rate", "dropped_frags"];
    print_table(&headers, &rows);
    match write_csv("loss_sweep", &headers, &rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    if let Some(prefix) = trace_prefix {
        // One telemetry-enabled pass at the sweep's headline loss rate;
        // the recorder rides the same seeded run the CSV row came from.
        let (_, snap) = run_point(&cfg, 0.05, true);
        let snap = snap.expect("telemetry enabled for trace capture");
        let trace_path = format!("{prefix}.trace.json");
        let json_path = format!("{prefix}.snapshot.json");
        if let Err(e) = std::fs::write(&trace_path, snap.to_chrome_trace()) {
            eprintln!("trace write failed: {e}");
            return;
        }
        if let Err(e) = std::fs::write(&json_path, snap.to_json()) {
            eprintln!("snapshot write failed: {e}");
            return;
        }
        println!(
            "wrote {trace_path} ({} events, {} dropped) and {json_path}",
            snap.events.len(),
            snap.dropped
        );
    }
}
