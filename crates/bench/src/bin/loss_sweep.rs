//! Goodput of the reliable-delivery layer as the fabric degrades.
//!
//! Sweeps `drop_p` ∈ {0, 0.01, 0.02, 0.05, 0.10, 0.20} over a
//! [`LossyNetwork`] with a fixed side order of duplication and reordering
//! (`dup_p = reorder_p = 0.02`), pushing a stream of reliable puts through
//! [`rvma_core::ReliableInitiator`] and measuring delivered goodput plus
//! the retransmission overhead the retry layer paid to keep every epoch
//! byte-exact. The seeded dice make every row reproducible.
//!
//! Writes `results/loss_sweep.csv`. Run with `--quick` for a CI smoke
//! (tiny op count, same CSV columns) — the CI `fault_recovery` job uses it
//! to keep goodput-vs-loss data fresh without a long bench run.

use rvma_bench::{print_table, write_csv};
use rvma_core::{
    EndpointConfig, FaultModel, LossyNetwork, NodeAddr, RetryConfig, Threshold, VirtAddr,
};
use std::time::Instant;

const SEED: u64 = 0x105_5EED;
const DROP_RATES: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];

struct Config {
    /// Reliable puts per sweep point; each put completes one epoch.
    ops: usize,
    /// Bytes per put.
    msg_bytes: usize,
    /// Wire MTU.
    mtu: usize,
}

struct Sample {
    goodput_mbps: f64,
    /// Retransmitted fragment copies per delivered fragment.
    retransmit_rate: f64,
    /// Fragments the fabric dropped (including retransmitted copies).
    dropped: u64,
}

fn run_point(cfg: &Config, drop_p: f64) -> Sample {
    let model = FaultModel {
        drop_p,
        dup_p: 0.02,
        reorder_p: 0.02,
        ..FaultModel::NONE
    };
    let endpoint_config = EndpointConfig {
        dedup_window: 1 << 15,
        ..Default::default()
    };
    let net = LossyNetwork::with_config(cfg.mtu, model, SEED, endpoint_config);
    let server = net.add_endpoint(NodeAddr::node(0));
    // The default 8-round budget is sized for drop_p ≈ 0.05; at the sweep's
    // 0.20 tail a fragment survives all 8 rounds with p ≈ 0.22^8 ≈ 5e-6,
    // which across ~10^5 fragments fails a run every few sweeps. A deeper
    // budget keeps the sweep deterministic without affecting the measured
    // goodput at realistic loss rates (extra rounds only run when needed).
    let init = net.reliable_initiator_with(
        NodeAddr::node(1),
        RetryConfig {
            max_attempts: 32,
            ..Default::default()
        },
    );
    let vaddr = VirtAddr::new(0x10);
    let win = server
        .init_window(vaddr, Threshold::bytes(cfg.msg_bytes as u64))
        .expect("window");

    let payload = vec![0xA5u8; cfg.msg_bytes];
    let mut fragments = 0u64;
    let mut transmissions = 0u64;
    let start = Instant::now();
    for _ in 0..cfg.ops {
        let mut note = win.post_buffer(vec![0u8; cfg.msg_bytes]).expect("post");
        let report = init
            .put(NodeAddr::node(0), vaddr, &payload)
            .expect("reliable put");
        fragments += report.fragments;
        transmissions += report.transmissions;
        net.flush_delayed();
        let buf = note.wait();
        assert!(
            buf.data().iter().all(|&b| b == 0xA5),
            "epoch corrupted at drop_p={drop_p}"
        );
    }
    let elapsed = start.elapsed();

    let bytes = (cfg.ops * cfg.msg_bytes) as f64;
    Sample {
        goodput_mbps: bytes / elapsed.as_secs_f64() / 1e6,
        retransmit_rate: (transmissions - fragments) as f64 / fragments as f64,
        dropped: net.dropped(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            ops: 200,
            msg_bytes: 512,
            mtu: 64,
        }
    } else {
        Config {
            ops: 5_000,
            msg_bytes: 4096,
            mtu: 256,
        }
    };

    println!(
        "loss_sweep: {} ops x {} B (mtu {}), dup_p = reorder_p = 0.02, seed {:#x}{}",
        cfg.ops,
        cfg.msg_bytes,
        cfg.mtu,
        SEED,
        if quick { " [--quick]" } else { "" }
    );

    let mut rows = Vec::new();
    for drop_p in DROP_RATES {
        let s = run_point(&cfg, drop_p);
        rows.push(vec![
            format!("{drop_p:.2}"),
            format!("{:.1}", s.goodput_mbps),
            format!("{:.4}", s.retransmit_rate),
            s.dropped.to_string(),
        ]);
    }

    let headers = ["drop_p", "goodput_mbps", "retransmit_rate", "dropped_frags"];
    print_table(&headers, &rows);
    match write_csv("loss_sweep", &headers, &rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
