//! Ablation — completion mechanism in isolation.
//!
//! The motif figures conflate three RDMA costs: the registration
//! handshake, the per-message RTR buffer coordination, and the completion
//! fence. This ablation isolates the *completion mechanism* by giving RDMA
//! effectively infinite RTR credits (deep buffer pool) so only the fence
//! vs. threshold difference remains, then re-enabling each cost:
//!
//! * `RDMA deep+poll` — deep credits + last-byte polling (no fence):
//!   the completion mechanism matches RVMA; only the one-time handshake
//!   differs.
//! * `RDMA deep+fence` — deep credits, spec-compliant fence: isolates the
//!   fence cost.
//! * `RDMA 1-credit+fence` — the full traditional-RDMA baseline.

use rvma_bench::{print_table, topology_for, write_csv, SweepConfig, TopologyFamily};
use rvma_motifs::{run_motif, IdleNode, Sweep3dConfig, Sweep3dNode};
use rvma_net::fabric::FabricConfig;
use rvma_net::router::RoutingKind;
use rvma_nic::{HostLogic, NicConfig, Protocol};
use rvma_sim::SimTime;

fn main() {
    let cfg = SweepConfig::from_args(std::env::args().skip(1));
    let motif = Sweep3dConfig {
        pgrid: rvma_bench::factor2(cfg.nodes),
        cells: [64, 64, 512],
        zblock: 16,
        elem_bytes: 8,
        compute_per_block: SimTime::from_ns(500),
        octants: 8,
    };
    // All variants run on the SAME statically-routed dragonfly so the
    // last-byte-poll variant (which requires ordered delivery) is legal and
    // every difference is attributable to the protocol configuration.
    let spec = topology_for(TopologyFamily::Dragonfly, RoutingKind::Static, cfg.nodes);
    let fcfg = FabricConfig::at_gbps(400);
    let active = cfg.nodes;

    let run = |proto: Protocol, ncfg: NicConfig| {
        run_motif(&spec, &fcfg, ncfg, proto, cfg.seed, |n| {
            if n < active {
                Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
            } else {
                Box::new(IdleNode)
            }
        })
    };

    let deep_poll = NicConfig {
        rdma_credits: 1 << 20,
        rdma_last_byte_poll: true,
        ..Default::default()
    };
    let deep_fence = NicConfig {
        rdma_credits: 1 << 20,
        ..Default::default()
    };

    println!(
        "Ablation — completion mechanism, Sweep3D on {} @400G ({} nodes)\n",
        spec.name, cfg.nodes
    );

    let rvma = run(Protocol::Rvma, NicConfig::default());
    let rdma_full = run(Protocol::Rdma, NicConfig::default());
    let rdma_deep_fence = run(Protocol::Rdma, deep_fence);
    let rdma_deep_poll = run(Protocol::Rdma, deep_poll);

    let base = rvma.makespan.as_ns_f64();
    let headers = ["configuration", "makespan(us)", "vs RVMA"];
    let rows: Vec<Vec<String>> = [
        ("RVMA (threshold completion)", &rvma),
        ("RDMA deep-credits + last-byte poll", &rdma_deep_poll),
        ("RDMA deep-credits + fence", &rdma_deep_fence),
        ("RDMA 1-credit + fence (traditional)", &rdma_full),
    ]
    .iter()
    .map(|(name, r)| {
        vec![
            name.to_string(),
            format!("{:.1}", r.makespan_us()),
            format!("{:.2}x", r.makespan.as_ns_f64() / base),
        ]
    })
    .collect();
    print_table(&headers, &rows);
    println!(
        "\nfence cost alone: {:.2}x; RTR coordination adds: {:.2}x",
        rdma_deep_fence.makespan.as_ns_f64() / rdma_deep_poll.makespan.as_ns_f64(),
        rdma_full.makespan.as_ns_f64() / rdma_deep_fence.makespan.as_ns_f64()
    );
    match write_csv("ablation_completion", &headers, &rows) {
        Ok(p) => println!("csv: {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
