//! Criterion benches of the rvma-core datapath: the software-endpoint
//! costs that a hardware RVMA NIC would hide. These quantify the library's
//! own overheads (LUT lookup, fragment delivery, completion signalling),
//! not the paper's figures (see the `figures` bench and the `fig*` bins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvma_core::{DeliveryOrder, LoopbackNetwork, NodeAddr, RvmaEndpoint, Threshold, VirtAddr};
use std::hint::black_box;

/// One put through the loopback transport, varying message size.
fn bench_put_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("core/put");
    for &size in &[64usize, 4096, 65536] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("in_order", size), &size, |b, &size| {
            let net = LoopbackNetwork::new();
            let target = net.add_endpoint(NodeAddr::node(1));
            let init = net.initiator(NodeAddr::node(2));
            let win = target
                .init_window(VirtAddr::new(1), Threshold::bytes(size as u64))
                .unwrap();
            let payload = vec![0xABu8; size];
            b.iter(|| {
                let mut n = win.post_buffer(vec![0u8; size]).unwrap();
                init.put(NodeAddr::node(1), VirtAddr::new(1), &payload)
                    .unwrap();
                black_box(n.poll().unwrap());
            });
        });
        g.bench_with_input(BenchmarkId::new("out_of_order", size), &size, |b, &size| {
            let net = LoopbackNetwork::with_options(512, DeliveryOrder::OutOfOrder { seed: 7 });
            let target = net.add_endpoint(NodeAddr::node(1));
            let init = net.initiator(NodeAddr::node(2));
            let win = target
                .init_window(VirtAddr::new(1), Threshold::bytes(size as u64))
                .unwrap();
            let payload = vec![0xABu8; size];
            b.iter(|| {
                let mut n = win.post_buffer(vec![0u8; size]).unwrap();
                init.put(NodeAddr::node(1), VirtAddr::new(1), &payload)
                    .unwrap();
                black_box(n.poll().unwrap());
            });
        });
    }
    g.finish();
}

/// The endpoint receive datapath in isolation: one fragment that completes
/// an epoch (LUT hit + copy + count + completing write), then the waiter's
/// poll (the Monitor/MWait fast path).
fn bench_notification(c: &mut Criterion) {
    use rvma_core::Fragment;
    let ep = RvmaEndpoint::new(NodeAddr::node(1));
    let win = ep
        .init_window(VirtAddr::new(9), Threshold::bytes(64))
        .unwrap();
    let frag = Fragment {
        initiator: NodeAddr::node(2),
        op_id: 1,
        dst_vaddr: VirtAddr::new(9),
        op_total_len: 64,
        offset: 0,
        data: bytes::Bytes::from(vec![0xCDu8; 64]),
    };
    c.bench_function("core/deliver_complete_poll", |b| {
        b.iter_batched(
            || win.post_buffer(vec![0u8; 64]).unwrap(),
            |mut n| {
                ep.deliver(&frag);
                black_box(n.poll().unwrap());
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Window creation + single-lookup resolution under a loaded LUT.
fn bench_lut(c: &mut Criterion) {
    let ep = RvmaEndpoint::new(NodeAddr::node(1));
    for i in 0..10_000u64 {
        let w = ep
            .init_window(VirtAddr::new(i), Threshold::bytes(64))
            .unwrap();
        std::mem::forget(w); // keep the mailboxes registered
    }
    c.bench_function("core/lut_lookup_10k_entries", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(ep.mailbox(VirtAddr::new(i)).is_some());
        });
    });
}

criterion_group!(benches, bench_put_latency, bench_notification, bench_lut);
criterion_main!(benches);
