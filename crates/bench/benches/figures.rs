//! Criterion benches over the figure generators: one benchmark per paper
//! table/figure, at reduced scale so `cargo bench` stays fast. The full
//! sweeps are the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use rvma_bench::{motif_matrix, SweepConfig, TopologyFamily};
use rvma_microbench::{amortization_figure, latency_figure, ucx_connectx5, verbs_omnipath};
use rvma_motifs::{Halo3dConfig, Halo3dNode, Sweep3dConfig, Sweep3dNode};
use rvma_net::router::RoutingKind;
use rvma_nic::{HostLogic, NicConfig};
use rvma_sim::SimTime;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/verbs_latency_rows", |b| {
        let m = verbs_omnipath();
        b.iter(|| black_box(latency_figure(&m, 10, 4)));
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5/ucx_latency_rows", |b| {
        let m = ucx_connectx5();
        b.iter(|| black_box(latency_figure(&m, 10, 5)));
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/amortization_rows", |b| {
        let m = ucx_connectx5();
        b.iter(|| black_box(amortization_figure(&m, 0.03)));
    });
}

fn small_sweep_cfg() -> SweepConfig {
    SweepConfig {
        nodes: 16,
        seed: 42,
        only_family: Some(TopologyFamily::Dragonfly),
        only_routing: Some(RoutingKind::Adaptive),
        speeds: vec![400],
        threads: 1,
    }
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7/sweep3d_dragonfly_adaptive_400g_16n", |b| {
        let cfg = small_sweep_cfg();
        let motif = Sweep3dConfig {
            pgrid: rvma_bench::factor2(cfg.nodes),
            cells: [64, 64, 128],
            zblock: 16,
            elem_bytes: 8,
            compute_per_block: SimTime::from_ns(500),
            octants: 2,
        };
        b.iter(|| {
            black_box(motif_matrix(&cfg, NicConfig::default(), |n| {
                Box::new(Sweep3dNode::new(motif, n)) as Box<dyn HostLogic>
            }))
        });
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8/halo3d_dragonfly_adaptive_400g_16n", |b| {
        let cfg = small_sweep_cfg();
        let motif = Halo3dConfig {
            pgrid: rvma_bench::factor3(cfg.nodes),
            cells: [32, 32, 32],
            elem_bytes: 8,
            iters: 3,
            compute: SimTime::from_ns(200),
        };
        b.iter(|| {
            black_box(motif_matrix(&cfg, NicConfig::default(), |n| {
                Box::new(Halo3dNode::new(motif, n)) as Box<dyn HostLogic>
            }))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8
}
criterion_main!(benches);
