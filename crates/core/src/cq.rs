//! Completion queues: epoll-style aggregation of many completion pointers.
//!
//! The paper's per-buffer notification slot (Sec. IV-C) is the fine-grained
//! story — a thread waits on exactly the completions it cares about. At
//! service scale the opposite shape appears: one runtime thread multiplexing
//! tens of thousands of in-flight epochs. Scanning a slot list
//! ([`wait_any`](crate::notify::wait_any)) is O(slots) per completion;
//! a [`CompletionQueue`] makes it O(1): the **completing write itself**
//! pushes the finished buffer onto a multi-producer ready-list, and one
//! consumer drains up to K completions per wake with
//! [`poll_batch`](CompletionQueue::poll_batch).
//!
//! Design:
//!
//! * The ready-list is the existing Vyukov bounded MPSC [`RingQueue`] — the
//!   completer's push is lock-free (one CAS claim + release store). If the
//!   ring is full the entry spills to a mutex-guarded overflow list and
//!   opens a *spill episode*: every later completion follows it to the list
//!   (even after the ring regains room) until the consumer has drained the
//!   list, so delivery order stays enqueue order across the spill. The
//!   spill is counted and only ever taken on the exceptional path, so the
//!   completion hot path stays lock-free when the queue is sized sanely.
//! * Slots attach **before posting** (`Window::post_*_cq`), so the
//!   attachment can never race the completing write.
//! * Exactly-once: each completion pushes exactly one entry, and the ring's
//!   single-consumer pop delivers it exactly once. CQ-attached posts return
//!   no [`Notification`](crate::notify::Notification) handle — the queue is
//!   the sole consumer of those completions (no stolen events).
//! * Waiting is layered like the slot itself: non-blocking `poll_batch`,
//!   blocking `wait_batch` (bounded spin then park), and an async
//!   [`ready`](CompletionQueue::ready) future whose waker the producing
//!   completer wakes directly.

use crate::buffer::CompletedBuffer;
use crate::csync::{self, AtomicBool, AtomicU32, AtomicU64, Condvar, Mutation, Mutex};
use crate::notify::AtomicWaker;
use crate::ring::{PushError, RingQueue};
use crate::telemetry::{self, EventKind, Histogram, Telemetry};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64 as CounterU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Pre-park spin budget of [`CompletionQueue::wait_batch`]; mirrors the
/// notification slot's Monitor/MWait idiom (bounded spin, then park).
const CQ_SPIN_LIMIT: u32 = 4096;

/// One drained completion: the attachment's user tag plus the completed
/// epoch buffer.
#[derive(Debug)]
pub struct CqCompletion {
    /// Caller-chosen tag passed at attach time (an epoll `user_data`).
    pub user: u64,
    /// The completed epoch's buffer.
    pub buffer: CompletedBuffer,
}

struct CqEntry {
    user: u64,
    buffer: CompletedBuffer,
}

/// Counter snapshot of a [`CompletionQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CqStats {
    /// Completions pushed by completing writes.
    pub enqueued: u64,
    /// Completions handed to the consumer.
    pub delivered: u64,
    /// Pushes that found the ring full and spilled to the overflow list.
    pub overflowed: u64,
    /// Producer-side wakes actually delivered (parked consumer or waker).
    pub wakes: u64,
    /// `poll_batch` calls that drained nothing.
    pub empty_polls: u64,
    /// Entries currently queued.
    pub depth: u64,
    /// Median drained-batch size (non-empty polls only).
    pub batch_p50: u64,
    /// p99 drained-batch size (non-empty polls only).
    pub batch_p99: u64,
}

struct CqInner {
    ready: RingQueue<CqEntry>,
    /// Spillover when the ring is momentarily full — counted, never lost.
    overflow: Mutex<VecDeque<CqEntry>>,
    /// True while spilled entries are queued (set and cleared under the
    /// `overflow` lock). While set, pushes bypass the ring so an entry
    /// enqueued *after* a spilled one can never be delivered before it.
    spilling: AtomicBool,
    /// Queued-entry count, `SeqCst`: the Dekker word between producer wake
    /// and consumer park.
    entries: AtomicU64,
    /// Async consumer parking cell.
    waker: AtomicWaker,
    /// Blocking consumers parked (or about to park) on the condvar.
    waiters: AtomicU32,
    wake_mutex: Mutex<()>,
    condvar: Condvar,
    /// Serialises `poll_batch` callers: the Vyukov ring is single-consumer.
    /// Consumer-side only — the completion hot path never touches it.
    consumer: Mutex<ConsumerState>,
    // Monitoring counters stay plain `std` atomics: they carry no
    // ordering obligations, and keeping them out of the checker's
    // instrumented op stream keeps model schedule spaces small.
    enqueued: CounterU64,
    delivered: CounterU64,
    overflowed: CounterU64,
    wakes: CounterU64,
    empty_polls: CounterU64,
    /// Event recorder, armed lazily by the first attached traced window.
    telemetry: OnceLock<Arc<Telemetry>>,
}

/// Consumer-side state, protected by the single-consumer lock.
struct ConsumerState {
    batch_hist: Histogram,
    /// Dense per-CQ sequence number for `CqPoll` events.
    poll_seq: u64,
}

impl CqInner {
    /// The completing write's half: push the entry and wake the consumer.
    /// Lock-free unless the ring is full (bounded queue, counted spill).
    fn push(&self, entry: CqEntry) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        let mut entry = Some(entry);
        // Open spill episode: join the back of the overflow list rather
        // than jumping a spilled predecessor via the ring (the episode may
        // have ended while we took the lock — re-check under it).
        if !csync::mutation(Mutation::CqSpillBypass) && self.spilling.load(Ordering::Acquire) {
            let mut overflow = self.overflow.lock();
            if self.spilling.load(Ordering::Relaxed) {
                overflow.push_back(entry.take().expect("unspilled entry"));
                self.overflowed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(e) = entry {
            if let Err(PushError::Full(e) | PushError::Closed(e)) = self.ready.try_push(e) {
                let mut overflow = self.overflow.lock();
                self.spilling.store(true, Ordering::Release);
                overflow.push_back(e);
                self.overflowed.fetch_add(1, Ordering::Relaxed);
            }
        }
        // SeqCst publish before the waiter checks: either a parked consumer
        // sees the new entry count, or we see its registration below.
        self.entries.fetch_add(1, Ordering::SeqCst);
        let mut woke = self.waker.wake();
        if self.waiters.load(Ordering::SeqCst) > 0 {
            drop(self.wake_mutex.lock());
            self.condvar.notify_all();
            woke = true;
        }
        if woke {
            self.wakes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn pop(&self) -> Option<CqEntry> {
        // Ring first: during a spill episode it holds only entries from
        // *before* the first spill (later pushes divert to the list), so
        // ring-then-list is exact enqueue order, not approximate.
        if let Some(e) = self.ready.try_pop() {
            return Some(e);
        }
        if !self.spilling.load(Ordering::Acquire) {
            return None;
        }
        // `try_pop() == None` does not mean the ring is drained: a producer
        // preempted between claiming a slot and publishing its sequence
        // leaves the ring non-empty but momentarily unpoppable — and a
        // *published* entry behind that claim would then be overtaken by
        // anything we take from the spill list (per-producer FIFO breaks:
        // found by the rvma-check enumeration, see DESIGN.md §14). Report
        // empty and let the caller retry until the claim publishes.
        if !self.ready.is_empty() {
            return None;
        }
        let mut overflow = self.overflow.lock();
        let e = overflow.pop_front();
        if overflow.is_empty() {
            // Episode over — the list is drained and, since every push
            // during the episode landed here, the ring is empty too.
            // Producers racing this store re-check under the lock we hold.
            self.spilling.store(false, Ordering::Release);
        }
        e
    }
}

/// A multi-producer completion ready-list; see the module docs.
///
/// Cloning the handle shares the queue (producers hold internal `Arc`s via
/// their attachments). Consumption is single-threaded at a time — concurrent
/// `poll_batch` callers serialise on an internal consumer lock.
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("depth", &self.inner.entries.load(Ordering::Relaxed))
            .finish()
    }
}

impl CompletionQueue {
    /// A queue whose lock-free ready-list holds `capacity` entries (rounded
    /// up to a power of two, minimum 2). Size it to the expected number of
    /// completions between polls; overflow spills safely but takes a lock.
    pub fn new(capacity: usize) -> Self {
        CompletionQueue {
            inner: Arc::new(CqInner {
                ready: RingQueue::new(capacity),
                overflow: Mutex::new(VecDeque::new()),
                spilling: AtomicBool::new(false),
                entries: AtomicU64::new(0),
                waker: AtomicWaker::new(),
                waiters: AtomicU32::new(0),
                wake_mutex: Mutex::new(()),
                condvar: Condvar::new(),
                consumer: Mutex::new(ConsumerState {
                    batch_hist: Histogram::new(),
                    poll_seq: 0,
                }),
                enqueued: CounterU64::new(0),
                delivered: CounterU64::new(0),
                overflowed: CounterU64::new(0),
                wakes: CounterU64::new(0),
                empty_polls: CounterU64::new(0),
                telemetry: OnceLock::new(),
            }),
        }
    }

    /// A producer handle tagged with `user`, for wiring into a slot before
    /// posting (`Window::post_*_cq` does this).
    pub(crate) fn attachment(&self, user: u64) -> CqAttachment {
        CqAttachment {
            inner: self.inner.clone(),
            user,
        }
    }

    /// Stamp non-empty `poll_batch` drains into `telemetry` as `CqPoll`
    /// events (first recorder wins; windows arm this on CQ-attached posts).
    pub(crate) fn trace_into(&self, telemetry: Arc<Telemetry>) {
        let _ = self.inner.telemetry.set(telemetry);
    }

    /// Entries currently queued.
    pub fn depth(&self) -> u64 {
        self.inner.entries.load(Ordering::SeqCst)
    }

    /// Drain up to `max` completions into `out` without blocking; returns
    /// the number drained. Exactly-once: an entry returned here is gone
    /// from the queue.
    pub fn poll_batch(&self, max: usize, out: &mut Vec<CqCompletion>) -> usize {
        let mut consumer = self.inner.consumer.lock();
        let mut n = 0usize;
        while n < max {
            let entry = match self.inner.pop() {
                Some(e) => e,
                None => break,
            };
            self.inner.entries.fetch_sub(1, Ordering::SeqCst);
            out.push(CqCompletion {
                user: entry.user,
                buffer: entry.buffer,
            });
            n += 1;
        }
        if n == 0 {
            self.inner.empty_polls.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.delivered.fetch_add(n as u64, Ordering::Relaxed);
            consumer.batch_hist.observe(n as u64);
            let seq = consumer.poll_seq;
            consumer.poll_seq += 1;
            telemetry::record(
                &self.inner.telemetry.get().cloned(),
                EventKind::CqPoll,
                0,
                seq,
                n as u64,
            );
        }
        n
    }

    /// Like [`poll_batch`](Self::poll_batch) but blocks — bounded spin then
    /// park — until at least one completion arrives or `timeout` expires.
    /// Returns the number drained (0 on timeout).
    pub fn wait_batch(&self, max: usize, out: &mut Vec<CqCompletion>, timeout: Duration) -> usize {
        let n = self.poll_batch(max, out);
        if n > 0 {
            return n;
        }
        let deadline = Instant::now() + timeout;
        for spins in 0..csync::spin_budget(CQ_SPIN_LIMIT) {
            if self.inner.entries.load(Ordering::SeqCst) > 0 {
                let n = self.poll_batch(max, out);
                if n > 0 {
                    return n;
                }
            }
            if spins % 256 == 255 {
                if Instant::now() >= deadline {
                    return 0;
                }
                csync::thread::yield_now();
            } else {
                csync::spin_loop();
            }
        }
        loop {
            // Register, then re-check (Dekker with `CqInner::push`): either
            // the producer's `entries` bump is visible here, or our
            // registration is visible to its `waiters` load and it notifies.
            self.inner.waiters.fetch_add(1, Ordering::SeqCst);
            if self.inner.entries.load(Ordering::SeqCst) == 0 {
                let mut guard = self.inner.wake_mutex.lock();
                while self.inner.entries.load(Ordering::SeqCst) == 0 {
                    if self
                        .inner
                        .condvar
                        .wait_until(&mut guard, deadline)
                        .timed_out()
                    {
                        break;
                    }
                }
            }
            self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
            let n = self.poll_batch(max, out);
            if n > 0 || Instant::now() >= deadline {
                return n;
            }
        }
    }

    /// A future that resolves once at least one completion is queued. The
    /// completing write wakes the registered task directly; follow up with
    /// [`poll_batch`](Self::poll_batch) to drain. Single async consumer at
    /// a time (one waker cell).
    pub fn ready(&self) -> CqReady<'_> {
        CqReady { cq: self }
    }

    /// Counter snapshot (batch-size quantiles cover non-empty polls only).
    pub fn stats(&self) -> CqStats {
        let consumer = self.inner.consumer.lock();
        CqStats {
            enqueued: self.inner.enqueued.load(Ordering::Relaxed),
            delivered: self.inner.delivered.load(Ordering::Relaxed),
            overflowed: self.inner.overflowed.load(Ordering::Relaxed),
            wakes: self.inner.wakes.load(Ordering::Relaxed),
            empty_polls: self.inner.empty_polls.load(Ordering::Relaxed),
            depth: self.inner.entries.load(Ordering::SeqCst),
            batch_p50: consumer.batch_hist.quantile(0.50),
            batch_p99: consumer.batch_hist.quantile(0.99),
        }
    }
}

/// Resolves when the [`CompletionQueue`] is non-empty; see
/// [`CompletionQueue::ready`].
#[derive(Debug)]
pub struct CqReady<'a> {
    cq: &'a CompletionQueue,
}

impl Future for CqReady<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let inner = &self.cq.inner;
        if inner.entries.load(Ordering::SeqCst) > 0 {
            return Poll::Ready(());
        }
        inner.waker.register(cx.waker());
        // Re-check after parking (Dekker with `CqInner::push`).
        if inner.entries.load(Ordering::SeqCst) > 0 {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

/// A producer handle: routes one slot's completing write into the queue,
/// tagged with the attachment's `user` value. Created by
/// `CompletionQueue::attachment` and installed into a slot before posting.
pub struct CqAttachment {
    inner: Arc<CqInner>,
    user: u64,
}

impl CqAttachment {
    /// Called by the completing write ([`NotificationSlot::complete`]):
    /// enqueue the finished buffer and wake the consumer.
    ///
    /// [`NotificationSlot::complete`]: crate::notify::NotificationSlot
    pub(crate) fn push(&self, buffer: CompletedBuffer) {
        self.inner.push(CqEntry {
            user: self.user,
            buffer,
        });
    }
}

impl std::fmt::Debug for CqAttachment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CqAttachment")
            .field("user", &self.user)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::notify::NotificationSlot;

    fn completed(tag: u8) -> CompletedBuffer {
        CompletedBuffer::new(vec![tag; 8], 8, 0, VirtAddr::new(tag as u64))
    }

    fn complete_attached(cq: &CompletionQueue, user: u64, tag: u8) {
        let slot = NotificationSlot::new();
        slot.attach_cq(cq.attachment(user));
        slot.complete(completed(tag));
    }

    #[test]
    fn poll_empty_is_zero() {
        let cq = CompletionQueue::new(8);
        let mut out = Vec::new();
        assert_eq!(cq.poll_batch(16, &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(cq.stats().empty_polls, 1);
    }

    #[test]
    fn completions_drain_with_user_tags() {
        let cq = CompletionQueue::new(8);
        complete_attached(&cq, 7, 1);
        complete_attached(&cq, 9, 2);
        assert_eq!(cq.depth(), 2);
        let mut out = Vec::new();
        assert_eq!(cq.poll_batch(16, &mut out), 2);
        assert_eq!(out[0].user, 7);
        assert_eq!(out[0].buffer.data(), &[1; 8]);
        assert_eq!(out[1].user, 9);
        assert_eq!(cq.depth(), 0);
    }

    #[test]
    fn poll_batch_respects_max() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            complete_attached(&cq, i, i as u8);
        }
        let mut out = Vec::new();
        assert_eq!(cq.poll_batch(2, &mut out), 2);
        assert_eq!(cq.poll_batch(16, &mut out), 3);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn overflow_spills_without_losing_entries() {
        // Ring capacity 2, 10 completions: 8 spill, all 10 delivered.
        let cq = CompletionQueue::new(2);
        for i in 0..10 {
            complete_attached(&cq, i, i as u8);
        }
        let stats = cq.stats();
        assert_eq!(stats.enqueued, 10);
        assert!(stats.overflowed >= 8);
        let mut out = Vec::new();
        assert_eq!(cq.poll_batch(64, &mut out), 10);
        let mut users: Vec<u64> = out.iter().map(|c| c.user).collect();
        users.sort_unstable();
        assert_eq!(users, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn fifo_preserved_across_overflow_spill() {
        // Regression: pop() used to drain the ring before the overflow
        // list unconditionally, so an entry enqueued *after* a spilled one
        // could overtake it once the ring regained room.
        let cq = CompletionQueue::new(2);
        // Fill the ring (A, B), then spill C — episode opens.
        complete_attached(&cq, 1, 1);
        complete_attached(&cq, 2, 2);
        complete_attached(&cq, 3, 3);
        assert_eq!(cq.stats().overflowed, 1);
        // Drain the pre-spill entries; the ring now has room again.
        let mut out = Vec::new();
        assert_eq!(cq.poll_batch(2, &mut out), 2);
        assert_eq!(out[0].user, 1);
        assert_eq!(out[1].user, 2);
        // D is enqueued after C. The old push put D in the ring and the
        // old pop preferred the ring, delivering D before C.
        complete_attached(&cq, 4, 4);
        out.clear();
        assert_eq!(cq.poll_batch(8, &mut out), 2);
        let users: Vec<u64> = out.iter().map(|c| c.user).collect();
        assert_eq!(users, vec![3, 4], "delivery order must be enqueue order");
        // Episode closed: the next completion takes the lock-free ring.
        complete_attached(&cq, 5, 5);
        out.clear();
        assert_eq!(cq.poll_batch(8, &mut out), 1);
        assert_eq!(out[0].user, 5);
        assert_eq!(cq.stats().overflowed, 2, "D spilled during the episode");
    }

    #[test]
    fn wait_batch_times_out_empty() {
        let cq = CompletionQueue::new(8);
        let mut out = Vec::new();
        assert_eq!(cq.wait_batch(4, &mut out, Duration::from_millis(10)), 0);
    }

    #[test]
    fn wait_batch_wakes_from_park() {
        let cq = CompletionQueue::new(8);
        let producer = cq.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            complete_attached(&producer, 42, 5);
        });
        let mut out = Vec::new();
        let n = cq.wait_batch(4, &mut out, Duration::from_secs(10));
        assert_eq!(n, 1);
        assert_eq!(out[0].user, 42);
        t.join().unwrap();
    }
}
