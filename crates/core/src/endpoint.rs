//! The RVMA endpoint: the software rendering of an RVMA NIC.
//!
//! An endpoint owns the lookup table, receives wire [`Fragment`]s, steers
//! them to mailboxes (paper Fig. 3: translate → write → count → maybe
//! complete), applies the NACK policy, and exposes window creation to the
//! local application. Everything is thread-safe with no global lock: the
//! LUT is internally sharded (see [`crate::lut`]) so lookups and even
//! registration to different mailboxes never contend, each mailbox sits
//! behind its own `Mutex`, and the payload copy happens *outside* that
//! mutex via the mailbox's two-phase delivery — the traffic-stream
//! separation the paper attributes to per-mailbox addressing.

use crate::addr::{NodeAddr, VirtAddr};
use crate::buffer::Threshold;
use crate::error::{NackReason, Result, RvmaError};
use crate::lut::Lut;
use crate::mailbox::{
    BeginOutcome, DeliveryOutcome, Mailbox, MailboxMode, OpKey, DEFAULT_RETAIN_EPOCHS,
};
use crate::notify::AsyncNotifyStats;
use crate::retry::{FaultModel, DEFAULT_RETRY_BUDGET};
use crate::ring::{RingStats, DEFAULT_WIRE_QUEUE_CAP};
use crate::telemetry::Telemetry;
use crate::window::Window;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One wire-level fragment of an RVMA operation (a packet's worth of a put).
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The initiating endpoint.
    pub initiator: NodeAddr,
    /// Initiator-unique operation id (groups fragments of one put).
    pub op_id: u64,
    /// Target virtual mailbox address.
    pub dst_vaddr: VirtAddr,
    /// Total bytes of the whole operation this fragment belongs to.
    pub op_total_len: u64,
    /// Byte offset of this fragment within the target's active buffer.
    pub offset: usize,
    /// Fragment payload.
    pub data: Bytes,
}

impl Fragment {
    fn op_key(&self) -> OpKey {
        OpKey {
            op_id: self.op_id,
            initiator: ((self.initiator.nid as u64) << 32) | self.initiator.pid as u64,
        }
    }
}

/// Endpoint construction options.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Whether discarded operations generate NACKs back to initiators
    /// (paper: "NACKs may be disabled to handle DoS attacks").
    pub nacks_enabled: bool,
    /// Optional catch-all mailbox: operations addressed to unregistered
    /// mailboxes are steered here instead of discarded (paper Sec. III-C
    /// mentions catch-all mailboxes as part of a full specification).
    pub catch_all: Option<VirtAddr>,
    /// Bound on LUT entries (None = unbounded).
    pub lut_capacity: Option<usize>,
    /// Retired buffers retained per mailbox for rewind.
    pub retain_epochs: usize,
    /// Wire-datapath worker threads a threaded transport should run for
    /// this endpoint (see `rvma-net`'s `AsyncNetwork::with_options`).
    /// Fragments shard across workers by destination mailbox, preserving
    /// per-mailbox arrival order.
    pub wire_workers: usize,
    /// Capacity (distinct operations remembered) of the per-mailbox
    /// receiver-side dedup window. 0 (the default) disables dedup,
    /// preserving the documented unprotected behaviour of the lossy
    /// boundary; the reliable-delivery paths require it enabled (see
    /// [`crate::retry`]).
    pub dedup_window: usize,
    /// Fault model a fault-injecting transport should apply to this
    /// endpoint's traffic ([`FaultModel::NONE`] = reliable fabric).
    pub fault_model: FaultModel,
    /// Seed of the transport's fault dice, for reproducible runs.
    pub fault_seed: u64,
    /// Per-fragment transmit budget of the transport's link-level
    /// retransmission (see `AsyncNetwork`): a faulted fragment is
    /// redelivered up to this many times before the final attempt is made
    /// fault-free, bounding completion time under any fault model.
    pub retry_budget: u32,
    /// Capacity (messages) of each wire worker's bounded ring queue,
    /// rounded up to a power of two (min 2). A full ring exerts
    /// backpressure on submitters — `put` blocks until a slot frees, it
    /// never drops — so this also caps resident queue memory under incast.
    pub wire_queue_cap: usize,
    /// Busy-poll iterations an idle wire worker spins on its ring before
    /// it starts yielding. The spin phase is the latency fast path: a
    /// fragment arriving within it is picked up without any scheduler
    /// involvement. Both idle budgets are treated as 0 on a single-CPU
    /// host, where an idle-spinning worker would hold the core its
    /// producers need.
    pub wire_idle_spins: u32,
    /// `yield_now` rounds after the spin budget before the worker parks
    /// (woken by the producers' doorbell). 0 with `wire_idle_spins` 0
    /// parks immediately — the wake-per-message behaviour of the old
    /// unbounded-channel datapath, kept reachable for A/B runs.
    pub wire_idle_yields: u32,
    /// Build notification slots in pre-rework baseline mode (payload under
    /// the mutex, unconditional broadcast on complete) — the completion
    /// half of the `put_latency --baseline` configuration.
    pub notify_baseline: bool,
    /// Enable op-level telemetry ([`crate::telemetry`]): every datapath
    /// layer stamps put-lifecycle events into a shared lock-free
    /// recorder, drained via `Telemetry::snapshot`. Off by default; the
    /// disabled datapath carries only a `None` option (one branch per
    /// hook, no allocation, no atomics).
    pub telemetry: bool,
    /// Capacity (wire messages) of the shared-memory transport's
    /// cross-process request ring ([`crate::transport_shm`]), rounded up
    /// to a power of two. Each slot is `~72 B + MTU`, so this also sizes
    /// the mapped segment. A full ring backpressures the initiating
    /// process — `put` blocks, never drops.
    pub shm_req_slots: usize,
    /// Capacity of the shared-memory transport's response ring (delivery
    /// acks, NACKs, flush acks flowing receiver → initiator).
    pub shm_rsp_slots: usize,
    /// Largest put (bytes) that still takes the **eager** fragment path:
    /// the initiator stages a private copy of the payload and ships it in
    /// MTU-sized fragments. Anything larger switches to the zero-copy
    /// lane — shared-`Bytes` slices on the in-process transports, the
    /// bulk-region rendezvous handshake on the shared-memory transport
    /// (see DESIGN.md §13). `0` forces every non-empty put zero-copy;
    /// `usize::MAX` forces every put eager (the A/B baseline).
    pub eager_threshold: usize,
    /// Size (bytes) of the shared-memory transport's bulk data region,
    /// the segment area rendezvous puts stage their payload in (rounded
    /// down to a power of two; `0` disables the rendezvous lane
    /// entirely). When the region is exhausted, large puts fall back to
    /// the eager fragment path — progress is never blocked on an extent.
    pub shm_bulk_bytes: usize,
}

/// Default idle spin budget of a wire worker (see
/// [`EndpointConfig::wire_idle_spins`]).
pub const DEFAULT_WIRE_IDLE_SPINS: u32 = 4096;

/// Default idle yield budget of a wire worker (see
/// [`EndpointConfig::wire_idle_yields`]).
pub const DEFAULT_WIRE_IDLE_YIELDS: u32 = 64;

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            nacks_enabled: true,
            catch_all: None,
            lut_capacity: None,
            retain_epochs: DEFAULT_RETAIN_EPOCHS,
            wire_workers: 1,
            dedup_window: 0,
            fault_model: FaultModel::NONE,
            fault_seed: 0x5EED,
            retry_budget: DEFAULT_RETRY_BUDGET,
            wire_queue_cap: DEFAULT_WIRE_QUEUE_CAP,
            wire_idle_spins: DEFAULT_WIRE_IDLE_SPINS,
            wire_idle_yields: DEFAULT_WIRE_IDLE_YIELDS,
            notify_baseline: false,
            telemetry: false,
            shm_req_slots: DEFAULT_SHM_REQ_SLOTS,
            shm_rsp_slots: DEFAULT_SHM_RSP_SLOTS,
            eager_threshold: DEFAULT_EAGER_THRESHOLD,
            shm_bulk_bytes: DEFAULT_SHM_BULK_BYTES,
        }
    }
}

/// Default eager/rendezvous switch point (see
/// [`EndpointConfig::eager_threshold`]): four default MTUs, so chatty
/// small-message traffic keeps the pooled fragment path while anything
/// that would fragment heavily goes zero-copy.
pub const DEFAULT_EAGER_THRESHOLD: usize = 8192;

/// Default bulk-region size of the shared-memory transport (see
/// [`EndpointConfig::shm_bulk_bytes`]).
pub const DEFAULT_SHM_BULK_BYTES: usize = 8 << 20;

/// Default request-ring capacity of the shared-memory transport (see
/// [`EndpointConfig::shm_req_slots`]).
pub const DEFAULT_SHM_REQ_SLOTS: usize = 1024;

/// Default response-ring capacity of the shared-memory transport (see
/// [`EndpointConfig::shm_rsp_slots`]).
pub const DEFAULT_SHM_RSP_SLOTS: usize = 1024;

/// Counters an endpoint keeps about its datapath (all relaxed atomics —
/// they are observability, not synchronization).
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Fragments written into a buffer.
    pub fragments_accepted: AtomicU64,
    /// Payload bytes written into buffers.
    pub bytes_accepted: AtomicU64,
    /// Payload bytes memcpy'd into posted buffers — the receiver-side
    /// gather, which is the *only* copy on the zero-copy lanes. Divide by
    /// `bytes_accepted` (and add the transport's
    /// [`staged_bytes`](crate::transport::Transport::staged_bytes)) to get
    /// copies-per-delivered-byte.
    pub bytes_copied: AtomicU64,
    /// Fragments discarded (closed window / no mailbox / no buffer / bounds).
    pub fragments_discarded: AtomicU64,
    /// NACKs that were (or would be) sent to initiators.
    pub nacks: AtomicU64,
    /// Epochs completed across all mailboxes (threshold-triggered and
    /// `inc_epoch`). Shared with each mailbox, which increments it
    /// immediately *before* the completing write — so a waiter woken by a
    /// completion always sees this counter include that epoch.
    pub epochs_completed: Arc<AtomicU64>,
    /// LUT lookups that found a mailbox.
    pub lut_hits: AtomicU64,
    /// LUT lookups that missed (before catch-all redirection).
    pub lut_misses: AtomicU64,
    /// Fragments suppressed by a mailbox's dedup window (counted neither
    /// as accepted nor as discarded).
    pub duplicates_dropped: AtomicU64,
    /// Async completion counters (wakes, spurious polls, dropped futures,
    /// CQ routings). Shared with every slot this endpoint's windows post.
    pub async_notify: Arc<AsyncNotifyStats>,
}

/// A point-in-time copy of [`EndpointStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Fragments written into a buffer.
    pub fragments_accepted: u64,
    /// Payload bytes written into buffers.
    pub bytes_accepted: u64,
    /// Payload bytes memcpy'd into posted buffers (the receiver gather).
    pub bytes_copied: u64,
    /// Fragments discarded.
    pub fragments_discarded: u64,
    /// NACKs sent (or suppressed-but-counted when disabled: 0).
    pub nacks: u64,
    /// Epochs completed across all mailboxes (threshold and `inc_epoch`).
    pub epochs_completed: u64,
    /// LUT hits.
    pub lut_hits: u64,
    /// LUT misses.
    pub lut_misses: u64,
    /// Fragments suppressed by a dedup window.
    pub duplicates_dropped: u64,
    /// High-water wire-queue depth of the transport serving this endpoint
    /// (0 when the endpoint is not attached to a threaded transport).
    /// Bounded by [`EndpointConfig::wire_queue_cap`].
    pub max_depth: u64,
    /// Submissions that stalled on a full wire ring (backpressure events).
    pub full_stalls: u64,
    /// Parked wire workers woken by the producers' doorbell.
    pub park_wakeups: u64,
    /// Completing writes that actually woke a consumer (condvar waiter,
    /// parked task waker, CQ consumer, or multi-slot eventcount).
    pub notify_wakes: u64,
    /// Async polls that found a still-pending slot after a registration —
    /// the woken-but-nothing-ready metric.
    pub spurious_polls: u64,
    /// `NotifyFuture`s dropped before consuming their completion.
    pub futures_dropped: u64,
    /// Completions routed into an attached `CompletionQueue`.
    pub cq_completions: u64,
}

impl EndpointStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            fragments_accepted: self.fragments_accepted.load(Ordering::Relaxed),
            bytes_accepted: self.bytes_accepted.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            fragments_discarded: self.fragments_discarded.load(Ordering::Relaxed),
            nacks: self.nacks.load(Ordering::Relaxed),
            epochs_completed: self.epochs_completed.load(Ordering::Relaxed),
            lut_hits: self.lut_hits.load(Ordering::Relaxed),
            lut_misses: self.lut_misses.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            max_depth: 0,
            full_stalls: 0,
            park_wakeups: 0,
            notify_wakes: self.async_notify.notify_wakes.load(Ordering::Relaxed),
            spurious_polls: self.async_notify.spurious_polls.load(Ordering::Relaxed),
            futures_dropped: self.async_notify.futures_dropped.load(Ordering::Relaxed),
            cq_completions: self.async_notify.cq_completions.load(Ordering::Relaxed),
        }
    }
}

/// Result of delivering a fragment at an endpoint, as seen by the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverResult {
    /// Written; optionally it completed an epoch.
    Ok {
        /// True when this fragment completed the active buffer's epoch.
        completed_epoch: bool,
    },
    /// Suppressed by the target mailbox's dedup window: an identical
    /// fragment was accepted earlier, so to the initiator this is a
    /// positive acknowledgement (the data *is* at the target).
    Duplicate,
    /// Discarded, and the target's policy says to NACK the initiator.
    Nack(NackReason),
    /// Discarded silently (NACKs disabled).
    Dropped(NackReason),
}

/// Max fragments a batched delivery processes per mailbox lock hold;
/// bounds the lock hold time (and, on the rare two-phase fallback path,
/// the O(chunk) in-flight overlap scan each further reservation pays).
pub const DELIVER_CHUNK: usize = 64;

/// Local accumulator for [`RvmaEndpoint::deliver_batch`]: counters are
/// summed here and published with one atomic RMW each per batch, instead
/// of one per fragment.
#[derive(Default)]
struct BatchCounters {
    frags_accepted: u64,
    bytes_accepted: u64,
    discarded: u64,
    nacks: u64,
    lut_hits: u64,
    lut_misses: u64,
    dups: u64,
}

impl BatchCounters {
    fn accept(&mut self, bytes: usize) {
        self.frags_accepted += 1;
        self.bytes_accepted += bytes as u64;
    }

    fn discard(
        &mut self,
        nacks_enabled: bool,
        vaddr: VirtAddr,
        reason: NackReason,
        on_nack: &mut dyn FnMut(VirtAddr, NackReason),
    ) {
        self.discarded += 1;
        if nacks_enabled {
            self.nacks += 1;
            on_nack(vaddr, reason);
        }
    }

    fn publish(&self, stats: &EndpointStats) {
        let pairs = [
            (&stats.fragments_accepted, self.frags_accepted),
            (&stats.bytes_accepted, self.bytes_accepted),
            (&stats.bytes_copied, self.bytes_accepted),
            (&stats.fragments_discarded, self.discarded),
            (&stats.nacks, self.nacks),
            (&stats.lut_hits, self.lut_hits),
            (&stats.lut_misses, self.lut_misses),
            (&stats.duplicates_dropped, self.dups),
        ];
        for (counter, delta) in pairs {
            if delta > 0 {
                counter.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }
}

/// The software RVMA NIC for one `NodeAddr`.
#[derive(Debug)]
pub struct RvmaEndpoint {
    addr: NodeAddr,
    lut: Lut,
    config: EndpointConfig,
    stats: EndpointStats,
    /// Wire-queue counters of the transport this endpoint is attached to
    /// (set by `AsyncNetwork::add_endpoint`/`register`); merged into
    /// [`StatsSnapshot`] so queue depth and backpressure are observable
    /// next to the delivery counters.
    wire: Mutex<Option<Arc<RingStats>>>,
    /// Op-level event recorder, present iff [`EndpointConfig::telemetry`].
    /// Windows and mailboxes created by this endpoint stamp lifecycle
    /// events into it; a network attaches its shared recorder here so one
    /// snapshot covers the whole fabric. Cold-path lock: only window
    /// creation and attachment touch it.
    telemetry: Mutex<Option<Arc<Telemetry>>>,
}

impl RvmaEndpoint {
    /// Create an endpoint with default configuration.
    pub fn new(addr: NodeAddr) -> Arc<Self> {
        Self::with_config(addr, EndpointConfig::default())
    }

    /// Create an endpoint with explicit configuration.
    pub fn with_config(addr: NodeAddr, config: EndpointConfig) -> Arc<Self> {
        let telemetry = config.telemetry.then(|| Arc::new(Telemetry::new()));
        Arc::new(RvmaEndpoint {
            addr,
            lut: Lut::new(config.lut_capacity),
            config,
            stats: EndpointStats::default(),
            wire: Mutex::new(None),
            telemetry: Mutex::new(telemetry),
        })
    }

    /// This endpoint's network address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The endpoint's configuration.
    pub fn config(&self) -> &EndpointConfig {
        &self.config
    }

    /// Snapshot of datapath counters, including the wire-queue counters of
    /// the attached transport (zero when unattached).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        if let Some(wire) = self.wire.lock().as_ref() {
            let w = wire.snapshot();
            snap.max_depth = w.max_depth;
            snap.full_stalls = w.full_stalls;
            snap.park_wakeups = w.park_wakeups;
        }
        snap
    }

    /// Attach the wire-queue counters of the transport serving this
    /// endpoint, so [`stats`](Self::stats) can report queue depth and
    /// backpressure alongside the delivery counters. Called by
    /// `AsyncNetwork::add_endpoint`/`register`; re-attaching (e.g. the
    /// endpoint moved to another network) replaces the source.
    pub fn attach_wire_stats(&self, stats: Arc<RingStats>) {
        *self.wire.lock() = Some(stats);
    }

    /// The endpoint's event recorder (`None` unless
    /// [`EndpointConfig::telemetry`] is set).
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.telemetry.lock().clone()
    }

    /// The shared async-completion counters, armed into every slot this
    /// endpoint's windows post.
    pub(crate) fn async_notify_stats(&self) -> Arc<AsyncNotifyStats> {
        self.stats.async_notify.clone()
    }

    /// Replace the endpoint's recorder with a network-shared one, so every
    /// endpoint of a fabric feeds a single snapshot. Called by the
    /// transports at `add_endpoint` time, before any window exists.
    pub fn attach_telemetry(&self, telemetry: Arc<Telemetry>) {
        *self.telemetry.lock() = Some(telemetry);
    }

    /// Create a window: register a mailbox at `vaddr` in Receiver-Steered
    /// mode (paper: `RVMA_Init_window`). The threshold applies to every
    /// buffer subsequently posted through the window unless overridden.
    pub fn init_window(self: &Arc<Self>, vaddr: VirtAddr, threshold: Threshold) -> Result<Window> {
        self.init_window_mode(vaddr, threshold, MailboxMode::Steered)
    }

    /// Create a window in an explicit placement mode (`Managed` gives the
    /// sockets-like stream semantics of paper Sec. IV-B).
    pub fn init_window_mode(
        self: &Arc<Self>,
        vaddr: VirtAddr,
        threshold: Threshold,
        mode: MailboxMode,
    ) -> Result<Window> {
        if threshold.count == 0 {
            return Err(RvmaError::ZeroThreshold);
        }
        let mut mb = Mailbox::with_dedup(
            vaddr,
            mode,
            self.config.retain_epochs,
            self.config.dedup_window,
        );
        mb.count_completions_in(self.stats.epochs_completed.clone());
        if let Some(t) = self.telemetry() {
            mb.trace_into(t);
        }
        let mailbox = Arc::new(Mutex::new(mb));
        self.lut.insert(vaddr, mailbox.clone())?;
        Ok(Window::new(self.clone(), mailbox, vaddr, threshold))
    }

    /// Fully remove a (typically closed) mailbox from the LUT, reclaiming
    /// its entry. After eviction, operations to the address report
    /// `NoSuchMailbox` rather than `WindowClosed`.
    pub fn evict(&self, vaddr: VirtAddr) -> bool {
        self.lut.remove(vaddr).is_some()
    }

    /// Number of registered LUT entries.
    pub fn lut_len(&self) -> usize {
        self.lut.len()
    }

    /// The NIC receive datapath: deliver one fragment.
    ///
    /// The payload copy runs *outside* the mailbox critical section: the
    /// lock is held only to reserve the destination range and bump the
    /// counters (`Mailbox::deliver_begin`), then again briefly to retire
    /// the reservation (`Mailbox::deliver_finish`). Concurrent fragments
    /// for the same mailbox therefore overlap their copies.
    pub fn deliver(&self, frag: &Fragment) -> DeliverResult {
        self.deliver_slice(
            frag.initiator,
            frag.op_id,
            frag.dst_vaddr,
            frag.op_total_len,
            frag.offset,
            &frag.data,
        )
    }

    /// [`deliver`](Self::deliver) over a borrowed payload slice — the
    /// rendezvous gather path: the shared-memory server points this at
    /// the initiator's bulk extent and the payload lands in the posted
    /// buffer with **one** copy and no intermediate `Bytes` allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn deliver_slice(
        &self,
        initiator: NodeAddr,
        op_id: u64,
        dst_vaddr: VirtAddr,
        op_total_len: u64,
        offset: usize,
        data: &[u8],
    ) -> DeliverResult {
        let key = OpKey {
            op_id,
            initiator: ((initiator.nid as u64) << 32) | initiator.pid as u64,
        };
        // Single-lookup translation, with optional catch-all redirect.
        let mailbox = match self.lut.lookup(dst_vaddr) {
            Some(m) => {
                self.stats.lut_hits.fetch_add(1, Ordering::Relaxed);
                Some(m)
            }
            None => {
                self.stats.lut_misses.fetch_add(1, Ordering::Relaxed);
                self.config.catch_all.and_then(|ca| self.lut.lookup(ca))
            }
        };
        let Some(mailbox) = mailbox else {
            return self.discard(NackReason::NoSuchMailbox);
        };

        let outcome = loop {
            let mut mb = mailbox.lock();
            match mb.deliver_begin(key, op_total_len, offset, data.len()) {
                BeginOutcome::Done(outcome) => break outcome,
                BeginOutcome::Reserved(reservation) => {
                    drop(mb);
                    // SAFETY: the mailbox guarantees exclusive ownership of
                    // the reserved range until `deliver_finish`, and keeps
                    // the allocation alive while any writer is in flight.
                    unsafe { reservation.fill(data) };
                    break mailbox.lock().deliver_finish(reservation);
                }
                BeginOutcome::Contended => {
                    // Overlaps a range another thread is copying into right
                    // now. Drop the lock and retry; overlapping concurrent
                    // writers are rare (and discouraged) so this spin is
                    // cold.
                    drop(mb);
                    std::thread::yield_now();
                }
            }
        };
        match outcome {
            DeliveryOutcome::Accepted => {
                self.count_accept(data.len());
                DeliverResult::Ok {
                    completed_epoch: false,
                }
            }
            DeliveryOutcome::Completed => {
                // The mailbox already counted the epoch (pre-completion,
                // so it is visible to whoever the completing write wakes).
                self.count_accept(data.len());
                DeliverResult::Ok {
                    completed_epoch: true,
                }
            }
            DeliveryOutcome::Duplicate => {
                self.stats
                    .duplicates_dropped
                    .fetch_add(1, Ordering::Relaxed);
                DeliverResult::Duplicate
            }
            DeliveryOutcome::Discarded(reason) => self.discard(reason),
        }
    }

    /// The batched NIC receive datapath: deliver a submission batch.
    ///
    /// Amortizes the per-fragment costs of [`deliver`](Self::deliver)
    /// across a batch the way a doorbell-driven NIC drains its submission
    /// queue: one LUT lookup per *run* of consecutive fragments addressed
    /// to the same mailbox, one mailbox lock acquisition per chunk of up
    /// to [`DELIVER_CHUNK`] fragments, and a single atomic update per
    /// stats counter for the whole batch. Within a chunk, each fragment is
    /// a fused begin → copy → finish — the copy happens under the lock,
    /// which is safe and contention-free because the worker pool shards by
    /// mailbox (a batch's mailbox has no other writer), and it makes the
    /// batch byte-for-byte equivalent to one-at-a-time delivery: same
    /// epoch rotation points, same `Managed`-cursor order, same
    /// last-writer-wins on overlapping ranges.
    ///
    /// `on_nack` is invoked (in batch order) for every fragment that would
    /// have produced [`DeliverResult::Nack`]; silent drops (NACKs disabled)
    /// are counted but not reported, exactly as in the single-fragment
    /// path.
    ///
    /// Contention against a *different* thread's in-flight copy (possible
    /// only for direct concurrent `deliver` callers, e.g. loopback
    /// senders) falls back to the same yield-retry as the single path.
    pub fn deliver_batch(&self, frags: &[Fragment], on_nack: &mut dyn FnMut(VirtAddr, NackReason)) {
        let mut acc = BatchCounters::default();
        let mut i = 0;
        while i < frags.len() {
            let vaddr = frags[i].dst_vaddr;
            let mut j = i + 1;
            while j < frags.len() && frags[j].dst_vaddr == vaddr {
                j += 1;
            }
            self.deliver_run(&frags[i..j], &mut acc, on_nack);
            i = j;
        }
        acc.publish(&self.stats);
    }

    /// Deliver one run of fragments that all target `run[0].dst_vaddr`.
    fn deliver_run(
        &self,
        run: &[Fragment],
        acc: &mut BatchCounters,
        on_nack: &mut dyn FnMut(VirtAddr, NackReason),
    ) {
        let vaddr = run[0].dst_vaddr;
        // One translation for the whole run (the batched analogue of the
        // paper's single-lookup step); `lut_hits`/`lut_misses` count
        // lookups performed, so a batched run bumps them once.
        let mailbox = match self.lut.lookup(vaddr) {
            Some(m) => {
                acc.lut_hits += 1;
                Some(m)
            }
            None => {
                acc.lut_misses += 1;
                self.config.catch_all.and_then(|ca| self.lut.lookup(ca))
            }
        };
        let Some(mailbox) = mailbox else {
            for _ in run {
                acc.discard(
                    self.config.nacks_enabled,
                    vaddr,
                    NackReason::NoSuchMailbox,
                    on_nack,
                );
            }
            return;
        };

        let nacks_enabled = self.config.nacks_enabled;
        let mut idx = 0;
        while idx < run.len() {
            let mut mb = mailbox.lock();
            // Fast path: no reservation outstanding — always the case
            // under per-mailbox worker sharding — so a whole chunk is
            // delivered begin-to-finish in one call with safe direct
            // copies, batched counter publication, and no reservation
            // machinery. The chunk bounds the lock hold time.
            let chunk_end = (idx + DELIVER_CHUNK).min(run.len());
            let chunk = &run[idx..chunk_end];
            let fused = mb.deliver_run_exclusive(
                chunk
                    .iter()
                    .map(|f| (f.op_key(), f.op_total_len, f.offset, &f.data[..])),
                &mut |outcome, len| match outcome {
                    DeliveryOutcome::Accepted | DeliveryOutcome::Completed => acc.accept(len),
                    DeliveryOutcome::Duplicate => acc.dups += 1,
                    DeliveryOutcome::Discarded(reason) => {
                        acc.discard(nacks_enabled, vaddr, reason, on_nack);
                    }
                },
            );
            if fused {
                idx = chunk_end;
                continue;
            }
            // A reservation from the unbatched path is still in flight:
            // fall back to the two-phase pair, which knows how to wait out
            // an overlap.
            let mut in_hold = 0;
            while idx < run.len() && in_hold < DELIVER_CHUNK {
                in_hold += 1;
                let f = &run[idx];
                match mb.deliver_begin(f.op_key(), f.op_total_len, f.offset, f.data.len()) {
                    BeginOutcome::Done(DeliveryOutcome::Accepted)
                    | BeginOutcome::Done(DeliveryOutcome::Completed) => {
                        acc.accept(f.data.len());
                        idx += 1;
                    }
                    BeginOutcome::Done(DeliveryOutcome::Duplicate) => {
                        acc.dups += 1;
                        idx += 1;
                    }
                    BeginOutcome::Done(DeliveryOutcome::Discarded(reason)) => {
                        acc.discard(self.config.nacks_enabled, vaddr, reason, on_nack);
                        idx += 1;
                    }
                    BeginOutcome::Reserved(r) => {
                        // Fused copy, still under the lock. SAFETY: the
                        // reservation pins the range and nothing rotates
                        // the buffer before the matching finish below.
                        unsafe { r.fill(&f.data) };
                        // `deliver_finish` accepts even racing close(); a
                        // completion was counted by the mailbox itself.
                        mb.deliver_finish(r);
                        acc.accept(f.data.len());
                        idx += 1;
                    }
                    BeginOutcome::Contended => {
                        // Overlap with another thread's in-flight copy: the
                        // cold yield-retry of the single-fragment path.
                        drop(mb);
                        std::thread::yield_now();
                        mb = mailbox.lock();
                    }
                }
            }
        }
    }

    fn count_accept(&self, len: usize) {
        self.stats
            .fragments_accepted
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_accepted
            .fetch_add(len as u64, Ordering::Relaxed);
        self.stats
            .bytes_copied
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    fn discard(&self, reason: NackReason) -> DeliverResult {
        self.stats
            .fragments_discarded
            .fetch_add(1, Ordering::Relaxed);
        if self.config.nacks_enabled {
            self.stats.nacks.fetch_add(1, Ordering::Relaxed);
            DeliverResult::Nack(reason)
        } else {
            DeliverResult::Dropped(reason)
        }
    }

    /// Look up a mailbox for read-side operations (rewind service, tests).
    pub fn mailbox(&self, vaddr: VirtAddr) -> Option<Arc<Mutex<Mailbox>>> {
        self.lut.lookup(vaddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;

    fn frag(va: u64, op: u64, total: u64, off: usize, data: Vec<u8>) -> Fragment {
        Fragment {
            initiator: NodeAddr::node(9),
            op_id: op,
            dst_vaddr: VirtAddr::new(va),
            op_total_len: total,
            offset: off,
            data: Bytes::from(data),
        }
    }

    #[test]
    fn window_roundtrip_via_deliver() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep
            .init_window(VirtAddr::new(5), Threshold::bytes(4))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 4]).unwrap();
        let r = ep.deliver(&frag(5, 1, 4, 0, vec![7; 4]));
        assert_eq!(
            r,
            DeliverResult::Ok {
                completed_epoch: true
            }
        );
        assert_eq!(n.poll().unwrap().data(), &[7; 4]);
        let s = ep.stats();
        assert_eq!(s.fragments_accepted, 1);
        assert_eq!(s.bytes_accepted, 4);
        assert_eq!(s.epochs_completed, 1);
        assert_eq!(s.lut_hits, 1);
    }

    #[test]
    fn unknown_mailbox_nacks() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let r = ep.deliver(&frag(99, 1, 4, 0, vec![0; 4]));
        assert_eq!(r, DeliverResult::Nack(NackReason::NoSuchMailbox));
        assert_eq!(ep.stats().lut_misses, 1);
        assert_eq!(ep.stats().nacks, 1);
    }

    #[test]
    fn nacks_disabled_drops_silently() {
        let ep = RvmaEndpoint::with_config(
            NodeAddr::node(1),
            EndpointConfig {
                nacks_enabled: false,
                ..Default::default()
            },
        );
        let r = ep.deliver(&frag(99, 1, 4, 0, vec![0; 4]));
        assert_eq!(r, DeliverResult::Dropped(NackReason::NoSuchMailbox));
        assert_eq!(ep.stats().nacks, 0);
        assert_eq!(ep.stats().fragments_discarded, 1);
    }

    #[test]
    fn catch_all_mailbox_captures_strays() {
        let ep = RvmaEndpoint::with_config(
            NodeAddr::node(1),
            EndpointConfig {
                catch_all: Some(VirtAddr::new(0)),
                ..Default::default()
            },
        );
        let win = ep
            .init_window(VirtAddr::new(0), Threshold::bytes(4))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 4]).unwrap();
        let r = ep.deliver(&frag(12345, 1, 4, 0, vec![3; 4]));
        assert_eq!(
            r,
            DeliverResult::Ok {
                completed_epoch: true
            }
        );
        assert_eq!(n.poll().unwrap().data(), &[3; 4]);
        // It still counts as a LUT miss (the primary lookup failed).
        assert_eq!(ep.stats().lut_misses, 1);
    }

    #[test]
    fn duplicate_window_fails() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let _w = ep
            .init_window(VirtAddr::new(5), Threshold::bytes(4))
            .unwrap();
        assert_eq!(
            ep.init_window(VirtAddr::new(5), Threshold::bytes(4))
                .err()
                .unwrap(),
            RvmaError::MailboxExists(VirtAddr::new(5))
        );
    }

    #[test]
    fn lut_capacity_limits_windows() {
        let ep = RvmaEndpoint::with_config(
            NodeAddr::node(1),
            EndpointConfig {
                lut_capacity: Some(1),
                ..Default::default()
            },
        );
        let _w = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(4))
            .unwrap();
        assert_eq!(
            ep.init_window(VirtAddr::new(2), Threshold::bytes(4))
                .err()
                .unwrap(),
            RvmaError::LutFull
        );
        assert!(ep.evict(VirtAddr::new(1)));
        let _w2 = ep
            .init_window(VirtAddr::new(2), Threshold::bytes(4))
            .unwrap();
        assert_eq!(ep.lut_len(), 1);
    }

    #[test]
    fn closed_window_nacks_but_stays_resolvable() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep
            .init_window(VirtAddr::new(5), Threshold::bytes(4))
            .unwrap();
        win.close();
        let r = ep.deliver(&frag(5, 1, 4, 0, vec![0; 4]));
        assert_eq!(r, DeliverResult::Nack(NackReason::WindowClosed));
        // After eviction the reason degrades to NoSuchMailbox.
        ep.evict(VirtAddr::new(5));
        let r = ep.deliver(&frag(5, 2, 4, 0, vec![0; 4]));
        assert_eq!(r, DeliverResult::Nack(NackReason::NoSuchMailbox));
    }

    #[test]
    fn zero_threshold_window_rejected() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        assert_eq!(
            ep.init_window(VirtAddr::new(5), Threshold::bytes(0))
                .err()
                .unwrap(),
            RvmaError::ZeroThreshold
        );
    }

    #[test]
    fn dedup_window_blocks_early_completion() {
        // The reliability-layer guarantee at the endpoint boundary: with a
        // dedup window configured, a duplicated final fragment is dropped
        // instead of completing the next epoch early.
        let ep = RvmaEndpoint::with_config(
            NodeAddr::node(1),
            EndpointConfig {
                dedup_window: 16,
                ..Default::default()
            },
        );
        let win = ep
            .init_window(VirtAddr::new(5), Threshold::bytes(4))
            .unwrap();
        let mut n1 = win.post_buffer(vec![0; 4]).unwrap();
        let mut n2 = win.post_buffer(vec![0; 4]).unwrap();
        let completer = frag(5, 1, 4, 0, vec![7; 4]);
        assert_eq!(
            ep.deliver(&completer),
            DeliverResult::Ok {
                completed_epoch: true
            }
        );
        assert_eq!(ep.deliver(&completer), DeliverResult::Duplicate);
        assert_eq!(n1.poll().unwrap().data(), &[7; 4]);
        assert!(n2.poll().is_none(), "duplicate must not complete epoch 1");
        let s = ep.stats();
        assert_eq!(s.duplicates_dropped, 1);
        assert_eq!(s.fragments_accepted, 1, "duplicate not counted accepted");
        assert_eq!(s.fragments_discarded, 0, "duplicate not counted discarded");
        assert_eq!(s.epochs_completed, 1);
    }

    #[test]
    fn dedup_window_applies_to_batches() {
        let ep = RvmaEndpoint::with_config(
            NodeAddr::node(1),
            EndpointConfig {
                dedup_window: 16,
                ..Default::default()
            },
        );
        let win = ep
            .init_window(VirtAddr::new(5), Threshold::bytes(8))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        let frags = vec![
            frag(5, 1, 8, 0, vec![1; 4]),
            frag(5, 1, 8, 0, vec![1; 4]), // duplicated mid-batch
            frag(5, 1, 8, 4, vec![2; 4]),
        ];
        ep.deliver_batch(&frags, &mut |_, _| panic!("no nacks expected"));
        assert_eq!(n.poll().unwrap().data(), &[1, 1, 1, 1, 2, 2, 2, 2]);
        let s = ep.stats();
        assert_eq!(s.duplicates_dropped, 1);
        assert_eq!(s.fragments_accepted, 2);
        assert_eq!(s.epochs_completed, 1);
    }

    #[test]
    fn concurrent_delivery_to_distinct_mailboxes() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let mut notifications = Vec::new();
        for i in 0..8u64 {
            let win = ep
                .init_window(VirtAddr::new(i), Threshold::bytes(1024))
                .unwrap();
            notifications.push(win.post_buffer(vec![0; 1024]).unwrap());
        }
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let ep = &ep;
                s.spawn(move || {
                    for k in 0..256usize {
                        let f = frag(i, k as u64, 4, k * 4, vec![i as u8; 4]);
                        assert!(matches!(ep.deliver(&f), DeliverResult::Ok { .. }));
                    }
                });
            }
        });
        for (i, n) in notifications.iter_mut().enumerate() {
            let buf = n.poll().expect("all epochs completed");
            assert_eq!(buf.data(), vec![i as u8; 1024].as_slice());
        }
        assert_eq!(ep.stats().epochs_completed, 8);
        assert_eq!(ep.stats().bytes_accepted, 8 * 1024);
    }

    #[test]
    fn concurrent_delivery_to_one_mailbox_disjoint_ranges() {
        // 8 threads incast into ONE mailbox at disjoint offsets; the copies
        // overlap outside the lock and the epoch completes exactly once,
        // with every byte accounted for.
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep
            .init_window(VirtAddr::new(3), Threshold::bytes(8 * 512))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 8 * 512]).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let ep = &ep;
                s.spawn(move || {
                    for k in 0..128usize {
                        let off = t as usize * 512 + k * 4;
                        let f = frag(3, t * 1000 + k as u64, 4, off, vec![t as u8 + 1; 4]);
                        assert!(matches!(ep.deliver(&f), DeliverResult::Ok { .. }));
                    }
                });
            }
        });
        let buf = n.poll().expect("epoch completed");
        for t in 0..8usize {
            assert_eq!(
                &buf.data()[t * 512..(t + 1) * 512],
                vec![t as u8 + 1; 512].as_slice()
            );
        }
        assert_eq!(ep.stats().epochs_completed, 1);
        assert_eq!(ep.stats().bytes_accepted, 8 * 512);
    }

    #[test]
    fn batch_delivery_amortizes_lut_lookups() {
        // One batch spanning two mailboxes: each run of consecutive
        // same-vaddr fragments costs a single LUT lookup.
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win_a = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(8))
            .unwrap();
        let win_b = ep
            .init_window(VirtAddr::new(2), Threshold::bytes(8))
            .unwrap();
        let mut na = win_a.post_buffer(vec![0; 8]).unwrap();
        let mut nb = win_b.post_buffer(vec![0; 8]).unwrap();
        let frags = vec![
            frag(1, 1, 4, 0, vec![0xA; 4]),
            frag(1, 2, 4, 4, vec![0xB; 4]),
            frag(2, 3, 4, 0, vec![0xC; 4]),
            frag(2, 4, 4, 4, vec![0xD; 4]),
        ];
        let mut nacks = Vec::new();
        ep.deliver_batch(&frags, &mut |va, r| nacks.push((va, r)));
        assert!(nacks.is_empty());
        assert_eq!(
            na.poll().unwrap().data(),
            &[0xA, 0xA, 0xA, 0xA, 0xB, 0xB, 0xB, 0xB]
        );
        assert_eq!(
            nb.poll().unwrap().data(),
            &[0xC, 0xC, 0xC, 0xC, 0xD, 0xD, 0xD, 0xD]
        );
        let s = ep.stats();
        assert_eq!(s.fragments_accepted, 4);
        assert_eq!(s.bytes_accepted, 16);
        assert_eq!(s.epochs_completed, 2);
        assert_eq!(s.lut_hits, 2, "one lookup per run, not per fragment");
        assert_eq!(s.lut_misses, 0);
    }

    #[test]
    fn batch_delivery_mixes_accepts_and_nacks() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(4))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 4]).unwrap();
        let frags = vec![
            frag(1, 1, 4, 0, vec![7; 4]),
            frag(99, 2, 4, 0, vec![0; 4]),
            frag(99, 3, 4, 0, vec![0; 4]),
        ];
        let mut nacks = Vec::new();
        ep.deliver_batch(&frags, &mut |va, r| nacks.push((va, r)));
        assert_eq!(n.poll().unwrap().data(), &[7; 4]);
        assert_eq!(
            nacks,
            vec![
                (VirtAddr::new(99), NackReason::NoSuchMailbox),
                (VirtAddr::new(99), NackReason::NoSuchMailbox),
            ]
        );
        let s = ep.stats();
        assert_eq!(s.fragments_accepted, 1);
        assert_eq!(s.fragments_discarded, 2);
        assert_eq!(s.nacks, 2);
        assert_eq!(s.lut_misses, 1, "the miss run costs one lookup");
    }

    #[test]
    fn batch_serializes_overlapping_fragments_in_batch_order() {
        // Two fragments of one batch target the SAME range: the second must
        // observe the first's reservation, retire the chunk early, and land
        // afterwards — last writer in batch order wins.
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep.init_window(VirtAddr::new(1), Threshold::ops(2)).unwrap();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        let frags = vec![frag(1, 1, 8, 0, vec![1; 8]), frag(1, 2, 8, 0, vec![2; 8])];
        let mut nacks = Vec::new();
        ep.deliver_batch(&frags, &mut |va, r| nacks.push((va, r)));
        assert!(nacks.is_empty());
        let buf = n.poll().expect("two ops counted");
        assert_eq!(buf.data(), &[2; 8], "batch order preserved on overlap");
        assert_eq!(ep.stats().epochs_completed, 1);
    }

    #[test]
    fn batch_spanning_epochs_rotates_buffers() {
        // One batch carrying two epochs' worth of non-overlapping ops: the
        // chunk must retire at the threshold so ops 3 and 4 land in the
        // second buffer, exactly as if delivered one at a time.
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep.init_window(VirtAddr::new(1), Threshold::ops(2)).unwrap();
        let mut n1 = win.post_buffer(vec![0; 16]).unwrap();
        let mut n2 = win.post_buffer(vec![0; 16]).unwrap();
        let frags = vec![
            frag(1, 1, 4, 0, vec![1; 4]),
            frag(1, 2, 4, 4, vec![2; 4]),
            frag(1, 3, 4, 8, vec![3; 4]),
            frag(1, 4, 4, 12, vec![4; 4]),
        ];
        ep.deliver_batch(&frags, &mut |_, _| panic!("no nacks expected"));
        let b1 = n1.poll().expect("first epoch");
        let b2 = n2.poll().expect("second epoch");
        assert_eq!(&b1.full_buffer()[..8], &[1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(&b1.full_buffer()[8..], &[0; 8], "ops 3-4 must not leak in");
        assert_eq!(&b2.full_buffer()[8..], &[3, 3, 3, 3, 4, 4, 4, 4]);
        assert_eq!(ep.stats().epochs_completed, 2);
    }

    #[test]
    fn batch_zero_length_fragment_counts_as_op() {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep.init_window(VirtAddr::new(1), Threshold::ops(1)).unwrap();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        let frags = vec![frag(1, 1, 0, 0, vec![])];
        ep.deliver_batch(&frags, &mut |_, _| panic!("no nacks expected"));
        assert_eq!(n.poll().unwrap().len(), 0);
        assert_eq!(ep.stats().epochs_completed, 1);
    }

    #[test]
    fn concurrent_overlapping_writers_serialize_without_deadlock() {
        // Discouraged-but-legal usage: several threads hammer the SAME range.
        // The contended-retry path must serialize them, not deadlock or race.
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep
            .init_window(VirtAddr::new(4), Threshold::ops(64))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 64]).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ep = &ep;
                s.spawn(move || {
                    for k in 0..16u64 {
                        let f = frag(4, t * 100 + k, 64, 0, vec![t as u8; 64]);
                        assert!(matches!(ep.deliver(&f), DeliverResult::Ok { .. }));
                    }
                });
            }
        });
        let buf = n.poll().expect("op threshold reached");
        // Whatever writer landed last, the buffer is one coherent write.
        let first = buf.data()[0];
        assert!(buf.data().iter().all(|&b| b == first));
        assert_eq!(ep.stats().epochs_completed, 1);
    }
}
