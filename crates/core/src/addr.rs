//! RVMA addressing: virtual mailbox addresses and node addresses.
//!
//! The *virtual* in RVMA: the address an initiator targets is **not** a
//! physical memory address but a 64-bit mailbox identifier, translated at
//! the target NIC by a single-lookup table (see [`crate::lut`]). The paper
//! (Sec. IV-A) suggests an IP/port-style split — 32 bits of source network
//! address space and 32 bits of mailbox ("port") space — which
//! [`VirtAddr::from_net_port`] provides, though any 64-bit value is valid.

use std::fmt;

/// A 64-bit RVMA virtual mailbox address.
///
/// Plays the role RDMA gives to the remote buffer's physical address, except
/// that it names a *mailbox* (a bucket of receiver-posted buffers) and is
/// never dereferenced by the initiator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Construct from a raw 64-bit mailbox identifier.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// IP/port-style construction: the high 32 bits name a network-visible
    /// address space, the low 32 bits a "port" within it (paper Sec. IV-A).
    #[inline]
    pub const fn from_net_port(net: u32, port: u32) -> Self {
        VirtAddr(((net as u64) << 32) | port as u64)
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// High 32 bits (the "network" half of an IP/port-style address).
    #[inline]
    pub const fn net(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Low 32 bits (the "port" half of an IP/port-style address).
    #[inline]
    pub const fn port(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#018x}", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// Identifies a process endpoint on the network: a node id (NID) plus a
/// process id (PID) pair, as in Portals-style addressing (paper Sec. III-C1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr {
    /// Network node identifier.
    pub nid: u32,
    /// Process identifier within the node.
    pub pid: u32,
}

impl NodeAddr {
    /// Construct from a NID/PID pair.
    #[inline]
    pub const fn new(nid: u32, pid: u32) -> Self {
        NodeAddr { nid, pid }
    }

    /// Shorthand for process 0 on a node.
    #[inline]
    pub const fn node(nid: u32) -> Self {
        NodeAddr { nid, pid: 0 }
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.nid, self.pid)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_port_roundtrip() {
        let a = VirtAddr::from_net_port(0x0A00_0001, 8080);
        assert_eq!(a.net(), 0x0A00_0001);
        assert_eq!(a.port(), 8080);
        assert_eq!(a.raw(), 0x0A00_0001_0000_1F90);
    }

    #[test]
    fn raw_roundtrip() {
        let a = VirtAddr::new(0x11FF_0011);
        assert_eq!(a.raw(), 0x11FF_0011);
        assert_eq!(VirtAddr::from(7u64), VirtAddr::new(7));
    }

    #[test]
    fn distinct_mailboxes_are_distinct() {
        // The paper's example: 0x11FF0011 and 0x11FF0031 are *different*
        // mailboxes, not offsets into one buffer.
        assert_ne!(VirtAddr::new(0x11FF_0011), VirtAddr::new(0x11FF_0031));
    }

    #[test]
    fn node_addr_ordering_and_display() {
        let a = NodeAddr::new(1, 0);
        let b = NodeAddr::new(1, 1);
        let c = NodeAddr::node(2);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "1:0");
        assert_eq!(format!("{:?}", c), "2:0");
    }

    #[test]
    fn virt_addr_display() {
        assert_eq!(VirtAddr::new(0x11).to_string(), "va:0x0000000000000011");
    }
}
