//! The reliable-delivery layer: fault modelling, receiver-side dedup, and
//! initiator-side retransmission.
//!
//! RVMA (like RDMA) is specified over a **reliable** fabric: threshold
//! counting is only sound when fragments are neither dropped (the epoch
//! never completes) nor duplicated (the epoch completes *early*). Real HPC
//! NICs get that guarantee from a link-level reliability layer — per-packet
//! acks, retransmit timers, and receiver dedup windows. This module is that
//! layer, rendered in software, in three pieces:
//!
//! * [`FaultModel`] / [`FaultInjector`] — a seeded, per-fragment fault
//!   source (drop, duplicate, reorder, delay, endpoint crash) shared by
//!   [`LossyNetwork`] and the fault-injected
//!   [`AsyncNetwork`](crate::transport_threaded::AsyncNetwork) datapath,
//!   with common counters in [`FaultStats`].
//! * [`DedupWindow`] — the receiver-side half: a bounded memory of
//!   `(initiator, op_id, offset)` triples already accepted by a mailbox.
//!   A fragment's offset within its operation *is* its sequence number
//!   (fragments of one put cover disjoint offsets), so replaying any
//!   fragment — including a duplicated *final* fragment that would
//!   otherwise complete an epoch early — is detected and dropped without
//!   touching the threshold counters. Enabled per endpoint via
//!   [`EndpointConfig::dedup_window`](crate::endpoint::EndpointConfig).
//! * [`ReliableInitiator`] / [`RetryConfig`] — the initiator-side half
//!   over a [`LossyNetwork`]: fragments that produce no delivery ack are
//!   retransmitted in rounds with configurable backoff until the retry
//!   budget is spent ([`RvmaError::RetryExhausted`]); a NACK aborts the
//!   operation immediately. Receiver dedup absorbs the duplicates that
//!   retransmission inevitably creates, which is why
//!   [`LossyNetwork::reliable_initiator`] requires it to be enabled.
//!
//! The recovery half for the *application* — rotating a partially-filled
//! epoch after a timeout instead of wedging — lives in
//! [`Window::recover_timeout`](crate::window::Window::recover_timeout) and
//! [`MpixWindow::fence_recover`](crate::mpix::MpixWindow::fence_recover),
//! mapping the paper's Secs. IV-E/IV-F fault-tolerance story (`MPIX_Rewind`
//! over the retired-buffer ring) onto fabric faults.
//!
//! [`LossyNetwork`]: crate::transport_lossy::LossyNetwork
//! [`LossyNetwork::reliable_initiator`]: crate::transport_lossy::LossyNetwork::reliable_initiator
//! [`RvmaError::RetryExhausted`]: crate::error::RvmaError::RetryExhausted

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{DeliverResult, Fragment};
use crate::error::{Result, RvmaError};
use crate::mailbox::OpKey;
use crate::telemetry::{self, EventKind};
use crate::transport_lossy::{LossyNetwork, TransmitOutcome};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default receiver-side dedup capacity (distinct operations remembered per
/// mailbox) used when a caller wants dedup "on" without tuning it.
pub const DEFAULT_DEDUP_WINDOW: usize = 1024;

/// Default per-fragment transmit budget of the reliable paths (initiator
/// retransmit rounds on [`LossyNetwork`], link-level retransmissions on the
/// fault-injected `AsyncNetwork`). At a 5 % loss rate the chance a fragment
/// survives 8 attempts undelivered is 0.05⁸ ≈ 4 × 10⁻¹¹.
///
/// [`LossyNetwork`]: crate::transport_lossy::LossyNetwork
pub const DEFAULT_RETRY_BUDGET: u32 = 8;

/// Fault model applied independently to each transmitted fragment.
///
/// Extends the drop/duplicate model with the reorder, delay, and
/// endpoint-crash faults an adaptively-routed (or simply misbehaving)
/// fabric can produce. Construct with struct-update syntax so new fault
/// kinds never break call sites:
///
/// ```
/// use rvma_core::FaultModel;
/// let model = FaultModel { drop_p: 0.05, dup_p: 0.05, ..FaultModel::NONE };
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a fragment is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered fragment is delivered twice.
    pub dup_p: f64,
    /// Probability a fragment is reordered: held back and released after
    /// the next transmission, so it arrives behind younger traffic.
    pub reorder_p: f64,
    /// Probability a fragment is delayed: held back for
    /// [`delay_spans`](FaultModel::delay_spans) further transmissions.
    pub delay_p: f64,
    /// How many subsequent transmissions a delayed fragment is held for.
    pub delay_spans: u32,
    /// After this many total transmitted fragments, the destination of the
    /// next fragment crashes: that fragment and everything later sent to
    /// that endpoint is black-holed (`None` = never).
    pub crash_after_frags: Option<u64>,
}

impl FaultModel {
    /// No faults (behaves like the reliable loopback).
    pub const NONE: FaultModel = FaultModel {
        drop_p: 0.0,
        dup_p: 0.0,
        reorder_p: 0.0,
        delay_p: 0.0,
        delay_spans: 2,
        crash_after_frags: None,
    };

    /// True when no fault can ever fire.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.delay_p == 0.0
            && self.crash_after_frags.is_none()
    }

    /// Panics unless every probability is in `[0, 1]`.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.drop_p), "drop_p in [0,1]");
        assert!((0.0..=1.0).contains(&self.dup_p), "dup_p in [0,1]");
        assert!((0.0..=1.0).contains(&self.reorder_p), "reorder_p in [0,1]");
        assert!((0.0..=1.0).contains(&self.delay_p), "delay_p in [0,1]");
    }
}

/// Shared fault counters (relaxed atomics: observability, not
/// synchronization). One instance can be shared by several
/// [`FaultInjector`]s — e.g. every wire worker of a fault-injected
/// `AsyncNetwork` — so the counts are network-wide.
#[derive(Debug, Default)]
pub struct FaultStats {
    transmitted: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    deferred: AtomicU64,
}

impl FaultStats {
    /// Fragments pushed through the fault dice so far.
    pub fn transmitted(&self) -> u64 {
        self.transmitted.load(Ordering::Relaxed)
    }

    /// Fragments dropped (including black-holed by a crashed endpoint).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Fragments delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Fragments reordered or delayed.
    pub fn deferred(&self) -> u64 {
        self.deferred.load(Ordering::Relaxed)
    }

    /// A transmission swallowed without rolling dice (crashed destination).
    pub(crate) fn note_blackhole(&self) {
        self.transmitted.fetch_add(1, Ordering::Relaxed);
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A previously deferred fragment lost before release (its destination
    /// crashed while it was held): counted as dropped, not re-transmitted.
    pub(crate) fn note_dropped_in_flight(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// The outcome of one roll of the fault dice for one fragment.
#[derive(Debug, Clone, Copy)]
pub struct FaultDecision {
    /// Drop the fragment.
    pub drop: bool,
    /// Deliver the fragment twice.
    pub duplicate: bool,
    /// Hold the fragment for this many further transmissions
    /// (0 = deliver now).
    pub defer_spans: u32,
    /// The destination of this fragment crashes (fires at most once per
    /// injector, when the transmit counter crosses
    /// [`FaultModel::crash_after_frags`]).
    pub crash: bool,
}

impl FaultDecision {
    /// No fault: deliver exactly once, now.
    pub const CLEAN: FaultDecision = FaultDecision {
        drop: false,
        duplicate: false,
        defer_spans: 0,
        crash: false,
    };
}

/// A seeded per-fragment fault source. Every transmission rolls *all* the
/// dice (even for probabilities of zero), so fault counts are a pure
/// function of the seed and the transmission sequence — changing one
/// probability never perturbs the stream consumed by the others.
#[derive(Debug)]
pub struct FaultInjector {
    model: FaultModel,
    rng: StdRng,
    stats: Arc<FaultStats>,
}

impl FaultInjector {
    /// Build from a validated model, a seed, and a (possibly shared) stats
    /// block.
    ///
    /// # Panics
    /// Panics if a probability is outside `[0, 1]`.
    pub fn new(model: FaultModel, seed: u64, stats: Arc<FaultStats>) -> Self {
        model.validate();
        FaultInjector {
            model,
            rng: StdRng::seed_from_u64(seed),
            stats,
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// Roll the dice for one fragment. Precedence: crash and drop swallow
    /// the fragment; otherwise a deferral postpones it; otherwise a
    /// duplicate delivers it twice.
    pub fn roll(&mut self) -> FaultDecision {
        let drop = self.rng.random_bool(self.model.drop_p);
        let duplicate = self.rng.random_bool(self.model.dup_p);
        let reorder = self.rng.random_bool(self.model.reorder_p);
        let delay = self.rng.random_bool(self.model.delay_p);
        let seq = self.stats.transmitted.fetch_add(1, Ordering::Relaxed) + 1;
        let crash = self.model.crash_after_frags == Some(seq);
        let defer_spans = if delay {
            self.model.delay_spans.max(1)
        } else if reorder {
            1
        } else {
            0
        };
        let decision = if crash || drop {
            FaultDecision {
                drop: true,
                duplicate: false,
                defer_spans: 0,
                crash,
            }
        } else if defer_spans > 0 {
            FaultDecision {
                drop: false,
                duplicate: false,
                defer_spans,
                crash: false,
            }
        } else {
            FaultDecision {
                duplicate,
                ..FaultDecision::CLEAN
            }
        };
        if decision.drop {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
        } else if decision.defer_spans > 0 {
            self.stats.deferred.fetch_add(1, Ordering::Relaxed);
        } else if decision.duplicate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }
}

/// Receiver-side duplicate suppression for one mailbox: a bounded memory
/// of fragments already accepted, keyed by `(initiator, op_id)` with the
/// fragment's byte offset as its sequence number within the operation.
///
/// Capacity bounds the number of distinct *operations* remembered (FIFO
/// eviction), which is how a NIC's finite dedup window behaves: a replay
/// arriving after its operation aged out of the window is accepted as
/// fresh. The reliable paths keep replays tight (an immediate duplicate,
/// or a retransmit racing a deferred copy), so a modest capacity
/// ([`DEFAULT_DEDUP_WINDOW`]) suppresses them all.
///
/// The window deliberately survives epoch rotation: a duplicated *final*
/// fragment of epoch N must not be counted into epoch N + 1.
#[derive(Debug)]
pub struct DedupWindow {
    /// Offsets already accepted, per live operation.
    seen: HashMap<OpKey, Vec<usize>>,
    /// Operations in arrival order, for FIFO eviction.
    order: VecDeque<OpKey>,
    capacity: usize,
}

impl DedupWindow {
    /// A window remembering up to `capacity` operations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (use
    /// [`EndpointConfig::dedup_window`](crate::endpoint::EndpointConfig) `= 0`
    /// to disable dedup instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup window capacity must be positive");
        DedupWindow {
            seen: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Has this exact fragment (operation + offset) been accepted before?
    pub fn is_duplicate(&self, key: OpKey, offset: usize) -> bool {
        self.seen
            .get(&key)
            .is_some_and(|offs| offs.contains(&offset))
    }

    /// Record an accepted fragment, evicting the oldest operation beyond
    /// capacity.
    pub fn record(&mut self, key: OpKey, offset: usize) {
        match self.seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let offs = e.get_mut();
                if !offs.contains(&offset) {
                    offs.push(offset);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![offset]);
                self.order.push_back(key);
                while self.order.len() > self.capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.seen.remove(&old);
                    }
                }
            }
        }
    }

    /// Operations currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Retransmission policy of a [`ReliableInitiator`].
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Transmission rounds per operation before giving up with
    /// [`RvmaError::RetryExhausted`]. The first round is the original
    /// transmission, so `max_attempts = 1` disables retransmission.
    pub max_attempts: u32,
    /// Backoff slept after the first unsuccessful round. `ZERO` (the
    /// default) retransmits immediately — right for an in-process fabric
    /// where "time" is transmission order, and what keeps the seeded test
    /// suite fast.
    pub base_backoff: Duration,
    /// Multiplier applied to the backoff after each further round.
    pub backoff_multiplier: f64,
    /// Upper bound on the per-round backoff.
    pub max_backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: DEFAULT_RETRY_BUDGET,
            base_backoff: Duration::ZERO,
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryConfig {
    /// Backoff to sleep after `round` unsuccessful rounds (1-based):
    /// `base · multiplier^(round − 1)`, clamped to
    /// [`max_backoff`](RetryConfig::max_backoff).
    pub fn backoff_for(&self, round: u32) -> Duration {
        if self.base_backoff.is_zero() || round == 0 {
            return Duration::ZERO;
        }
        let scale = self.backoff_multiplier.max(1.0).powi(round as i32 - 1);
        let nanos =
            (self.base_backoff.as_nanos() as f64 * scale).min(self.max_backoff.as_nanos() as f64);
        Duration::from_nanos(nanos as u64).min(self.max_backoff)
    }
}

/// What a reliable put did to get every fragment acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutReport {
    /// Distinct fragments the operation comprises.
    pub fragments: u64,
    /// Total transmissions performed (≥ `fragments`; the excess is
    /// retransmitted copies).
    pub transmissions: u64,
    /// Rounds used (1 = everything acknowledged on first transmission).
    pub rounds: u32,
}

impl PutReport {
    /// Retransmitted copies beyond the first transmission of each fragment.
    pub fn retransmissions(&self) -> u64 {
        self.transmissions - self.fragments
    }
}

/// A retransmitting initiator over a [`LossyNetwork`]: the initiator half
/// of the reliability layer. Each round transmits every not-yet-acked
/// fragment; a delivery ack (including a receiver-side duplicate
/// suppression, which proves the fragment landed earlier) retires it, a
/// NACK aborts the operation, and fragments that vanish (dropped, deferred,
/// or black-holed by a crashed endpoint) stay queued for the next round.
pub struct ReliableInitiator {
    net: Arc<LossyNetwork>,
    src: NodeAddr,
    next_op: AtomicU64,
    retry: RetryConfig,
    /// Payload bytes copied into staging storage on the eager path; the
    /// zero-copy lane ([`put_bytes_at`](ReliableInitiator::put_bytes_at)
    /// above the eager threshold) contributes nothing here.
    staged: AtomicU64,
}

impl ReliableInitiator {
    pub(crate) fn new(net: Arc<LossyNetwork>, src: NodeAddr, retry: RetryConfig) -> Self {
        assert!(retry.max_attempts > 0, "retry budget must be positive");
        ReliableInitiator {
            net,
            src,
            next_op: AtomicU64::new(1),
            retry,
            staged: AtomicU64::new(0),
        }
    }

    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.src
    }

    /// The retransmission policy.
    pub fn retry_config(&self) -> RetryConfig {
        self.retry
    }

    /// Reliable `RVMA_Put` at offset 0.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<PutReport> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Reliable `RVMA_Put` with an explicit buffer offset: retransmits
    /// until every fragment is acknowledged, the target NACKs, or the
    /// retry budget is spent.
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<PutReport> {
        self.staged.fetch_add(data.len() as u64, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        self.put_payload(dest, vaddr, offset, payload)
    }

    /// Zero-copy reliable `RVMA_Put` of an owned payload. Above the
    /// network's configured `eager_threshold` the fragments transmitted
    /// (and retransmitted) are offset/len slices of `data`'s shared
    /// allocation — no staging copy; the receiver-side gather is the
    /// put's only copy. At or below the threshold this is exactly
    /// [`put_at`](ReliableInitiator::put_at).
    pub fn put_bytes_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: Bytes,
    ) -> Result<PutReport> {
        if data.len() <= self.net.endpoint_config().eager_threshold {
            return self.put_at(dest, vaddr, offset, &data);
        }
        self.put_payload(dest, vaddr, offset, data)
    }

    /// Payload bytes this initiator copied into staging storage so far.
    pub fn staged_bytes(&self) -> u64 {
        self.staged.load(Ordering::Relaxed)
    }

    /// The retransmit loop proper, lane-agnostic: fragments are always
    /// slices of `payload`, whether that is a staged copy (eager) or the
    /// caller's own allocation (zero-copy).
    fn put_payload(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        payload: Bytes,
    ) -> Result<PutReport> {
        if !self.net.has_endpoint(dest) {
            return Err(RvmaError::UnknownDestination);
        }
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let telemetry = self.net.telemetry();
        let src_key = telemetry::initiator_key(self.src.nid, self.src.pid);
        telemetry::record(
            &telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            payload.len() as u64,
        );
        let total = payload.len() as u64;
        let mtu = self.net.mtu();
        // A zero-byte put is a single empty fragment (one counted op).
        let ranges: Vec<(usize, usize)> = if payload.is_empty() {
            vec![(0, 0)]
        } else {
            (0..payload.len())
                .step_by(mtu)
                .map(|s| (s, (s + mtu).min(payload.len())))
                .collect()
        };
        let mut acked = vec![false; ranges.len()];
        let mut transmissions = 0u64;
        let mut rounds = 0u32;
        while rounds < self.retry.max_attempts {
            for (i, &(s, e)) in ranges.iter().enumerate() {
                if acked[i] {
                    continue;
                }
                let frag = Fragment {
                    initiator: self.src,
                    op_id,
                    dst_vaddr: vaddr,
                    op_total_len: total,
                    offset: offset + s,
                    data: payload.slice(s..e),
                };
                transmissions += 1;
                if rounds > 0 {
                    // Every transmission of a fragment beyond its first.
                    telemetry::record(
                        &telemetry,
                        EventKind::Retransmit,
                        src_key,
                        op_id,
                        rounds as u64,
                    );
                }
                match self.net.transmit(dest, frag) {
                    TransmitOutcome::Delivered(first, second) => {
                        for r in std::iter::once(first).chain(second) {
                            match r {
                                // A Duplicate ack proves an earlier copy
                                // (e.g. one released from a deferral hold)
                                // already landed.
                                DeliverResult::Ok { .. } | DeliverResult::Duplicate => {
                                    acked[i] = true;
                                }
                                DeliverResult::Nack(reason) => {
                                    return Err(RvmaError::Nacked(reason));
                                }
                                // NACKs disabled at the target: the
                                // initiator learns nothing; the budget
                                // expires like a timeout.
                                DeliverResult::Dropped(_) => {}
                            }
                        }
                    }
                    TransmitOutcome::Lost | TransmitOutcome::Held => {}
                }
            }
            rounds += 1;
            if acked.iter().all(|&a| a) {
                return Ok(PutReport {
                    fragments: ranges.len() as u64,
                    transmissions,
                    rounds,
                });
            }
            let backoff = self.retry.backoff_for(rounds);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        Err(RvmaError::RetryExhausted {
            attempts: rounds,
            acked: acked.iter().filter(|&&a| a).count() as u64,
            total: ranges.len() as u64,
        })
    }
}

impl std::fmt::Debug for ReliableInitiator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableInitiator")
            .field("src", &self.src)
            .field("retry", &self.retry)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(op: u64) -> OpKey {
        OpKey {
            op_id: op,
            initiator: 1,
        }
    }

    #[test]
    fn fault_model_none_is_none() {
        assert!(FaultModel::NONE.is_none());
        assert!(!FaultModel {
            reorder_p: 0.1,
            ..FaultModel::NONE
        }
        .is_none());
        assert!(!FaultModel {
            crash_after_frags: Some(1),
            ..FaultModel::NONE
        }
        .is_none());
    }

    #[test]
    #[should_panic(expected = "reorder_p")]
    fn invalid_reorder_probability_rejected() {
        FaultModel {
            reorder_p: 1.5,
            ..FaultModel::NONE
        }
        .validate();
    }

    #[test]
    fn injector_is_seed_deterministic() {
        let roll_n = |seed| {
            let stats = Arc::new(FaultStats::default());
            let mut inj = FaultInjector::new(
                FaultModel {
                    drop_p: 0.3,
                    dup_p: 0.2,
                    reorder_p: 0.1,
                    ..FaultModel::NONE
                },
                seed,
                stats.clone(),
            );
            for _ in 0..512 {
                inj.roll();
            }
            (stats.dropped(), stats.duplicated(), stats.deferred())
        };
        assert_eq!(roll_n(7), roll_n(7));
        let (d, dup, def) = roll_n(7);
        assert!(d > 80 && d < 240, "dropped {d} wildly off 30% of 512");
        assert!(dup > 20, "duplicated {dup}");
        assert!(def > 10, "deferred {def}");
    }

    #[test]
    fn injector_crashes_exactly_once() {
        let stats = Arc::new(FaultStats::default());
        let mut inj = FaultInjector::new(
            FaultModel {
                crash_after_frags: Some(3),
                ..FaultModel::NONE
            },
            1,
            stats.clone(),
        );
        let crashes: Vec<bool> = (0..6).map(|_| inj.roll().crash).collect();
        assert_eq!(crashes, vec![false, false, true, false, false, false]);
        assert_eq!(stats.transmitted(), 6);
        assert_eq!(stats.dropped(), 1, "the crashing fragment is swallowed");
    }

    #[test]
    fn dedup_window_suppresses_replays() {
        let mut w = DedupWindow::new(4);
        assert!(!w.is_duplicate(key(1), 0));
        w.record(key(1), 0);
        assert!(w.is_duplicate(key(1), 0));
        assert!(!w.is_duplicate(key(1), 64), "other fragments of the op");
        assert!(!w.is_duplicate(key(2), 0), "other ops");
        w.record(key(1), 64);
        assert!(w.is_duplicate(key(1), 64));
        assert_eq!(w.len(), 1, "one op remembered");
    }

    #[test]
    fn dedup_window_evicts_oldest_op() {
        let mut w = DedupWindow::new(2);
        w.record(key(1), 0);
        w.record(key(2), 0);
        w.record(key(3), 0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_duplicate(key(1), 0), "op 1 aged out");
        assert!(w.is_duplicate(key(2), 0));
        assert!(w.is_duplicate(key(3), 0));
        assert!(!w.is_empty());
    }

    #[test]
    fn backoff_grows_and_clamps() {
        let cfg = RetryConfig {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(1));
        assert_eq!(cfg.backoff_for(2), Duration::from_millis(2));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(4));
        assert_eq!(cfg.backoff_for(7), Duration::from_millis(4), "clamped");
        assert_eq!(RetryConfig::default().backoff_for(5), Duration::ZERO);
    }

    #[test]
    fn put_report_retransmissions() {
        let r = PutReport {
            fragments: 4,
            transmissions: 7,
            rounds: 3,
        };
        assert_eq!(r.retransmissions(), 3);
    }
}
