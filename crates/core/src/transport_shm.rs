//! Cross-process transport: the RVMA wire protocol over shared memory.
//!
//! This is the first backend where initiator and target live in *different
//! OS processes*. A file-backed [`ShmSegment`]
//! carries two bounded rings of fixed-size slots — the Vyukov design of
//! [`crate::ring`] re-laid over raw shared memory, with futex doorbells
//! replacing the in-process Dekker unpark:
//!
//! * the **request ring** (MPSC: any number of initiator threads → the
//!   server's single wire worker) carries put fragments and flush markers;
//! * the **response ring** (SPSC: wire worker → the client's response
//!   pump) carries per-fragment delivery acks for notified puts, NACKs,
//!   and flush acks.
//!
//! Layering is the point: the server-side worker runs the *same*
//! receiver datapath as the in-process transports — [`RvmaEndpoint`]
//! delivery, dedup windows ([`crate::retry`]), seeded fault injection with
//! link-level retransmission, op-level telemetry — and the client resolves
//! the *same* [`PutFuture`] the threaded transport hands out, fed by acks
//! crossing the segment instead of an in-process countdown. Nothing above
//! the wire knows the peer is in another address space.
//!
//! ## Quiesce over shared memory
//!
//! [`ShmClient::flush`] pushes a tokened flush marker through the request
//! ring. The worker acks it only when no link-level retransmission is
//! parked in its deferred queue (`pending_retries == 0`); otherwise the
//! marker is re-deferred *behind* the parked fragments, so the ack proves
//! every fragment submitted before the flush — including fault re-enqueues
//! and anything parked in the shm ring/doorbell path — reached its final
//! disposition. This is the same drain-barrier contract as
//! `AsyncNetwork::quiesce`, kept honest by the bounded retry budget.
//!
//! ## Peer death
//!
//! Every blocking loop is bounded: futex waits time out and re-check, the
//! segment header carries both PIDs plus a `state` word the server flips
//! to `SERVER_GONE` on drop, and stuck producers probe `/proc/<pid>`.
//! A dead server fails client calls with [`RvmaError::TransportFailed`]
//! and resolves outstanding [`PutFuture`]s as NACKed; a dead client makes
//! the server drop undeliverable responses. The segment file is unlinked
//! by its creator; an already-mapped segment stays usable until the last
//! mapping drops (POSIX unlink semantics), so no state leaks even when a
//! peer dies mid-conversation. See DESIGN.md §12.

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{
    DeliverResult, EndpointConfig, Fragment, RvmaEndpoint, DEFAULT_WIRE_IDLE_SPINS,
    DEFAULT_WIRE_IDLE_YIELDS,
};
use crate::error::{NackReason, Result, RvmaError};
use crate::retry::{FaultInjector, FaultStats};
use crate::shm::{self, ShmSegment};
use crate::telemetry::{self, EventKind, Telemetry};
use crate::transport::Transport;
use crate::transport_threaded::{PutFuture, PutNotify};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Segment magic ("RVMASHM1") — a peer mapping the wrong file fails fast.
const SHM_MAGIC: u64 = 0x5256_4D41_5348_4D31;
/// Wire-layout version; bump on any slot/header change. v2 added the
/// bulk region (rendezvous lane) and the `bulk_bytes`/`eager_threshold`
/// header words.
const SHM_VERSION: u32 = 2;

/// The mmap zero-fill value — what a client sees before the server's
/// `STATE_READY` publish.
#[allow(dead_code)]
const STATE_INIT: u32 = 0;
const STATE_READY: u32 = 1;
const STATE_SERVER_GONE: u32 = 2;

// Request-ring message kinds.
const REQ_PUT: u32 = 1;
const REQ_FLUSH: u32 = 2;
/// Rendezvous RTS: the payload already sits in the segment's bulk region;
/// the slot carries only the extent offset (8 bytes). The server gathers
/// straight from the extent into the posted window buffer and the client
/// releases the extent when the `RSP_PUT_DONE` ack comes back.
const REQ_BULK: u32 = 3;

// Response-ring message kinds.
const RSP_PUT_DONE: u32 = 1;
const RSP_NACK: u32 = 2;
const RSP_FLUSH_ACK: u32 = 3;

/// Bounded doorbell sleep: a lost wakeup (or dying peer) costs at most
/// this much latency, never a hang.
const DOORBELL_WAIT: Duration = Duration::from_millis(20);

/// How long `connect` waits for the server to initialise the segment.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn round64(n: usize) -> usize {
    (n + 63) & !63
}

/// Largest power of two `<= n` (0 for 0) — the bulk region is sized down,
/// never up, so a config request never inflates the segment.
fn prev_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1usize << (usize::BITS - 1 - n.leading_zeros())
    }
}

fn pid_alive(pid: u32) -> bool {
    if !cfg!(target_os = "linux") {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

fn encode_nack(r: NackReason) -> u32 {
    match r {
        NackReason::WindowClosed => 1,
        NackReason::NoSuchMailbox => 2,
        NackReason::NoBufferPosted => 3,
        NackReason::OutOfBounds => 4,
    }
}

fn decode_nack(v: u32) -> NackReason {
    match v {
        1 => NackReason::WindowClosed,
        3 => NackReason::NoBufferPosted,
        4 => NackReason::OutOfBounds,
        _ => NackReason::NoSuchMailbox,
    }
}

// ---------------------------------------------------------------------------
// Segment layout
// ---------------------------------------------------------------------------

/// Futex-backed eventcount doorbell living in the segment header. The
/// producer bumps `seq` (cheap RMW) after publishing and issues the wake
/// syscall only when a consumer advertised itself in `waiters`; the
/// consumer snapshots `seq` *before* its final emptiness re-check, so a
/// publish between check and sleep changes the word and the futex refuses
/// to block. All waits are additionally time-bounded (see
/// [`DOORBELL_WAIT`]).
#[repr(C)]
struct Doorbell {
    seq: AtomicU32,
    waiters: AtomicU32,
}

impl Doorbell {
    fn ring(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            shm::futex_wake(&self.seq, u32::MAX);
        }
    }

    /// Advertise intent to sleep; returns the observed sequence. The
    /// caller must re-check its work predicate between `prepare` and
    /// `wait`, and call `cancel` instead of `wait` if work appeared.
    fn prepare(&self) -> u32 {
        let seen = self.seq.load(Ordering::SeqCst);
        self.waiters.fetch_add(1, Ordering::SeqCst);
        seen
    }

    fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    fn wait(&self, seen: u32, timeout: Duration) {
        shm::futex_wait(&self.seq, seen, timeout);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// First bytes of the segment: identification, handshake state, geometry,
/// liveness PIDs, and the two doorbells. Everything is atomics — the
/// header is the one region both processes write concurrently.
#[repr(C)]
struct SegHeader {
    magic: AtomicU64,
    mtu: AtomicU64,
    req_slots: AtomicU64,
    rsp_slots: AtomicU64,
    /// Bulk (rendezvous) region size in bytes; 0 disables the lane.
    bulk_bytes: AtomicU64,
    /// Puts longer than this take the rendezvous lane. The server
    /// publishes it so both processes agree on lane policy without any
    /// out-of-band configuration channel.
    eager_threshold: AtomicU64,
    version: AtomicU32,
    state: AtomicU32,
    server_pid: AtomicU32,
    client_pid: AtomicU32,
    req_bell: Doorbell,
    rsp_bell: Doorbell,
}

/// Space reserved for [`SegHeader`] at offset 0.
const HDR_SPACE: usize = 128;

/// Producer/consumer cursors of one ring, each on its own cache line.
#[repr(C, align(64))]
struct RingCtrl {
    tail: AtomicU64,
    _pad0: [u8; 56],
    head: AtomicU64,
    _pad1: [u8; 56],
}

const CTRL_SPACE: usize = 128;

/// Per-slot request header (fixed 64 bytes after the slot's sequence
/// word; the inline payload follows). `Bytes` handles cannot cross
/// address spaces, so the fragment is fully serialised: identification,
/// placement, and the payload bytes themselves.
#[repr(C)]
struct ReqHdr {
    kind: AtomicU32,
    len: AtomicU32,
    dest_nid: AtomicU32,
    dest_pid: AtomicU32,
    init_nid: AtomicU32,
    init_pid: AtomicU32,
    /// Nonzero for notified puts: the client-side key the delivery ack
    /// comes back under. Doubles as the flush token for `REQ_FLUSH`.
    token: AtomicU32,
    _rsv: AtomicU32,
    op_id: AtomicU64,
    vaddr: AtomicU64,
    total_len: AtomicU64,
    offset: AtomicU64,
}

const REQ_HDR_SIZE: usize = 64;

/// Per-slot response header (acks flowing server → client).
#[repr(C)]
struct RspHdr {
    kind: AtomicU32,
    token: AtomicU32,
    reason: AtomicU32,
    nacked: AtomicU32,
    vaddr: AtomicU64,
}

const RSP_HDR_SIZE: usize = 24;

/// Computed segment geometry; both sides derive it from the header's
/// `(mtu, req_slots, rsp_slots)` so they always agree on offsets.
#[derive(Clone, Copy)]
struct SegGeometry {
    mtu: usize,
    req_slots: usize,
    rsp_slots: usize,
    req_ctrl: usize,
    req_base: usize,
    req_stride: usize,
    rsp_ctrl: usize,
    rsp_base: usize,
    rsp_stride: usize,
    /// Start of the bulk (rendezvous) region; extents on the wire are
    /// offsets relative to this base.
    bulk_base: usize,
    /// Bulk region size (a power of two, or 0 when the lane is disabled).
    bulk_bytes: usize,
    total: usize,
}

impl SegGeometry {
    fn new(mtu: usize, req_slots: usize, rsp_slots: usize, bulk_bytes: usize) -> SegGeometry {
        let req_stride = round64(8 + REQ_HDR_SIZE + mtu);
        let rsp_stride = round64(8 + RSP_HDR_SIZE);
        let req_ctrl = HDR_SPACE;
        let req_base = req_ctrl + CTRL_SPACE;
        let rsp_ctrl = round64(req_base + req_slots * req_stride);
        let rsp_base = rsp_ctrl + CTRL_SPACE;
        let bulk_base = round64(rsp_base + rsp_slots * rsp_stride);
        let total = round64(bulk_base + bulk_bytes);
        SegGeometry {
            mtu,
            req_slots,
            rsp_slots,
            req_ctrl,
            req_base,
            req_stride,
            rsp_ctrl,
            rsp_base,
            rsp_stride,
            bulk_base,
            bulk_bytes,
            total,
        }
    }
}

fn header(seg: &ShmSegment) -> &SegHeader {
    // SAFETY: offset 0 is 64-aligned and HDR_SPACE covers the struct; the
    // mapping outlives every borrow (the segment Arc is held alongside).
    unsafe { seg.at::<SegHeader>(0) }
}

// ---------------------------------------------------------------------------
// The ring over raw shared memory
// ---------------------------------------------------------------------------

/// One Vyukov bounded ring laid out in the segment: a control block of
/// head/tail cursors plus `cap` fixed-stride slots, each starting with its
/// sequence word. Producers claim a slot by CAS on `tail`, fill it, and
/// publish with a release store of `seq = tail + 1`; the single consumer
/// reads at `seq == head + 1` and recycles with `seq = head + cap`. Same
/// protocol as [`crate::ring::RingQueue`], but every word lives at a
/// process-independent offset instead of behind a `Box`.
#[derive(Clone)]
struct RawRing {
    seg: Arc<ShmSegment>,
    ctrl: usize,
    base: usize,
    stride: usize,
    cap: usize,
}

impl RawRing {
    fn ctrl(&self) -> &RingCtrl {
        // SAFETY: ctrl offset is 64-aligned and in bounds by geometry.
        unsafe { self.seg.at::<RingCtrl>(self.ctrl) }
    }

    fn slot_off(&self, idx: usize) -> usize {
        self.base + idx * self.stride
    }

    fn slot_seq(&self, idx: usize) -> &AtomicU64 {
        // SAFETY: slot offsets are 64-aligned and in bounds by geometry.
        unsafe { self.seg.at::<AtomicU64>(self.slot_off(idx)) }
    }

    /// Creator-side slot initialisation (`seq[i] = i`) — must complete
    /// before the header flips to `STATE_READY`.
    fn init_slots(&self) {
        for i in 0..self.cap {
            self.slot_seq(i).store(i as u64, Ordering::Relaxed);
        }
    }

    /// Claim a slot for writing. Returns the slot index and the ticket to
    /// publish with, or `None` when the ring is full.
    fn begin_push(&self) -> Option<(usize, u64)> {
        let ctrl = self.ctrl();
        loop {
            let tail = ctrl.tail.load(Ordering::Relaxed);
            let idx = (tail % self.cap as u64) as usize;
            let seq = self.slot_seq(idx).load(Ordering::Acquire);
            if seq == tail {
                if ctrl
                    .tail
                    .compare_exchange_weak(tail, tail + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return Some((idx, tail));
                }
            } else if seq < tail {
                return None; // full
            }
            std::hint::spin_loop();
        }
    }

    fn publish(&self, idx: usize, ticket: u64) {
        self.slot_seq(idx).store(ticket + 1, Ordering::Release);
    }

    /// True when the next slot is ready for the consumer.
    fn can_pop(&self) -> bool {
        let head = self.ctrl().head.load(Ordering::Relaxed);
        let idx = (head % self.cap as u64) as usize;
        self.slot_seq(idx).load(Ordering::Acquire) == head + 1
    }

    /// Single-consumer: claim the next filled slot for reading. Returns
    /// the slot index; the caller must `release` it when done copying.
    fn begin_pop(&self) -> Option<usize> {
        let head = self.ctrl().head.load(Ordering::Relaxed);
        let idx = (head % self.cap as u64) as usize;
        if self.slot_seq(idx).load(Ordering::Acquire) == head + 1 {
            Some(idx)
        } else {
            None
        }
    }

    fn release_pop(&self, idx: usize) {
        let ctrl = self.ctrl();
        let head = ctrl.head.load(Ordering::Relaxed);
        self.slot_seq(idx)
            .store(head + self.cap as u64, Ordering::Release);
        ctrl.head.store(head + 1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Wire messages (deserialised owned forms)
// ---------------------------------------------------------------------------

enum ServerMsg {
    Frag {
        dest: NodeAddr,
        frag: Fragment,
        token: u32,
        /// Fault-layer attempts burned (0 = fresh off the wire). Only
        /// server-local retries raise it; it never crosses the segment.
        attempt: u32,
    },
    /// Rendezvous RTS: gather `total_len` bytes straight out of the bulk
    /// region at `ext_off` into the posted buffer — no slot copy, no
    /// `Bytes` allocation. The client keeps the extent reserved until the
    /// `RSP_PUT_DONE` ack, so a deferred (fault-injected) retry of this
    /// message reads bytes that are still valid.
    Bulk {
        dest: NodeAddr,
        initiator: NodeAddr,
        op_id: u64,
        vaddr: VirtAddr,
        total_len: u64,
        offset: usize,
        /// Extent offset relative to the bulk region base.
        ext_off: usize,
        token: u32,
        attempt: u32,
    },
    Flush(u32),
}

struct RspMsg {
    kind: u32,
    token: u32,
    reason: u32,
    nacked: u32,
    vaddr: u64,
}

fn req_hdr(seg: &ShmSegment, slot_off: usize) -> &ReqHdr {
    // SAFETY: slot base is 64-aligned, +8 keeps u64 alignment; in bounds.
    unsafe { seg.at::<ReqHdr>(slot_off + 8) }
}

fn rsp_hdr(seg: &ShmSegment, slot_off: usize) -> &RspHdr {
    // SAFETY: as above.
    unsafe { seg.at::<RspHdr>(slot_off + 8) }
}

// ---------------------------------------------------------------------------
// Server (receiver process)
// ---------------------------------------------------------------------------

/// Fault-injection state of a [`ShmServer`] (mirrors the threaded
/// transport's plan; the injector itself lives on the worker thread).
struct ShmFaultPlan {
    model: crate::retry::FaultModel,
    budget: u32,
    seed: u64,
    stats: Arc<FaultStats>,
    /// Retransmissions parked in the worker's deferred queue. The flush
    /// protocol re-defers its ack behind them while this is nonzero —
    /// the shm half of the quiesce drain barrier.
    pending_retries: AtomicU64,
}

struct ServerInner {
    seg: Arc<ShmSegment>,
    geo: SegGeometry,
    config: EndpointConfig,
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    fault: Option<ShmFaultPlan>,
    telemetry: Option<Arc<Telemetry>>,
    stop: AtomicBool,
    delivered: AtomicU64,
    /// Payload bytes the worker copied out of request slots into owned
    /// `Bytes` (the eager lane's wire copy). The rendezvous lane adds
    /// nothing here — the gather goes segment → posted buffer directly.
    wire_copied: AtomicU64,
}

impl ServerInner {
    fn req_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.req_ctrl,
            base: self.geo.req_base,
            stride: self.geo.req_stride,
            cap: self.geo.req_slots,
        }
    }

    fn rsp_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.rsp_ctrl,
            base: self.geo.rsp_base,
            stride: self.geo.rsp_stride,
            cap: self.geo.rsp_slots,
        }
    }
}

/// The receiving (server) half of the shared-memory transport: owns the
/// segment, hosts [`RvmaEndpoint`]s, and runs one wire-worker thread that
/// pops fragments off the request ring and drives the standard receiver
/// datapath — dedup, fault injection, telemetry, notification — exactly as
/// the in-process transports do.
pub struct ShmServer {
    inner: Arc<ServerInner>,
    worker: Option<JoinHandle<()>>,
}

impl ShmServer {
    /// Create the segment at `path` and start the wire worker. Ring
    /// capacities come from [`EndpointConfig::shm_req_slots`] /
    /// [`EndpointConfig::shm_rsp_slots`]; fault model, dedup window,
    /// retry budget, and telemetry all plumb through unchanged from the
    /// same config the in-process transports take.
    pub fn create(path: &Path, mtu: usize, config: EndpointConfig) -> Result<ShmServer> {
        assert!(mtu > 0, "MTU must be positive");
        let req_slots = config.shm_req_slots.next_power_of_two().max(2);
        let rsp_slots = config.shm_rsp_slots.next_power_of_two().max(2);
        // The bulk region must be a power of two for the buddy allocator;
        // anything below one minimum block disables the rendezvous lane.
        let mut bulk_bytes = prev_pow2(config.shm_bulk_bytes);
        if bulk_bytes < (1usize << BULK_MIN_ORDER) {
            bulk_bytes = 0;
        }
        let geo = SegGeometry::new(mtu, req_slots, rsp_slots, bulk_bytes);
        let seg = Arc::new(ShmSegment::create(path, geo.total)?);

        let telemetry = config.telemetry.then(|| Arc::new(Telemetry::new()));
        let fault = (!config.fault_model.is_none()).then(|| ShmFaultPlan {
            model: config.fault_model,
            budget: config.retry_budget.max(1),
            seed: config.fault_seed,
            stats: Arc::new(FaultStats::default()),
            pending_retries: AtomicU64::new(0),
        });
        let inner = Arc::new(ServerInner {
            seg: seg.clone(),
            geo,
            config,
            endpoints: RwLock::new(HashMap::new()),
            fault,
            telemetry,
            stop: AtomicBool::new(false),
            delivered: AtomicU64::new(0),
            wire_copied: AtomicU64::new(0),
        });

        inner.req_ring().init_slots();
        inner.rsp_ring().init_slots();
        let hdr = header(&seg);
        hdr.mtu.store(mtu as u64, Ordering::Relaxed);
        hdr.req_slots.store(req_slots as u64, Ordering::Relaxed);
        hdr.rsp_slots.store(rsp_slots as u64, Ordering::Relaxed);
        hdr.bulk_bytes.store(bulk_bytes as u64, Ordering::Relaxed);
        hdr.eager_threshold
            .store(inner.config.eager_threshold as u64, Ordering::Relaxed);
        hdr.version.store(SHM_VERSION, Ordering::Relaxed);
        hdr.server_pid.store(std::process::id(), Ordering::Relaxed);
        hdr.magic.store(SHM_MAGIC, Ordering::Relaxed);
        // Publish: a connecting client acquires everything above through
        // this store.
        hdr.state.store(STATE_READY, Ordering::Release);

        let worker = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("rvma-shm-wire".into())
                .spawn(move || shm_worker(inner))
                .expect("spawn shm wire worker")
        };
        Ok(ShmServer {
            inner,
            worker: Some(worker),
        })
    }

    /// Create with defaults at a fresh unique path (see
    /// [`crate::shm::default_segment_path`]).
    pub fn create_default(mtu: usize, config: EndpointConfig) -> Result<ShmServer> {
        ShmServer::create(&shm::default_segment_path("srv"), mtu, config)
    }

    /// The segment path a peer passes to [`ShmClient::connect`].
    pub fn path(&self) -> &Path {
        self.inner.seg.path()
    }

    /// The wire MTU.
    pub fn mtu(&self) -> usize {
        self.inner.geo.mtu
    }

    /// Create and host an endpoint at `addr` (the shm analogue of
    /// `AsyncNetwork::add_endpoint`).
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::with_config(addr, self.inner.config.clone());
        if let Some(t) = &self.inner.telemetry {
            ep.attach_telemetry(t.clone());
        }
        self.inner.endpoints.write().insert(addr, ep.clone());
        ep
    }

    /// Attach an existing endpoint.
    pub fn register(&self, endpoint: Arc<RvmaEndpoint>) {
        if let Some(t) = &self.inner.telemetry {
            endpoint.attach_telemetry(t.clone());
        }
        self.inner
            .endpoints
            .write()
            .insert(endpoint.addr(), endpoint);
    }

    /// Detach the endpoint at `addr`; queued fragments NACK with
    /// `NoSuchMailbox` when the worker reaches them — the crash-fault
    /// behaviour, triggerable explicitly.
    pub fn remove_endpoint(&self, addr: NodeAddr) -> bool {
        self.inner.endpoints.write().remove(&addr).is_some()
    }

    /// The server-side telemetry recorder, when enabled.
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.inner.telemetry.clone()
    }

    /// Network-wide fault counters, when fault injection is active.
    pub fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        self.inner.fault.as_ref().map(|p| p.stats.clone())
    }

    /// Link-level retransmissions currently parked in the worker's
    /// deferred queue (nonzero ⇒ a flush ack is being held back).
    pub fn pending_retries(&self) -> u64 {
        self.inner
            .fault
            .as_ref()
            .map(|p| p.pending_retries.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Fragments delivered to endpoints so far.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }

    /// Payload bytes copied slot → owned `Bytes` by the wire worker (the
    /// eager lane's extra copy; rendezvous gathers add nothing here).
    pub fn wire_copied(&self) -> u64 {
        self.inner.wire_copied.load(Ordering::Relaxed)
    }

    /// Stop the worker after a final fault-free drain of the request ring
    /// and the deferred queue (the graceful analogue of `WireMsg::Stop`).
    /// Further client traffic fails with the server-gone state.
    pub fn stop(&mut self) {
        header(&self.inner.seg)
            .state
            .store(STATE_SERVER_GONE, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        header(&self.inner.seg).req_bell.ring();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ShmServer {
    fn drop(&mut self) {
        self.stop();
        // Segment unlinks when the Arc drops (we are the creator).
    }
}

/// The server's wire worker: single consumer of the request ring, single
/// producer of the response ring. Ring traffic takes priority; deferred
/// retransmissions (and re-deferred flush markers) run when the ring is
/// momentarily dry, so a retried fragment lands behind the queued traffic
/// exactly as it does on the threaded transport.
fn shm_worker(inner: Arc<ServerInner>) {
    let req = inner.req_ring();
    let rsp = inner.rsp_ring();
    let hdr = header(&inner.seg);
    let mut injector = inner
        .fault
        .as_ref()
        .map(|p| FaultInjector::new(p.model, p.seed, p.stats.clone()));
    let mut deferred: VecDeque<ServerMsg> = VecDeque::new();
    let idle_spins = inner.config.wire_idle_spins;
    let idle_yields = inner.config.wire_idle_yields;
    loop {
        if let Some(msg) = pop_req(&inner, &req) {
            process_msg(&inner, &rsp, &mut injector, &mut deferred, msg, false);
            continue;
        }
        if let Some(msg) = deferred.pop_front() {
            process_msg(&inner, &rsp, &mut injector, &mut deferred, msg, false);
            continue;
        }
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        // Spin-then-yield-then-park (the threaded backend's §5 idle
        // ladder). The yield rung matters most on starved boxes: while
        // the worker is merely descheduled — not parked — a producer's
        // push skips both the futex wake syscall and the wake-preemption,
        // so a momentarily-dry ring refills into a batch instead of
        // degenerating into one park/wake round trip per message (the
        // rendezvous lane pushes one descriptor per *message*, so it has
        // no ring backlog to absorb that churn, unlike the eager lane).
        if idle_wait(&req, &inner.stop, idle_spins, idle_yields) {
            continue;
        }
        let seen = hdr.req_bell.prepare();
        if req.can_pop() || inner.stop.load(Ordering::Acquire) {
            hdr.req_bell.cancel();
            continue;
        }
        hdr.req_bell.wait(seen, DOORBELL_WAIT);
    }
    // Final drain, fault-free: retransmissions parked behind the stop and
    // fragments that raced the shutdown must not strand their futures.
    loop {
        let msg = match pop_req(&inner, &req) {
            Some(m) => m,
            None => match deferred.pop_front() {
                Some(m) => m,
                None => break,
            },
        };
        process_msg(&inner, &rsp, &mut injector, &mut deferred, msg, true);
    }
}

/// One pass of the pre-park idle ladder: spin `spins` times, then yield
/// `yields` times, re-checking the ring (and the stop flag) at each rung.
/// Returns true if work (or stop) appeared — the caller should re-loop
/// instead of parking.
fn idle_wait(ring: &RawRing, stop: &AtomicBool, spins: u32, yields: u32) -> bool {
    for _ in 0..spins {
        if ring.can_pop() || stop.load(Ordering::Relaxed) {
            return true;
        }
        std::hint::spin_loop();
    }
    for _ in 0..yields {
        std::thread::yield_now();
        if ring.can_pop() || stop.load(Ordering::Relaxed) {
            return true;
        }
    }
    false
}

/// Deserialise the next request-ring slot into an owned message.
fn pop_req(inner: &ServerInner, req: &RawRing) -> Option<ServerMsg> {
    let idx = req.begin_pop()?;
    let off = req.slot_off(idx);
    let h = req_hdr(&inner.seg, off);
    let kind = h.kind.load(Ordering::Relaxed);
    let msg = if kind == REQ_FLUSH {
        ServerMsg::Flush(h.token.load(Ordering::Relaxed))
    } else if kind == REQ_BULK {
        // SAFETY: the producer wrote the 8-byte extent offset into the
        // slot's payload region before the release-publish we acquired.
        let ext_off = unsafe {
            let p = inner.seg.as_ptr().add(off + 8 + REQ_HDR_SIZE);
            std::ptr::read_unaligned(p as *const u64)
        } as usize;
        ServerMsg::Bulk {
            dest: NodeAddr::new(
                h.dest_nid.load(Ordering::Relaxed),
                h.dest_pid.load(Ordering::Relaxed),
            ),
            initiator: NodeAddr::new(
                h.init_nid.load(Ordering::Relaxed),
                h.init_pid.load(Ordering::Relaxed),
            ),
            op_id: h.op_id.load(Ordering::Relaxed),
            vaddr: VirtAddr::new(h.vaddr.load(Ordering::Relaxed)),
            total_len: h.total_len.load(Ordering::Relaxed),
            offset: h.offset.load(Ordering::Relaxed) as usize,
            ext_off,
            token: h.token.load(Ordering::Relaxed),
            attempt: 0,
        }
    } else {
        let len = h.len.load(Ordering::Relaxed) as usize;
        let len = len.min(inner.geo.mtu);
        // SAFETY: payload region of a published slot; the producer wrote
        // `len <= mtu` bytes there before the release-publish we acquired.
        let data = unsafe {
            let p = inner.seg.as_ptr().add(off + 8 + REQ_HDR_SIZE);
            std::slice::from_raw_parts(p, len)
        };
        inner.wire_copied.fetch_add(len as u64, Ordering::Relaxed);
        ServerMsg::Frag {
            dest: NodeAddr::new(
                h.dest_nid.load(Ordering::Relaxed),
                h.dest_pid.load(Ordering::Relaxed),
            ),
            frag: Fragment {
                initiator: NodeAddr::new(
                    h.init_nid.load(Ordering::Relaxed),
                    h.init_pid.load(Ordering::Relaxed),
                ),
                op_id: h.op_id.load(Ordering::Relaxed),
                dst_vaddr: VirtAddr::new(h.vaddr.load(Ordering::Relaxed)),
                op_total_len: h.total_len.load(Ordering::Relaxed),
                offset: h.offset.load(Ordering::Relaxed) as usize,
                data: Bytes::copy_from_slice(data),
            },
            token: h.token.load(Ordering::Relaxed),
            attempt: 0,
        }
    };
    req.release_pop(idx);
    Some(msg)
}

fn process_msg(
    inner: &ServerInner,
    rsp: &RawRing,
    injector: &mut Option<FaultInjector>,
    deferred: &mut VecDeque<ServerMsg>,
    msg: ServerMsg,
    drain: bool,
) {
    match msg {
        ServerMsg::Flush(token) => {
            if !drain {
                if let Some(plan) = &inner.fault {
                    if plan.pending_retries.load(Ordering::Acquire) > 0 {
                        // Fragments are parked in the deferred queue: the
                        // drain barrier is not satisfied. Re-defer the
                        // marker *behind* them (satellite of quiesce
                        // correctness — the ack must account for the shm
                        // ring/doorbell path's parked fragments the same
                        // way the threaded barrier accounts for fault
                        // re-enqueues).
                        deferred.push_back(ServerMsg::Flush(token));
                        return;
                    }
                }
            }
            push_rsp(
                inner,
                rsp,
                &RspMsg {
                    kind: RSP_FLUSH_ACK,
                    token,
                    reason: 0,
                    nacked: 0,
                    vaddr: 0,
                },
            );
        }
        ServerMsg::Frag {
            dest,
            frag,
            token,
            attempt,
        } => {
            let mut copies = 1u32;
            if !drain {
                if let (Some(inj), Some(plan)) = (injector.as_mut(), inner.fault.as_ref()) {
                    // Same dice discipline as the threaded worker:
                    // zero-length fragments bypass the dice, and the
                    // attempt that reaches the budget delivers fault-free.
                    if !frag.data.is_empty() && attempt < plan.budget {
                        let d = inj.roll();
                        if d.crash {
                            inner.endpoints.write().remove(&dest);
                        }
                        if d.drop || d.defer_spans > 0 {
                            plan.pending_retries.fetch_add(1, Ordering::AcqRel);
                            telemetry::record(
                                &inner.telemetry,
                                EventKind::Retransmit,
                                telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
                                frag.op_id,
                                (attempt + 1) as u64,
                            );
                            deferred.push_back(ServerMsg::Frag {
                                dest,
                                frag,
                                token,
                                attempt: attempt + 1,
                            });
                            if attempt > 0 {
                                plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
                            }
                            return;
                        }
                        if d.duplicate {
                            copies = 2;
                        }
                    }
                }
            }
            telemetry::record(
                &inner.telemetry,
                EventKind::WireDeliver,
                telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
                frag.op_id,
                frag.offset as u64,
            );
            let mut nacked = false;
            match inner.endpoints.read().get(&dest).cloned() {
                Some(ep) => {
                    for _ in 0..copies {
                        if let DeliverResult::Nack(r) = ep.deliver(&frag) {
                            push_rsp(
                                inner,
                                rsp,
                                &RspMsg {
                                    kind: RSP_NACK,
                                    token: 0,
                                    reason: encode_nack(r),
                                    nacked: 1,
                                    vaddr: frag.dst_vaddr.0,
                                },
                            );
                            nacked = true;
                        }
                    }
                }
                None => {
                    push_rsp(
                        inner,
                        rsp,
                        &RspMsg {
                            kind: RSP_NACK,
                            token: 0,
                            reason: encode_nack(NackReason::NoSuchMailbox),
                            nacked: 1,
                            vaddr: frag.dst_vaddr.0,
                        },
                    );
                    nacked = true;
                }
            }
            inner.delivered.fetch_add(1, Ordering::Relaxed);
            if token != 0 {
                push_rsp(
                    inner,
                    rsp,
                    &RspMsg {
                        kind: RSP_PUT_DONE,
                        token,
                        reason: 0,
                        nacked: nacked as u32,
                        vaddr: frag.dst_vaddr.0,
                    },
                );
            }
            if attempt > 0 {
                if let Some(plan) = &inner.fault {
                    plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        ServerMsg::Bulk {
            dest,
            initiator,
            op_id,
            vaddr,
            total_len,
            offset,
            ext_off,
            token,
            attempt,
        } => {
            let len = total_len as usize;
            let mut copies = 1u32;
            if !drain {
                if let (Some(inj), Some(plan)) = (injector.as_mut(), inner.fault.as_ref()) {
                    // The RTS descriptor rolls the same dice as a put
                    // fragment. A deferred copy stays valid because the
                    // client holds the extent reserved until our ack; a
                    // duplicated copy delivers twice and the dedup window
                    // suppresses the second — exactly one ack either way.
                    if len > 0 && attempt < plan.budget {
                        let d = inj.roll();
                        if d.crash {
                            inner.endpoints.write().remove(&dest);
                        }
                        if d.drop || d.defer_spans > 0 {
                            plan.pending_retries.fetch_add(1, Ordering::AcqRel);
                            telemetry::record(
                                &inner.telemetry,
                                EventKind::Retransmit,
                                telemetry::initiator_key(initiator.nid, initiator.pid),
                                op_id,
                                (attempt + 1) as u64,
                            );
                            deferred.push_back(ServerMsg::Bulk {
                                dest,
                                initiator,
                                op_id,
                                vaddr,
                                total_len,
                                offset,
                                ext_off,
                                token,
                                attempt: attempt + 1,
                            });
                            if attempt > 0 {
                                plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
                            }
                            return;
                        }
                        if d.duplicate {
                            copies = 2;
                        }
                    }
                }
            }
            let src_key = telemetry::initiator_key(initiator.nid, initiator.pid);
            telemetry::record(
                &inner.telemetry,
                EventKind::WireDeliver,
                src_key,
                op_id,
                offset as u64,
            );
            let mut nacked = false;
            // The extent must sit wholly inside the bulk region before the
            // worker dereferences it — a corrupt or hostile descriptor
            // NACKs instead of faulting the server process.
            let in_bounds = inner.geo.bulk_bytes > 0
                && ext_off
                    .checked_add(len)
                    .is_some_and(|end| end <= inner.geo.bulk_bytes);
            if !in_bounds {
                push_rsp(
                    inner,
                    rsp,
                    &RspMsg {
                        kind: RSP_NACK,
                        token: 0,
                        reason: encode_nack(NackReason::OutOfBounds),
                        nacked: 1,
                        vaddr: vaddr.0,
                    },
                );
                nacked = true;
            } else {
                match inner.endpoints.read().get(&dest).cloned() {
                    Some(ep) => {
                        // SAFETY: bounds validated against the bulk region
                        // above; the client keeps the extent reserved (and
                        // unwritten) until it sees our ack.
                        let data = unsafe {
                            let p = inner.seg.as_ptr().add(inner.geo.bulk_base + ext_off);
                            std::slice::from_raw_parts(p, len)
                        };
                        telemetry::record(
                            &inner.telemetry,
                            EventKind::BulkDeliver,
                            src_key,
                            op_id,
                            total_len,
                        );
                        for _ in 0..copies {
                            if let DeliverResult::Nack(r) =
                                ep.deliver_slice(initiator, op_id, vaddr, total_len, offset, data)
                            {
                                push_rsp(
                                    inner,
                                    rsp,
                                    &RspMsg {
                                        kind: RSP_NACK,
                                        token: 0,
                                        reason: encode_nack(r),
                                        nacked: 1,
                                        vaddr: vaddr.0,
                                    },
                                );
                                nacked = true;
                            }
                        }
                    }
                    None => {
                        push_rsp(
                            inner,
                            rsp,
                            &RspMsg {
                                kind: RSP_NACK,
                                token: 0,
                                reason: encode_nack(NackReason::NoSuchMailbox),
                                nacked: 1,
                                vaddr: vaddr.0,
                            },
                        );
                        nacked = true;
                    }
                }
            }
            inner.delivered.fetch_add(1, Ordering::Relaxed);
            // Rendezvous tokens are always nonzero: the ack doubles as the
            // extent-release message, so it must flow even for
            // fire-and-forget puts.
            push_rsp(
                inner,
                rsp,
                &RspMsg {
                    kind: RSP_PUT_DONE,
                    token,
                    reason: 0,
                    nacked: nacked as u32,
                    vaddr: vaddr.0,
                },
            );
            if attempt > 0 {
                if let Some(plan) = &inner.fault {
                    plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}

/// Blocking response push: acks must not drop while the client lives. A
/// full ring kicks the pump's doorbell and backs off; if the client
/// process is gone the response is dropped (nobody is left to read it).
fn push_rsp(inner: &ServerInner, rsp: &RawRing, msg: &RspMsg) {
    let hdr = header(&inner.seg);
    let mut tries = 0u32;
    loop {
        if let Some((idx, ticket)) = rsp.begin_push() {
            let off = rsp.slot_off(idx);
            let h = rsp_hdr(&inner.seg, off);
            h.kind.store(msg.kind, Ordering::Relaxed);
            h.token.store(msg.token, Ordering::Relaxed);
            h.reason.store(msg.reason, Ordering::Relaxed);
            h.nacked.store(msg.nacked, Ordering::Relaxed);
            h.vaddr.store(msg.vaddr, Ordering::Relaxed);
            rsp.publish(idx, ticket);
            hdr.rsp_bell.ring();
            return;
        }
        hdr.rsp_bell.ring();
        tries += 1;
        if tries.is_multiple_of(1024) {
            let cpid = hdr.client_pid.load(Ordering::SeqCst);
            if cpid != 0 && !pid_alive(cpid) {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Client (initiator process)
// ---------------------------------------------------------------------------

/// Smallest buddy block: 2^6 = 64 bytes (one cache line).
const BULK_MIN_ORDER: u32 = 6;

/// Buddy allocator over the segment's bulk region. The metadata lives
/// **client-side only**: the client is the sole mutator (reserve on
/// submit, release on ack), so no cross-process synchronisation is needed
/// and a crashing client can never wedge allocator state the server
/// depends on — the server only ever *reads* extents it was handed.
/// Offsets are relative to the bulk region base.
struct BulkAllocator {
    /// Free block offsets per order; index 0 holds order
    /// [`BULK_MIN_ORDER`]. Lists stay short (≤ region/min-block blocks,
    /// in practice a handful), so linear buddy lookup is fine.
    free: Vec<Vec<usize>>,
    max_order: u32,
    enabled: bool,
}

impl BulkAllocator {
    fn new(bulk_bytes: usize) -> BulkAllocator {
        if bulk_bytes < (1usize << BULK_MIN_ORDER) {
            return BulkAllocator {
                free: Vec::new(),
                max_order: 0,
                enabled: false,
            };
        }
        debug_assert!(bulk_bytes.is_power_of_two());
        let max_order = bulk_bytes.trailing_zeros();
        let mut free = vec![Vec::new(); (max_order - BULK_MIN_ORDER + 1) as usize];
        free.last_mut().expect("at least one order").push(0);
        BulkAllocator {
            free,
            max_order,
            enabled: true,
        }
    }

    /// Reserve a power-of-two extent covering `len` bytes. Returns the
    /// bulk-relative offset and block order, or `None` when the region is
    /// exhausted (or the lane disabled) — the caller falls back to eager.
    fn reserve(&mut self, len: usize) -> Option<(usize, u32)> {
        if !self.enabled || len == 0 {
            return None;
        }
        let order = len.next_power_of_two().trailing_zeros().max(BULK_MIN_ORDER);
        if order > self.max_order {
            return None;
        }
        // Smallest order >= `order` with a free block, split down.
        let mut have = order;
        while self.free[(have - BULK_MIN_ORDER) as usize].is_empty() {
            if have == self.max_order {
                return None;
            }
            have += 1;
        }
        let off = self.free[(have - BULK_MIN_ORDER) as usize]
            .pop()
            .expect("non-empty free list");
        while have > order {
            have -= 1;
            let buddy = off + (1usize << have);
            self.free[(have - BULK_MIN_ORDER) as usize].push(buddy);
        }
        Some((off, order))
    }

    /// Return an extent, merging with its buddy while possible.
    fn release(&mut self, mut off: usize, mut order: u32) {
        while order < self.max_order {
            let buddy = off ^ (1usize << order);
            let list = &mut self.free[(order - BULK_MIN_ORDER) as usize];
            match list.iter().position(|&b| b == buddy) {
                Some(i) => {
                    list.swap_remove(i);
                    off &= !(1usize << order);
                    order += 1;
                }
                None => break,
            }
        }
        self.free[(order - BULK_MIN_ORDER) as usize].push(off);
    }
}

/// A client-owned registered extent in the segment's bulk region (see
/// [`ShmClient::reserve_extent`]). Holds its reservation until dropped;
/// disjoint from every other live extent by buddy-allocator construction.
pub struct BulkExtent {
    inner: Arc<ClientInner>,
    /// Bulk-relative offset (what the RTS descriptor carries).
    off: usize,
    order: u32,
    /// Usable length as requested (the block itself is `1 << order`).
    len: usize,
}

impl BulkExtent {
    /// Usable capacity in bytes (the length passed to `reserve_extent`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length reservation (never constructed: the
    /// allocator rejects `len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The extent's payload region. Write the message here, then
    /// [`ShmClient::put_from_extent`]. Must not be written while a put
    /// from this extent is unresolved (the server reads the region
    /// until its ack).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: the allocator hands out disjoint blocks, `&mut self`
        // is the only client-side borrow, and the documented contract
        // keeps the server out of the region while it is borrowed.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.inner
                    .seg
                    .as_ptr()
                    .add(self.inner.geo.bulk_base + self.off),
                self.len,
            )
        }
    }
}

impl Drop for BulkExtent {
    fn drop(&mut self) {
        self.inner.release_extent(self.off, self.order, self.len);
    }
}

/// Bulk-region accounting of one [`ShmClient`] — the quiesce balance
/// check (`reserved_bytes == released_bytes`, `in_flight == 0` after a
/// [`flush`](ShmClient::flush)) proves no extent leaks, including under
/// fault injection and retransmitted RTS descriptors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkStats {
    /// Payload bytes reserved into bulk extents so far.
    pub reserved_bytes: u64,
    /// Payload bytes whose extents have been released (acked).
    pub released_bytes: u64,
    /// Extents currently reserved and awaiting their ack.
    pub in_flight: u64,
    /// Large puts that fell back to the eager lane because the bulk
    /// region was exhausted (or disabled).
    pub eager_fallbacks: u64,
}

struct PendingPut {
    notify: Arc<PutNotify>,
    remaining: u64,
    /// Rendezvous puts own a bulk extent `(offset, order, len)` released
    /// exactly once — when the ack removes this entry (or on peer death).
    /// A duplicate ack finds no entry and is ignored: no double-free.
    extent: Option<(usize, u32, usize)>,
}

struct FlushState {
    acked: HashSet<u32>,
    dead: bool,
}

struct ClientInner {
    seg: Arc<ShmSegment>,
    geo: SegGeometry,
    src: NodeAddr,
    /// Lane policy published by the server in the segment header.
    eager_threshold: usize,
    next_op: AtomicU64,
    next_token: AtomicU32,
    next_flush: AtomicU32,
    tokens: Mutex<HashMap<u32, PendingPut>>,
    nacks: Mutex<Vec<(VirtAddr, NackReason)>>,
    flush_state: Mutex<FlushState>,
    flush_cv: Condvar,
    stop: AtomicBool,
    telemetry: Option<Arc<Telemetry>>,
    /// Bulk-region buddy allocator (see [`BulkAllocator`]).
    bulk: Mutex<BulkAllocator>,
    bulk_reserved: AtomicU64,
    bulk_released: AtomicU64,
    bulk_in_flight: AtomicU64,
    bulk_fallbacks: AtomicU64,
    /// Payload bytes copied into the segment (request slots on the eager
    /// lane, bulk extents on the rendezvous lane).
    staged: AtomicU64,
}

impl ClientInner {
    fn req_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.req_ctrl,
            base: self.geo.req_base,
            stride: self.geo.req_stride,
            cap: self.geo.req_slots,
        }
    }

    fn rsp_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.rsp_ctrl,
            base: self.geo.rsp_base,
            stride: self.geo.rsp_stride,
            cap: self.geo.rsp_slots,
        }
    }

    fn server_dead(&self) -> bool {
        let hdr = header(&self.seg);
        if hdr.state.load(Ordering::SeqCst) == STATE_SERVER_GONE {
            return true;
        }
        let spid = hdr.server_pid.load(Ordering::SeqCst);
        spid != 0 && !pid_alive(spid)
    }

    /// Release a rendezvous extent (exactly once per reservation: the
    /// callers are the single ack-path removal, the submit error unwind,
    /// and the peer-death drain — mutually exclusive by token ownership).
    fn release_extent(&self, off: usize, order: u32, len: usize) {
        self.bulk.lock().release(off, order);
        self.bulk_released.fetch_add(len as u64, Ordering::Relaxed);
        self.bulk_in_flight.fetch_sub(1, Ordering::Relaxed);
        telemetry::record(
            &self.telemetry,
            EventKind::BulkRelease,
            telemetry::initiator_key(self.src.nid, self.src.pid),
            0,
            off as u64,
        );
    }

    /// Resolve every outstanding future/flush as failed (peer death).
    fn fail_all_pending(&self) {
        let drained: Vec<PendingPut> = {
            let mut tokens = self.tokens.lock();
            tokens.drain().map(|(_, p)| p).collect()
        };
        for p in drained {
            p.notify.fragments_done(p.remaining, true);
            if let Some((off, order, len)) = p.extent {
                self.release_extent(off, order, len);
            }
        }
        let mut fs = self.flush_state.lock();
        fs.dead = true;
        drop(fs);
        self.flush_cv.notify_all();
    }
}

/// The initiating (client) half: maps a server's segment and speaks the
/// wire protocol through it. All puts go through the request ring; a
/// background response pump resolves [`PutFuture`]s, collects NACKs, and
/// releases [`flush`](ShmClient::flush) barriers from the response ring.
pub struct ShmClient {
    inner: Arc<ClientInner>,
    pump: Option<JoinHandle<()>>,
}

impl ShmClient {
    /// Map the segment at `path` (waiting up to 10 s for the server to
    /// initialise it) and start the response pump.
    pub fn connect(path: &Path, src: NodeAddr) -> Result<ShmClient> {
        ShmClient::connect_with(path, src, None)
    }

    /// [`connect`](ShmClient::connect) with an initiator-side telemetry
    /// recorder for `Submit`/`RingEnqueue` events (pass the server's
    /// recorder in an in-process pair to trace the full put lifecycle).
    pub fn connect_with(
        path: &Path,
        src: NodeAddr,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<ShmClient> {
        let t0 = Instant::now();
        let seg = loop {
            match ShmSegment::open(path) {
                Ok(seg) if seg.len() >= HDR_SPACE => {
                    if header(&seg).state.load(Ordering::Acquire) == STATE_READY {
                        break seg;
                    }
                    if header(&seg).state.load(Ordering::Acquire) == STATE_SERVER_GONE {
                        return Err(RvmaError::TransportFailed(format!(
                            "server at {} already gone",
                            path.display()
                        )));
                    }
                }
                Ok(_) | Err(_) if t0.elapsed() < CONNECT_TIMEOUT => {}
                Ok(_) => {
                    return Err(RvmaError::TransportFailed(format!(
                        "segment {} never became ready",
                        path.display()
                    )));
                }
                Err(e) => return Err(e),
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let hdr = header(&seg);
        if hdr.magic.load(Ordering::Relaxed) != SHM_MAGIC {
            return Err(RvmaError::TransportFailed(format!(
                "{} is not an RVMA segment",
                path.display()
            )));
        }
        if hdr.version.load(Ordering::Relaxed) != SHM_VERSION {
            return Err(RvmaError::TransportFailed(format!(
                "segment {} has wire version {} (expected {SHM_VERSION})",
                path.display(),
                hdr.version.load(Ordering::Relaxed)
            )));
        }
        let geo = SegGeometry::new(
            hdr.mtu.load(Ordering::Relaxed) as usize,
            hdr.req_slots.load(Ordering::Relaxed) as usize,
            hdr.rsp_slots.load(Ordering::Relaxed) as usize,
            hdr.bulk_bytes.load(Ordering::Relaxed) as usize,
        );
        let eager_threshold = hdr.eager_threshold.load(Ordering::Relaxed) as usize;
        if geo.mtu == 0 || seg.len() < geo.total {
            return Err(RvmaError::TransportFailed(format!(
                "segment {} geometry mismatch ({} B mapped, {} B required)",
                path.display(),
                seg.len(),
                geo.total
            )));
        }
        hdr.client_pid.store(std::process::id(), Ordering::SeqCst);

        // Write-fault the client-owned regions up front — the shm
        // analogue of RDMA buffer registration. Extents in the bulk
        // region and request-slot payloads are written by this process
        // only (the server just reads them at gather/deliver), so the
        // touch cannot race a peer store; without it every first store
        // into a fresh rendezvous extent takes a write-protect fault on
        // the datapath, which dominates large-message goodput.
        seg.prefault_writable(geo.req_base, geo.req_stride * geo.req_slots);
        if geo.bulk_bytes > 0 {
            seg.prefault_writable(geo.bulk_base, geo.bulk_bytes);
        }

        let inner = Arc::new(ClientInner {
            seg: Arc::new(seg),
            geo,
            src,
            eager_threshold,
            next_op: AtomicU64::new(1),
            next_token: AtomicU32::new(0),
            next_flush: AtomicU32::new(0),
            tokens: Mutex::new(HashMap::new()),
            nacks: Mutex::new(Vec::new()),
            flush_state: Mutex::new(FlushState {
                acked: HashSet::new(),
                dead: false,
            }),
            flush_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            telemetry,
            bulk: Mutex::new(BulkAllocator::new(geo.bulk_bytes)),
            bulk_reserved: AtomicU64::new(0),
            bulk_released: AtomicU64::new(0),
            bulk_in_flight: AtomicU64::new(0),
            bulk_fallbacks: AtomicU64::new(0),
            staged: AtomicU64::new(0),
        });
        let pump = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("rvma-shm-pump".into())
                .spawn(move || rsp_pump(inner))
                .expect("spawn shm response pump")
        };
        Ok(ShmClient {
            inner,
            pump: Some(pump),
        })
    }

    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.inner.src
    }

    /// The wire MTU agreed with the server.
    pub fn mtu(&self) -> usize {
        self.inner.geo.mtu
    }

    /// Fire-and-forget `RVMA_Put` at offset 0.
    /// The lane policy the server published in the segment header: puts
    /// longer than this take the rendezvous lane (0 forces it for every
    /// non-empty put, `usize::MAX` disables it).
    pub fn eager_threshold(&self) -> usize {
        self.inner.eager_threshold
    }

    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Fire-and-forget `RVMA_Put` at an explicit buffer offset. Blocks
    /// only for ring backpressure; delivery is asynchronous (use
    /// [`put_notify_at`](ShmClient::put_notify_at) or
    /// [`flush`](ShmClient::flush) to observe it).
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        self.submit_put(dest, vaddr, offset, data, false)?;
        Ok(())
    }

    /// `RVMA_Put` returning a [`PutFuture`] that resolves when every
    /// fragment reached its final disposition at the server — the same
    /// local-completion contract as `AsyncInitiator::put_notify`, resolved
    /// by cross-process acks instead of an in-process countdown.
    pub fn put_notify(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<PutFuture> {
        self.put_notify_at(dest, vaddr, 0, data)
    }

    /// [`put_notify`](ShmClient::put_notify) at an explicit offset.
    pub fn put_notify_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<PutFuture> {
        Ok(self
            .submit_put(dest, vaddr, offset, data, true)?
            .expect("notified submission returns a future"))
    }

    /// Reserve a client-owned **registered extent** in the segment's bulk
    /// region — the shm analogue of an RDMA-registered send buffer. The
    /// application writes payload directly into it
    /// ([`BulkExtent::as_mut_slice`]) and puts from it with
    /// [`put_from_extent`](ShmClient::put_from_extent): no staging copy at
    /// all, the server gathers straight from the extent (one copy per
    /// byte, the one no lane can avoid). Returns `None` when the region
    /// is exhausted or the rendezvous lane is disabled. The extent is
    /// returned to the allocator on drop.
    pub fn reserve_extent(&self, len: usize) -> Option<BulkExtent> {
        let inner = &self.inner;
        let (off, order) = inner.bulk.lock().reserve(len)?;
        inner.bulk_reserved.fetch_add(len as u64, Ordering::Relaxed);
        inner.bulk_in_flight.fetch_add(1, Ordering::Relaxed);
        telemetry::record(
            &inner.telemetry,
            EventKind::BulkReserve,
            telemetry::initiator_key(inner.src.nid, inner.src.pid),
            0,
            off as u64,
        );
        Some(BulkExtent {
            inner: self.inner.clone(),
            off,
            order,
            len,
        })
    }

    /// Zero-copy `RVMA_Put` of a registered extent's contents: one RTS
    /// descriptor through the request ring, no payload copy client-side.
    /// The returned future resolves once the server finished gathering
    /// (same ack as [`put_notify_at`](ShmClient::put_notify_at)) — until
    /// then the extent contents must not be rewritten, and the extent
    /// must not be dropped (the RDMA "don't deregister while posted"
    /// contract).
    pub fn put_from_extent(
        &self,
        ext: &BulkExtent,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
    ) -> Result<PutFuture> {
        let inner = &self.inner;
        assert!(
            Arc::ptr_eq(&ext.inner, inner),
            "extent belongs to a different client"
        );
        let op_id = inner.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(inner.src.nid, inner.src.pid);
        telemetry::record(
            &inner.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            ext.len as u64,
        );
        let token = self.alloc_token();
        let notify = PutNotify::new(1);
        // `extent: None`: the application owns the extent's lifetime —
        // the ack resolves the future but releases nothing.
        inner.tokens.lock().insert(
            token,
            PendingPut {
                notify: notify.clone(),
                remaining: 1,
                extent: None,
            },
        );
        telemetry::record(
            &inner.telemetry,
            EventKind::RingEnqueue,
            src_key,
            op_id,
            offset as u64,
        );
        let pushed = self.push_req(|h, payload| {
            h.kind.store(REQ_BULK, Ordering::Relaxed);
            h.len.store(8, Ordering::Relaxed);
            h.dest_nid.store(dest.nid, Ordering::Relaxed);
            h.dest_pid.store(dest.pid, Ordering::Relaxed);
            h.init_nid.store(inner.src.nid, Ordering::Relaxed);
            h.init_pid.store(inner.src.pid, Ordering::Relaxed);
            h.token.store(token, Ordering::Relaxed);
            h.op_id.store(op_id, Ordering::Relaxed);
            h.vaddr.store(vaddr.0, Ordering::Relaxed);
            h.total_len.store(ext.len as u64, Ordering::Relaxed);
            h.offset.store(offset as u64, Ordering::Relaxed);
            // SAFETY: the payload region is at least MTU (> 8) bytes.
            unsafe {
                std::ptr::write_unaligned(payload as *mut u64, ext.off as u64);
            }
        });
        if let Err(e) = pushed {
            inner.tokens.lock().remove(&token);
            return Err(e);
        }
        Ok(PutFuture::from_notify(notify, 1))
    }

    /// Token 0 means "no ack requested"; skip it on wrap.
    fn alloc_token(&self) -> u32 {
        let mut token = self.inner.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        if token == 0 {
            token = self.inner.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        }
        token
    }

    /// One entry point for every put: picks the lane, owns the token
    /// lifecycle. Returns a future only when `want_notify` (rendezvous
    /// puts always run tokened — the ack releases the extent — but the
    /// future is only surfaced on request).
    fn submit_put(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
        want_notify: bool,
    ) -> Result<Option<PutFuture>> {
        let inner = &self.inner;
        if data.len() > inner.eager_threshold {
            let extent = inner.bulk.lock().reserve(data.len());
            match extent {
                Some((ext_off, order)) => {
                    return self.submit_bulk(dest, vaddr, offset, data, ext_off, order, want_notify)
                }
                // Region exhausted (or lane disabled): eager still works —
                // rendezvous is an optimisation, never a requirement.
                None => {
                    inner.bulk_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if !want_notify {
            self.submit(dest, vaddr, offset, data, 0)?;
            return Ok(None);
        }
        let token = self.alloc_token();
        // A put is at least one fragment even when empty — the countdown
        // must resolve for zero-length puts (no-wire-payload audit).
        let fragments = data.len().div_ceil(inner.geo.mtu).max(1) as u64;
        let notify = PutNotify::new(fragments);
        inner.tokens.lock().insert(
            token,
            PendingPut {
                notify: notify.clone(),
                remaining: fragments,
                extent: None,
            },
        );
        if let Err(e) = self.submit(dest, vaddr, offset, data, token) {
            inner.tokens.lock().remove(&token);
            return Err(e);
        }
        Ok(Some(PutFuture::from_notify(notify, fragments)))
    }

    /// Rendezvous submission: one copy into the reserved extent, one RTS
    /// descriptor through the request ring. The put is a single logical
    /// fragment regardless of size.
    #[allow(clippy::too_many_arguments)]
    fn submit_bulk(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
        ext_off: usize,
        order: u32,
        want_notify: bool,
    ) -> Result<Option<PutFuture>> {
        let inner = &self.inner;
        inner
            .bulk_reserved
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        inner.bulk_in_flight.fetch_add(1, Ordering::Relaxed);
        let op_id = inner.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(inner.src.nid, inner.src.pid);
        telemetry::record(
            &inner.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            data.len() as u64,
        );
        telemetry::record(
            &inner.telemetry,
            EventKind::BulkReserve,
            src_key,
            op_id,
            ext_off as u64,
        );
        // The lane's single staging copy: caller buffer → extent. It must
        // complete before the descriptor publishes (the ring slot's
        // release store orders it for the server's acquire pop).
        inner.staged.fetch_add(data.len() as u64, Ordering::Relaxed);
        // SAFETY: the extent was reserved from this segment's bulk region
        // and covers `data.len()` bytes by construction.
        unsafe {
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                inner.seg.as_ptr().add(inner.geo.bulk_base + ext_off),
                data.len(),
            );
        }
        let token = self.alloc_token();
        let notify = PutNotify::new(1);
        inner.tokens.lock().insert(
            token,
            PendingPut {
                notify: notify.clone(),
                remaining: 1,
                extent: Some((ext_off, order, data.len())),
            },
        );
        telemetry::record(
            &inner.telemetry,
            EventKind::RingEnqueue,
            src_key,
            op_id,
            offset as u64,
        );
        let pushed = self.push_req(|h, payload| {
            h.kind.store(REQ_BULK, Ordering::Relaxed);
            h.len.store(8, Ordering::Relaxed);
            h.dest_nid.store(dest.nid, Ordering::Relaxed);
            h.dest_pid.store(dest.pid, Ordering::Relaxed);
            h.init_nid.store(inner.src.nid, Ordering::Relaxed);
            h.init_pid.store(inner.src.pid, Ordering::Relaxed);
            h.token.store(token, Ordering::Relaxed);
            h.op_id.store(op_id, Ordering::Relaxed);
            h.vaddr.store(vaddr.0, Ordering::Relaxed);
            h.total_len.store(data.len() as u64, Ordering::Relaxed);
            h.offset.store(offset as u64, Ordering::Relaxed);
            // SAFETY: the payload region is at least MTU (> 8) bytes.
            unsafe {
                std::ptr::write_unaligned(payload as *mut u64, ext_off as u64);
            }
        });
        if let Err(e) = pushed {
            // Never reached the wire: unwind reservation and token. (If
            // push_req failed, fail_all_pending may already have drained
            // the token and released the extent — only release what we
            // removed ourselves.)
            if let Some(p) = inner.tokens.lock().remove(&token) {
                if let Some((off, ord, len)) = p.extent {
                    inner.release_extent(off, ord, len);
                }
            }
            return Err(e);
        }
        Ok(want_notify.then(|| PutFuture::from_notify(notify, 1)))
    }

    /// Fragment and push one put into the request ring.
    fn submit(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
        token: u32,
    ) -> Result<()> {
        let mtu = self.inner.geo.mtu;
        self.inner
            .staged
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        let op_id = self.inner.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(self.inner.src.nid, self.inner.src.pid);
        telemetry::record(
            &self.inner.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            data.len() as u64,
        );
        // A zero-byte put is a single empty fragment (one counted op) —
        // the same rule as every in-process initiator.
        let ranges: Vec<(usize, usize)> = if data.is_empty() {
            vec![(0, 0)]
        } else {
            (0..data.len())
                .step_by(mtu)
                .map(|s| (s, (s + mtu).min(data.len())))
                .collect()
        };
        for &(s, e) in &ranges {
            telemetry::record(
                &self.inner.telemetry,
                EventKind::RingEnqueue,
                src_key,
                op_id,
                (offset + s) as u64,
            );
            self.push_req(|h, payload| {
                h.kind.store(REQ_PUT, Ordering::Relaxed);
                h.len.store((e - s) as u32, Ordering::Relaxed);
                h.dest_nid.store(dest.nid, Ordering::Relaxed);
                h.dest_pid.store(dest.pid, Ordering::Relaxed);
                h.init_nid.store(self.inner.src.nid, Ordering::Relaxed);
                h.init_pid.store(self.inner.src.pid, Ordering::Relaxed);
                h.token.store(token, Ordering::Relaxed);
                h.op_id.store(op_id, Ordering::Relaxed);
                h.vaddr.store(vaddr.0, Ordering::Relaxed);
                h.total_len.store(data.len() as u64, Ordering::Relaxed);
                h.offset.store((offset + s) as u64, Ordering::Relaxed);
                // SAFETY: payload points at this slot's mtu-sized region
                // and e - s <= mtu.
                unsafe {
                    std::ptr::copy_nonoverlapping(data.as_ptr().add(s), payload, e - s);
                }
            })?;
        }
        Ok(())
    }

    /// Claim, fill, publish one request slot; blocks (bounded, liveness-
    /// checked) while the ring is full — backpressure, never drops.
    fn push_req(&self, fill: impl FnOnce(&ReqHdr, *mut u8)) -> Result<()> {
        let inner = &self.inner;
        let req = inner.req_ring();
        let hdr = header(&inner.seg);
        let mut fill = Some(fill);
        let mut tries = 0u32;
        loop {
            if let Some((idx, ticket)) = req.begin_push() {
                let off = req.slot_off(idx);
                let h = req_hdr(&inner.seg, off);
                // SAFETY: in-bounds payload region of the claimed slot.
                let payload = unsafe { inner.seg.as_ptr().add(off + 8 + REQ_HDR_SIZE) };
                (fill.take().expect("slot claimed once"))(h, payload);
                req.publish(idx, ticket);
                hdr.req_bell.ring();
                return Ok(());
            }
            tries += 1;
            if tries.is_multiple_of(1024) {
                if inner.server_dead() {
                    inner.fail_all_pending();
                    return Err(RvmaError::TransportFailed(
                        "server process gone (request ring stalled)".into(),
                    ));
                }
                std::thread::sleep(Duration::from_micros(100));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Drain barrier: blocks until every previously submitted fragment
    /// reached its final disposition at the server — including link-level
    /// retransmissions parked in the server's deferred queue, which hold
    /// the ack back (see the module docs). Errors if the server dies.
    pub fn flush(&self) -> Result<()> {
        let mut token = self.inner.next_flush.fetch_add(1, Ordering::Relaxed) + 1;
        if token == 0 {
            token = self.inner.next_flush.fetch_add(1, Ordering::Relaxed) + 1;
        }
        self.push_req(|h, _payload| {
            h.kind.store(REQ_FLUSH, Ordering::Relaxed);
            h.len.store(0, Ordering::Relaxed);
            h.token.store(token, Ordering::Relaxed);
        })?;
        let mut fs = self.inner.flush_state.lock();
        loop {
            if fs.acked.remove(&token) {
                return Ok(());
            }
            if fs.dead {
                return Err(RvmaError::TransportFailed(
                    "server process gone (flush never acked)".into(),
                ));
            }
            let timed_out = self
                .inner
                .flush_cv
                .wait_until(&mut fs, Instant::now() + Duration::from_millis(100))
                .timed_out();
            if timed_out && self.inner.server_dead() {
                drop(fs);
                self.inner.fail_all_pending();
                fs = self.inner.flush_state.lock();
            }
        }
    }

    /// Drain the asynchronously collected NACKs. Complete for everything
    /// submitted before the last [`flush`](ShmClient::flush): the response
    /// ring is FIFO, so every NACK of pre-flush traffic lands before the
    /// flush ack the barrier waited on.
    pub fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        std::mem::take(&mut *self.inner.nacks.lock())
    }

    /// Payload bytes copied into the segment so far (request slots on the
    /// eager lane, bulk extents on the rendezvous lane).
    pub fn staged_bytes(&self) -> u64 {
        self.inner.staged.load(Ordering::Relaxed)
    }

    /// Bulk-region accounting. After a [`flush`](ShmClient::flush) with
    /// no puts in flight, `reserved_bytes == released_bytes` and
    /// `in_flight == 0` — the no-extent-leak invariant.
    pub fn bulk_stats(&self) -> BulkStats {
        BulkStats {
            reserved_bytes: self.inner.bulk_reserved.load(Ordering::Relaxed),
            released_bytes: self.inner.bulk_released.load(Ordering::Relaxed),
            in_flight: self.inner.bulk_in_flight.load(Ordering::Relaxed),
            eager_fallbacks: self.inner.bulk_fallbacks.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ShmClient {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl Transport for ShmClient {
    fn backend(&self) -> &'static str {
        "shm"
    }

    fn put_at(&self, dest: NodeAddr, vaddr: VirtAddr, offset: usize, data: &[u8]) -> Result<()> {
        ShmClient::put_at(self, dest, vaddr, offset, data)
    }

    fn flush(&self) -> Result<()> {
        ShmClient::flush(self)
    }

    fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        ShmClient::take_nacks(self)
    }

    fn staged_bytes(&self) -> u64 {
        ShmClient::staged_bytes(self)
    }
}

/// The client's response pump: single consumer of the response ring.
/// Resolves put-notify countdowns, collects NACKs, releases flush
/// barriers; on server death it fails everything outstanding so no
/// future or flush ever hangs on a dead peer.
fn rsp_pump(inner: Arc<ClientInner>) {
    let rsp = inner.rsp_ring();
    let hdr = header(&inner.seg);
    let mut dead_checks = 0u32;
    loop {
        if let Some(idx) = rsp.begin_pop() {
            let off = rsp.slot_off(idx);
            let h = rsp_hdr(&inner.seg, off);
            let msg = RspMsg {
                kind: h.kind.load(Ordering::Relaxed),
                token: h.token.load(Ordering::Relaxed),
                reason: h.reason.load(Ordering::Relaxed),
                nacked: h.nacked.load(Ordering::Relaxed),
                vaddr: h.vaddr.load(Ordering::Relaxed),
            };
            rsp.release_pop(idx);
            handle_rsp(&inner, msg);
            continue;
        }
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        dead_checks += 1;
        if dead_checks.is_multiple_of(8) && inner.server_dead() {
            // Drain what the server managed to push before dying, then
            // fail the rest.
            while let Some(idx) = rsp.begin_pop() {
                let off = rsp.slot_off(idx);
                let h = rsp_hdr(&inner.seg, off);
                let msg = RspMsg {
                    kind: h.kind.load(Ordering::Relaxed),
                    token: h.token.load(Ordering::Relaxed),
                    reason: h.reason.load(Ordering::Relaxed),
                    nacked: h.nacked.load(Ordering::Relaxed),
                    vaddr: h.vaddr.load(Ordering::Relaxed),
                };
                rsp.release_pop(idx);
                handle_rsp(&inner, msg);
            }
            inner.fail_all_pending();
            break;
        }
        // Same idle ladder as the server worker: acks stream one per
        // rendezvous put, so parking per ack would cost a futex round
        // trip per message. Defaults (the client has no EndpointConfig):
        // the server publishes no idle policy in the header, and the
        // pump's cadence only affects extent-release latency, which the
        // allocator's depth absorbs.
        if idle_wait(
            &rsp,
            &inner.stop,
            DEFAULT_WIRE_IDLE_SPINS,
            DEFAULT_WIRE_IDLE_YIELDS,
        ) {
            continue;
        }
        let seen = hdr.rsp_bell.prepare();
        if rsp.can_pop() || inner.stop.load(Ordering::Acquire) {
            hdr.rsp_bell.cancel();
            continue;
        }
        hdr.rsp_bell.wait(seen, DOORBELL_WAIT);
    }
}

fn handle_rsp(inner: &ClientInner, msg: RspMsg) {
    match msg.kind {
        RSP_PUT_DONE => {
            // A duplicate ack (possible only through fault injection)
            // finds the token already removed and is ignored — that is
            // what makes the extent release below exactly-once.
            let done = {
                let mut tokens = inner.tokens.lock();
                match tokens.get_mut(&msg.token) {
                    Some(p) => {
                        p.notify.fragments_done(1, msg.nacked != 0);
                        p.remaining -= 1;
                        if p.remaining == 0 {
                            tokens.remove(&msg.token)
                        } else {
                            None
                        }
                    }
                    None => None,
                }
            };
            if let Some(p) = done {
                if let Some((off, order, len)) = p.extent {
                    inner.release_extent(off, order, len);
                }
            }
        }
        RSP_NACK => {
            inner
                .nacks
                .lock()
                .push((VirtAddr::new(msg.vaddr), decode_nack(msg.reason)));
        }
        RSP_FLUSH_ACK => {
            let mut fs = inner.flush_state.lock();
            fs.acked.insert(msg.token);
            drop(fs);
            inner.flush_cv.notify_all();
        }
        _ => {}
    }
}

/// Server + client halves over one real segment in a single process — the
/// unit-test/bench harness shape (the conformance suite additionally runs
/// the client in a forked child process; the wire protocol is identical).
pub fn shm_pair(
    mtu: usize,
    config: EndpointConfig,
    src: NodeAddr,
) -> Result<(ShmServer, ShmClient)> {
    let server = ShmServer::create_default(mtu, config)?;
    let telemetry = server.telemetry();
    let client = ShmClient::connect_with(server.path(), src, telemetry)?;
    Ok((server, client))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use crate::shm::shm_supported;

    const SERVER: NodeAddr = NodeAddr::node(0);
    const CLIENT: NodeAddr = NodeAddr::node(1);

    #[test]
    fn geometry_is_consistent_and_aligned() {
        let g = SegGeometry::new(2048, 1024, 512, 1 << 20);
        assert_eq!(g.req_base % 64, 0);
        assert_eq!(g.rsp_base % 64, 0);
        assert_eq!(g.req_stride % 64, 0);
        assert_eq!(g.bulk_base % 64, 0);
        assert!(g.req_stride >= 8 + REQ_HDR_SIZE + 2048);
        assert!(g.bulk_base >= g.rsp_base + 512 * g.rsp_stride);
        assert!(g.total >= g.bulk_base + (1 << 20));
        assert_eq!(std::mem::size_of::<ReqHdr>(), REQ_HDR_SIZE);
        assert_eq!(std::mem::size_of::<RspHdr>(), RSP_HDR_SIZE);
        assert!(std::mem::size_of::<SegHeader>() <= HDR_SPACE);
        assert_eq!(std::mem::size_of::<RingCtrl>(), CTRL_SPACE);
        // A zero-sized bulk region must not change the classic layout.
        let g0 = SegGeometry::new(2048, 1024, 512, 0);
        assert_eq!(g0.total, round64(g0.bulk_base));
    }

    #[test]
    fn bulk_allocator_splits_merges_and_exhausts() {
        let mut a = BulkAllocator::new(1 << 12); // 4 KiB region
        let (o1, r1) = a.reserve(100).unwrap(); // order 7 (128 B)
        assert_eq!(r1, 7);
        let (o2, r2) = a.reserve(1 << 11).unwrap(); // order 11
        assert_eq!(r2, 11);
        assert_ne!(o1, o2);
        // Too big for what remains → None (caller falls back to eager).
        assert!(a.reserve(1 << 11).is_none());
        // Oversize vs the whole region → None.
        assert!(a.reserve((1 << 12) + 1).is_none());
        a.release(o1, r1);
        a.release(o2, r2);
        // Everything merged back: the full region is allocatable again.
        let (o3, r3) = a.reserve(1 << 12).unwrap();
        assert_eq!((o3, r3), (0, 12));
        a.release(o3, r3);
    }

    #[test]
    fn pair_roundtrip_multi_fragment_put() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x10), Threshold::bytes(1000))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; 1000]).unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        client.put(SERVER, VirtAddr::new(0x10), &payload).unwrap();
        let buf = note
            .wait_timeout(Duration::from_secs(10))
            .expect("epoch completes across the segment");
        assert_eq!(buf.data(), &payload[..], "byte-exact delivery");
    }

    #[test]
    fn put_notify_resolves_including_zero_length() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(128, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x20), Threshold::ops(2))
            .unwrap();
        let _note = win.post_buffer(vec![0u8; 256]).unwrap();
        let f1 = client
            .put_notify(SERVER, VirtAddr::new(0x20), &[7u8; 200])
            .unwrap();
        // Zero-length put: no wire payload, but the future must resolve.
        let f2 = client.put_notify(SERVER, VirtAddr::new(0x20), &[]).unwrap();
        let d1 = pollster::block_on(f1);
        let d2 = pollster::block_on(f2);
        assert_eq!(d1.fragments, 2);
        assert!(!d1.nacked);
        assert_eq!(d2.fragments, 1);
        assert!(!d2.nacked);
    }

    #[test]
    fn registered_extent_put_is_byte_exact_and_copyless() {
        if !shm_supported() {
            return;
        }
        const LEN: usize = 24 << 10; // multi-MTU, above the default threshold
        let (server, client) = shm_pair(4096, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x30), Threshold::bytes(2 * LEN as u64))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; 2 * LEN]).unwrap();

        let mut ext = client.reserve_extent(LEN).expect("bulk region");
        assert_eq!(ext.len(), LEN);
        for (i, b) in ext.as_mut_slice().iter_mut().enumerate() {
            *b = (i % 253) as u8;
        }
        // Same extent put twice at different offsets: reuse after the ack
        // resolves, contents untouched in between.
        let f1 = client
            .put_from_extent(&ext, SERVER, VirtAddr::new(0x30), 0)
            .unwrap();
        assert!(!pollster::block_on(f1).nacked);
        let f2 = client
            .put_from_extent(&ext, SERVER, VirtAddr::new(0x30), LEN)
            .unwrap();
        assert!(!pollster::block_on(f2).nacked);

        let buf = note
            .wait_timeout(Duration::from_secs(10))
            .expect("epoch completes");
        for half in 0..2 {
            for (i, &b) in buf.data()[half * LEN..(half + 1) * LEN].iter().enumerate() {
                assert_eq!(b, (i % 253) as u8, "byte {i} of half {half}");
            }
        }
        // Zero staging, zero slot-pop: the gather is the only copy.
        assert_eq!(client.staged_bytes(), 0, "registered puts must not stage");
        assert_eq!(server.wire_copied(), 0, "RTS descriptors carry no payload");
        assert_eq!(ep.stats().bytes_copied, 2 * LEN as u64);

        // Dropping the extent returns it: the full region is allocatable
        // again and the quiesce balance holds.
        drop(ext);
        let stats = client.bulk_stats();
        assert_eq!(stats.reserved_bytes, stats.released_bytes);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn nacks_cross_the_segment() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
        let _ep = server.add_endpoint(SERVER);
        // No mailbox at this vaddr → NoSuchMailbox NACK back to the client.
        client
            .put(SERVER, VirtAddr::new(0x999), &[1, 2, 3])
            .unwrap();
        client.flush().unwrap();
        let nacks = client.take_nacks();
        assert_eq!(nacks.len(), 1);
        assert_eq!(nacks[0], (VirtAddr::new(0x999), NackReason::NoSuchMailbox));
    }

    #[test]
    fn flush_holds_for_parked_retries() {
        if !shm_supported() {
            return;
        }
        let cfg = EndpointConfig {
            dedup_window: 1 << 12,
            fault_model: crate::retry::FaultModel {
                drop_p: 0.3,
                ..crate::retry::FaultModel::NONE
            },
            fault_seed: 0xF00D,
            ..Default::default()
        };
        let (server, client) = shm_pair(32, cfg, CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x30), Threshold::bytes(4096))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; 4096]).unwrap();
        client
            .put(SERVER, VirtAddr::new(0x30), &[0xAB; 4096])
            .unwrap();
        // The barrier must cover the fault layer's parked retransmissions:
        // after it, the epoch is complete without any further waiting.
        client.flush().unwrap();
        let buf = note.poll().expect("flush drained every retransmission");
        assert!(buf.data().iter().all(|&b| b == 0xAB));
        let stats = server.fault_stats().unwrap();
        assert!(stats.dropped() > 0, "fault model actually fired");
        assert_eq!(server.pending_retries(), 0);
    }

    #[test]
    fn rendezvous_roundtrip_is_byte_exact_and_releases_extent() {
        if !shm_supported() {
            return;
        }
        let cfg = EndpointConfig {
            shm_bulk_bytes: 1 << 20,
            ..Default::default()
        };
        let (server, client) = shm_pair(64, cfg, CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let len = 64 * 1024; // far above the default eager threshold
        let win = ep
            .init_window(VirtAddr::new(0x50), Threshold::bytes(len as u64))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; len]).unwrap();
        let payload: Vec<u8> = (0..len as u32).map(|i| (i % 239) as u8).collect();
        client.put(SERVER, VirtAddr::new(0x50), &payload).unwrap();
        client.flush().unwrap();
        let buf = note.poll().expect("rendezvous epoch complete");
        assert_eq!(buf.data(), &payload[..], "byte-exact gather from extent");
        // Extent balance: the ack released exactly what was reserved.
        let bs = client.bulk_stats();
        assert_eq!(bs.reserved_bytes, len as u64);
        assert_eq!(bs.released_bytes, len as u64);
        assert_eq!(bs.in_flight, 0);
        assert_eq!(bs.eager_fallbacks, 0);
        // Zero eager wire copies: the worker never copied a slot payload.
        assert_eq!(server.wire_copied(), 0);
    }

    #[test]
    fn rendezvous_notify_future_resolves_as_one_fragment() {
        if !shm_supported() {
            return;
        }
        let cfg = EndpointConfig {
            shm_bulk_bytes: 1 << 20,
            ..Default::default()
        };
        let (server, client) = shm_pair(64, cfg, CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let len = 32 * 1024;
        let win = ep
            .init_window(VirtAddr::new(0x55), Threshold::bytes(len as u64))
            .unwrap();
        let _note = win.post_buffer(vec![0u8; len]).unwrap();
        let fut = client
            .put_notify(SERVER, VirtAddr::new(0x55), &vec![0x5A; len])
            .unwrap();
        let d = pollster::block_on(fut);
        assert_eq!(d.fragments, 1, "an RTS is one logical fragment");
        assert!(!d.nacked);
        client.flush().unwrap();
        assert_eq!(client.bulk_stats().in_flight, 0);
    }

    #[test]
    fn rendezvous_survives_retransmitted_rts_without_extent_leak() {
        if !shm_supported() {
            return;
        }
        // Drop AND duplicate dice on the RTS descriptor: deferred copies
        // must gather bytes that are still valid, duplicated deliveries
        // must dedup, and exactly one ack must release each extent.
        let cfg = EndpointConfig {
            dedup_window: 1 << 15,
            shm_bulk_bytes: 1 << 22,
            fault_model: crate::retry::FaultModel {
                drop_p: 0.3,
                dup_p: 0.2,
                ..crate::retry::FaultModel::NONE
            },
            fault_seed: 0xB17E,
            ..Default::default()
        };
        let (server, client) = shm_pair(64, cfg, CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let len = 16 * 1024;
        let rounds = 8u64;
        let win = ep
            .init_window(VirtAddr::new(0x60), Threshold::bytes(len as u64))
            .unwrap();
        let mut notes = Vec::new();
        for _ in 0..rounds {
            notes.push(win.post_buffer(vec![0u8; len]).unwrap());
        }
        let payload: Vec<u8> = (0..len as u32).map(|i| (i % 241) as u8).collect();
        for _ in 0..rounds {
            client.put(SERVER, VirtAddr::new(0x60), &payload).unwrap();
        }
        client.flush().unwrap();
        for mut note in notes {
            let buf = note.poll().expect("every faulted epoch completes");
            assert_eq!(buf.data(), &payload[..], "byte-exact under faults");
        }
        let bs = client.bulk_stats();
        assert_eq!(bs.reserved_bytes, rounds * len as u64);
        assert_eq!(
            bs.released_bytes, bs.reserved_bytes,
            "no extent leaked under drop/dup faults"
        );
        assert_eq!(bs.in_flight, 0);
        assert_eq!(server.pending_retries(), 0);
        let stats = server.fault_stats().unwrap();
        assert!(
            stats.dropped() + stats.duplicated() > 0,
            "dice actually fired"
        );
    }

    #[test]
    fn bulk_exhaustion_falls_back_to_eager() {
        if !shm_supported() {
            return;
        }
        // A 16 KiB region cannot hold a 32 KiB extent: that put must fall
        // back to the eager fragment lane deterministically, while a
        // 12 KiB put still rides rendezvous. Both must land byte-exact.
        let cfg = EndpointConfig {
            shm_bulk_bytes: 16 << 10,
            ..Default::default()
        };
        let (server, client) = shm_pair(256, cfg, CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let big = 32 * 1024; // > bulk region → eager fallback
        let small = 12 * 1024; // fits → rendezvous
        let win = ep
            .init_window(VirtAddr::new(0x70), Threshold::bytes((big + small) as u64))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; big + small]).unwrap();
        let a: Vec<u8> = vec![0xA1; big];
        let b: Vec<u8> = vec![0xB2; small];
        client.put_at(SERVER, VirtAddr::new(0x70), 0, &a).unwrap();
        client.put_at(SERVER, VirtAddr::new(0x70), big, &b).unwrap();
        client.flush().unwrap();
        let buf = note.poll().expect("both puts landed");
        assert_eq!(&buf.data()[..big], &a[..]);
        assert_eq!(&buf.data()[big..], &b[..]);
        let bs = client.bulk_stats();
        assert_eq!(bs.eager_fallbacks, 1, "oversize put fell back exactly once");
        assert_eq!(bs.reserved_bytes, small as u64);
        assert_eq!(bs.released_bytes, small as u64);
        assert_eq!(bs.in_flight, 0);
        // The fallback's bytes crossed as slot copies; the rendezvous
        // put's did not.
        assert_eq!(server.wire_copied(), big as u64);
    }

    #[test]
    fn server_drop_fails_client_cleanly() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x40), Threshold::ops(1))
            .unwrap();
        let _n = win.post_buffer(vec![0u8; 64]).unwrap();
        client.put(SERVER, VirtAddr::new(0x40), &[1u8; 64]).unwrap();
        client.flush().unwrap();
        drop(server);
        // New work against a gone server errors instead of hanging.
        let err = client.flush();
        assert!(matches!(err, Err(RvmaError::TransportFailed(_))));
    }
}
