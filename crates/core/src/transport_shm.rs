//! Cross-process transport: the RVMA wire protocol over shared memory.
//!
//! This is the first backend where initiator and target live in *different
//! OS processes*. A file-backed [`ShmSegment`](crate::shm::ShmSegment)
//! carries two bounded rings of fixed-size slots — the Vyukov design of
//! [`crate::ring`] re-laid over raw shared memory, with futex doorbells
//! replacing the in-process Dekker unpark:
//!
//! * the **request ring** (MPSC: any number of initiator threads → the
//!   server's single wire worker) carries put fragments and flush markers;
//! * the **response ring** (SPSC: wire worker → the client's response
//!   pump) carries per-fragment delivery acks for notified puts, NACKs,
//!   and flush acks.
//!
//! Layering is the point: the server-side worker runs the *same*
//! receiver datapath as the in-process transports — [`RvmaEndpoint`]
//! delivery, dedup windows ([`crate::retry`]), seeded fault injection with
//! link-level retransmission, op-level telemetry — and the client resolves
//! the *same* [`PutFuture`] the threaded transport hands out, fed by acks
//! crossing the segment instead of an in-process countdown. Nothing above
//! the wire knows the peer is in another address space.
//!
//! ## Quiesce over shared memory
//!
//! [`ShmClient::flush`] pushes a tokened flush marker through the request
//! ring. The worker acks it only when no link-level retransmission is
//! parked in its deferred queue (`pending_retries == 0`); otherwise the
//! marker is re-deferred *behind* the parked fragments, so the ack proves
//! every fragment submitted before the flush — including fault re-enqueues
//! and anything parked in the shm ring/doorbell path — reached its final
//! disposition. This is the same drain-barrier contract as
//! `AsyncNetwork::quiesce`, kept honest by the bounded retry budget.
//!
//! ## Peer death
//!
//! Every blocking loop is bounded: futex waits time out and re-check, the
//! segment header carries both PIDs plus a `state` word the server flips
//! to `SERVER_GONE` on drop, and stuck producers probe `/proc/<pid>`.
//! A dead server fails client calls with [`RvmaError::TransportFailed`]
//! and resolves outstanding [`PutFuture`]s as NACKed; a dead client makes
//! the server drop undeliverable responses. The segment file is unlinked
//! by its creator; an already-mapped segment stays usable until the last
//! mapping drops (POSIX unlink semantics), so no state leaks even when a
//! peer dies mid-conversation. See DESIGN.md §12.

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{DeliverResult, EndpointConfig, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
use crate::retry::{FaultInjector, FaultStats};
use crate::shm::{self, ShmSegment};
use crate::telemetry::{self, EventKind, Telemetry};
use crate::transport::Transport;
use crate::transport_threaded::{PutFuture, PutNotify};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Segment magic ("RVMASHM1") — a peer mapping the wrong file fails fast.
const SHM_MAGIC: u64 = 0x5256_4D41_5348_4D31;
/// Wire-layout version; bump on any slot/header change.
const SHM_VERSION: u32 = 1;

/// The mmap zero-fill value — what a client sees before the server's
/// `STATE_READY` publish.
#[allow(dead_code)]
const STATE_INIT: u32 = 0;
const STATE_READY: u32 = 1;
const STATE_SERVER_GONE: u32 = 2;

// Request-ring message kinds.
const REQ_PUT: u32 = 1;
const REQ_FLUSH: u32 = 2;

// Response-ring message kinds.
const RSP_PUT_DONE: u32 = 1;
const RSP_NACK: u32 = 2;
const RSP_FLUSH_ACK: u32 = 3;

/// Bounded doorbell sleep: a lost wakeup (or dying peer) costs at most
/// this much latency, never a hang.
const DOORBELL_WAIT: Duration = Duration::from_millis(20);

/// How long `connect` waits for the server to initialise the segment.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn round64(n: usize) -> usize {
    (n + 63) & !63
}

fn pid_alive(pid: u32) -> bool {
    if !cfg!(target_os = "linux") {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

fn encode_nack(r: NackReason) -> u32 {
    match r {
        NackReason::WindowClosed => 1,
        NackReason::NoSuchMailbox => 2,
        NackReason::NoBufferPosted => 3,
        NackReason::OutOfBounds => 4,
    }
}

fn decode_nack(v: u32) -> NackReason {
    match v {
        1 => NackReason::WindowClosed,
        3 => NackReason::NoBufferPosted,
        4 => NackReason::OutOfBounds,
        _ => NackReason::NoSuchMailbox,
    }
}

// ---------------------------------------------------------------------------
// Segment layout
// ---------------------------------------------------------------------------

/// Futex-backed eventcount doorbell living in the segment header. The
/// producer bumps `seq` (cheap RMW) after publishing and issues the wake
/// syscall only when a consumer advertised itself in `waiters`; the
/// consumer snapshots `seq` *before* its final emptiness re-check, so a
/// publish between check and sleep changes the word and the futex refuses
/// to block. All waits are additionally time-bounded (see
/// [`DOORBELL_WAIT`]).
#[repr(C)]
struct Doorbell {
    seq: AtomicU32,
    waiters: AtomicU32,
}

impl Doorbell {
    fn ring(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            shm::futex_wake(&self.seq, u32::MAX);
        }
    }

    /// Advertise intent to sleep; returns the observed sequence. The
    /// caller must re-check its work predicate between `prepare` and
    /// `wait`, and call `cancel` instead of `wait` if work appeared.
    fn prepare(&self) -> u32 {
        let seen = self.seq.load(Ordering::SeqCst);
        self.waiters.fetch_add(1, Ordering::SeqCst);
        seen
    }

    fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    fn wait(&self, seen: u32, timeout: Duration) {
        shm::futex_wait(&self.seq, seen, timeout);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// First bytes of the segment: identification, handshake state, geometry,
/// liveness PIDs, and the two doorbells. Everything is atomics — the
/// header is the one region both processes write concurrently.
#[repr(C)]
struct SegHeader {
    magic: AtomicU64,
    mtu: AtomicU64,
    req_slots: AtomicU64,
    rsp_slots: AtomicU64,
    version: AtomicU32,
    state: AtomicU32,
    server_pid: AtomicU32,
    client_pid: AtomicU32,
    req_bell: Doorbell,
    rsp_bell: Doorbell,
}

/// Space reserved for [`SegHeader`] at offset 0.
const HDR_SPACE: usize = 128;

/// Producer/consumer cursors of one ring, each on its own cache line.
#[repr(C, align(64))]
struct RingCtrl {
    tail: AtomicU64,
    _pad0: [u8; 56],
    head: AtomicU64,
    _pad1: [u8; 56],
}

const CTRL_SPACE: usize = 128;

/// Per-slot request header (fixed 64 bytes after the slot's sequence
/// word; the inline payload follows). `Bytes` handles cannot cross
/// address spaces, so the fragment is fully serialised: identification,
/// placement, and the payload bytes themselves.
#[repr(C)]
struct ReqHdr {
    kind: AtomicU32,
    len: AtomicU32,
    dest_nid: AtomicU32,
    dest_pid: AtomicU32,
    init_nid: AtomicU32,
    init_pid: AtomicU32,
    /// Nonzero for notified puts: the client-side key the delivery ack
    /// comes back under. Doubles as the flush token for `REQ_FLUSH`.
    token: AtomicU32,
    _rsv: AtomicU32,
    op_id: AtomicU64,
    vaddr: AtomicU64,
    total_len: AtomicU64,
    offset: AtomicU64,
}

const REQ_HDR_SIZE: usize = 64;

/// Per-slot response header (acks flowing server → client).
#[repr(C)]
struct RspHdr {
    kind: AtomicU32,
    token: AtomicU32,
    reason: AtomicU32,
    nacked: AtomicU32,
    vaddr: AtomicU64,
}

const RSP_HDR_SIZE: usize = 24;

/// Computed segment geometry; both sides derive it from the header's
/// `(mtu, req_slots, rsp_slots)` so they always agree on offsets.
#[derive(Clone, Copy)]
struct SegGeometry {
    mtu: usize,
    req_slots: usize,
    rsp_slots: usize,
    req_ctrl: usize,
    req_base: usize,
    req_stride: usize,
    rsp_ctrl: usize,
    rsp_base: usize,
    rsp_stride: usize,
    total: usize,
}

impl SegGeometry {
    fn new(mtu: usize, req_slots: usize, rsp_slots: usize) -> SegGeometry {
        let req_stride = round64(8 + REQ_HDR_SIZE + mtu);
        let rsp_stride = round64(8 + RSP_HDR_SIZE);
        let req_ctrl = HDR_SPACE;
        let req_base = req_ctrl + CTRL_SPACE;
        let rsp_ctrl = round64(req_base + req_slots * req_stride);
        let rsp_base = rsp_ctrl + CTRL_SPACE;
        let total = round64(rsp_base + rsp_slots * rsp_stride);
        SegGeometry {
            mtu,
            req_slots,
            rsp_slots,
            req_ctrl,
            req_base,
            req_stride,
            rsp_ctrl,
            rsp_base,
            rsp_stride,
            total,
        }
    }
}

fn header(seg: &ShmSegment) -> &SegHeader {
    // SAFETY: offset 0 is 64-aligned and HDR_SPACE covers the struct; the
    // mapping outlives every borrow (the segment Arc is held alongside).
    unsafe { seg.at::<SegHeader>(0) }
}

// ---------------------------------------------------------------------------
// The ring over raw shared memory
// ---------------------------------------------------------------------------

/// One Vyukov bounded ring laid out in the segment: a control block of
/// head/tail cursors plus `cap` fixed-stride slots, each starting with its
/// sequence word. Producers claim a slot by CAS on `tail`, fill it, and
/// publish with a release store of `seq = tail + 1`; the single consumer
/// reads at `seq == head + 1` and recycles with `seq = head + cap`. Same
/// protocol as [`crate::ring::RingQueue`], but every word lives at a
/// process-independent offset instead of behind a `Box`.
#[derive(Clone)]
struct RawRing {
    seg: Arc<ShmSegment>,
    ctrl: usize,
    base: usize,
    stride: usize,
    cap: usize,
}

impl RawRing {
    fn ctrl(&self) -> &RingCtrl {
        // SAFETY: ctrl offset is 64-aligned and in bounds by geometry.
        unsafe { self.seg.at::<RingCtrl>(self.ctrl) }
    }

    fn slot_off(&self, idx: usize) -> usize {
        self.base + idx * self.stride
    }

    fn slot_seq(&self, idx: usize) -> &AtomicU64 {
        // SAFETY: slot offsets are 64-aligned and in bounds by geometry.
        unsafe { self.seg.at::<AtomicU64>(self.slot_off(idx)) }
    }

    /// Creator-side slot initialisation (`seq[i] = i`) — must complete
    /// before the header flips to `STATE_READY`.
    fn init_slots(&self) {
        for i in 0..self.cap {
            self.slot_seq(i).store(i as u64, Ordering::Relaxed);
        }
    }

    /// Claim a slot for writing. Returns the slot index and the ticket to
    /// publish with, or `None` when the ring is full.
    fn begin_push(&self) -> Option<(usize, u64)> {
        let ctrl = self.ctrl();
        loop {
            let tail = ctrl.tail.load(Ordering::Relaxed);
            let idx = (tail % self.cap as u64) as usize;
            let seq = self.slot_seq(idx).load(Ordering::Acquire);
            if seq == tail {
                if ctrl
                    .tail
                    .compare_exchange_weak(tail, tail + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return Some((idx, tail));
                }
            } else if seq < tail {
                return None; // full
            }
            std::hint::spin_loop();
        }
    }

    fn publish(&self, idx: usize, ticket: u64) {
        self.slot_seq(idx).store(ticket + 1, Ordering::Release);
    }

    /// True when the next slot is ready for the consumer.
    fn can_pop(&self) -> bool {
        let head = self.ctrl().head.load(Ordering::Relaxed);
        let idx = (head % self.cap as u64) as usize;
        self.slot_seq(idx).load(Ordering::Acquire) == head + 1
    }

    /// Single-consumer: claim the next filled slot for reading. Returns
    /// the slot index; the caller must `release` it when done copying.
    fn begin_pop(&self) -> Option<usize> {
        let head = self.ctrl().head.load(Ordering::Relaxed);
        let idx = (head % self.cap as u64) as usize;
        if self.slot_seq(idx).load(Ordering::Acquire) == head + 1 {
            Some(idx)
        } else {
            None
        }
    }

    fn release_pop(&self, idx: usize) {
        let ctrl = self.ctrl();
        let head = ctrl.head.load(Ordering::Relaxed);
        self.slot_seq(idx)
            .store(head + self.cap as u64, Ordering::Release);
        ctrl.head.store(head + 1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Wire messages (deserialised owned forms)
// ---------------------------------------------------------------------------

enum ServerMsg {
    Frag {
        dest: NodeAddr,
        frag: Fragment,
        token: u32,
        /// Fault-layer attempts burned (0 = fresh off the wire). Only
        /// server-local retries raise it; it never crosses the segment.
        attempt: u32,
    },
    Flush(u32),
}

struct RspMsg {
    kind: u32,
    token: u32,
    reason: u32,
    nacked: u32,
    vaddr: u64,
}

fn req_hdr(seg: &ShmSegment, slot_off: usize) -> &ReqHdr {
    // SAFETY: slot base is 64-aligned, +8 keeps u64 alignment; in bounds.
    unsafe { seg.at::<ReqHdr>(slot_off + 8) }
}

fn rsp_hdr(seg: &ShmSegment, slot_off: usize) -> &RspHdr {
    // SAFETY: as above.
    unsafe { seg.at::<RspHdr>(slot_off + 8) }
}

// ---------------------------------------------------------------------------
// Server (receiver process)
// ---------------------------------------------------------------------------

/// Fault-injection state of a [`ShmServer`] (mirrors the threaded
/// transport's plan; the injector itself lives on the worker thread).
struct ShmFaultPlan {
    model: crate::retry::FaultModel,
    budget: u32,
    seed: u64,
    stats: Arc<FaultStats>,
    /// Retransmissions parked in the worker's deferred queue. The flush
    /// protocol re-defers its ack behind them while this is nonzero —
    /// the shm half of the quiesce drain barrier.
    pending_retries: AtomicU64,
}

struct ServerInner {
    seg: Arc<ShmSegment>,
    geo: SegGeometry,
    config: EndpointConfig,
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    fault: Option<ShmFaultPlan>,
    telemetry: Option<Arc<Telemetry>>,
    stop: AtomicBool,
    delivered: AtomicU64,
}

impl ServerInner {
    fn req_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.req_ctrl,
            base: self.geo.req_base,
            stride: self.geo.req_stride,
            cap: self.geo.req_slots,
        }
    }

    fn rsp_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.rsp_ctrl,
            base: self.geo.rsp_base,
            stride: self.geo.rsp_stride,
            cap: self.geo.rsp_slots,
        }
    }
}

/// The receiving (server) half of the shared-memory transport: owns the
/// segment, hosts [`RvmaEndpoint`]s, and runs one wire-worker thread that
/// pops fragments off the request ring and drives the standard receiver
/// datapath — dedup, fault injection, telemetry, notification — exactly as
/// the in-process transports do.
pub struct ShmServer {
    inner: Arc<ServerInner>,
    worker: Option<JoinHandle<()>>,
}

impl ShmServer {
    /// Create the segment at `path` and start the wire worker. Ring
    /// capacities come from [`EndpointConfig::shm_req_slots`] /
    /// [`EndpointConfig::shm_rsp_slots`]; fault model, dedup window,
    /// retry budget, and telemetry all plumb through unchanged from the
    /// same config the in-process transports take.
    pub fn create(path: &Path, mtu: usize, config: EndpointConfig) -> Result<ShmServer> {
        assert!(mtu > 0, "MTU must be positive");
        let req_slots = config.shm_req_slots.next_power_of_two().max(2);
        let rsp_slots = config.shm_rsp_slots.next_power_of_two().max(2);
        let geo = SegGeometry::new(mtu, req_slots, rsp_slots);
        let seg = Arc::new(ShmSegment::create(path, geo.total)?);

        let telemetry = config.telemetry.then(|| Arc::new(Telemetry::new()));
        let fault = (!config.fault_model.is_none()).then(|| ShmFaultPlan {
            model: config.fault_model,
            budget: config.retry_budget.max(1),
            seed: config.fault_seed,
            stats: Arc::new(FaultStats::default()),
            pending_retries: AtomicU64::new(0),
        });
        let inner = Arc::new(ServerInner {
            seg: seg.clone(),
            geo,
            config,
            endpoints: RwLock::new(HashMap::new()),
            fault,
            telemetry,
            stop: AtomicBool::new(false),
            delivered: AtomicU64::new(0),
        });

        inner.req_ring().init_slots();
        inner.rsp_ring().init_slots();
        let hdr = header(&seg);
        hdr.mtu.store(mtu as u64, Ordering::Relaxed);
        hdr.req_slots.store(req_slots as u64, Ordering::Relaxed);
        hdr.rsp_slots.store(rsp_slots as u64, Ordering::Relaxed);
        hdr.version.store(SHM_VERSION, Ordering::Relaxed);
        hdr.server_pid.store(std::process::id(), Ordering::Relaxed);
        hdr.magic.store(SHM_MAGIC, Ordering::Relaxed);
        // Publish: a connecting client acquires everything above through
        // this store.
        hdr.state.store(STATE_READY, Ordering::Release);

        let worker = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("rvma-shm-wire".into())
                .spawn(move || shm_worker(inner))
                .expect("spawn shm wire worker")
        };
        Ok(ShmServer {
            inner,
            worker: Some(worker),
        })
    }

    /// Create with defaults at a fresh unique path (see
    /// [`crate::shm::default_segment_path`]).
    pub fn create_default(mtu: usize, config: EndpointConfig) -> Result<ShmServer> {
        ShmServer::create(&shm::default_segment_path("srv"), mtu, config)
    }

    /// The segment path a peer passes to [`ShmClient::connect`].
    pub fn path(&self) -> &Path {
        self.inner.seg.path()
    }

    /// The wire MTU.
    pub fn mtu(&self) -> usize {
        self.inner.geo.mtu
    }

    /// Create and host an endpoint at `addr` (the shm analogue of
    /// `AsyncNetwork::add_endpoint`).
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::with_config(addr, self.inner.config.clone());
        if let Some(t) = &self.inner.telemetry {
            ep.attach_telemetry(t.clone());
        }
        self.inner.endpoints.write().insert(addr, ep.clone());
        ep
    }

    /// Attach an existing endpoint.
    pub fn register(&self, endpoint: Arc<RvmaEndpoint>) {
        if let Some(t) = &self.inner.telemetry {
            endpoint.attach_telemetry(t.clone());
        }
        self.inner
            .endpoints
            .write()
            .insert(endpoint.addr(), endpoint);
    }

    /// Detach the endpoint at `addr`; queued fragments NACK with
    /// `NoSuchMailbox` when the worker reaches them — the crash-fault
    /// behaviour, triggerable explicitly.
    pub fn remove_endpoint(&self, addr: NodeAddr) -> bool {
        self.inner.endpoints.write().remove(&addr).is_some()
    }

    /// The server-side telemetry recorder, when enabled.
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.inner.telemetry.clone()
    }

    /// Network-wide fault counters, when fault injection is active.
    pub fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        self.inner.fault.as_ref().map(|p| p.stats.clone())
    }

    /// Link-level retransmissions currently parked in the worker's
    /// deferred queue (nonzero ⇒ a flush ack is being held back).
    pub fn pending_retries(&self) -> u64 {
        self.inner
            .fault
            .as_ref()
            .map(|p| p.pending_retries.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Fragments delivered to endpoints so far.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }

    /// Stop the worker after a final fault-free drain of the request ring
    /// and the deferred queue (the graceful analogue of `WireMsg::Stop`).
    /// Further client traffic fails with the server-gone state.
    pub fn stop(&mut self) {
        header(&self.inner.seg)
            .state
            .store(STATE_SERVER_GONE, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        header(&self.inner.seg).req_bell.ring();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ShmServer {
    fn drop(&mut self) {
        self.stop();
        // Segment unlinks when the Arc drops (we are the creator).
    }
}

/// The server's wire worker: single consumer of the request ring, single
/// producer of the response ring. Ring traffic takes priority; deferred
/// retransmissions (and re-deferred flush markers) run when the ring is
/// momentarily dry, so a retried fragment lands behind the queued traffic
/// exactly as it does on the threaded transport.
fn shm_worker(inner: Arc<ServerInner>) {
    let req = inner.req_ring();
    let rsp = inner.rsp_ring();
    let hdr = header(&inner.seg);
    let mut injector = inner
        .fault
        .as_ref()
        .map(|p| FaultInjector::new(p.model, p.seed, p.stats.clone()));
    let mut deferred: VecDeque<ServerMsg> = VecDeque::new();
    loop {
        if let Some(msg) = pop_req(&inner, &req) {
            process_msg(&inner, &rsp, &mut injector, &mut deferred, msg, false);
            continue;
        }
        if let Some(msg) = deferred.pop_front() {
            process_msg(&inner, &rsp, &mut injector, &mut deferred, msg, false);
            continue;
        }
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        let seen = hdr.req_bell.prepare();
        if req.can_pop() || inner.stop.load(Ordering::Acquire) {
            hdr.req_bell.cancel();
            continue;
        }
        hdr.req_bell.wait(seen, DOORBELL_WAIT);
    }
    // Final drain, fault-free: retransmissions parked behind the stop and
    // fragments that raced the shutdown must not strand their futures.
    loop {
        let msg = match pop_req(&inner, &req) {
            Some(m) => m,
            None => match deferred.pop_front() {
                Some(m) => m,
                None => break,
            },
        };
        process_msg(&inner, &rsp, &mut injector, &mut deferred, msg, true);
    }
}

/// Deserialise the next request-ring slot into an owned message.
fn pop_req(inner: &ServerInner, req: &RawRing) -> Option<ServerMsg> {
    let idx = req.begin_pop()?;
    let off = req.slot_off(idx);
    let h = req_hdr(&inner.seg, off);
    let kind = h.kind.load(Ordering::Relaxed);
    let msg = if kind == REQ_FLUSH {
        ServerMsg::Flush(h.token.load(Ordering::Relaxed))
    } else {
        let len = h.len.load(Ordering::Relaxed) as usize;
        let len = len.min(inner.geo.mtu);
        // SAFETY: payload region of a published slot; the producer wrote
        // `len <= mtu` bytes there before the release-publish we acquired.
        let data = unsafe {
            let p = inner.seg.as_ptr().add(off + 8 + REQ_HDR_SIZE);
            std::slice::from_raw_parts(p, len)
        };
        ServerMsg::Frag {
            dest: NodeAddr::new(
                h.dest_nid.load(Ordering::Relaxed),
                h.dest_pid.load(Ordering::Relaxed),
            ),
            frag: Fragment {
                initiator: NodeAddr::new(
                    h.init_nid.load(Ordering::Relaxed),
                    h.init_pid.load(Ordering::Relaxed),
                ),
                op_id: h.op_id.load(Ordering::Relaxed),
                dst_vaddr: VirtAddr::new(h.vaddr.load(Ordering::Relaxed)),
                op_total_len: h.total_len.load(Ordering::Relaxed),
                offset: h.offset.load(Ordering::Relaxed) as usize,
                data: Bytes::copy_from_slice(data),
            },
            token: h.token.load(Ordering::Relaxed),
            attempt: 0,
        }
    };
    req.release_pop(idx);
    Some(msg)
}

fn process_msg(
    inner: &ServerInner,
    rsp: &RawRing,
    injector: &mut Option<FaultInjector>,
    deferred: &mut VecDeque<ServerMsg>,
    msg: ServerMsg,
    drain: bool,
) {
    match msg {
        ServerMsg::Flush(token) => {
            if !drain {
                if let Some(plan) = &inner.fault {
                    if plan.pending_retries.load(Ordering::Acquire) > 0 {
                        // Fragments are parked in the deferred queue: the
                        // drain barrier is not satisfied. Re-defer the
                        // marker *behind* them (satellite of quiesce
                        // correctness — the ack must account for the shm
                        // ring/doorbell path's parked fragments the same
                        // way the threaded barrier accounts for fault
                        // re-enqueues).
                        deferred.push_back(ServerMsg::Flush(token));
                        return;
                    }
                }
            }
            push_rsp(
                inner,
                rsp,
                &RspMsg {
                    kind: RSP_FLUSH_ACK,
                    token,
                    reason: 0,
                    nacked: 0,
                    vaddr: 0,
                },
            );
        }
        ServerMsg::Frag {
            dest,
            frag,
            token,
            attempt,
        } => {
            let mut copies = 1u32;
            if !drain {
                if let (Some(inj), Some(plan)) = (injector.as_mut(), inner.fault.as_ref()) {
                    // Same dice discipline as the threaded worker:
                    // zero-length fragments bypass the dice, and the
                    // attempt that reaches the budget delivers fault-free.
                    if !frag.data.is_empty() && attempt < plan.budget {
                        let d = inj.roll();
                        if d.crash {
                            inner.endpoints.write().remove(&dest);
                        }
                        if d.drop || d.defer_spans > 0 {
                            plan.pending_retries.fetch_add(1, Ordering::AcqRel);
                            telemetry::record(
                                &inner.telemetry,
                                EventKind::Retransmit,
                                telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
                                frag.op_id,
                                (attempt + 1) as u64,
                            );
                            deferred.push_back(ServerMsg::Frag {
                                dest,
                                frag,
                                token,
                                attempt: attempt + 1,
                            });
                            if attempt > 0 {
                                plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
                            }
                            return;
                        }
                        if d.duplicate {
                            copies = 2;
                        }
                    }
                }
            }
            telemetry::record(
                &inner.telemetry,
                EventKind::WireDeliver,
                telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
                frag.op_id,
                frag.offset as u64,
            );
            let mut nacked = false;
            match inner.endpoints.read().get(&dest).cloned() {
                Some(ep) => {
                    for _ in 0..copies {
                        if let DeliverResult::Nack(r) = ep.deliver(&frag) {
                            push_rsp(
                                inner,
                                rsp,
                                &RspMsg {
                                    kind: RSP_NACK,
                                    token: 0,
                                    reason: encode_nack(r),
                                    nacked: 1,
                                    vaddr: frag.dst_vaddr.0,
                                },
                            );
                            nacked = true;
                        }
                    }
                }
                None => {
                    push_rsp(
                        inner,
                        rsp,
                        &RspMsg {
                            kind: RSP_NACK,
                            token: 0,
                            reason: encode_nack(NackReason::NoSuchMailbox),
                            nacked: 1,
                            vaddr: frag.dst_vaddr.0,
                        },
                    );
                    nacked = true;
                }
            }
            inner.delivered.fetch_add(1, Ordering::Relaxed);
            if token != 0 {
                push_rsp(
                    inner,
                    rsp,
                    &RspMsg {
                        kind: RSP_PUT_DONE,
                        token,
                        reason: 0,
                        nacked: nacked as u32,
                        vaddr: frag.dst_vaddr.0,
                    },
                );
            }
            if attempt > 0 {
                if let Some(plan) = &inner.fault {
                    plan.pending_retries.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}

/// Blocking response push: acks must not drop while the client lives. A
/// full ring kicks the pump's doorbell and backs off; if the client
/// process is gone the response is dropped (nobody is left to read it).
fn push_rsp(inner: &ServerInner, rsp: &RawRing, msg: &RspMsg) {
    let hdr = header(&inner.seg);
    let mut tries = 0u32;
    loop {
        if let Some((idx, ticket)) = rsp.begin_push() {
            let off = rsp.slot_off(idx);
            let h = rsp_hdr(&inner.seg, off);
            h.kind.store(msg.kind, Ordering::Relaxed);
            h.token.store(msg.token, Ordering::Relaxed);
            h.reason.store(msg.reason, Ordering::Relaxed);
            h.nacked.store(msg.nacked, Ordering::Relaxed);
            h.vaddr.store(msg.vaddr, Ordering::Relaxed);
            rsp.publish(idx, ticket);
            hdr.rsp_bell.ring();
            return;
        }
        hdr.rsp_bell.ring();
        tries += 1;
        if tries.is_multiple_of(1024) {
            let cpid = hdr.client_pid.load(Ordering::SeqCst);
            if cpid != 0 && !pid_alive(cpid) {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Client (initiator process)
// ---------------------------------------------------------------------------

struct PendingPut {
    notify: Arc<PutNotify>,
    remaining: u64,
}

struct FlushState {
    acked: HashSet<u32>,
    dead: bool,
}

struct ClientInner {
    seg: Arc<ShmSegment>,
    geo: SegGeometry,
    src: NodeAddr,
    next_op: AtomicU64,
    next_token: AtomicU32,
    next_flush: AtomicU32,
    tokens: Mutex<HashMap<u32, PendingPut>>,
    nacks: Mutex<Vec<(VirtAddr, NackReason)>>,
    flush_state: Mutex<FlushState>,
    flush_cv: Condvar,
    stop: AtomicBool,
    telemetry: Option<Arc<Telemetry>>,
}

impl ClientInner {
    fn req_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.req_ctrl,
            base: self.geo.req_base,
            stride: self.geo.req_stride,
            cap: self.geo.req_slots,
        }
    }

    fn rsp_ring(&self) -> RawRing {
        RawRing {
            seg: self.seg.clone(),
            ctrl: self.geo.rsp_ctrl,
            base: self.geo.rsp_base,
            stride: self.geo.rsp_stride,
            cap: self.geo.rsp_slots,
        }
    }

    fn server_dead(&self) -> bool {
        let hdr = header(&self.seg);
        if hdr.state.load(Ordering::SeqCst) == STATE_SERVER_GONE {
            return true;
        }
        let spid = hdr.server_pid.load(Ordering::SeqCst);
        spid != 0 && !pid_alive(spid)
    }

    /// Resolve every outstanding future/flush as failed (peer death).
    fn fail_all_pending(&self) {
        let mut tokens = self.tokens.lock();
        for (_, p) in tokens.drain() {
            p.notify.fragments_done(p.remaining, true);
        }
        drop(tokens);
        let mut fs = self.flush_state.lock();
        fs.dead = true;
        drop(fs);
        self.flush_cv.notify_all();
    }
}

/// The initiating (client) half: maps a server's segment and speaks the
/// wire protocol through it. All puts go through the request ring; a
/// background response pump resolves [`PutFuture`]s, collects NACKs, and
/// releases [`flush`](ShmClient::flush) barriers from the response ring.
pub struct ShmClient {
    inner: Arc<ClientInner>,
    pump: Option<JoinHandle<()>>,
}

impl ShmClient {
    /// Map the segment at `path` (waiting up to 10 s for the server to
    /// initialise it) and start the response pump.
    pub fn connect(path: &Path, src: NodeAddr) -> Result<ShmClient> {
        ShmClient::connect_with(path, src, None)
    }

    /// [`connect`](ShmClient::connect) with an initiator-side telemetry
    /// recorder for `Submit`/`RingEnqueue` events (pass the server's
    /// recorder in an in-process pair to trace the full put lifecycle).
    pub fn connect_with(
        path: &Path,
        src: NodeAddr,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<ShmClient> {
        let t0 = Instant::now();
        let seg = loop {
            match ShmSegment::open(path) {
                Ok(seg) if seg.len() >= HDR_SPACE => {
                    if header(&seg).state.load(Ordering::Acquire) == STATE_READY {
                        break seg;
                    }
                    if header(&seg).state.load(Ordering::Acquire) == STATE_SERVER_GONE {
                        return Err(RvmaError::TransportFailed(format!(
                            "server at {} already gone",
                            path.display()
                        )));
                    }
                }
                Ok(_) | Err(_) if t0.elapsed() < CONNECT_TIMEOUT => {}
                Ok(_) => {
                    return Err(RvmaError::TransportFailed(format!(
                        "segment {} never became ready",
                        path.display()
                    )));
                }
                Err(e) => return Err(e),
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let hdr = header(&seg);
        if hdr.magic.load(Ordering::Relaxed) != SHM_MAGIC {
            return Err(RvmaError::TransportFailed(format!(
                "{} is not an RVMA segment",
                path.display()
            )));
        }
        if hdr.version.load(Ordering::Relaxed) != SHM_VERSION {
            return Err(RvmaError::TransportFailed(format!(
                "segment {} has wire version {} (expected {SHM_VERSION})",
                path.display(),
                hdr.version.load(Ordering::Relaxed)
            )));
        }
        let geo = SegGeometry::new(
            hdr.mtu.load(Ordering::Relaxed) as usize,
            hdr.req_slots.load(Ordering::Relaxed) as usize,
            hdr.rsp_slots.load(Ordering::Relaxed) as usize,
        );
        if geo.mtu == 0 || seg.len() < geo.total {
            return Err(RvmaError::TransportFailed(format!(
                "segment {} geometry mismatch ({} B mapped, {} B required)",
                path.display(),
                seg.len(),
                geo.total
            )));
        }
        hdr.client_pid.store(std::process::id(), Ordering::SeqCst);

        let inner = Arc::new(ClientInner {
            seg: Arc::new(seg),
            geo,
            src,
            next_op: AtomicU64::new(1),
            next_token: AtomicU32::new(0),
            next_flush: AtomicU32::new(0),
            tokens: Mutex::new(HashMap::new()),
            nacks: Mutex::new(Vec::new()),
            flush_state: Mutex::new(FlushState {
                acked: HashSet::new(),
                dead: false,
            }),
            flush_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            telemetry,
        });
        let pump = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("rvma-shm-pump".into())
                .spawn(move || rsp_pump(inner))
                .expect("spawn shm response pump")
        };
        Ok(ShmClient {
            inner,
            pump: Some(pump),
        })
    }

    /// The initiator's source address.
    pub fn src(&self) -> NodeAddr {
        self.inner.src
    }

    /// The wire MTU agreed with the server.
    pub fn mtu(&self) -> usize {
        self.inner.geo.mtu
    }

    /// Fire-and-forget `RVMA_Put` at offset 0.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<()> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// Fire-and-forget `RVMA_Put` at an explicit buffer offset. Blocks
    /// only for ring backpressure; delivery is asynchronous (use
    /// [`put_notify_at`](ShmClient::put_notify_at) or
    /// [`flush`](ShmClient::flush) to observe it).
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<()> {
        self.submit(dest, vaddr, offset, data, 0)?;
        Ok(())
    }

    /// `RVMA_Put` returning a [`PutFuture`] that resolves when every
    /// fragment reached its final disposition at the server — the same
    /// local-completion contract as `AsyncInitiator::put_notify`, resolved
    /// by cross-process acks instead of an in-process countdown.
    pub fn put_notify(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<PutFuture> {
        self.put_notify_at(dest, vaddr, 0, data)
    }

    /// [`put_notify`](ShmClient::put_notify) at an explicit offset.
    pub fn put_notify_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<PutFuture> {
        // Token 0 means "no ack requested"; skip it on wrap.
        let mut token = self.inner.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        if token == 0 {
            token = self.inner.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        }
        // A put is at least one fragment even when empty — the countdown
        // must resolve for zero-length puts (no-wire-payload audit).
        let fragments = data.len().div_ceil(self.inner.geo.mtu).max(1) as u64;
        let notify = PutNotify::new(fragments);
        self.inner.tokens.lock().insert(
            token,
            PendingPut {
                notify: notify.clone(),
                remaining: fragments,
            },
        );
        if let Err(e) = self.submit(dest, vaddr, offset, data, token) {
            self.inner.tokens.lock().remove(&token);
            return Err(e);
        }
        Ok(PutFuture::from_notify(notify, fragments))
    }

    /// Fragment and push one put into the request ring.
    fn submit(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
        token: u32,
    ) -> Result<()> {
        let mtu = self.inner.geo.mtu;
        let op_id = self.inner.next_op.fetch_add(1, Ordering::Relaxed);
        let src_key = telemetry::initiator_key(self.inner.src.nid, self.inner.src.pid);
        telemetry::record(
            &self.inner.telemetry,
            EventKind::Submit,
            src_key,
            op_id,
            data.len() as u64,
        );
        // A zero-byte put is a single empty fragment (one counted op) —
        // the same rule as every in-process initiator.
        let ranges: Vec<(usize, usize)> = if data.is_empty() {
            vec![(0, 0)]
        } else {
            (0..data.len())
                .step_by(mtu)
                .map(|s| (s, (s + mtu).min(data.len())))
                .collect()
        };
        for &(s, e) in &ranges {
            telemetry::record(
                &self.inner.telemetry,
                EventKind::RingEnqueue,
                src_key,
                op_id,
                (offset + s) as u64,
            );
            self.push_req(|h, payload| {
                h.kind.store(REQ_PUT, Ordering::Relaxed);
                h.len.store((e - s) as u32, Ordering::Relaxed);
                h.dest_nid.store(dest.nid, Ordering::Relaxed);
                h.dest_pid.store(dest.pid, Ordering::Relaxed);
                h.init_nid.store(self.inner.src.nid, Ordering::Relaxed);
                h.init_pid.store(self.inner.src.pid, Ordering::Relaxed);
                h.token.store(token, Ordering::Relaxed);
                h.op_id.store(op_id, Ordering::Relaxed);
                h.vaddr.store(vaddr.0, Ordering::Relaxed);
                h.total_len.store(data.len() as u64, Ordering::Relaxed);
                h.offset.store((offset + s) as u64, Ordering::Relaxed);
                // SAFETY: payload points at this slot's mtu-sized region
                // and e - s <= mtu.
                unsafe {
                    std::ptr::copy_nonoverlapping(data.as_ptr().add(s), payload, e - s);
                }
            })?;
        }
        Ok(())
    }

    /// Claim, fill, publish one request slot; blocks (bounded, liveness-
    /// checked) while the ring is full — backpressure, never drops.
    fn push_req(&self, fill: impl FnOnce(&ReqHdr, *mut u8)) -> Result<()> {
        let inner = &self.inner;
        let req = inner.req_ring();
        let hdr = header(&inner.seg);
        let mut fill = Some(fill);
        let mut tries = 0u32;
        loop {
            if let Some((idx, ticket)) = req.begin_push() {
                let off = req.slot_off(idx);
                let h = req_hdr(&inner.seg, off);
                // SAFETY: in-bounds payload region of the claimed slot.
                let payload = unsafe { inner.seg.as_ptr().add(off + 8 + REQ_HDR_SIZE) };
                (fill.take().expect("slot claimed once"))(h, payload);
                req.publish(idx, ticket);
                hdr.req_bell.ring();
                return Ok(());
            }
            tries += 1;
            if tries.is_multiple_of(1024) {
                if inner.server_dead() {
                    inner.fail_all_pending();
                    return Err(RvmaError::TransportFailed(
                        "server process gone (request ring stalled)".into(),
                    ));
                }
                std::thread::sleep(Duration::from_micros(100));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Drain barrier: blocks until every previously submitted fragment
    /// reached its final disposition at the server — including link-level
    /// retransmissions parked in the server's deferred queue, which hold
    /// the ack back (see the module docs). Errors if the server dies.
    pub fn flush(&self) -> Result<()> {
        let mut token = self.inner.next_flush.fetch_add(1, Ordering::Relaxed) + 1;
        if token == 0 {
            token = self.inner.next_flush.fetch_add(1, Ordering::Relaxed) + 1;
        }
        self.push_req(|h, _payload| {
            h.kind.store(REQ_FLUSH, Ordering::Relaxed);
            h.len.store(0, Ordering::Relaxed);
            h.token.store(token, Ordering::Relaxed);
        })?;
        let mut fs = self.inner.flush_state.lock();
        loop {
            if fs.acked.remove(&token) {
                return Ok(());
            }
            if fs.dead {
                return Err(RvmaError::TransportFailed(
                    "server process gone (flush never acked)".into(),
                ));
            }
            let timed_out = self
                .inner
                .flush_cv
                .wait_until(&mut fs, Instant::now() + Duration::from_millis(100))
                .timed_out();
            if timed_out && self.inner.server_dead() {
                drop(fs);
                self.inner.fail_all_pending();
                fs = self.inner.flush_state.lock();
            }
        }
    }

    /// Drain the asynchronously collected NACKs. Complete for everything
    /// submitted before the last [`flush`](ShmClient::flush): the response
    /// ring is FIFO, so every NACK of pre-flush traffic lands before the
    /// flush ack the barrier waited on.
    pub fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        std::mem::take(&mut *self.inner.nacks.lock())
    }
}

impl Drop for ShmClient {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl Transport for ShmClient {
    fn backend(&self) -> &'static str {
        "shm"
    }

    fn put_at(&self, dest: NodeAddr, vaddr: VirtAddr, offset: usize, data: &[u8]) -> Result<()> {
        ShmClient::put_at(self, dest, vaddr, offset, data)
    }

    fn flush(&self) -> Result<()> {
        ShmClient::flush(self)
    }

    fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        ShmClient::take_nacks(self)
    }
}

/// The client's response pump: single consumer of the response ring.
/// Resolves put-notify countdowns, collects NACKs, releases flush
/// barriers; on server death it fails everything outstanding so no
/// future or flush ever hangs on a dead peer.
fn rsp_pump(inner: Arc<ClientInner>) {
    let rsp = inner.rsp_ring();
    let hdr = header(&inner.seg);
    let mut dead_checks = 0u32;
    loop {
        if let Some(idx) = rsp.begin_pop() {
            let off = rsp.slot_off(idx);
            let h = rsp_hdr(&inner.seg, off);
            let msg = RspMsg {
                kind: h.kind.load(Ordering::Relaxed),
                token: h.token.load(Ordering::Relaxed),
                reason: h.reason.load(Ordering::Relaxed),
                nacked: h.nacked.load(Ordering::Relaxed),
                vaddr: h.vaddr.load(Ordering::Relaxed),
            };
            rsp.release_pop(idx);
            handle_rsp(&inner, msg);
            continue;
        }
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        dead_checks += 1;
        if dead_checks.is_multiple_of(8) && inner.server_dead() {
            // Drain what the server managed to push before dying, then
            // fail the rest.
            while let Some(idx) = rsp.begin_pop() {
                let off = rsp.slot_off(idx);
                let h = rsp_hdr(&inner.seg, off);
                let msg = RspMsg {
                    kind: h.kind.load(Ordering::Relaxed),
                    token: h.token.load(Ordering::Relaxed),
                    reason: h.reason.load(Ordering::Relaxed),
                    nacked: h.nacked.load(Ordering::Relaxed),
                    vaddr: h.vaddr.load(Ordering::Relaxed),
                };
                rsp.release_pop(idx);
                handle_rsp(&inner, msg);
            }
            inner.fail_all_pending();
            break;
        }
        let seen = hdr.rsp_bell.prepare();
        if rsp.can_pop() || inner.stop.load(Ordering::Acquire) {
            hdr.rsp_bell.cancel();
            continue;
        }
        hdr.rsp_bell.wait(seen, DOORBELL_WAIT);
    }
}

fn handle_rsp(inner: &ClientInner, msg: RspMsg) {
    match msg.kind {
        RSP_PUT_DONE => {
            let mut tokens = inner.tokens.lock();
            if let Some(p) = tokens.get_mut(&msg.token) {
                p.notify.fragments_done(1, msg.nacked != 0);
                p.remaining -= 1;
                if p.remaining == 0 {
                    tokens.remove(&msg.token);
                }
            }
        }
        RSP_NACK => {
            inner
                .nacks
                .lock()
                .push((VirtAddr::new(msg.vaddr), decode_nack(msg.reason)));
        }
        RSP_FLUSH_ACK => {
            let mut fs = inner.flush_state.lock();
            fs.acked.insert(msg.token);
            drop(fs);
            inner.flush_cv.notify_all();
        }
        _ => {}
    }
}

/// Server + client halves over one real segment in a single process — the
/// unit-test/bench harness shape (the conformance suite additionally runs
/// the client in a forked child process; the wire protocol is identical).
pub fn shm_pair(
    mtu: usize,
    config: EndpointConfig,
    src: NodeAddr,
) -> Result<(ShmServer, ShmClient)> {
    let server = ShmServer::create_default(mtu, config)?;
    let telemetry = server.telemetry();
    let client = ShmClient::connect_with(server.path(), src, telemetry)?;
    Ok((server, client))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use crate::shm::shm_supported;

    const SERVER: NodeAddr = NodeAddr::node(0);
    const CLIENT: NodeAddr = NodeAddr::node(1);

    #[test]
    fn geometry_is_consistent_and_aligned() {
        let g = SegGeometry::new(2048, 1024, 512);
        assert_eq!(g.req_base % 64, 0);
        assert_eq!(g.rsp_base % 64, 0);
        assert_eq!(g.req_stride % 64, 0);
        assert!(g.req_stride >= 8 + REQ_HDR_SIZE + 2048);
        assert!(g.total >= g.rsp_base + 512 * g.rsp_stride);
        assert_eq!(std::mem::size_of::<ReqHdr>(), REQ_HDR_SIZE);
        assert_eq!(std::mem::size_of::<RspHdr>(), RSP_HDR_SIZE);
        assert!(std::mem::size_of::<SegHeader>() <= HDR_SPACE);
        assert_eq!(std::mem::size_of::<RingCtrl>(), CTRL_SPACE);
    }

    #[test]
    fn pair_roundtrip_multi_fragment_put() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x10), Threshold::bytes(1000))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; 1000]).unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        client.put(SERVER, VirtAddr::new(0x10), &payload).unwrap();
        let buf = note
            .wait_timeout(Duration::from_secs(10))
            .expect("epoch completes across the segment");
        assert_eq!(buf.data(), &payload[..], "byte-exact delivery");
    }

    #[test]
    fn put_notify_resolves_including_zero_length() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(128, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x20), Threshold::ops(2))
            .unwrap();
        let _note = win.post_buffer(vec![0u8; 256]).unwrap();
        let f1 = client
            .put_notify(SERVER, VirtAddr::new(0x20), &[7u8; 200])
            .unwrap();
        // Zero-length put: no wire payload, but the future must resolve.
        let f2 = client.put_notify(SERVER, VirtAddr::new(0x20), &[]).unwrap();
        let d1 = pollster::block_on(f1);
        let d2 = pollster::block_on(f2);
        assert_eq!(d1.fragments, 2);
        assert!(!d1.nacked);
        assert_eq!(d2.fragments, 1);
        assert!(!d2.nacked);
    }

    #[test]
    fn nacks_cross_the_segment() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
        let _ep = server.add_endpoint(SERVER);
        // No mailbox at this vaddr → NoSuchMailbox NACK back to the client.
        client
            .put(SERVER, VirtAddr::new(0x999), &[1, 2, 3])
            .unwrap();
        client.flush().unwrap();
        let nacks = client.take_nacks();
        assert_eq!(nacks.len(), 1);
        assert_eq!(nacks[0], (VirtAddr::new(0x999), NackReason::NoSuchMailbox));
    }

    #[test]
    fn flush_holds_for_parked_retries() {
        if !shm_supported() {
            return;
        }
        let cfg = EndpointConfig {
            dedup_window: 1 << 12,
            fault_model: crate::retry::FaultModel {
                drop_p: 0.3,
                ..crate::retry::FaultModel::NONE
            },
            fault_seed: 0xF00D,
            ..Default::default()
        };
        let (server, client) = shm_pair(32, cfg, CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x30), Threshold::bytes(4096))
            .unwrap();
        let mut note = win.post_buffer(vec![0u8; 4096]).unwrap();
        client
            .put(SERVER, VirtAddr::new(0x30), &[0xAB; 4096])
            .unwrap();
        // The barrier must cover the fault layer's parked retransmissions:
        // after it, the epoch is complete without any further waiting.
        client.flush().unwrap();
        let buf = note.poll().expect("flush drained every retransmission");
        assert!(buf.data().iter().all(|&b| b == 0xAB));
        let stats = server.fault_stats().unwrap();
        assert!(stats.dropped() > 0, "fault model actually fired");
        assert_eq!(server.pending_retries(), 0);
    }

    #[test]
    fn server_drop_fails_client_cleanly() {
        if !shm_supported() {
            return;
        }
        let (server, client) = shm_pair(64, EndpointConfig::default(), CLIENT).unwrap();
        let ep = server.add_endpoint(SERVER);
        let win = ep
            .init_window(VirtAddr::new(0x40), Threshold::ops(1))
            .unwrap();
        let _n = win.post_buffer(vec![0u8; 64]).unwrap();
        client.put(SERVER, VirtAddr::new(0x40), &[1u8; 64]).unwrap();
        client.flush().unwrap();
        drop(server);
        // New work against a gone server errors instead of hanging.
        let err = client.flush();
        assert!(matches!(err, Err(RvmaError::TransportFailed(_))));
    }
}
