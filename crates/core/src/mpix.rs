//! MPI-RMA-style epochs over RVMA (paper Secs. IV-E and IV-F).
//!
//! MPI's RMA model exposes *access epochs*: a window is opened for remote
//! access, remotely modified, and closed/fenced, after which the local
//! process may read it. The paper argues RVMA captures this natively —
//! each posted buffer *is* an epoch, the threshold *is* the fence
//! condition, and the retired-buffer ring gives the epoch history that
//! makes `MPIX_Rewind(MPI_Win)` ("return an RMA window to a previously
//! well known state") implementable in hardware.
//!
//! [`MpixWindow`] is that programming model rendered on `rvma-core`:
//!
//! ```
//! use rvma_core::{LoopbackNetwork, NodeAddr, VirtAddr};
//! use rvma_core::mpix::MpixWindow;
//!
//! let net = LoopbackNetwork::new();
//! let server = net.add_endpoint(NodeAddr::node(0));
//! let peer = net.initiator(NodeAddr::node(1));
//!
//! // A 64-byte RMA window, 3 epochs of history for rewind.
//! let mut win = MpixWindow::create(&server, VirtAddr::new(0x10), 64, 3)?;
//!
//! peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[1u8; 64])?;
//! let epoch0 = win.fence();                 // MPI_Win_fence: epoch closes
//! assert_eq!(epoch0.data(), &[1u8; 64]);
//!
//! peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[2u8; 64])?;
//! let _epoch1 = win.fence();
//!
//! // Roll communication back one timestep.
//! let recovered = win.rewind(1)?;           // MPIX_Rewind
//! assert_eq!(recovered.data(), &[2u8; 64]);
//! # Ok::<(), rvma_core::RvmaError>(())
//! ```

use crate::addr::VirtAddr;
use crate::buffer::{CompletedBuffer, Threshold};
use crate::endpoint::RvmaEndpoint;
use crate::error::{Result, RvmaError};
use crate::notify::Notification;
use crate::window::{EpochOutcome, Window};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// An MPI-RMA-style window: fixed-size epochs, always-posted buffers, and
/// hardware rewind.
#[derive(Debug)]
pub struct MpixWindow {
    window: Window,
    /// Notifications for posted-but-not-yet-fenced epochs, oldest first.
    pending: VecDeque<Notification>,
    epoch_bytes: u64,
    /// How many buffers to keep posted ahead (the bucket depth).
    depth: usize,
}

impl MpixWindow {
    /// Create a window of `epoch_bytes` at `vaddr`, keeping `depth` buffers
    /// posted at all times (so initiators never stall on an unposted
    /// epoch). Each epoch completes when exactly `epoch_bytes` have been
    /// written — the non-overlapping-puts usage the paper recommends.
    pub fn create(
        endpoint: &Arc<RvmaEndpoint>,
        vaddr: VirtAddr,
        epoch_bytes: u64,
        depth: usize,
    ) -> Result<Self> {
        if depth == 0 {
            return Err(RvmaError::ZeroThreshold);
        }
        let window = endpoint.init_window(vaddr, Threshold::bytes(epoch_bytes))?;
        let mut pending = VecDeque::with_capacity(depth);
        for _ in 0..depth {
            pending.push_back(window.post_buffer(vec![0u8; epoch_bytes as usize])?);
        }
        Ok(MpixWindow {
            window,
            pending,
            epoch_bytes,
            depth,
        })
    }

    /// The underlying RVMA window.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// `MPI_Win_fence`-like: block until the oldest open epoch completes,
    /// hand its buffer to the caller, and post a replacement so the bucket
    /// depth is maintained.
    ///
    /// # Panics
    /// Panics if the window was closed underneath the fence.
    pub fn fence(&mut self) -> CompletedBuffer {
        let mut note = self.pending.pop_front().expect("depth >= 1");
        let buf = note.wait();
        self.repost();
        buf
    }

    /// Non-blocking fence: completes only if the oldest open epoch has
    /// already finished (an `MPI_Win_test` analogue).
    pub fn try_fence(&mut self) -> Option<CompletedBuffer> {
        let note = self.pending.front_mut()?;
        let buf = note.poll()?;
        self.pending.pop_front();
        self.repost();
        Some(buf)
    }

    /// Fence with a timeout; `None` on expiry (the epoch stays open).
    pub fn fence_timeout(&mut self, timeout: Duration) -> Option<CompletedBuffer> {
        let note = self.pending.front_mut()?;
        let buf = note.wait_timeout(timeout)?;
        self.pending.pop_front();
        self.repost();
        Some(buf)
    }

    /// Fence with fault recovery: wait up to `timeout` for the oldest open
    /// epoch and, on expiry, force it closed with whatever arrived instead
    /// of wedging ([`Window::recover_timeout`] — the paper's Secs. IV-E/
    /// IV-F recovery story at the MPI level). Either way the bucket depth
    /// is maintained, so initiators never stall on an unposted epoch.
    ///
    /// On error (e.g. the window closed underneath the fence) the epoch
    /// stays open and queued for the next fence.
    pub fn fence_recover(&mut self, timeout: Duration) -> Result<EpochOutcome> {
        let mut note = self.pending.pop_front().expect("depth >= 1");
        match self.window.recover_timeout(&mut note, timeout) {
            Ok(outcome) => {
                self.repost();
                Ok(outcome)
            }
            Err(e) => {
                self.pending.push_front(note);
                Err(e)
            }
        }
    }

    /// Force the current epoch closed with whatever has arrived
    /// (`RVMA_Win_inc_epoch` surfaced at the MPI level — useful for
    /// error-recovery with partial buffers).
    pub fn flush_partial(&mut self) -> Result<CompletedBuffer> {
        self.window.inc_epoch()?;
        let mut note = self.pending.pop_front().expect("depth >= 1");
        let buf = note.wait();
        self.repost();
        Ok(buf)
    }

    /// `MPIX_Rewind`: the buffer fenced `back` epochs ago (`back = 1` is
    /// the most recently fenced), straight from the NIC's retired list.
    pub fn rewind(&self, back: u64) -> Result<CompletedBuffer> {
        self.window.rewind(back)
    }

    /// Number of epochs completed so far.
    pub fn epoch(&self) -> u64 {
        self.window.epoch()
    }

    /// Bytes each epoch carries.
    pub fn epoch_bytes(&self) -> u64 {
        self.epoch_bytes
    }

    /// Configured bucket depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Close the window; in-flight epochs are dropped and remote puts are
    /// NACKed from here on.
    pub fn close(self) {
        self.window.close();
    }

    fn repost(&mut self) {
        // Keep the bucket full. Failure here means the window was closed
        // concurrently; surfaced on the next fence as an empty bucket.
        if let Ok(n) = self
            .window
            .post_buffer(vec![0u8; self.epoch_bytes as usize])
        {
            self.pending.push_back(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeAddr;
    use crate::transport::LoopbackNetwork;

    fn setup(depth: usize) -> (Arc<LoopbackNetwork>, Arc<RvmaEndpoint>, MpixWindow) {
        let net = LoopbackNetwork::new();
        let ep = net.add_endpoint(NodeAddr::node(0));
        let win = MpixWindow::create(&ep, VirtAddr::new(0x10), 32, depth).unwrap();
        (net, ep, win)
    }

    #[test]
    fn fence_yields_epochs_in_order() {
        let (net, _ep, mut win) = setup(4);
        let peer = net.initiator(NodeAddr::node(1));
        for i in 1..=3u8 {
            peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[i; 32])
                .unwrap();
        }
        for i in 1..=3u8 {
            let buf = win.fence();
            assert_eq!(buf.data(), &[i; 32]);
            assert_eq!(buf.epoch(), i as u64 - 1);
        }
        assert_eq!(win.epoch(), 3);
    }

    #[test]
    fn bucket_depth_is_maintained() {
        let (net, _ep, mut win) = setup(2);
        let peer = net.initiator(NodeAddr::node(1));
        // Fence 5 epochs through a depth-2 bucket: reposting must keep the
        // initiator from ever hitting NoBufferPosted.
        for i in 0..5u8 {
            peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[i + 1; 32])
                .unwrap();
            let buf = win.fence();
            assert_eq!(buf.data(), &[i + 1; 32]);
        }
        assert_eq!(win.depth(), 2);
        assert_eq!(win.window().posted_buffers(), 2);
    }

    #[test]
    fn try_fence_is_nonblocking() {
        let (net, _ep, mut win) = setup(2);
        assert!(win.try_fence().is_none());
        let peer = net.initiator(NodeAddr::node(1));
        peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[7; 32])
            .unwrap();
        let buf = win.try_fence().expect("epoch complete");
        assert_eq!(buf.data(), &[7; 32]);
        assert!(win.try_fence().is_none());
    }

    #[test]
    fn fence_timeout_expires_cleanly() {
        let (_net, _ep, mut win) = setup(1);
        assert!(win.fence_timeout(Duration::from_millis(5)).is_none());
        assert_eq!(win.epoch(), 0);
    }

    #[test]
    fn flush_partial_hands_over_incomplete_epoch() {
        let (net, _ep, mut win) = setup(2);
        let peer = net.initiator(NodeAddr::node(1));
        peer.put_at(NodeAddr::node(0), VirtAddr::new(0x10), 0, &[9; 10])
            .unwrap();
        let buf = win.flush_partial().unwrap();
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.data(), &[9; 10]);
    }

    #[test]
    fn fence_recover_rotates_a_wedged_epoch() {
        // A lossy fabric loses most of the epoch; fence_recover hands the
        // partial buffer over after the timeout and the window keeps going.
        let (net, _ep, mut win) = setup(2);
        let peer = net.initiator(NodeAddr::node(1));
        peer.put_at(NodeAddr::node(0), VirtAddr::new(0x10), 0, &[5; 12])
            .unwrap();
        let outcome = win.fence_recover(Duration::from_millis(10)).unwrap();
        assert!(outcome.is_rewound());
        assert_eq!(outcome.into_buffer().data(), &[5; 12]);
        assert_eq!(win.window().posted_buffers(), 2, "depth maintained");
        // The next epoch completes normally.
        peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[6; 32])
            .unwrap();
        match win.fence_recover(Duration::from_secs(5)).unwrap() {
            EpochOutcome::Completed(buf) => assert_eq!(buf.data(), &[6; 32]),
            EpochOutcome::Rewound(_) => panic!("epoch was complete"),
        }
        assert_eq!(win.epoch(), 2);
    }

    #[test]
    fn rewind_recovers_previous_timesteps() {
        let (net, _ep, mut win) = setup(3);
        let peer = net.initiator(NodeAddr::node(1));
        for i in 1..=3u8 {
            peer.put(NodeAddr::node(0), VirtAddr::new(0x10), &[i; 32])
                .unwrap();
            let _ = win.fence();
        }
        assert_eq!(win.rewind(1).unwrap().data(), &[3; 32]);
        assert_eq!(win.rewind(2).unwrap().data(), &[2; 32]);
        assert_eq!(win.rewind(3).unwrap().data(), &[1; 32]);
        assert!(win.rewind(5).is_err());
    }

    #[test]
    fn close_nacks_later_puts() {
        let (net, _ep, win) = setup(1);
        let peer = net.initiator(NodeAddr::node(1));
        win.close();
        assert!(peer
            .put(NodeAddr::node(0), VirtAddr::new(0x10), &[1; 32])
            .is_err());
    }

    #[test]
    fn zero_depth_is_rejected() {
        let net = LoopbackNetwork::new();
        let ep = net.add_endpoint(NodeAddr::node(0));
        assert!(MpixWindow::create(&ep, VirtAddr::new(1), 32, 0).is_err());
    }
}
