//! Op-level telemetry: lock-free tracing, latency histograms, and
//! deterministic event streams.
//!
//! The paper's central artifact is a *counter* — the target NIC counts
//! bytes/ops against a threshold and publishes completion through a
//! cache-line pointer — but counters alone cannot answer "where did this
//! put spend its time", nor prove that a seeded fault run is byte-for-byte
//! reproducible. This module adds the missing trace layer:
//!
//! * **Recorder.** [`Telemetry`] holds a small set of bounded
//!   [`RingQueue`] event buffers (the same Vyukov ring the wire datapath
//!   uses), one per producer-thread shard. Recording an event is an
//!   atomic sequence stamp plus one lock-free `try_push` — **zero mutexes
//!   on the hot path**. A full shard *drops* the event (telemetry must
//!   never exert backpressure on the datapath it observes) and counts the
//!   drop in [`TelemetrySnapshot::dropped`].
//! * **Lifecycle events.** Each put is stamped through its life:
//!   [`EventKind::Submit`] (op id allocated) → [`EventKind::RingEnqueue`]
//!   (fragment entered a wire ring) → [`EventKind::WireDeliver`] (fragment
//!   landed in the target mailbox) → [`EventKind::EpochComplete`] (the
//!   completing write) → [`EventKind::NotifyHandoff`] (the waiter took the
//!   completion pointer). [`EventKind::Retransmit`] marks every
//!   transmission of a fragment beyond its first.
//! * **Snapshot.** [`Telemetry::snapshot`] drains the shards (the only
//!   place a mutex appears — cold path), merges by sequence number, pairs
//!   events per op / per epoch into span latencies, and feeds fixed-bucket
//!   log-scale [`Histogram`]s with nearest-rank quantiles.
//! * **Export.** [`TelemetrySnapshot::to_json`] writes a self-describing
//!   JSON snapshot; [`TelemetrySnapshot::to_chrome_trace`] writes a Chrome
//!   `trace_event` file (`chrome://tracing` / Perfetto) for
//!   flamegraph-style inspection.
//! * **Determinism.** [`TelemetrySnapshot::canonical_sequence`] is the
//!   timestamp-free event stream. On the inline [`LossyNetwork`]
//!   transport every fault die is a pure function of the seed and the
//!   transmission sequence, so two runs with the same seed produce
//!   *identical* canonical sequences — the replay harness in
//!   `tests/telemetry_replay.rs` asserts exactly that.
//!
//! Telemetry is off by default ([`EndpointConfig::telemetry`]); the
//! disabled datapath carries only an `Option<Arc<Telemetry>>` that is
//! `None` — one predicted-not-taken branch per hook, no allocation, no
//! atomics.
//!
//! [`EndpointConfig::telemetry`]: crate::endpoint::EndpointConfig::telemetry
//! [`LossyNetwork`]: crate::transport_lossy::LossyNetwork
//! [`RingQueue`]: crate::ring::RingQueue

use crate::ring::RingQueue;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Event-buffer shards. Power of two; each producer thread hashes to one
/// shard, so with few threads every shard is effectively SPSC (the ring
/// itself is MPSC, so a hash collision is still safe).
const DEFAULT_SHARDS: usize = 4;

/// Events each shard buffers between snapshots. Beyond this, events drop
/// (counted) rather than stall the datapath.
pub const DEFAULT_EVENT_CAP: usize = 1 << 15;

/// Sub-buckets per power-of-two octave in a [`Histogram`] (2 bits of
/// mantissa). Bucket width at value `v` is roughly `v / 4`.
const SUB_BUCKETS: usize = 4;

/// Total histogram buckets: values 0..4 get exact buckets, then 62
/// octaves × 4 sub-buckets cover the rest of the `u64` range.
pub const NUM_BUCKETS: usize = 63 * SUB_BUCKETS;

/// A stage in a put's lifecycle (or a fault-driven extra transmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An initiator allocated an op id. `key`/`id` = initiator/op id,
    /// `arg` = payload length.
    Submit,
    /// A fragment of the op entered a wire ring (threaded transport
    /// only). `arg` = fragment offset.
    RingEnqueue,
    /// A fragment landed in the target mailbox. `arg` = fragment offset.
    WireDeliver,
    /// A transmission of a fragment beyond its first (retry round or
    /// worker re-enqueue). `arg` = attempt number.
    Retransmit,
    /// The completing write: an epoch crossed its threshold.
    /// `key`/`id` = mailbox vaddr/epoch, `arg` = valid bytes.
    EpochComplete,
    /// A waiter took the completion pointer. `key`/`id` = mailbox
    /// vaddr/epoch, `arg` = valid bytes.
    NotifyHandoff,
    /// An async-armed slot's completing write published to the async side
    /// (task waker and/or completion queue). Recorded in the mailbox's
    /// completion funnel — under the mailbox lock, so seq order is stable
    /// for replay. `key`/`id` = mailbox vaddr/epoch, `arg` = valid bytes.
    NotifyWake,
    /// A completion-queue consumer drained a non-empty batch.
    /// `key` = 0, `id` = per-CQ poll sequence, `arg` = batch size.
    CqPoll,
    /// A rendezvous put reserved a bulk-region extent (initiator side).
    /// `key`/`id` = initiator/op id, `arg` = payload length.
    BulkReserve,
    /// The server gathered a bulk extent straight into the posted buffer
    /// (one copy). `key`/`id` = initiator/op id, `arg` = payload length.
    BulkDeliver,
    /// The extent returned to the free list after the delivery ack
    /// crossed the response ring. `key`/`id` = initiator/op id,
    /// `arg` = extent length.
    BulkRelease,
}

impl EventKind {
    /// Every kind, in lifecycle order (the order used by per-kind counts).
    pub const ALL: [EventKind; 11] = [
        EventKind::Submit,
        EventKind::RingEnqueue,
        EventKind::WireDeliver,
        EventKind::Retransmit,
        EventKind::EpochComplete,
        EventKind::NotifyHandoff,
        EventKind::NotifyWake,
        EventKind::CqPoll,
        EventKind::BulkReserve,
        EventKind::BulkDeliver,
        EventKind::BulkRelease,
    ];

    /// Stable snake_case name (JSON keys, trace event names).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Submit => "submit",
            EventKind::RingEnqueue => "ring_enqueue",
            EventKind::WireDeliver => "wire_deliver",
            EventKind::Retransmit => "retransmit",
            EventKind::EpochComplete => "epoch_complete",
            EventKind::NotifyHandoff => "notify_handoff",
            EventKind::NotifyWake => "notify_wake",
            EventKind::CqPoll => "cq_poll",
            EventKind::BulkReserve => "bulk_reserve",
            EventKind::BulkDeliver => "bulk_deliver",
            EventKind::BulkRelease => "bulk_release",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("in ALL")
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global record order (atomic stamp). Snapshots merge shards by this.
    pub seq: u64,
    /// Monotonic nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Lifecycle stage.
    pub kind: EventKind,
    /// Op-scoped kinds: the packed initiator (`nid << 32 | pid`).
    /// Epoch-scoped kinds ([`EventKind::EpochComplete`],
    /// [`EventKind::NotifyHandoff`]): the mailbox vaddr.
    pub key: u64,
    /// Op-scoped kinds: the op id. Epoch-scoped kinds: the epoch number.
    pub id: u64,
    /// Kind-specific detail — see [`EventKind`].
    pub arg: u64,
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the first telemetry use in this process.
pub fn now_ns() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

/// Stable small integer per thread, used to pick an event shard.
fn thread_shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            h.set(v);
        }
        v
    })
}

/// Pack an initiator address into an op event key (`nid << 32 | pid`) —
/// the same packing `OpKey` uses, so events and dedup keys line up.
pub fn initiator_key(nid: u32, pid: u32) -> u64 {
    ((nid as u64) << 32) | pid as u64
}

/// Record an event iff telemetry is enabled. The disabled path is a
/// single `None` check — this is the hook every datapath layer calls.
#[inline(always)]
pub fn record(t: &Option<Arc<Telemetry>>, kind: EventKind, key: u64, id: u64, arg: u64) {
    if let Some(t) = t {
        t.record(kind, key, id, arg);
    }
}

/// The per-network event recorder. Shared (`Arc`) by every endpoint,
/// initiator, mailbox, and wire worker of one fabric so a single
/// [`snapshot`](Telemetry::snapshot) sees the whole put lifecycle.
pub struct Telemetry {
    shards: Box<[RingQueue<Event>]>,
    shard_mask: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    /// Events drained from the rings by previous snapshots. Snapshots are
    /// cumulative; this mutex is the recorder's only lock and is never
    /// touched by `record`.
    drained: Mutex<Vec<Event>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A recorder with the default shard count and per-shard capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SHARDS, DEFAULT_EVENT_CAP)
    }

    /// A recorder with `shards` event buffers (rounded up to a power of
    /// two) of `cap` events each.
    pub fn with_capacity(shards: usize, cap: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[RingQueue<Event>]> = (0..n).map(|_| RingQueue::new(cap)).collect();
        Telemetry {
            shard_mask: n - 1,
            shards,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drained: Mutex::new(Vec::new()),
        }
    }

    /// Record one event: sequence stamp, timestamp, lock-free push.
    /// Drops (and counts) when the calling thread's shard is full.
    #[inline]
    pub fn record(&self, kind: EventKind, key: u64, id: u64, arg: u64) {
        let ev = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: now_ns(),
            kind,
            key,
            id,
            arg,
        };
        let shard = &self.shards[thread_shard_hint() & self.shard_mask];
        if shard.try_push(ev).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped so far because a shard was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain every shard and build a cumulative snapshot (all events
    /// recorded since the recorder was created, merged in record order).
    ///
    /// This is the cold path: it takes the drain mutex (guaranteeing the
    /// rings' single-consumer contract) while producers keep recording
    /// lock-free.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut drained = self.drained.lock();
        for shard in self.shards.iter() {
            while let Some(ev) = shard.try_pop() {
                drained.push(ev);
            }
        }
        drained.sort_unstable_by_key(|e| e.seq);
        TelemetrySnapshot::build(drained.clone(), self.dropped())
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("shards", &self.shards.len())
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Fixed-bucket log-scale latency histogram.
///
/// Values 0–3 ns get exact buckets; above that each power-of-two octave
/// splits into four sub-buckets, so relative bucket width is a
/// constant ~25 % across the whole `u64` range. Quantiles are
/// nearest-rank: the reported value is the lower bound of the bucket
/// containing the rank-th smallest sample, hence always within one bucket
/// width of the exact sorted-sample quantile (property-tested).
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Bucket index for `v` (monotone in `v`).
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (exp - 2)) & 0x3) as usize;
        (exp - 1) * SUB_BUCKETS + sub
    }

    /// Inclusive lower bound of bucket `idx`.
    pub fn bucket_lower(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let exp = idx / SUB_BUCKETS + 1;
        let sub = (idx % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + sub) << (exp - 2)
    }

    /// Width of bucket `idx` (upper bound − lower bound).
    pub fn bucket_width(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return 1;
        }
        1u64 << (idx / SUB_BUCKETS - 1)
    }

    /// Add one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Fold another histogram in; total count is the sum of both counts
    /// (property-tested).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Nearest-rank quantile, `q` in (0, 1]: the lower bound of the
    /// bucket holding the `ceil(q · count)`-th smallest sample. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lower(idx);
            }
        }
        self.max
    }

    /// `(lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (Self::bucket_lower(i), *c))
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// One paired span (a latency between two lifecycle events), feeding one
/// histogram in the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// `Submit` → first `RingEnqueue` of the op (threaded transport).
    SubmitToEnqueue,
    /// `Submit` → first `WireDeliver` of the op.
    SubmitToDeliver,
    /// `EpochComplete` → `NotifyHandoff` of the epoch (the completion
    /// pointer's publish-to-take latency).
    CompleteToHandoff,
}

impl Span {
    /// Every span, in lifecycle order.
    pub const ALL: [Span; 3] = [
        Span::SubmitToEnqueue,
        Span::SubmitToDeliver,
        Span::CompleteToHandoff,
    ];

    /// Stable snake_case name (JSON keys, trace rows, tables).
    pub fn as_str(self) -> &'static str {
        match self {
            Span::SubmitToEnqueue => "submit_to_enqueue",
            Span::SubmitToDeliver => "submit_to_deliver",
            Span::CompleteToHandoff => "complete_to_handoff",
        }
    }
}

/// A drained, merged, paired view of everything the recorder saw.
pub struct TelemetrySnapshot {
    /// Every event in record (sequence) order.
    pub events: Vec<Event>,
    /// Events lost to full shards (see drop-on-full policy, DESIGN.md §9).
    pub dropped: u64,
    /// Per-kind event counts, indexed like [`EventKind::ALL`].
    pub counts: [u64; EventKind::ALL.len()],
    /// Span latency histograms, indexed like [`Span::ALL`].
    pub spans: [Histogram; Span::ALL.len()],
}

impl TelemetrySnapshot {
    fn build(events: Vec<Event>, dropped: u64) -> Self {
        let mut counts = [0u64; EventKind::ALL.len()];
        let mut spans: [Histogram; Span::ALL.len()] =
            [Histogram::new(), Histogram::new(), Histogram::new()];
        // First-occurrence timestamps, keyed per op (Submit/Enqueue/
        // Deliver) or per epoch (Complete). Duplicates and retransmits
        // pair against the *first* stamp: the span measures when the
        // stage first happened, not when a replay re-ran it.
        let mut submit: HashMap<(u64, u64), u64> = HashMap::new();
        let mut enqueued: HashMap<(u64, u64), u64> = HashMap::new();
        let mut delivered: HashMap<(u64, u64), u64> = HashMap::new();
        let mut completed: HashMap<(u64, u64), u64> = HashMap::new();
        for ev in &events {
            counts[ev.kind.index()] += 1;
            let key = (ev.key, ev.id);
            match ev.kind {
                EventKind::Submit => {
                    submit.entry(key).or_insert(ev.ts_ns);
                }
                EventKind::RingEnqueue => {
                    if enqueued.insert(key, ev.ts_ns).is_none() {
                        if let Some(&t0) = submit.get(&key) {
                            spans[0].observe(ev.ts_ns.saturating_sub(t0));
                        }
                    }
                }
                EventKind::WireDeliver => {
                    if delivered.insert(key, ev.ts_ns).is_none() {
                        if let Some(&t0) = submit.get(&key) {
                            spans[1].observe(ev.ts_ns.saturating_sub(t0));
                        }
                    }
                }
                EventKind::Retransmit => {}
                EventKind::EpochComplete => {
                    completed.entry(key).or_insert(ev.ts_ns);
                }
                EventKind::NotifyHandoff => {
                    if let Some(&t0) = completed.get(&key) {
                        spans[2].observe(ev.ts_ns.saturating_sub(t0));
                    }
                }
                // Counted, no span pairing: wakes share the EpochComplete
                // timestamp (same funnel), CQ polls are consumer-side, and
                // the bulk lifecycle is already bracketed by Submit /
                // WireDeliver on the same (initiator, op) key.
                EventKind::NotifyWake
                | EventKind::CqPoll
                | EventKind::BulkReserve
                | EventKind::BulkDeliver
                | EventKind::BulkRelease => {}
            }
        }
        TelemetrySnapshot {
            events,
            dropped,
            counts,
            spans,
        }
    }

    /// Count of events of one kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// The histogram for one span.
    pub fn span(&self, span: Span) -> &Histogram {
        let idx = Span::ALL.iter().position(|s| *s == span).expect("in ALL");
        &self.spans[idx]
    }

    /// The timestamp-free event stream `(kind, key, id, arg)` in record
    /// order — the object the deterministic-replay harness compares.
    /// Timestamps (and nothing else) may differ between two runs with the
    /// same fault seed on the inline transport.
    pub fn canonical_sequence(&self) -> Vec<(EventKind, u64, u64, u64)> {
        self.events
            .iter()
            .map(|e| (e.kind, e.key, e.id, e.arg))
            .collect()
    }

    /// Self-describing JSON snapshot (schema `rvma-telemetry-v1`):
    /// per-kind counts, drop counter, and per-span histograms with
    /// nearest-rank quantiles and non-empty `[lower_ns, count]` buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"schema\":\"rvma-telemetry-v1\"");
        push_field(&mut s, "events", self.events.len() as u64);
        push_field(&mut s, "dropped", self.dropped);
        s.push_str(",\"counts\":{");
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", kind.as_str(), self.counts[i]));
        }
        s.push_str("},\"spans\":{");
        for (i, span) in Span::ALL.iter().enumerate() {
            let h = &self.spans[i];
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{{", span.as_str()));
            s.push_str(&format!("\"count\":{}", h.count()));
            push_field(&mut s, "min_ns", h.min());
            push_field(&mut s, "max_ns", h.max());
            push_field(&mut s, "mean_ns", h.mean());
            push_field(&mut s, "p50_ns", h.quantile(0.50));
            push_field(&mut s, "p90_ns", h.quantile(0.90));
            push_field(&mut s, "p99_ns", h.quantile(0.99));
            s.push_str(",\"buckets\":[");
            for (j, (lo, c)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{lo},{c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Chrome `trace_event` JSON (open in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev)): one instant event per raw
    /// lifecycle event on the kind's own track, plus one duration (`ph:X`)
    /// slice per paired op span. Timestamps are microseconds with
    /// nanosecond fractions, relative to the process telemetry epoch.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &mut String, item: String| {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&item);
        };
        for ev in &self.events {
            emit(
                &mut s,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"rvma\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"key\":{},\"id\":{},\"arg\":{}}}}}",
                    ev.kind.as_str(),
                    micros(ev.ts_ns),
                    ev.kind.index() + 1,
                    ev.key,
                    ev.id,
                    ev.arg
                ),
            );
        }
        // Duration slices: submit → first deliver per op, complete →
        // handoff per epoch. Rebuilt here from the event list so the
        // trace stays a pure function of `events`.
        let mut op_starts: HashMap<(u64, u64), u64> = HashMap::new();
        let mut ep_starts: HashMap<(u64, u64), u64> = HashMap::new();
        let mut seen_end: HashSet<(bool, u64, u64)> = HashSet::new();
        for ev in &self.events {
            let key = (ev.key, ev.id);
            match ev.kind {
                EventKind::Submit => {
                    op_starts.entry(key).or_insert(ev.ts_ns);
                }
                EventKind::EpochComplete => {
                    ep_starts.entry(key).or_insert(ev.ts_ns);
                }
                EventKind::WireDeliver | EventKind::NotifyHandoff => {
                    let is_op = ev.kind == EventKind::WireDeliver;
                    let starts = if is_op { &op_starts } else { &ep_starts };
                    if seen_end.insert((is_op, ev.key, ev.id)) {
                        if let Some(&t0) = starts.get(&key) {
                            let name = if is_op {
                                Span::SubmitToDeliver.as_str()
                            } else {
                                Span::CompleteToHandoff.as_str()
                            };
                            emit(
                                &mut s,
                                format!(
                                    "{{\"name\":\"{}\",\"cat\":\"rvma\",\"ph\":\"X\",\
                                     \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
                                     \"args\":{{\"key\":{},\"id\":{}}}}}",
                                    name,
                                    micros(t0),
                                    micros(ev.ts_ns.saturating_sub(t0)),
                                    10 + (ev.id % 8),
                                    ev.key,
                                    ev.id
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        s.push_str("]}");
        s
    }
}

impl std::fmt::Debug for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySnapshot")
            .field("events", &self.events.len())
            .field("dropped", &self.dropped)
            .field("counts", &self.counts)
            .finish()
    }
}

fn push_field(s: &mut String, name: &str, v: u64) {
    s.push_str(&format!(",\"{name}\":{v}"));
}

/// Nanoseconds → trace microseconds with fractional digits.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(idx <= prev + 1, "index skipped at {v}");
            prev = idx;
            let lo = Histogram::bucket_lower(idx);
            let w = Histogram::bucket_width(idx);
            assert!(lo <= v && v < lo + w, "{v} outside [{lo}, {})", lo + w);
        }
        assert!(Histogram::bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // p50 sample is 50; bucket [48,56) has lower bound 48, width 8.
        let p50 = h.quantile(0.50);
        assert!(p50 <= 50 && 50 < p50 + 8, "p50 {p50}");
        let p100 = h.quantile(1.0);
        assert!(p100 <= 100);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..50 {
            a.observe(v);
        }
        for v in 1000..1100 {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 150);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 1099);
    }

    #[test]
    fn record_pairs_spans_and_counts() {
        let t = Telemetry::new();
        t.record(EventKind::Submit, 7, 1, 64);
        t.record(EventKind::WireDeliver, 7, 1, 0);
        t.record(EventKind::EpochComplete, 9, 0, 64);
        t.record(EventKind::NotifyHandoff, 9, 0, 64);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.count(EventKind::Submit), 1);
        assert_eq!(snap.span(Span::SubmitToDeliver).count(), 1);
        assert_eq!(snap.span(Span::CompleteToHandoff).count(), 1);
        assert_eq!(snap.span(Span::SubmitToEnqueue).count(), 0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn duplicate_delivers_pair_first_only() {
        let t = Telemetry::new();
        t.record(EventKind::Submit, 1, 1, 8);
        t.record(EventKind::WireDeliver, 1, 1, 0);
        t.record(EventKind::WireDeliver, 1, 1, 0); // replayed fragment
        let snap = t.snapshot();
        assert_eq!(snap.count(EventKind::WireDeliver), 2);
        assert_eq!(snap.span(Span::SubmitToDeliver).count(), 1);
    }

    #[test]
    fn snapshot_is_cumulative() {
        let t = Telemetry::new();
        t.record(EventKind::Submit, 1, 1, 8);
        assert_eq!(t.snapshot().events.len(), 1);
        t.record(EventKind::Submit, 1, 2, 8);
        assert_eq!(t.snapshot().events.len(), 2);
    }

    #[test]
    fn full_shard_drops_and_counts() {
        let t = Telemetry::with_capacity(1, 4);
        for i in 0..10 {
            t.record(EventKind::Submit, 0, i, 0);
        }
        assert_eq!(t.dropped(), 6);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        // Drained capacity frees the shard for new events.
        t.record(EventKind::Submit, 0, 99, 0);
        assert_eq!(t.snapshot().events.len(), 5);
    }

    #[test]
    fn canonical_sequence_strips_timestamps() {
        let t = Telemetry::new();
        t.record(EventKind::Submit, 3, 5, 16);
        let seq = t.snapshot().canonical_sequence();
        assert_eq!(seq, vec![(EventKind::Submit, 3, 5, 16)]);
    }

    #[test]
    fn json_and_trace_have_required_structure() {
        let t = Telemetry::new();
        t.record(EventKind::Submit, 1, 1, 8);
        t.record(EventKind::WireDeliver, 1, 1, 0);
        let snap = t.snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"rvma-telemetry-v1\""));
        assert!(json.contains("\"counts\""));
        assert!(json.contains("\"submit_to_deliver\""));
        let trace = snap.to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.ends_with("]}"));
    }
}
