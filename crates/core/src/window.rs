//! Windows: the application-side handle to a mailbox (paper: `RVMA_Win`).
//!
//! A window is created by `RvmaEndpoint::init_window` and supports the full
//! API of paper Sec. III-C: posting buffers (each returning its own
//! [`Notification`] completion pointer), closing, querying and incrementing
//! the epoch, batch retrieval of notification handles, and the rewind
//! extension of Sec. IV-F.

use crate::addr::VirtAddr;
use crate::buffer::{CompletedBuffer, PostedBuffer, Threshold};
use crate::cq::CompletionQueue;
use crate::endpoint::RvmaEndpoint;
use crate::error::Result;
use crate::mailbox::{EpochProgress, Mailbox};
use crate::notify::{AsyncNotifyStats, Notification, NotificationSlot, NotifyFuture};
use crate::pool::{BufferPool, PoolStats};
use crate::telemetry::Telemetry;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// How [`Window::recover_timeout`] resolved an epoch it waited on.
#[derive(Debug)]
pub enum EpochOutcome {
    /// The epoch reached its threshold within the timeout.
    Completed(CompletedBuffer),
    /// The timeout expired: the partially-filled epoch was rotated out
    /// (`RVMA_Win_inc_epoch`) and handed over with whatever bytes arrived.
    /// The next posted buffer is active — the mailbox is not wedged on the
    /// missing fragments.
    Rewound(CompletedBuffer),
}

impl EpochOutcome {
    /// The epoch's buffer, however the epoch ended.
    pub fn into_buffer(self) -> CompletedBuffer {
        match self {
            EpochOutcome::Completed(b) | EpochOutcome::Rewound(b) => b,
        }
    }

    /// True when the epoch was force-rotated with a partial buffer.
    pub fn is_rewound(&self) -> bool {
        matches!(self, EpochOutcome::Rewound(_))
    }
}

/// Application handle to one RVMA mailbox.
///
/// Dropping a `Window` does **not** close the mailbox — posted buffers keep
/// receiving and completing (their notifications remain live). Call
/// [`close`](Window::close) for the paper's `RVMA_Close_Win` semantics.
#[derive(Debug)]
pub struct Window {
    endpoint: Arc<RvmaEndpoint>,
    mailbox: Arc<Mutex<Mailbox>>,
    vaddr: VirtAddr,
    threshold: Threshold,
    /// Recycles epoch-buffer allocations for [`Window::post_pooled`].
    pool: Arc<BufferPool>,
    /// The endpoint's event recorder, cached at creation so the post path
    /// never touches the endpoint's cold-path lock. `None` unless
    /// telemetry is enabled.
    telemetry: Option<Arc<Telemetry>>,
    /// The endpoint's async-completion counters, armed into every posted
    /// slot (cached at creation, same reason as `telemetry`).
    async_stats: Arc<AsyncNotifyStats>,
}

impl Window {
    pub(crate) fn new(
        endpoint: Arc<RvmaEndpoint>,
        mailbox: Arc<Mutex<Mailbox>>,
        vaddr: VirtAddr,
        threshold: Threshold,
    ) -> Self {
        let telemetry = endpoint.telemetry();
        let async_stats = endpoint.async_notify_stats();
        Window {
            endpoint,
            mailbox,
            vaddr,
            threshold,
            pool: Arc::new(BufferPool::new()),
            telemetry,
            async_stats,
        }
    }

    /// A fresh slot for one posted buffer, armed with the endpoint's async
    /// counters.
    fn new_slot(&self) -> Arc<NotificationSlot> {
        let slot = NotificationSlot::with_baseline(self.endpoint.config().notify_baseline);
        slot.arm_stats(self.async_stats.clone());
        slot
    }

    /// The mailbox's virtual address.
    pub fn vaddr(&self) -> VirtAddr {
        self.vaddr
    }

    /// The window's default epoch threshold.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// The endpoint this window lives on.
    pub fn endpoint(&self) -> &Arc<RvmaEndpoint> {
        &self.endpoint
    }

    /// Post a buffer to the mailbox's bucket with the window's default
    /// threshold (paper: `RVMA_Post_buffer`). Ownership of `buf` moves to
    /// the mailbox and returns through the [`Notification`] on completion.
    pub fn post_buffer(&self, buf: Vec<u8>) -> Result<Notification> {
        self.post_buffer_with(buf, self.threshold)
    }

    /// Post a buffer with an explicit per-buffer threshold override.
    pub fn post_buffer_with(&self, buf: Vec<u8>, threshold: Threshold) -> Result<Notification> {
        let slot = self.new_slot();
        self.mailbox
            .lock()
            .post(PostedBuffer::new(buf, threshold, slot.clone()))?;
        Ok(self.notification(slot))
    }

    /// [`post_buffer`](Window::post_buffer), async flavour: returns a future
    /// resolving to the completed buffer. The completing write wakes the
    /// awaiting task directly through the slot's waker cell — no condvar,
    /// no spin-then-park.
    pub fn post_buffer_async(&self, buf: Vec<u8>) -> Result<NotifyFuture> {
        let slot = self.new_slot();
        slot.arm_async();
        self.mailbox
            .lock()
            .post(PostedBuffer::new(buf, self.threshold, slot.clone()))?;
        Ok(self.notification(slot).into_future())
    }

    /// [`post_pooled`](Window::post_pooled), async flavour; see
    /// [`post_buffer_async`](Window::post_buffer_async).
    pub fn post_pooled_async(&self, len: usize) -> Result<NotifyFuture> {
        let slot = self.new_slot();
        slot.arm_async();
        self.mailbox.lock().post(PostedBuffer::pooled(
            self.pool.take(len),
            self.threshold,
            slot.clone(),
            self.pool.clone(),
        ))?;
        Ok(self.notification(slot).into_future())
    }

    /// Post a buffer whose completion is delivered through `cq` tagged with
    /// `user`, instead of through a per-buffer [`Notification`] — the
    /// epoll-style idiom for multiplexing many windows onto one consumer.
    /// No notification handle is returned: the queue is the sole consumer
    /// of this completion (exactly-once delivery).
    pub fn post_buffer_cq(&self, buf: Vec<u8>, cq: &CompletionQueue, user: u64) -> Result<()> {
        let slot = self.new_slot();
        slot.attach_cq(cq.attachment(user));
        if let Some(t) = &self.telemetry {
            cq.trace_into(t.clone());
        }
        self.mailbox
            .lock()
            .post(PostedBuffer::new(buf, self.threshold, slot))?;
        Ok(())
    }

    /// [`post_pooled`](Window::post_pooled) routed into a completion queue;
    /// see [`post_buffer_cq`](Window::post_buffer_cq).
    pub fn post_pooled_cq(&self, len: usize, cq: &CompletionQueue, user: u64) -> Result<()> {
        let slot = self.new_slot();
        slot.attach_cq(cq.attachment(user));
        if let Some(t) = &self.telemetry {
            cq.trace_into(t.clone());
        }
        self.mailbox.lock().post(PostedBuffer::pooled(
            self.pool.take(len),
            self.threshold,
            slot,
            self.pool.clone(),
        ))?;
        Ok(())
    }

    /// Wrap a slot in a notification, armed with the window's recorder.
    fn notification(&self, slot: Arc<NotificationSlot>) -> Notification {
        let mut n = Notification::new(slot);
        if let Some(t) = &self.telemetry {
            n.trace_into(t.clone());
        }
        n
    }

    /// Post a zeroed `len`-byte buffer drawn from the window's buffer pool
    /// with the window's default threshold. The allocation returns to the
    /// pool automatically when the last owner of the completed buffer
    /// (notification holder, retired-ring entry, rewind clone) drops it, so
    /// a steady-state post → complete → re-post cycle stops allocating once
    /// the pool is warm. [`pool_stats`](Window::pool_stats) exposes the
    /// hit/miss counters.
    pub fn post_pooled(&self, len: usize) -> Result<Notification> {
        self.post_pooled_with(len, self.threshold)
    }

    /// [`post_pooled`](Window::post_pooled) with an explicit per-buffer
    /// threshold override.
    pub fn post_pooled_with(&self, len: usize, threshold: Threshold) -> Result<Notification> {
        let slot = self.new_slot();
        self.mailbox.lock().post(PostedBuffer::pooled(
            self.pool.take(len),
            threshold,
            slot.clone(),
            self.pool.clone(),
        ))?;
        Ok(self.notification(slot))
    }

    /// Hit/miss/occupancy counters of the window's buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Post several buffers at once, returning their notification handles in
    /// posting order — the batch idiom behind `RVMA_Win_get_buf_ptrs`
    /// ("system software may want to guarantee that a constant number of
    /// buffers are always posted").
    pub fn post_buffers(&self, bufs: Vec<Vec<u8>>) -> Result<Vec<Notification>> {
        let mut out = Vec::with_capacity(bufs.len());
        for b in bufs {
            out.push(self.post_buffer(b)?);
        }
        Ok(out)
    }

    /// Current epoch of the mailbox (paper: `RVMA_Win_get_epoch`).
    pub fn epoch(&self) -> u64 {
        self.mailbox.lock().epoch()
    }

    /// Number of buffers posted and not yet completed.
    pub fn posted_buffers(&self) -> usize {
        self.mailbox.lock().posted_buffers()
    }

    /// Hand the active buffer to software *now*, before its threshold is
    /// met (paper: `RVMA_Win_inc_epoch`) — stream semantics, unknown
    /// message sizes, or partial-buffer error recovery.
    pub fn inc_epoch(&self) -> Result<()> {
        self.mailbox.lock().inc_epoch()
    }

    /// Close the window (paper: `RVMA_Close_Win`). Further operations to the
    /// address are discarded (NACKed per endpoint policy). Returns the
    /// never-activated queued buffers to the caller. The LUT entry remains
    /// (reporting `WindowClosed`) until `RvmaEndpoint::evict` reclaims it.
    pub fn close(&self) -> Vec<Vec<u8>> {
        self.mailbox.lock().close()
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.mailbox.lock().is_closed()
    }

    /// Hardware rewind (paper Sec. IV-F): the buffer completed `back`
    /// epochs ago (`back = 1` is the most recent). Fails if the retired
    /// ring no longer holds that epoch.
    pub fn rewind(&self, back: u64) -> Result<CompletedBuffer> {
        self.mailbox.lock().rewind(back)
    }

    /// The retired buffer for absolute epoch `epoch`, if still retained.
    pub fn retired_epoch(&self, epoch: u64) -> Result<CompletedBuffer> {
        self.mailbox.lock().retired_epoch(epoch)
    }

    /// Bytes received so far in the currently progressing epoch. Useful for
    /// diagnostics; the in-progress epoch is otherwise deliberately hidden
    /// from the application.
    pub fn bytes_in_progress(&self) -> u64 {
        self.mailbox.lock().bytes_this_epoch()
    }

    /// A lock-free handle to the mailbox's epoch-progress counters (bytes,
    /// ops, epoch). Polling it never touches the mailbox lock, so an
    /// application can watch threshold progress without perturbing the
    /// delivery datapath.
    pub fn progress(&self) -> Arc<EpochProgress> {
        self.mailbox.lock().progress_handle()
    }

    /// Wait up to `timeout` for `n` — the notification of this mailbox's
    /// **active** (oldest unconsumed) epoch — and, if it does not complete,
    /// rotate the partially-filled epoch out instead of wedging: the
    /// fabric-fault recovery idiom of paper Secs. IV-E/IV-F, where an epoch
    /// whose fragments were lost is surrendered with partial contents
    /// rather than blocking the mailbox forever.
    ///
    /// The decision is race-free: the endpoint's completing write runs
    /// under the mailbox lock, so after the timeout this method re-checks
    /// completion *under that lock* — either the epoch completed in the
    /// race window (returned as [`EpochOutcome::Completed`]) or it is
    /// rotated while provably incomplete ([`EpochOutcome::Rewound`]). A
    /// completion can never be lost or double-handled.
    ///
    /// Errors propagate from `inc_epoch` (e.g. the window was closed
    /// underneath the wait); the notification is left unconsumed in that
    /// case.
    ///
    /// # Panics
    /// Panics if `n` was already consumed.
    pub fn recover_timeout(&self, n: &mut Notification, timeout: Duration) -> Result<EpochOutcome> {
        if let Some(buf) = n.wait_timeout(timeout) {
            return Ok(EpochOutcome::Completed(buf));
        }
        let mut mb = self.mailbox.lock();
        if n.is_complete() {
            drop(mb);
            return Ok(EpochOutcome::Completed(n.wait()));
        }
        mb.inc_epoch()?;
        drop(mb);
        // inc_epoch performed the completing write on the active buffer —
        // which is n's buffer by contract — so this wait returns at once.
        Ok(EpochOutcome::Rewound(n.wait()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeAddr;
    use crate::endpoint::{DeliverResult, Fragment};
    use bytes::Bytes;

    fn setup() -> (Arc<RvmaEndpoint>, Window) {
        let ep = RvmaEndpoint::new(NodeAddr::node(1));
        let win = ep
            .init_window(VirtAddr::new(0x10), Threshold::bytes(8))
            .unwrap();
        (ep, win)
    }

    fn put(ep: &RvmaEndpoint, op: u64, off: usize, data: &[u8]) -> DeliverResult {
        ep.deliver(&Fragment {
            initiator: NodeAddr::node(2),
            op_id: op,
            dst_vaddr: VirtAddr::new(0x10),
            op_total_len: data.len() as u64,
            offset: off,
            data: Bytes::copy_from_slice(data),
        })
    }

    #[test]
    fn window_reports_threshold_and_vaddr() {
        let (_ep, win) = setup();
        assert_eq!(win.vaddr(), VirtAddr::new(0x10));
        assert_eq!(win.threshold(), Threshold::bytes(8));
    }

    #[test]
    fn post_buffers_batch_returns_in_order() {
        let (ep, win) = setup();
        let mut ns = win
            .post_buffers(vec![vec![0; 8], vec![0; 8], vec![0; 8]])
            .unwrap();
        assert_eq!(ns.len(), 3);
        assert_eq!(win.posted_buffers(), 3);
        for i in 0..3u8 {
            put(&ep, i as u64, 0, &[i; 8]);
        }
        for (i, n) in ns.iter_mut().enumerate() {
            assert_eq!(n.poll().unwrap().data(), vec![i as u8; 8].as_slice());
        }
        assert_eq!(win.epoch(), 3);
    }

    #[test]
    fn per_buffer_threshold_override() {
        let (ep, win) = setup();
        let mut n = win.post_buffer_with(vec![0; 8], Threshold::ops(1)).unwrap();
        put(&ep, 1, 0, &[5; 2]);
        assert_eq!(n.poll().unwrap().len(), 2);
    }

    #[test]
    fn epoch_and_progress_visibility() {
        let (ep, win) = setup();
        let _n = win.post_buffer(vec![0; 8]).unwrap();
        assert_eq!(win.epoch(), 0);
        put(&ep, 1, 0, &[1; 4]);
        assert_eq!(win.bytes_in_progress(), 4);
        put(&ep, 2, 4, &[1; 4]);
        assert_eq!(win.epoch(), 1);
        assert_eq!(win.bytes_in_progress(), 0);
    }

    #[test]
    fn close_returns_queued_buffers() {
        let (_ep, win) = setup();
        let _n1 = win.post_buffer(vec![1; 8]).unwrap();
        let _n2 = win.post_buffer(vec![2; 8]).unwrap();
        let bufs = win.close();
        assert!(win.is_closed());
        assert_eq!(bufs.len(), 2);
        assert!(win.post_buffer(vec![0; 8]).is_err());
    }

    #[test]
    fn rewind_through_window() {
        let (ep, win) = setup();
        let _ns = win.post_buffers(vec![vec![0; 8], vec![0; 8]]).unwrap();
        put(&ep, 1, 0, &[1; 8]);
        put(&ep, 2, 0, &[2; 8]);
        assert_eq!(win.rewind(2).unwrap().data(), &[1; 8]);
        assert_eq!(win.retired_epoch(1).unwrap().data(), &[2; 8]);
    }

    #[test]
    fn post_pooled_recycles_epoch_buffers() {
        use crate::mailbox::DEFAULT_RETAIN_EPOCHS;
        let (ep, win) = setup();
        // Cold: the pool has nothing shelved.
        let mut n = win.post_pooled(8).unwrap();
        assert_eq!(win.pool_stats().misses, 1);
        put(&ep, 1, 0, &[1; 8]);
        assert_eq!(n.poll().unwrap().data(), &[1; 8]);
        // The retired ring still co-owns the allocation for rewind; run
        // enough epochs to evict it, and its last drop shelves it.
        for k in 0..DEFAULT_RETAIN_EPOCHS as u64 {
            let mut n = win.post_pooled(8).unwrap();
            put(&ep, 2 + k, 0, &[0; 8]);
            let _ = n.poll().unwrap();
        }
        assert_eq!(win.pool_stats().shelved, 1);
        // ...and the next post reuses it, zeroed.
        let mut n = win.post_pooled(8).unwrap();
        assert_eq!(win.pool_stats().hits, 1);
        put(&ep, 9, 0, &[2; 4]);
        put(&ep, 10, 4, &[3; 4]);
        assert_eq!(n.poll().unwrap().data(), &[2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn recover_timeout_returns_completion_when_epoch_finishes() {
        let (ep, win) = setup();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        put(&ep, 1, 0, &[4; 8]);
        match win
            .recover_timeout(&mut n, std::time::Duration::from_secs(5))
            .unwrap()
        {
            EpochOutcome::Completed(buf) => assert_eq!(buf.data(), &[4; 8]),
            EpochOutcome::Rewound(_) => panic!("epoch was complete"),
        }
    }

    #[test]
    fn recover_timeout_rewinds_a_partial_epoch() {
        // Half the epoch's bytes arrive, the rest never do (a lossy fabric
        // without retransmission). The timeout rotates the epoch out with
        // its partial contents and the mailbox keeps going.
        let (ep, win) = setup();
        let mut n1 = win.post_buffer(vec![0; 8]).unwrap();
        let mut n2 = win.post_buffer(vec![0; 8]).unwrap();
        put(&ep, 1, 0, &[6; 4]);
        let outcome = win
            .recover_timeout(&mut n1, std::time::Duration::from_millis(10))
            .unwrap();
        assert!(outcome.is_rewound());
        let partial = outcome.into_buffer();
        assert_eq!(partial.len(), 4);
        assert_eq!(partial.data(), &[6; 4]);
        assert_eq!(win.epoch(), 1, "the wedged epoch was rotated out");
        // The next posted buffer is active and completes normally.
        put(&ep, 2, 0, &[7; 8]);
        assert_eq!(n2.wait().data(), &[7; 8]);
    }

    #[test]
    fn recover_timeout_propagates_closed_window() {
        let (_ep, win) = setup();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        win.close();
        assert!(win
            .recover_timeout(&mut n, std::time::Duration::from_millis(5))
            .is_err());
        assert!(!n.is_consumed(), "notification untouched on error");
    }

    #[test]
    fn dropping_window_keeps_mailbox_receiving() {
        let (ep, win) = setup();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        drop(win);
        assert_eq!(
            put(&ep, 1, 0, &[3; 8]),
            DeliverResult::Ok {
                completed_epoch: true
            }
        );
        assert_eq!(n.poll().unwrap().data(), &[3; 8]);
    }
}
