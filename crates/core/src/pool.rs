//! Buffer pools for the allocation-light submission path.
//!
//! Two recycling stores keep the high-rate small-message path off the
//! allocator:
//!
//! * [`PayloadPool`] — initiator side. Every `put` must copy the caller's
//!   payload into storage that outlives the call (the fragment travels to a
//!   wire worker asynchronously). Instead of a fresh `Arc<[u8]>` per put,
//!   the pool shelves a bounded set of allocations and reuses any that no
//!   in-flight fragment still references, handing out zero-copy
//!   [`Bytes`] views over them. Payloads of at most [`bytes::INLINE_CAP`]
//!   bytes skip even that: they travel inline in the `Bytes` handle, with
//!   no allocation or refcount at all.
//! * [`BufferPool`] — receiver side. Epoch buffers posted through
//!   [`Window::post_pooled`](crate::window::Window::post_pooled) return
//!   their allocation to the pool automatically when the **last** owner of
//!   the completed buffer drops it (notification holder, retired-ring
//!   entry, rewind clones — whoever is last), so steady-state post → fill →
//!   complete → re-post cycles allocate nothing.
//!
//! Ownership rule: a pool never hands out storage that anything else can
//! still observe. `PayloadPool` proves uniqueness with `Arc::get_mut`
//! (the shelf holds the only reference); `BufferPool` receives allocations
//! only from `CompletedBuffer`'s last-drop hook or an explicit
//! [`BufferPool::recycle`]. Both are bounded: beyond
//! [`MAX_SHELF`] entries, retiring allocations are simply freed.
//!
//! Hit/miss counters are exposed via [`PoolStats`]; the acceptance test for
//! the batched submission path asserts a 100 % hit rate in steady state.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum allocations a [`BufferPool`] retains; beyond this, retiring
/// buffers drop. Epoch buffers are large, so the cap is kept tight.
pub const MAX_SHELF: usize = 64;

/// Maximum entries one size class of a [`PayloadPool`] retains (small
/// classes; large classes are further bounded by
/// [`PAYLOAD_SHELF_BYTES`]). The shelf only grows on a miss, so each
/// class converges to the initiator's peak number of in-flight payloads
/// of that size; the cap must exceed a deep submission pipeline or every
/// acquire under load degenerates to probe-then-allocate.
pub const PAYLOAD_SHELF: usize = 2048;

/// Per-class retained-byte budget of a [`PayloadPool`]: a class of size
/// `c` shelves at most `PAYLOAD_SHELF_BYTES / c` entries (min 4), so the
/// large classes added for the zero-copy/bulk datapath cannot pin
/// unbounded memory.
pub const PAYLOAD_SHELF_BYTES: usize = 4 << 20;

/// Smallest payload allocation class (bytes). Small puts share one class so
/// a 32 B and a 56 B put reuse the same shelf entries. (Payloads at or
/// below [`bytes::INLINE_CAP`] never reach the shelf at all — they ride
/// inline in the `Bytes` handle.)
const MIN_CLASS: usize = 64;

/// Largest pooled allocation class (bytes). Requests beyond it bypass the
/// shelf entirely: they allocate exact-class storage, are counted as
/// misses, and are never retained — a multi-MiB one-off must not evict a
/// working set of small classes (and the zero-copy lane means such
/// payloads normally never reach the pool at all).
pub const MAX_POOLED_CLASS: usize = 1 << 20;

/// Shelf entries probed per [`PayloadPool::acquire`]. Bounded so a deep
/// submission pipeline (every shelved allocation still in flight) costs a
/// few refcount checks per put, not a full class scan; the per-class
/// rotating cursor spreads the probes so freed entries are still found
/// promptly.
const MAX_PROBES: usize = 8;

/// Point-in-time counters of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquisitions served by reusing a shelved allocation.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh storage.
    pub misses: u64,
    /// Acquisitions served inline in the `Bytes` handle itself — no
    /// allocation and no shelf traffic (payloads of at most
    /// [`bytes::INLINE_CAP`] bytes).
    pub inline: u64,
    /// Allocations currently shelved.
    pub shelved: usize,
}

impl PoolStats {
    /// Allocation-free acquisitions (shelf reuse + inline) as a fraction of
    /// all acquisitions (1.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.inline + self.misses;
        if total == 0 {
            1.0
        } else {
            (self.hits + self.inline) as f64 / total as f64
        }
    }
}

/// Recycles the `Arc<[u8]>` allocations backing fragment payloads.
///
/// `acquire` copies the caller's bytes into a shelved allocation when one
/// is free (unique) and large enough, otherwise allocates a
/// power-of-two-class buffer and shelves it for next time. The returned
/// [`Bytes`] shares the allocation; it becomes reusable again once every
/// fragment slice of it has been dropped by the wire workers.
#[derive(Debug, Default)]
pub struct PayloadPool {
    shelf: Mutex<PayloadShelf>,
    hits: AtomicU64,
    misses: AtomicU64,
    inline: AtomicU64,
}

/// Number of power-of-two classes between [`MIN_CLASS`] and
/// [`MAX_POOLED_CLASS`], inclusive.
const NUM_CLASSES: usize =
    (MAX_POOLED_CLASS.trailing_zeros() - MIN_CLASS.trailing_zeros() + 1) as usize;

/// Class index of a payload length, or `None` when it exceeds
/// [`MAX_POOLED_CLASS`] (the shelf bypass).
fn class_index(len: usize) -> Option<usize> {
    let class = len.next_power_of_two().max(MIN_CLASS);
    if class > MAX_POOLED_CLASS {
        None
    } else {
        Some((class.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize)
    }
}

/// Entry cap of one class: [`PAYLOAD_SHELF`] for small classes, tightened
/// to the [`PAYLOAD_SHELF_BYTES`] byte budget for large ones (min 4 so a
/// steady large-put pipeline still pools).
fn class_cap(class_size: usize) -> usize {
    (PAYLOAD_SHELF_BYTES / class_size).clamp(4, PAYLOAD_SHELF)
}

/// One size class of the shelf: same-capacity entries plus a rotating
/// probe cursor so consecutive acquires don't re-check the same
/// in-flight entries.
#[derive(Debug, Default)]
struct ClassShelf {
    entries: Vec<Arc<[u8]>>,
    cursor: usize,
}

#[derive(Debug)]
struct PayloadShelf {
    /// Per-class buckets, indexed by [`class_index`]. Size-classing is
    /// what makes large requests poolable: under the old single shelf, a
    /// bounded probe walk over a working set of small entries never
    /// reached an allocation big enough for a multi-KiB put, so every
    /// large acquire silently missed.
    classes: [ClassShelf; NUM_CLASSES],
}

impl Default for PayloadShelf {
    fn default() -> Self {
        PayloadShelf {
            classes: std::array::from_fn(|_| ClassShelf::default()),
        }
    }
}

impl PayloadPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into pooled storage and return it as `Bytes`.
    pub fn acquire(&self, data: &[u8]) -> Bytes {
        if data.len() <= bytes::INLINE_CAP {
            // Tiny payloads ride inline in the `Bytes` handle: no
            // allocation, no refcount, and no shelf lock. This is the
            // hottest case on the small-message path.
            if !data.is_empty() {
                self.inline.fetch_add(1, Ordering::Relaxed);
            }
            return Bytes::copy_from_slice(data);
        }
        let class = data.len().next_power_of_two().max(MIN_CLASS);
        let Some(ci) = class_index(data.len()) else {
            // Beyond the largest pooled class: exact-class allocation,
            // never shelved (documented bypass — see MAX_POOLED_CLASS).
            self.misses.fetch_add(1, Ordering::Relaxed);
            return fresh(class, data);
        };
        let mut shelf = self.shelf.lock();
        let bucket = &mut shelf.classes[ci];
        let n = bucket.entries.len();
        let start = bucket.cursor;
        for p in 0..n.min(MAX_PROBES) {
            let i = (start + p) % n;
            let arc = &mut bucket.entries[i];
            // Unique means no in-flight fragment still references it: the
            // shelf holds the only count, so overwriting is race-free.
            // Every entry in the bucket has exactly `class` capacity, so
            // uniqueness is the only thing probed for.
            if let Some(buf) = Arc::get_mut(arc) {
                buf[..data.len()].copy_from_slice(data);
                let out = Bytes::from_shared(arc.clone(), data.len());
                bucket.cursor = (i + 1) % n;
                drop(shelf);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return out;
            }
        }
        if n > 0 {
            bucket.cursor = (start + n.min(MAX_PROBES)) % n;
        }
        // Miss: allocate a class-sized buffer so differently-sized puts
        // can share the bucket's entries, copy, and shelve it (bounded
        // per class).
        let mut arc: Arc<[u8]> = Arc::from(vec![0u8; class]);
        Arc::get_mut(&mut arc).expect("fresh allocation is unique")[..data.len()]
            .copy_from_slice(data);
        let out = Bytes::from_shared(arc.clone(), data.len());
        if bucket.entries.len() < class_cap(class) {
            bucket.entries.push(arc);
        }
        drop(shelf);
        self.misses.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
            shelved: self
                .shelf
                .lock()
                .classes
                .iter()
                .map(|c| c.entries.len())
                .sum(),
        }
    }
}

/// An unshelved exact-class allocation holding a copy of `data`.
fn fresh(class: usize, data: &[u8]) -> Bytes {
    let mut arc: Arc<[u8]> = Arc::from(vec![0u8; class]);
    Arc::get_mut(&mut arc).expect("fresh allocation is unique")[..data.len()].copy_from_slice(data);
    Bytes::from_shared(arc, data.len())
}

/// Recycles the `Vec<u8>` allocations backing receiver epoch buffers.
///
/// Buffers enter through [`recycle`](BufferPool::recycle) (called
/// automatically by the last drop of a pooled
/// [`CompletedBuffer`](crate::buffer::CompletedBuffer)) and leave through
/// [`take`](BufferPool::take), zeroed to the requested length.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelf: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of exactly `len` bytes, reusing a shelved allocation
    /// with sufficient capacity when one exists.
    pub fn take(&self, len: usize) -> Vec<u8> {
        let reused = {
            let mut shelf = self.shelf.lock();
            shelf
                .iter()
                .position(|v| v.capacity() >= len)
                .map(|i| shelf.swap_remove(i))
        };
        match reused {
            Some(mut v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0; len]
            }
        }
    }

    /// Return an allocation to the shelf (dropped if the shelf is full or
    /// the allocation is empty).
    pub fn recycle(&self, v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        let mut shelf = self.shelf.lock();
        if shelf.len() < MAX_SHELF {
            shelf.push(v);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inline: 0,
            shelved: self.shelf.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pool_reuses_when_unique() {
        let pool = PayloadPool::new();
        let b1 = pool.acquire(&[1; 32]);
        assert_eq!(pool.stats().misses, 1);
        // Still referenced: the next acquire must not reuse it.
        let b2 = pool.acquire(&[2; 32]);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(&b1[..], &[1; 32]);
        drop(b1);
        drop(b2);
        // Both shelved allocations are free now.
        let b3 = pool.acquire(&[3; 32]);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(&b3[..], &[3; 32]);
        assert_eq!(pool.stats().shelved, 2);
    }

    #[test]
    fn payload_pool_size_classes_share_entries() {
        let pool = PayloadPool::new();
        drop(pool.acquire(&[7; 32]));
        // 32 B and 56 B both fall in the 64 B minimum class.
        let b = pool.acquire(&[9; 56]);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(&b[..], &[9; 56]);
    }

    #[test]
    fn payload_pool_tiny_payload_is_inline() {
        // At or below the inline cap, acquisition bypasses the shelf
        // entirely: no allocation, nothing shelved, counted separately.
        let pool = PayloadPool::new();
        let b = pool.acquire(&[5; bytes::INLINE_CAP]);
        assert_eq!(&b[..], &[5; bytes::INLINE_CAP]);
        let stats = pool.stats();
        assert_eq!((stats.inline, stats.hits, stats.misses), (1, 0, 0));
        assert_eq!(stats.shelved, 0);
        assert_eq!(stats.hit_rate(), 1.0);
        // One past the cap takes the pooled path.
        drop(b);
        drop(pool.acquire(&[6; bytes::INLINE_CAP + 1]));
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().shelved, 1);
    }

    #[test]
    fn payload_pool_large_classes_hit_despite_small_traffic() {
        let pool = PayloadPool::new();
        // A working set of in-flight small payloads. Under the old
        // single-shelf rotating cursor, the bounded probe walk only ever
        // saw these entries, so a larger request could never be satisfied
        // from the shelf — the regression this test pins.
        let small: Vec<Bytes> = (0..64).map(|_| pool.acquire(&[1u8; 64])).collect();
        let big = vec![2u8; 64 * 1024];
        drop(pool.acquire(&big)); // miss: shelved in the 64 KiB class
        let b = pool.acquire(&big);
        assert_eq!(pool.stats().hits, 1, "large class reuses its own bucket");
        assert_eq!(&b[..], &big[..]);
        drop(small);
    }

    #[test]
    fn payload_pool_oversize_bypasses_shelf() {
        let pool = PayloadPool::new();
        let huge = vec![3u8; MAX_POOLED_CLASS + 1];
        let a = pool.acquire(&huge);
        drop(a);
        let b = pool.acquire(&huge);
        assert_eq!(&b[..], &huge[..]);
        let s = pool.stats();
        // Both acquires allocate (documented bypass) and nothing is
        // retained: a one-off multi-MiB payload must not pin memory.
        assert_eq!((s.hits, s.misses), (0, 2));
        assert_eq!(s.shelved, 0);
    }

    #[test]
    fn payload_pool_large_class_caps_by_bytes() {
        // A large class's entry cap comes from the byte budget, not the
        // global entry cap.
        assert_eq!(class_cap(MAX_POOLED_CLASS), 4);
        assert_eq!(class_cap(64), PAYLOAD_SHELF);
        assert_eq!(class_cap(64 * 1024), PAYLOAD_SHELF_BYTES / (64 * 1024));
    }

    #[test]
    fn payload_pool_empty_payload_skips_pool() {
        let pool = PayloadPool::new();
        let b = pool.acquire(&[]);
        assert!(b.is_empty());
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(pool.stats().hit_rate(), 1.0);
    }

    #[test]
    fn buffer_pool_roundtrip_zeroes() {
        let pool = BufferPool::new();
        let mut v = pool.take(8);
        assert_eq!(pool.stats().misses, 1);
        v.copy_from_slice(&[9; 8]);
        pool.recycle(v);
        let v2 = pool.take(4);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(v2, vec![0; 4], "reused storage must come back zeroed");
    }

    #[test]
    fn buffer_pool_capacity_miss_allocates() {
        let pool = BufferPool::new();
        pool.recycle(vec![0; 4]);
        let v = pool.take(16);
        assert_eq!(v.len(), 16);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().shelved, 1, "small buffer stays shelved");
    }

    #[test]
    fn shelves_are_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_SHELF + 10) {
            pool.recycle(vec![0; 8]);
        }
        assert_eq!(pool.stats().shelved, MAX_SHELF);
    }
}
