//! Buffer pools for the allocation-light submission path.
//!
//! Two recycling stores keep the high-rate small-message path off the
//! allocator:
//!
//! * [`PayloadPool`] — initiator side. Every `put` must copy the caller's
//!   payload into storage that outlives the call (the fragment travels to a
//!   wire worker asynchronously). Instead of a fresh `Arc<[u8]>` per put,
//!   the pool shelves a bounded set of allocations and reuses any that no
//!   in-flight fragment still references, handing out zero-copy
//!   [`Bytes`] views over them. Payloads of at most [`bytes::INLINE_CAP`]
//!   bytes skip even that: they travel inline in the `Bytes` handle, with
//!   no allocation or refcount at all.
//! * [`BufferPool`] — receiver side. Epoch buffers posted through
//!   [`Window::post_pooled`](crate::window::Window::post_pooled) return
//!   their allocation to the pool automatically when the **last** owner of
//!   the completed buffer drops it (notification holder, retired-ring
//!   entry, rewind clones — whoever is last), so steady-state post → fill →
//!   complete → re-post cycles allocate nothing.
//!
//! Ownership rule: a pool never hands out storage that anything else can
//! still observe. `PayloadPool` proves uniqueness with `Arc::get_mut`
//! (the shelf holds the only reference); `BufferPool` receives allocations
//! only from `CompletedBuffer`'s last-drop hook or an explicit
//! [`BufferPool::recycle`]. Both are bounded: beyond
//! [`MAX_SHELF`] entries, retiring allocations are simply freed.
//!
//! Hit/miss counters are exposed via [`PoolStats`]; the acceptance test for
//! the batched submission path asserts a 100 % hit rate in steady state.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum allocations a [`BufferPool`] retains; beyond this, retiring
/// buffers drop. Epoch buffers are large, so the cap is kept tight.
pub const MAX_SHELF: usize = 64;

/// Maximum allocations a [`PayloadPool`] retains. Payload classes are
/// small (a few KiB at most) and the shelf only grows on a miss, so it
/// converges to the initiator's peak number of in-flight fragments; the
/// cap must exceed a deep submission pipeline or every acquire under load
/// degenerates to probe-then-allocate.
pub const PAYLOAD_SHELF: usize = 2048;

/// Smallest payload allocation class (bytes). Small puts share one class so
/// a 32 B and a 56 B put reuse the same shelf entries. (Payloads at or
/// below [`bytes::INLINE_CAP`] never reach the shelf at all — they ride
/// inline in the `Bytes` handle.)
const MIN_CLASS: usize = 64;

/// Shelf entries probed per [`PayloadPool::acquire`]. Bounded so a deep
/// submission pipeline (every shelved allocation still in flight) costs a
/// few refcount checks per put, not a full shelf scan; the rotating cursor
/// spreads the probes so freed entries are still found promptly.
const MAX_PROBES: usize = 8;

/// Point-in-time counters of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquisitions served by reusing a shelved allocation.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh storage.
    pub misses: u64,
    /// Acquisitions served inline in the `Bytes` handle itself — no
    /// allocation and no shelf traffic (payloads of at most
    /// [`bytes::INLINE_CAP`] bytes).
    pub inline: u64,
    /// Allocations currently shelved.
    pub shelved: usize,
}

impl PoolStats {
    /// Allocation-free acquisitions (shelf reuse + inline) as a fraction of
    /// all acquisitions (1.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.inline + self.misses;
        if total == 0 {
            1.0
        } else {
            (self.hits + self.inline) as f64 / total as f64
        }
    }
}

/// Recycles the `Arc<[u8]>` allocations backing fragment payloads.
///
/// `acquire` copies the caller's bytes into a shelved allocation when one
/// is free (unique) and large enough, otherwise allocates a
/// power-of-two-class buffer and shelves it for next time. The returned
/// [`Bytes`] shares the allocation; it becomes reusable again once every
/// fragment slice of it has been dropped by the wire workers.
#[derive(Debug, Default)]
pub struct PayloadPool {
    shelf: Mutex<PayloadShelf>,
    hits: AtomicU64,
    misses: AtomicU64,
    inline: AtomicU64,
}

#[derive(Debug, Default)]
struct PayloadShelf {
    entries: Vec<Arc<[u8]>>,
    /// Rotating probe start so consecutive acquires don't re-check the
    /// same in-flight entries.
    cursor: usize,
}

impl PayloadPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into pooled storage and return it as `Bytes`.
    pub fn acquire(&self, data: &[u8]) -> Bytes {
        if data.len() <= bytes::INLINE_CAP {
            // Tiny payloads ride inline in the `Bytes` handle: no
            // allocation, no refcount, and no shelf lock. This is the
            // hottest case on the small-message path.
            if !data.is_empty() {
                self.inline.fetch_add(1, Ordering::Relaxed);
            }
            return Bytes::copy_from_slice(data);
        }
        let mut shelf = self.shelf.lock();
        let n = shelf.entries.len();
        let start = shelf.cursor;
        for p in 0..n.min(MAX_PROBES) {
            let i = (start + p) % n;
            let arc = &mut shelf.entries[i];
            if arc.len() < data.len() {
                continue;
            }
            // Unique means no in-flight fragment still references it: the
            // shelf holds the only count, so overwriting is race-free.
            if let Some(buf) = Arc::get_mut(arc) {
                buf[..data.len()].copy_from_slice(data);
                let out = Bytes::from_shared(arc.clone(), data.len());
                shelf.cursor = (i + 1) % n;
                drop(shelf);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return out;
            }
        }
        if n > 0 {
            shelf.cursor = (start + n.min(MAX_PROBES)) % n;
        }
        // Miss: allocate a class-sized buffer so differently-sized puts can
        // share shelf entries, copy, and shelve it (bounded).
        let class = data.len().next_power_of_two().max(MIN_CLASS);
        let mut arc: Arc<[u8]> = Arc::from(vec![0u8; class]);
        Arc::get_mut(&mut arc).expect("fresh allocation is unique")[..data.len()]
            .copy_from_slice(data);
        let out = Bytes::from_shared(arc.clone(), data.len());
        if shelf.entries.len() < PAYLOAD_SHELF {
            shelf.entries.push(arc);
        }
        drop(shelf);
        self.misses.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
            shelved: self.shelf.lock().entries.len(),
        }
    }
}

/// Recycles the `Vec<u8>` allocations backing receiver epoch buffers.
///
/// Buffers enter through [`recycle`](BufferPool::recycle) (called
/// automatically by the last drop of a pooled
/// [`CompletedBuffer`](crate::buffer::CompletedBuffer)) and leave through
/// [`take`](BufferPool::take), zeroed to the requested length.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelf: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of exactly `len` bytes, reusing a shelved allocation
    /// with sufficient capacity when one exists.
    pub fn take(&self, len: usize) -> Vec<u8> {
        let reused = {
            let mut shelf = self.shelf.lock();
            shelf
                .iter()
                .position(|v| v.capacity() >= len)
                .map(|i| shelf.swap_remove(i))
        };
        match reused {
            Some(mut v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0; len]
            }
        }
    }

    /// Return an allocation to the shelf (dropped if the shelf is full or
    /// the allocation is empty).
    pub fn recycle(&self, v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        let mut shelf = self.shelf.lock();
        if shelf.len() < MAX_SHELF {
            shelf.push(v);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inline: 0,
            shelved: self.shelf.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pool_reuses_when_unique() {
        let pool = PayloadPool::new();
        let b1 = pool.acquire(&[1; 32]);
        assert_eq!(pool.stats().misses, 1);
        // Still referenced: the next acquire must not reuse it.
        let b2 = pool.acquire(&[2; 32]);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(&b1[..], &[1; 32]);
        drop(b1);
        drop(b2);
        // Both shelved allocations are free now.
        let b3 = pool.acquire(&[3; 32]);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(&b3[..], &[3; 32]);
        assert_eq!(pool.stats().shelved, 2);
    }

    #[test]
    fn payload_pool_size_classes_share_entries() {
        let pool = PayloadPool::new();
        drop(pool.acquire(&[7; 32]));
        // 32 B and 56 B both fall in the 64 B minimum class.
        let b = pool.acquire(&[9; 56]);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(&b[..], &[9; 56]);
    }

    #[test]
    fn payload_pool_tiny_payload_is_inline() {
        // At or below the inline cap, acquisition bypasses the shelf
        // entirely: no allocation, nothing shelved, counted separately.
        let pool = PayloadPool::new();
        let b = pool.acquire(&[5; bytes::INLINE_CAP]);
        assert_eq!(&b[..], &[5; bytes::INLINE_CAP]);
        let stats = pool.stats();
        assert_eq!((stats.inline, stats.hits, stats.misses), (1, 0, 0));
        assert_eq!(stats.shelved, 0);
        assert_eq!(stats.hit_rate(), 1.0);
        // One past the cap takes the pooled path.
        drop(b);
        drop(pool.acquire(&[6; bytes::INLINE_CAP + 1]));
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().shelved, 1);
    }

    #[test]
    fn payload_pool_empty_payload_skips_pool() {
        let pool = PayloadPool::new();
        let b = pool.acquire(&[]);
        assert!(b.is_empty());
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(pool.stats().hit_rate(), 1.0);
    }

    #[test]
    fn buffer_pool_roundtrip_zeroes() {
        let pool = BufferPool::new();
        let mut v = pool.take(8);
        assert_eq!(pool.stats().misses, 1);
        v.copy_from_slice(&[9; 8]);
        pool.recycle(v);
        let v2 = pool.take(4);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(v2, vec![0; 4], "reused storage must come back zeroed");
    }

    #[test]
    fn buffer_pool_capacity_miss_allocates() {
        let pool = BufferPool::new();
        pool.recycle(vec![0; 4]);
        let v = pool.take(16);
        assert_eq!(v.len(), 16);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().shelved, 1, "small buffer stays shelved");
    }

    #[test]
    fn shelves_are_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_SHELF + 10) {
            pool.recycle(vec![0; 8]);
        }
        assert_eq!(pool.stats().shelved, MAX_SHELF);
    }
}
