//! The NIC lookup table (LUT): virtual mailbox address → mailbox.
//!
//! Paper Sec. III-A / IV-A: RVMA deliberately uses a *simple* lookup table
//! rather than Portals-style matching hardware. No wildcards, no masks, no
//! ordered multi-candidate resolution — every lookup has exactly one answer
//! (item found or not found), which is what keeps the hardware small and
//! single-cycle. Each entry stores the mailbox address, buffer head address
//! and completion pointer address (≈24 B in hardware); here the entry is an
//! `Arc` to the mailbox that owns that state.
//!
//! Capacity is bounded (like real NIC SRAM); inserting past capacity fails
//! with [`RvmaError::LutFull`] so callers can model counter/entry exhaustion
//! (the paper notes overflow would spill to host memory at a latency cost —
//! the `rvma-nic` crate models that cost; here we expose the bound).
//!
//! # Sharding
//!
//! The table is split into [`LUT_SHARDS`] independently locked shards keyed
//! by a hash of the virtual address, so concurrent lookups (and even
//! concurrent registration) to different mailboxes never contend on one
//! global lock — in hardware terms, the LUT is a banked SRAM, not a single
//! ported array. All methods take `&self`; the global entry count and the
//! capacity bound are maintained with an atomic reservation counter, so the
//! bound holds exactly even under concurrent `insert` races.

use crate::addr::VirtAddr;
use crate::error::{Result, RvmaError};
use crate::mailbox::Mailbox;
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of lock shards in a [`Lut`]. A power of two so shard selection is
/// a mask; 16 is comfortably above the worker counts the threaded transport
/// uses, making cross-mailbox lock collisions rare.
pub const LUT_SHARDS: usize = 16;

type Shard = RwLock<HashMap<VirtAddr, Arc<Mutex<Mailbox>>>>;

/// A bounded, single-resolution lookup table, sharded for concurrency.
#[derive(Debug)]
pub struct Lut {
    shards: Box<[Shard]>,
    /// Registered entries across all shards. `insert` *reserves* a slot here
    /// before touching a shard, so the capacity bound is exact under races.
    len: AtomicUsize,
    capacity: Option<usize>,
}

impl Lut {
    /// An empty LUT; `capacity = None` means unbounded (host-memory spill
    /// is assumed free at the semantic level). Shards are pre-sized from the
    /// capacity so bounded tables never rehash on insert.
    pub fn new(capacity: Option<usize>) -> Self {
        let per_shard = capacity.map_or(0, |c| c.div_ceil(LUT_SHARDS));
        let shards = (0..LUT_SHARDS)
            .map(|_| RwLock::new(HashMap::with_capacity(per_shard)))
            .collect();
        Lut {
            shards,
            len: AtomicUsize::new(0),
            capacity,
        }
    }

    #[inline]
    fn shard(&self, vaddr: VirtAddr) -> &Shard {
        // Fibonacci hash of the raw address; the low bits of typical vaddrs
        // are sequential, so spread them before masking.
        let h = vaddr.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 48) as usize & (LUT_SHARDS - 1)]
    }

    /// Register a mailbox. Fails if the address is taken or the table full.
    pub fn insert(&self, vaddr: VirtAddr, mailbox: Arc<Mutex<Mailbox>>) -> Result<()> {
        // Reserve a slot before taking any shard lock so the bound is exact
        // even when inserts race across shards.
        if let Some(cap) = self.capacity {
            let reserved = self
                .len
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < cap).then_some(n + 1)
                });
            if reserved.is_err() {
                return Err(RvmaError::LutFull);
            }
        } else {
            self.len.fetch_add(1, Ordering::AcqRel);
        }
        match self.shard(vaddr).write().entry(vaddr) {
            Entry::Occupied(_) => {
                // Give the reservation back: the duplicate consumed nothing.
                self.len.fetch_sub(1, Ordering::AcqRel);
                Err(RvmaError::MailboxExists(vaddr))
            }
            Entry::Vacant(slot) => {
                slot.insert(mailbox);
                Ok(())
            }
        }
    }

    /// The single-lookup resolution: found or not found, never ambiguous.
    /// Takes only the owning shard's read lock — lookups of different
    /// mailboxes proceed fully in parallel.
    pub fn lookup(&self, vaddr: VirtAddr) -> Option<Arc<Mutex<Mailbox>>> {
        self.shard(vaddr).read().get(&vaddr).cloned()
    }

    /// Remove an entry entirely (reclaiming LUT capacity). Returns the
    /// mailbox if it was present.
    pub fn remove(&self, vaddr: VirtAddr) -> Option<Arc<Mutex<Mailbox>>> {
        let removed = self.shard(vaddr).write().remove(&vaddr);
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        removed
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// All registered virtual addresses (diagnostics). Not a point-in-time
    /// snapshot under concurrent mutation: shards are read one at a time.
    pub fn addresses(&self) -> Vec<VirtAddr> {
        self.shards
            .iter()
            .flat_map(|s| s.read().keys().copied().collect::<Vec<_>>())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{MailboxMode, DEFAULT_RETAIN_EPOCHS};

    fn mbox(v: u64) -> Arc<Mutex<Mailbox>> {
        Arc::new(Mutex::new(Mailbox::new(
            VirtAddr::new(v),
            MailboxMode::Steered,
            DEFAULT_RETAIN_EPOCHS,
        )))
    }

    #[test]
    fn insert_lookup_remove() {
        let lut = Lut::new(None);
        lut.insert(VirtAddr::new(1), mbox(1)).unwrap();
        assert!(lut.lookup(VirtAddr::new(1)).is_some());
        assert!(lut.lookup(VirtAddr::new(2)).is_none());
        assert_eq!(lut.len(), 1);
        assert!(lut.remove(VirtAddr::new(1)).is_some());
        assert!(lut.is_empty());
        assert!(lut.remove(VirtAddr::new(1)).is_none());
    }

    #[test]
    fn duplicate_insert_fails() {
        let lut = Lut::new(None);
        lut.insert(VirtAddr::new(7), mbox(7)).unwrap();
        assert_eq!(
            lut.insert(VirtAddr::new(7), mbox(7)),
            Err(RvmaError::MailboxExists(VirtAddr::new(7)))
        );
        // The failed duplicate must not leak a reserved slot.
        assert_eq!(lut.len(), 1);
    }

    #[test]
    fn capacity_is_enforced_and_reclaimable() {
        let lut = Lut::new(Some(2));
        lut.insert(VirtAddr::new(1), mbox(1)).unwrap();
        lut.insert(VirtAddr::new(2), mbox(2)).unwrap();
        assert_eq!(
            lut.insert(VirtAddr::new(3), mbox(3)),
            Err(RvmaError::LutFull)
        );
        lut.remove(VirtAddr::new(1));
        assert!(lut.insert(VirtAddr::new(3), mbox(3)).is_ok());
        assert_eq!(lut.capacity(), Some(2));
    }

    #[test]
    fn duplicate_insert_at_capacity_releases_reservation() {
        let lut = Lut::new(Some(2));
        lut.insert(VirtAddr::new(1), mbox(1)).unwrap();
        assert!(lut.insert(VirtAddr::new(1), mbox(1)).is_err());
        // The duplicate failure above must not eat the second slot.
        lut.insert(VirtAddr::new(2), mbox(2)).unwrap();
        assert_eq!(lut.len(), 2);
    }

    #[test]
    fn addresses_lists_entries() {
        let lut = Lut::new(None);
        lut.insert(VirtAddr::new(5), mbox(5)).unwrap();
        lut.insert(VirtAddr::new(9), mbox(9)).unwrap();
        let mut addrs = lut.addresses();
        addrs.sort();
        assert_eq!(addrs, vec![VirtAddr::new(5), VirtAddr::new(9)]);
    }

    #[test]
    fn concurrent_inserts_respect_capacity_exactly() {
        let lut = Arc::new(Lut::new(Some(64)));
        let ok = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let lut = lut.clone();
                let ok = &ok;
                s.spawn(move || {
                    for i in 0..32u64 {
                        let v = VirtAddr::new(t * 1000 + i);
                        if lut.insert(v, mbox(v.raw())).is_ok() {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 64);
        assert_eq!(lut.len(), 64);
        assert_eq!(lut.addresses().len(), 64);
    }

    #[test]
    fn concurrent_lookups_while_inserting() {
        let lut = Arc::new(Lut::new(None));
        for i in 0..128u64 {
            lut.insert(VirtAddr::new(i), mbox(i)).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let lut = lut.clone();
                s.spawn(move || {
                    for i in 0..128u64 {
                        assert!(lut.lookup(VirtAddr::new((i + t) % 128)).is_some());
                    }
                });
            }
            let writer = lut.clone();
            s.spawn(move || {
                for i in 1000..1128u64 {
                    writer.insert(VirtAddr::new(i), mbox(i)).unwrap();
                }
            });
        });
        assert_eq!(lut.len(), 256);
    }
}
