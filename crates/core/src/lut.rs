//! The NIC lookup table (LUT): virtual mailbox address → mailbox.
//!
//! Paper Sec. III-A / IV-A: RVMA deliberately uses a *simple* lookup table
//! rather than Portals-style matching hardware. No wildcards, no masks, no
//! ordered multi-candidate resolution — every lookup has exactly one answer
//! (item found or not found), which is what keeps the hardware small and
//! single-cycle. Each entry stores the mailbox address, buffer head address
//! and completion pointer address (≈24 B in hardware); here the entry is an
//! `Arc` to the mailbox that owns that state.
//!
//! Capacity is bounded (like real NIC SRAM); inserting past capacity fails
//! with [`RvmaError::LutFull`] so callers can model counter/entry exhaustion
//! (the paper notes overflow would spill to host memory at a latency cost —
//! the `rvma-nic` crate models that cost; here we expose the bound).

use crate::addr::VirtAddr;
use crate::error::{Result, RvmaError};
use crate::mailbox::Mailbox;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A bounded, single-resolution lookup table.
#[derive(Debug)]
pub struct Lut {
    map: HashMap<VirtAddr, Arc<Mutex<Mailbox>>>,
    capacity: Option<usize>,
}

impl Lut {
    /// An empty LUT; `capacity = None` means unbounded (host-memory spill
    /// is assumed free at the semantic level).
    pub fn new(capacity: Option<usize>) -> Self {
        Lut {
            map: HashMap::new(),
            capacity,
        }
    }

    /// Register a mailbox. Fails if the address is taken or the table full.
    pub fn insert(&mut self, vaddr: VirtAddr, mailbox: Arc<Mutex<Mailbox>>) -> Result<()> {
        if self.map.contains_key(&vaddr) {
            return Err(RvmaError::MailboxExists(vaddr));
        }
        if let Some(cap) = self.capacity {
            if self.map.len() >= cap {
                return Err(RvmaError::LutFull);
            }
        }
        self.map.insert(vaddr, mailbox);
        Ok(())
    }

    /// The single-lookup resolution: found or not found, never ambiguous.
    pub fn lookup(&self, vaddr: VirtAddr) -> Option<Arc<Mutex<Mailbox>>> {
        self.map.get(&vaddr).cloned()
    }

    /// Remove an entry entirely (reclaiming LUT capacity). Returns the
    /// mailbox if it was present.
    pub fn remove(&mut self, vaddr: VirtAddr) -> Option<Arc<Mutex<Mailbox>>> {
        self.map.remove(&vaddr)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// All registered virtual addresses (diagnostics).
    pub fn addresses(&self) -> Vec<VirtAddr> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{MailboxMode, DEFAULT_RETAIN_EPOCHS};

    fn mbox(v: u64) -> Arc<Mutex<Mailbox>> {
        Arc::new(Mutex::new(Mailbox::new(
            VirtAddr::new(v),
            MailboxMode::Steered,
            DEFAULT_RETAIN_EPOCHS,
        )))
    }

    #[test]
    fn insert_lookup_remove() {
        let mut lut = Lut::new(None);
        lut.insert(VirtAddr::new(1), mbox(1)).unwrap();
        assert!(lut.lookup(VirtAddr::new(1)).is_some());
        assert!(lut.lookup(VirtAddr::new(2)).is_none());
        assert_eq!(lut.len(), 1);
        assert!(lut.remove(VirtAddr::new(1)).is_some());
        assert!(lut.is_empty());
        assert!(lut.remove(VirtAddr::new(1)).is_none());
    }

    #[test]
    fn duplicate_insert_fails() {
        let mut lut = Lut::new(None);
        lut.insert(VirtAddr::new(7), mbox(7)).unwrap();
        assert_eq!(
            lut.insert(VirtAddr::new(7), mbox(7)),
            Err(RvmaError::MailboxExists(VirtAddr::new(7)))
        );
    }

    #[test]
    fn capacity_is_enforced_and_reclaimable() {
        let mut lut = Lut::new(Some(2));
        lut.insert(VirtAddr::new(1), mbox(1)).unwrap();
        lut.insert(VirtAddr::new(2), mbox(2)).unwrap();
        assert_eq!(
            lut.insert(VirtAddr::new(3), mbox(3)),
            Err(RvmaError::LutFull)
        );
        lut.remove(VirtAddr::new(1));
        assert!(lut.insert(VirtAddr::new(3), mbox(3)).is_ok());
        assert_eq!(lut.capacity(), Some(2));
    }

    #[test]
    fn addresses_lists_entries() {
        let mut lut = Lut::new(None);
        lut.insert(VirtAddr::new(5), mbox(5)).unwrap();
        lut.insert(VirtAddr::new(9), mbox(9)).unwrap();
        let mut addrs = lut.addresses();
        addrs.sort();
        assert_eq!(addrs, vec![VirtAddr::new(5), VirtAddr::new(9)]);
    }
}
