//! Paper-verbatim API shim (Sec. III-C).
//!
//! The rest of this crate exposes RVMA through idiomatic Rust types
//! ([`Window`], [`Notification`], [`Initiator`]). This module mirrors the
//! exact call set and naming of the paper's proposed C API, one function per
//! listing, so code can be written side-by-side with the specification:
//!
//! | Paper | Here |
//! |---|---|
//! | `RVMA_Init_window(virtual_addr, key, epoch_threshold, epoch_type)` | [`rvma_init_window`] |
//! | `RVMA_Post_buffer(buffer, size, notification_ptr, win)` | [`rvma_post_buffer`] |
//! | `RVMA_Close_Win(win)` | [`rvma_close_win`] |
//! | `RVMA_Win_inc_epoch(win)` | [`rvma_win_inc_epoch`] |
//! | `RVMA_Win_get_epoch(win)` | [`rvma_win_get_epoch`] |
//! | `RVMA_Win_get_buf_ptrs(win, ptrs, count)` | [`rvma_win_get_buf_ptrs`] |
//! | `RVMA_Put(send_buffer, size, dest_addr, virtual_addr)` | [`rvma_put`] |
//! | `MPIX_Rewind(window)` (Sec. IV-F sketch) | [`rvma_win_rewind`] |
//!
//! Two asynchronous-native extensions follow the same naming style (they
//! have no listing in the paper, which leaves initiator-side local
//! completion to the implementation): [`rvma_post_buffer_async`] returns
//! the notification as a `Future`, and [`rvma_put_notify`] is a put whose
//! returned future resolves at local (delivery) completion.

use crate::addr::{NodeAddr, VirtAddr};
use crate::buffer::{CompletedBuffer, EpochType, Threshold};
use crate::endpoint::RvmaEndpoint;
use crate::error::Result;
use crate::notify::{Notification, NotifyFuture};
use crate::transport::{Initiator, PutResult};
use crate::transport_threaded::{AsyncInitiator, PutFuture};
use crate::window::Window;
use std::sync::Arc;

/// `RVMA_Init_window`: create a window at `virtual_addr` whose epochs
/// complete after `epoch_threshold` units of `epoch_type`.
///
/// The paper's `key_t* key` out-parameter (a protection key) is represented
/// by the returned [`Window`] handle itself, which is the capability to
/// post/close/rewind.
pub fn rvma_init_window(
    endpoint: &Arc<RvmaEndpoint>,
    virtual_addr: VirtAddr,
    epoch_threshold: u64,
    epoch_type: EpochType,
) -> Result<Window> {
    endpoint.init_window(
        virtual_addr,
        Threshold {
            ty: epoch_type,
            count: epoch_threshold,
        },
    )
}

/// `RVMA_Post_buffer`: attach `buffer` to the window's mailbox. The paper's
/// `void** notification_ptr` out-parameter is the returned [`Notification`].
pub fn rvma_post_buffer(win: &Window, buffer: Vec<u8>) -> Result<Notification> {
    win.post_buffer(buffer)
}

/// `RVMA_Close_Win`: stop accepting operations at the window's address.
/// Returns queued (never-activated) buffers to the caller.
pub fn rvma_close_win(win: &Window) -> Vec<Vec<u8>> {
    win.close()
}

/// `RVMA_Win_inc_epoch`: complete the active buffer early, handing a
/// partial buffer to software.
pub fn rvma_win_inc_epoch(win: &Window) -> Result<()> {
    win.inc_epoch()
}

/// `RVMA_Win_get_epoch`: the window's current epoch.
pub fn rvma_win_get_epoch(win: &Window) -> u64 {
    win.epoch()
}

/// `RVMA_Win_get_buf_ptrs`: poll up to `count` of the given notification
/// handles, collecting buffers whose epochs have completed. Returns the
/// completed buffers ("the number of valid notification pointers that were
/// returned" is their `len()`).
pub fn rvma_win_get_buf_ptrs(
    notifications: &mut [Notification],
    count: usize,
) -> Vec<CompletedBuffer> {
    notifications
        .iter_mut()
        .take(count)
        .filter_map(Notification::poll)
        .collect()
}

/// `RVMA_Put`: transfer `send_buffer` to mailbox `virtual_addr` on
/// `dest_addr`. No prior handshake or remote-address exchange is needed.
pub fn rvma_put(
    initiator: &Initiator,
    send_buffer: &[u8],
    dest_addr: NodeAddr,
    virtual_addr: VirtAddr,
) -> Result<PutResult> {
    initiator.put(dest_addr, virtual_addr, send_buffer)
}

/// The `MPIX_Rewind` sketch of Sec. IV-F: return the window to the state of
/// the buffer completed `back` epochs ago.
pub fn rvma_win_rewind(win: &Window, back: u64) -> Result<CompletedBuffer> {
    win.rewind(back)
}

/// `RVMA_Post_buffer` variant whose `notification_ptr` out-parameter is a
/// `Future`: `.await` (or `block_on`) it to receive the completed buffer.
/// The completing write wakes the future directly through the slot's
/// waker — no condvar broadcast, no polling loop.
pub fn rvma_post_buffer_async(win: &Window, buffer: Vec<u8>) -> Result<NotifyFuture> {
    win.post_buffer_async(buffer)
}

/// `RVMA_Put` variant for the threaded transport returning a future that
/// resolves at the put's **local completion** — every fragment delivered
/// (or NACKed) by the wire — the point at which `send_buffer` could be
/// reused by a zero-copy initiator.
pub fn rvma_put_notify(
    initiator: &AsyncInitiator,
    send_buffer: &[u8],
    dest_addr: NodeAddr,
    virtual_addr: VirtAddr,
) -> Result<PutFuture> {
    initiator.put_notify(dest_addr, virtual_addr, send_buffer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackNetwork;

    #[test]
    fn paper_call_sequence() {
        // The full Fig. 3 flow, written with the paper's call names.
        let net = LoopbackNetwork::new();
        let target = net.add_endpoint(NodeAddr::node(1));
        let initiator = net.initiator(NodeAddr::node(2));

        let win = rvma_init_window(&target, VirtAddr::new(0xCAFE), 16, EpochType::Bytes).unwrap();
        let n1 = rvma_post_buffer(&win, vec![0; 16]).unwrap();
        let n2 = rvma_post_buffer(&win, vec![0; 16]).unwrap();

        rvma_put(
            &initiator,
            &[1; 16],
            NodeAddr::node(1),
            VirtAddr::new(0xCAFE),
        )
        .unwrap();
        assert_eq!(rvma_win_get_epoch(&win), 1);

        let mut ns = vec![n1, n2];
        let done = rvma_win_get_buf_ptrs(&mut ns, 2);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].data(), &[1; 16]);

        rvma_put(
            &initiator,
            &[2; 16],
            NodeAddr::node(1),
            VirtAddr::new(0xCAFE),
        )
        .unwrap();
        assert_eq!(rvma_win_rewind(&win, 1).unwrap().data(), &[2; 16]);
        assert_eq!(rvma_win_rewind(&win, 2).unwrap().data(), &[1; 16]);

        let returned = rvma_close_win(&win);
        assert!(returned.is_empty());
        assert!(rvma_put(
            &initiator,
            &[3; 16],
            NodeAddr::node(1),
            VirtAddr::new(0xCAFE)
        )
        .is_err());
    }

    #[test]
    fn inc_epoch_via_shim() {
        let net = LoopbackNetwork::new();
        let target = net.add_endpoint(NodeAddr::node(1));
        let initiator = net.initiator(NodeAddr::node(2));
        let win = rvma_init_window(&target, VirtAddr::new(1), 1024, EpochType::Bytes).unwrap();
        let mut n = rvma_post_buffer(&win, vec![0; 1024]).unwrap();
        rvma_put(&initiator, &[5; 10], NodeAddr::node(1), VirtAddr::new(1)).unwrap();
        assert_eq!(rvma_win_get_epoch(&win), 0);
        rvma_win_inc_epoch(&win).unwrap();
        assert_eq!(rvma_win_get_epoch(&win), 1);
        assert_eq!(n.poll().unwrap().len(), 10);
    }
}
