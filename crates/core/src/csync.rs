//! `csync` — the crate's single seam between production synchronization
//! primitives and the `rvma-check` model checker.
//!
//! Every lock-free module (`ring`, `notify`, `cq`, the seqlock route
//! cache in `transport_threaded`, the telemetry shards) takes its
//! atomics, `UnsafeCell`s, locks, park/unpark and spin hints from here
//! instead of `std`/`parking_lot` directly.
//!
//! * **Default build** (no `check` feature): everything is a plain
//!   re-export or a `#[repr(transparent)]` `#[inline(always)]` wrapper —
//!   zero cost, the hot path compiles to exactly the code it did before
//!   (guarded by the `put_latency --quick` overhead check in CI).
//! * **`--features check`**: the same names become instrumented wrappers
//!   that, *when the calling thread belongs to an active
//!   [`check`](crate::check) execution*, funnel every operation through
//!   the cooperative scheduler (a DFS choice point per op) and the
//!   vector-clock race detector. Outside an execution they fall through
//!   to the real operation, so regular tests behave identically under
//!   either feature set.
//!
//! The [`Mutation`] enum is the seeded bad-ordering registry for the
//! mutation-test harness: production code asks [`mutation`] whether a
//! specific known-bad weakening is active. In default builds this is
//! `const false` and folds away entirely.

/// Seeded bad orderings for the mutation-test harness. Each names a
/// specific weakening of a load-bearing ordering in production code; a
/// checker execution activates one via `check::Options::mutations` and
/// the corresponding test proves the checker catches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// `NotificationSlot::complete`: perform the completing
    /// EMPTY→COMPLETE swap `Relaxed` instead of `SeqCst` — breaks the
    /// payload-publication happens-before edge.
    RelaxedCompletingSwap,
    /// `NotificationSlot::complete`: read the waiter count *before* the
    /// completing swap (inverting the Dekker store→load order) — a
    /// waiter that registers between the two is never woken.
    WaitersCheckBeforeSwap,
    /// `RingQueue::try_push`: publish the slot sequence `Relaxed`
    /// instead of `Release` — the consumer can read an unpublished
    /// payload.
    RingPublishRelaxed,
    /// `RouteSlot::publish`: skip the odd-sequence write lock and store
    /// the fields directly — readers can observe a torn route.
    SeqlockTornPublish,
    /// `CompletionQueue::push`: ignore the spill-episode flag and push
    /// straight to the ring — re-creates the pre-PR-8 FIFO inversion
    /// across overflow episodes.
    CqSpillBypass,
}

impl Mutation {
    #[cfg_attr(not(feature = "check"), allow(dead_code))]
    pub(crate) fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

#[cfg(not(feature = "check"))]
mod imp {
    use std::cell::UnsafeCell;

    pub(crate) use parking_lot::{Condvar, Mutex};
    // Re-exported so check/non-check call sites can name the same types;
    // most code only uses them implicitly through `lock()`/`wait_until()`.
    #[allow(unused_imports)]
    pub(crate) use parking_lot::{MutexGuard, WaitTimeoutResult};
    pub(crate) use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };

    pub(crate) mod thread {
        pub(crate) use std::thread::{current, park, yield_now, Thread};
    }

    #[inline(always)]
    pub(crate) fn spin_loop() {
        std::hint::spin_loop();
    }

    /// Spin budgets shrink to near-zero under an active model (spinning
    /// is modeled as blocking); in real builds they pass through.
    #[inline(always)]
    pub(crate) fn spin_budget(n: u32) -> u32 {
        n
    }

    /// Seeded mutations never fire outside the checker.
    #[inline(always)]
    pub(crate) fn mutation(_m: super::Mutation) -> bool {
        false
    }

    /// Transparent `UnsafeCell`: the checker's plain-memory hook, free in
    /// real builds.
    #[repr(transparent)]
    pub(crate) struct CheckCell<T>(UnsafeCell<T>);

    impl<T> CheckCell<T> {
        #[inline(always)]
        pub(crate) const fn new(v: T) -> Self {
            CheckCell(UnsafeCell::new(v))
        }

        /// Shared access to the cell's raw pointer. The *caller* is
        /// responsible for the aliasing discipline, exactly as with
        /// `UnsafeCell::get`; the checker build verifies it.
        #[inline(always)]
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access to the cell's raw pointer (same contract).
        #[inline(always)]
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(feature = "check")]
mod imp {
    use crate::check::{with_active, AtomKind, Execution};
    use std::cell::UnsafeCell;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Instant;

    fn ctx() -> Option<(Arc<Execution>, usize)> {
        with_active(|e, me| (e.clone(), me))
    }

    /// Seeded mutations fire only inside an execution that listed them.
    #[inline]
    pub(crate) fn mutation(m: super::Mutation) -> bool {
        crate::check::mutation_active(m)
    }

    #[inline]
    pub(crate) fn spin_budget(n: u32) -> u32 {
        if ctx().is_some() {
            n.min(2)
        } else {
            n
        }
    }

    pub(crate) fn spin_loop() {
        match ctx() {
            Some((e, me)) => e.spin_yield(me),
            None => std::hint::spin_loop(),
        }
    }

    pub(crate) fn fence(ord: Ordering) {
        match ctx() {
            Some((e, me)) => {
                e.schedule_point(me);
                std::sync::atomic::fence(ord);
                e.op_done(me, 0, AtomKind::Fence, ord);
            }
            None => std::sync::atomic::fence(ord),
        }
    }

    macro_rules! check_atomic {
        ($name:ident, $raw:ident, $prim:ty) => {
            /// Instrumented atomic: schedule point before the operation,
            /// shadow-clock bookkeeping after. Falls through to the real
            /// op outside an active execution.
            #[derive(Debug, Default)]
            pub(crate) struct $name {
                real: std::sync::atomic::$raw,
            }

            #[allow(dead_code)]
            impl $name {
                pub(crate) const fn new(v: $prim) -> Self {
                    $name {
                        real: std::sync::atomic::$raw::new(v),
                    }
                }

                fn addr(&self) -> usize {
                    self as *const _ as usize
                }

                #[inline]
                fn instr<R>(&self, kind: AtomKind, ord: Ordering, f: impl FnOnce() -> R) -> R {
                    match ctx() {
                        Some((e, me)) => {
                            e.schedule_point(me);
                            let r = f();
                            e.op_done(me, self.addr(), kind, ord);
                            r
                        }
                        None => f(),
                    }
                }

                pub(crate) fn load(&self, ord: Ordering) -> $prim {
                    self.instr(AtomKind::Load, ord, || self.real.load(ord))
                }

                pub(crate) fn store(&self, v: $prim, ord: Ordering) {
                    self.instr(AtomKind::Store, ord, || self.real.store(v, ord))
                }

                pub(crate) fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    self.instr(AtomKind::Rmw, ord, || self.real.swap(v, ord))
                }

                pub(crate) fn compare_exchange(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    match ctx() {
                        Some((e, me)) => {
                            e.schedule_point(me);
                            let r = self.real.compare_exchange(cur, new, ok, err);
                            // A failed CAS is a load with the failure
                            // ordering; a successful one is an RMW.
                            match r {
                                Ok(_) => e.op_done(me, self.addr(), AtomKind::Rmw, ok),
                                Err(_) => e.op_done(me, self.addr(), AtomKind::Load, err),
                            }
                            r
                        }
                        None => self.real.compare_exchange(cur, new, ok, err),
                    }
                }

                /// Under the model, "weak" failure is indistinguishable
                /// from strong (no spurious failures to enumerate — the
                /// retry loop around it is exercised via genuine
                /// contention instead).
                pub(crate) fn compare_exchange_weak(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(cur, new, ok, err)
                }
            }
        };
    }

    /// Integer-only RMW methods, appended to the shared surface.
    macro_rules! check_atomic_int {
        ($name:ident, $prim:ty) => {
            #[allow(dead_code)]
            impl $name {
                pub(crate) fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                    self.instr(AtomKind::Rmw, ord, || self.real.fetch_add(v, ord))
                }

                pub(crate) fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                    self.instr(AtomKind::Rmw, ord, || self.real.fetch_sub(v, ord))
                }

                pub(crate) fn fetch_or(&self, v: $prim, ord: Ordering) -> $prim {
                    self.instr(AtomKind::Rmw, ord, || self.real.fetch_or(v, ord))
                }

                pub(crate) fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                    self.instr(AtomKind::Rmw, ord, || self.real.fetch_max(v, ord))
                }
            }
        };
    }

    check_atomic!(AtomicBool, AtomicBool, bool);
    check_atomic!(AtomicU8, AtomicU8, u8);
    check_atomic!(AtomicU32, AtomicU32, u32);
    check_atomic!(AtomicU64, AtomicU64, u64);
    check_atomic!(AtomicUsize, AtomicUsize, usize);
    check_atomic_int!(AtomicU8, u8);
    check_atomic_int!(AtomicU32, u32);
    check_atomic_int!(AtomicU64, u64);
    check_atomic_int!(AtomicUsize, usize);

    /// Instrumented `UnsafeCell`: plain accesses are race-checked against
    /// the vector clocks (not scheduling points — only sync ops branch).
    pub(crate) struct CheckCell<T> {
        inner: UnsafeCell<T>,
    }

    impl<T> CheckCell<T> {
        pub(crate) const fn new(v: T) -> Self {
            CheckCell {
                inner: UnsafeCell::new(v),
            }
        }

        fn note(&self, write: bool) {
            if let Some((e, me)) = ctx() {
                e.cell_access(
                    me,
                    self as *const _ as usize,
                    write,
                    std::any::type_name::<T>(),
                );
            }
        }

        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            self.note(false);
            f(self.inner.get())
        }

        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            self.note(true);
            f(self.inner.get())
        }
    }

    /// Model-aware mutex: inside an execution the *model* lock provides
    /// mutual exclusion and blocking (so contention is enumerable and
    /// deadlocks are detected); the embedded real lock is then always
    /// uncontended and merely carries the data.
    pub(crate) struct Mutex<T> {
        inner: parking_lot::Mutex<T>,
    }

    pub(crate) struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<parking_lot::MutexGuard<'a, T>>,
        model: bool,
    }

    impl<T> Mutex<T> {
        pub(crate) const fn new(v: T) -> Self {
            Mutex {
                inner: parking_lot::Mutex::new(v),
            }
        }

        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            match ctx() {
                Some((e, me)) => {
                    e.mutex_lock(me, self.addr());
                    MutexGuard {
                        lock: self,
                        inner: Some(self.inner.lock()),
                        model: true,
                    }
                }
                None => MutexGuard {
                    lock: self,
                    inner: Some(self.inner.lock()),
                    model: false,
                },
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard released")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.model {
                // Release the real lock first so the next model owner's
                // uncontended real acquire succeeds; `ctx()` is `None`
                // during unwinding, making this drop abort-safe.
                self.inner = None;
                if let Some((e, me)) = ctx() {
                    e.mutex_unlock(me, self.lock.addr());
                }
            }
        }
    }

    pub(crate) struct Condvar {
        inner: parking_lot::Condvar,
    }

    /// Mirror of `parking_lot::WaitTimeoutResult` for the model path.
    #[derive(Clone, Copy, Debug)]
    pub(crate) struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        pub(crate) fn timed_out(&self) -> bool {
            self.0
        }
    }

    impl Condvar {
        pub(crate) const fn new() -> Self {
            Condvar {
                inner: parking_lot::Condvar::new(),
            }
        }

        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        pub(crate) fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            match ctx() {
                Some((e, me)) if guard.model => {
                    let lock_addr = guard.lock.addr();
                    guard.inner = None; // release the real lock while modeled-blocked
                    e.cond_wait(me, self.addr(), lock_addr, false);
                    guard.inner = Some(guard.lock.inner.lock());
                }
                _ => self
                    .inner
                    .wait(guard.inner.as_mut().expect("guard released")),
            }
        }

        pub(crate) fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            match ctx() {
                Some((e, me)) if guard.model => {
                    let lock_addr = guard.lock.addr();
                    guard.inner = None;
                    // Model time: the timeout fires only when nothing
                    // else can run (so timed waits never mask deadlocks).
                    let timed_out = e.cond_wait(me, self.addr(), lock_addr, true);
                    guard.inner = Some(guard.lock.inner.lock());
                    WaitTimeoutResult(timed_out)
                }
                _ => WaitTimeoutResult(
                    self.inner
                        .wait_until(guard.inner.as_mut().expect("guard released"), deadline)
                        .timed_out(),
                ),
            }
        }

        #[cfg_attr(not(test), allow(dead_code))]
        pub(crate) fn notify_one(&self) {
            match ctx() {
                Some((e, me)) => e.cond_notify(me, self.addr(), false),
                None => {
                    self.inner.notify_one();
                }
            }
        }

        pub(crate) fn notify_all(&self) {
            match ctx() {
                Some((e, me)) => e.cond_notify(me, self.addr(), true),
                None => {
                    self.inner.notify_all();
                }
            }
        }
    }

    pub(crate) mod thread {
        use super::ctx;

        /// Model-aware thread handle: unparking a model thread routes
        /// through the scheduler; real threads get a real unpark.
        #[derive(Clone, Debug)]
        pub(crate) struct Thread {
            real: std::thread::Thread,
            model: Option<usize>,
        }

        impl Thread {
            pub(crate) fn unpark(&self) {
                match (ctx(), self.model) {
                    (Some((e, me)), Some(target)) => e.unpark(me, target),
                    _ => self.real.unpark(),
                }
            }
        }

        pub(crate) fn current() -> Thread {
            Thread {
                real: std::thread::current(),
                model: ctx().map(|(_, me)| me),
            }
        }

        pub(crate) fn park() {
            match ctx() {
                Some((e, me)) => e.park(me),
                None => std::thread::park(),
            }
        }

        pub(crate) fn yield_now() {
            match ctx() {
                Some((e, me)) => e.spin_yield(me),
                None => std::thread::yield_now(),
            }
        }
    }
}

pub(crate) use imp::*;
