//! Lossy/duplicating delivery wrapper — documenting RVMA's reliability
//! boundary.
//!
//! RVMA (like RDMA) is specified over a **reliable** fabric: HPC networks
//! retransmit at the link layer, so the NIC never sees drops or duplicates.
//! The threshold-counting completion rule is only sound under that
//! assumption:
//!
//! * a **dropped** fragment means the byte/op counter never reaches the
//!   threshold — the epoch simply never completes (detectable with
//!   [`Notification::wait_timeout`], recoverable with
//!   [`Window::inc_epoch`]);
//! * a **duplicated** fragment is counted twice — the epoch can complete
//!   *early*, before all distinct bytes have arrived.
//!
//! [`LossyNetwork`] exists to make those statements testable and explicit,
//! and to let applications exercise their timeout/recovery paths. It is not
//! a transport you would run real traffic over.
//!
//! [`Notification::wait_timeout`]: crate::notify::Notification::wait_timeout
//! [`Window::inc_epoch`]: crate::window::Window::inc_epoch

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{DeliverResult, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault model applied to each fragment independently.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability a fragment is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered fragment is delivered twice.
    pub dup_p: f64,
}

impl FaultModel {
    /// No faults (behaves like the reliable loopback).
    pub const NONE: FaultModel = FaultModel {
        drop_p: 0.0,
        dup_p: 0.0,
    };
}

/// Per-network fault counters.
#[derive(Debug, Default)]
struct FaultStats {
    dropped: AtomicU64,
    duplicated: AtomicU64,
}

/// An unreliable in-process network (fragments dropped/duplicated with
/// seeded randomness). MTU-fragmenting, in-order apart from the faults.
#[derive(Debug)]
pub struct LossyNetwork {
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    mtu: usize,
    model: FaultModel,
    rng: Mutex<StdRng>,
    stats: FaultStats,
}

impl LossyNetwork {
    /// Build with an MTU, fault model, and RNG seed.
    ///
    /// # Panics
    /// Panics if `mtu` is zero or a probability is outside `[0, 1]`.
    pub fn new(mtu: usize, model: FaultModel, seed: u64) -> Arc<Self> {
        assert!(mtu > 0, "MTU must be positive");
        assert!((0.0..=1.0).contains(&model.drop_p), "drop_p in [0,1]");
        assert!((0.0..=1.0).contains(&model.dup_p), "dup_p in [0,1]");
        Arc::new(LossyNetwork {
            endpoints: RwLock::new(HashMap::new()),
            mtu,
            model,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stats: FaultStats::default(),
        })
    }

    /// Create and attach an endpoint.
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::new(addr);
        self.endpoints.write().insert(addr, ep.clone());
        ep
    }

    /// Fragments dropped so far.
    pub fn dropped(&self) -> u64 {
        self.stats.dropped.load(Ordering::Relaxed)
    }

    /// Fragments duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.stats.duplicated.load(Ordering::Relaxed)
    }

    /// An initiator bound to `src`.
    pub fn initiator(self: &Arc<Self>, src: NodeAddr) -> LossyInitiator {
        LossyInitiator {
            net: self.clone(),
            src,
            next_op: AtomicU64::new(1),
        }
    }
}

/// Initiator over a [`LossyNetwork`].
#[derive(Debug)]
pub struct LossyInitiator {
    net: Arc<LossyNetwork>,
    src: NodeAddr,
    next_op: AtomicU64,
}

impl LossyInitiator {
    /// Put with the fault model applied per fragment. Returns how many
    /// fragments were actually delivered (including duplicates).
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<u64> {
        let ep = self
            .net
            .endpoints
            .read()
            .get(&dest)
            .cloned()
            .ok_or(RvmaError::UnknownDestination)?;
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        let total = payload.len() as u64;
        let mut delivered = 0u64;
        let mut nack: Option<NackReason> = None;

        let mut start = 0usize;
        loop {
            let end = (start + self.net.mtu).min(payload.len());
            let frag = Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: total,
                offset: start,
                data: payload.slice(start..end),
            };
            let (drop, dup) = {
                let mut rng = self.net.rng.lock();
                (
                    rng.random_bool(self.net.model.drop_p),
                    rng.random_bool(self.net.model.dup_p),
                )
            };
            if drop {
                self.net.stats.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                let copies = if dup {
                    self.net.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    match ep.deliver(&frag) {
                        DeliverResult::Nack(r) => nack = nack.or(Some(r)),
                        _ => delivered += 1,
                    }
                }
            }
            if end >= payload.len() {
                break;
            }
            start = end;
        }
        match nack {
            Some(r) => Err(RvmaError::Nacked(r)),
            None => Ok(delivered),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use std::time::Duration;

    fn setup(model: FaultModel, seed: u64) -> (Arc<LossyNetwork>, Arc<RvmaEndpoint>) {
        let net = LossyNetwork::new(64, model, seed);
        let ep = net.add_endpoint(NodeAddr::node(0));
        (net, ep)
    }

    #[test]
    fn no_faults_behaves_reliably() {
        let (net, ep) = setup(FaultModel::NONE, 1);
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(256))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 256]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let delivered = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 256])
            .unwrap();
        assert_eq!(delivered, 4);
        assert_eq!(net.dropped(), 0);
        assert_eq!(n.poll().unwrap().data(), vec![7u8; 256].as_slice());
    }

    #[test]
    fn drops_prevent_completion_detectably() {
        // 100% drop: the epoch never completes; wait_timeout surfaces it
        // and inc_epoch recovers the partial (here: empty) buffer.
        let (net, ep) = setup(
            FaultModel {
                drop_p: 1.0,
                dup_p: 0.0,
            },
            2,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 128]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let delivered = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 128])
            .unwrap();
        assert_eq!(delivered, 0);
        assert_eq!(net.dropped(), 2);
        assert!(n.wait_timeout(Duration::from_millis(5)).is_none());
        // Application-level recovery: hand the partial epoch to software.
        win.inc_epoch().unwrap();
        let buf = n.poll().unwrap();
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn duplicates_overcount_and_complete_early() {
        // 100% duplication: the byte counter doubles, so the threshold is
        // reached after half the distinct payload — the documented reason
        // RVMA requires a reliable (dedup-ing) fabric.
        let (net, ep) = setup(
            FaultModel {
                drop_p: 0.0,
                dup_p: 1.0,
            },
            3,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 128]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        // Send only the first half (64 B = one 64-B fragment, duplicated).
        init.put(NodeAddr::node(0), VirtAddr::new(1), &[7; 64])
            .unwrap();
        assert_eq!(net.duplicated(), 1);
        let buf = n.poll().expect("early completion from overcounting");
        // The buffer completed with only the first 64 distinct bytes.
        assert_eq!(&buf.full_buffer()[..64], &[7; 64]);
        assert_eq!(&buf.full_buffer()[64..], &[0; 64]);
    }

    #[test]
    fn partial_drop_rates_are_seed_deterministic() {
        let run = |seed| {
            let (net, ep) = setup(
                FaultModel {
                    drop_p: 0.3,
                    dup_p: 0.1,
                },
                seed,
            );
            let win = ep
                .init_window(VirtAddr::new(1), Threshold::bytes(1 << 16))
                .unwrap();
            let _n = win.post_buffer(vec![0; 1 << 16]).unwrap();
            let init = net.initiator(NodeAddr::node(1));
            let _ = init.put(NodeAddr::node(0), VirtAddr::new(1), &vec![1; 1 << 16]);
            (net.dropped(), net.duplicated())
        };
        assert_eq!(run(9), run(9));
        let (d, dup) = run(9);
        assert!(d > 100 && d < 900, "drop count {d} wildly off 30% of 1024");
        assert!(dup > 10, "dup count {dup}");
    }

    #[test]
    #[should_panic(expected = "drop_p")]
    fn invalid_probability_rejected() {
        LossyNetwork::new(
            64,
            FaultModel {
                drop_p: 1.5,
                dup_p: 0.0,
            },
            0,
        );
    }
}
