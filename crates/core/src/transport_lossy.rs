//! Lossy/duplicating/reordering delivery wrapper — RVMA's reliability
//! boundary, and the lab bench for the recovery layer above it.
//!
//! RVMA (like RDMA) is specified over a **reliable** fabric: HPC networks
//! retransmit at the link layer, so the NIC never sees drops or duplicates.
//! The threshold-counting completion rule is only sound under that
//! assumption:
//!
//! * a **dropped** fragment means the byte/op counter never reaches the
//!   threshold — the epoch simply never completes (detectable with
//!   [`Notification::wait_timeout`], recoverable with
//!   [`Window::recover_timeout`]);
//! * a **duplicated** fragment is counted twice — the epoch can complete
//!   *early*, before all distinct bytes have arrived (prevented by the
//!   receiver-side [`DedupWindow`](crate::retry::DedupWindow) when
//!   [`EndpointConfig::dedup_window`] is set);
//! * a **reordered/delayed** fragment arrives behind younger traffic —
//!   harmless to Steered-mode placement, but it can race a retransmitted
//!   copy of itself (again absorbed by dedup);
//! * a **crashed** endpoint black-holes everything — the initiator's retry
//!   budget turns the silence into [`RvmaError::RetryExhausted`].
//!
//! [`LossyNetwork`] makes those statements testable: with
//! [`FaultModel::NONE`] and dedup off it behaves like the reliable
//! loopback, with faults enabled it exercises every recovery path in
//! [`crate::retry`]. Use [`LossyNetwork::initiator`] for the raw
//! (fire-and-forget, fault-exposed) initiator and
//! [`LossyNetwork::reliable_initiator`] for the retransmitting one. It is
//! not a transport you would run real traffic over.
//!
//! [`Notification::wait_timeout`]: crate::notify::Notification::wait_timeout
//! [`Window::recover_timeout`]: crate::window::Window::recover_timeout
//! [`EndpointConfig::dedup_window`]: crate::endpoint::EndpointConfig
//! [`RvmaError::RetryExhausted`]: crate::error::RvmaError::RetryExhausted

use crate::addr::{NodeAddr, VirtAddr};
use crate::endpoint::{DeliverResult, EndpointConfig, Fragment, RvmaEndpoint};
use crate::error::{NackReason, Result, RvmaError};
pub use crate::retry::FaultModel;
use crate::retry::{FaultDecision, FaultInjector, FaultStats, ReliableInitiator, RetryConfig};
use crate::telemetry::{self, EventKind, Telemetry};
use crate::transport::Transport;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fragment held back by a reorder/delay fault, released after
/// `remaining` further transmissions.
#[derive(Debug)]
struct HeldFragment {
    dest: NodeAddr,
    frag: Fragment,
    remaining: u32,
}

/// What one call to [`LossyNetwork::transmit`] did with the fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// Delivered to the endpoint; the second result is present when a
    /// duplication fault delivered the fragment twice.
    Delivered(DeliverResult, Option<DeliverResult>),
    /// Dropped by the fabric (loss fault, or the destination crashed).
    /// The initiator sees nothing — only a retry budget or a timeout can
    /// surface this.
    Lost,
    /// Held back by a reorder/delay fault; it will be delivered after
    /// later transmissions age it out (or at [`LossyNetwork::flush_delayed`]).
    Held,
}

/// An unreliable in-process network (fragments dropped, duplicated,
/// reordered, or delayed with seeded randomness; endpoints can crash).
/// MTU-fragmenting, in-order apart from the faults.
#[derive(Debug)]
pub struct LossyNetwork {
    endpoints: RwLock<HashMap<NodeAddr, Arc<RvmaEndpoint>>>,
    mtu: usize,
    model: FaultModel,
    injector: Mutex<FaultInjector>,
    /// Fragments parked by reorder/delay faults, aged by later transmits.
    held: Mutex<Vec<HeldFragment>>,
    /// Destinations that crashed (explicitly or via the fault model):
    /// everything sent to them — including already-held fragments — is
    /// silently dropped.
    crashed: RwLock<HashSet<NodeAddr>>,
    stats: Arc<FaultStats>,
    endpoint_config: EndpointConfig,
    /// Fabric-wide event recorder, present iff
    /// `endpoint_config.telemetry`: every endpoint this network creates
    /// (and every initiator bound to it) stamps into this one instance,
    /// so a single snapshot covers the whole put lifecycle.
    telemetry: Option<Arc<Telemetry>>,
}

impl LossyNetwork {
    /// Build with an MTU, fault model, and RNG seed; endpoints get the
    /// default [`EndpointConfig`] (dedup off — the unprotected boundary).
    ///
    /// # Panics
    /// Panics if `mtu` is zero or a probability is outside `[0, 1]`.
    pub fn new(mtu: usize, model: FaultModel, seed: u64) -> Arc<Self> {
        Self::with_config(mtu, model, seed, EndpointConfig::default())
    }

    /// Build with an explicit endpoint configuration — set
    /// `endpoint_config.dedup_window > 0` to arm the receiver half of the
    /// reliability layer on every endpoint this network creates.
    ///
    /// # Panics
    /// Panics if `mtu` is zero or a probability is outside `[0, 1]`.
    pub fn with_config(
        mtu: usize,
        model: FaultModel,
        seed: u64,
        endpoint_config: EndpointConfig,
    ) -> Arc<Self> {
        assert!(mtu > 0, "MTU must be positive");
        let stats = Arc::new(FaultStats::default());
        let telemetry = endpoint_config
            .telemetry
            .then(|| Arc::new(Telemetry::new()));
        Arc::new(LossyNetwork {
            endpoints: RwLock::new(HashMap::new()),
            mtu,
            model,
            injector: Mutex::new(FaultInjector::new(model, seed, stats.clone())),
            held: Mutex::new(Vec::new()),
            crashed: RwLock::new(HashSet::new()),
            stats,
            endpoint_config,
            telemetry,
        })
    }

    /// Create and attach an endpoint (configured per the network's
    /// [`EndpointConfig`]).
    pub fn add_endpoint(&self, addr: NodeAddr) -> Arc<RvmaEndpoint> {
        let ep = RvmaEndpoint::with_config(addr, self.endpoint_config.clone());
        if let Some(t) = &self.telemetry {
            ep.attach_telemetry(t.clone());
        }
        self.endpoints.write().insert(addr, ep.clone());
        ep
    }

    /// The fabric's shared event recorder (`None` unless the network was
    /// built with `endpoint_config.telemetry`).
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.telemetry.clone()
    }

    /// True when `addr` has an attached endpoint (crashed or not).
    pub fn has_endpoint(&self, addr: NodeAddr) -> bool {
        self.endpoints.read().contains_key(&addr)
    }

    /// The network's MTU.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// The endpoint configuration this network applies to every endpoint
    /// it creates (also carries the initiator-side `eager_threshold`).
    pub fn endpoint_config(&self) -> &EndpointConfig {
        &self.endpoint_config
    }

    /// The fault model in force.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// Fragments dropped so far (including black-holed by crashes).
    pub fn dropped(&self) -> u64 {
        self.stats.dropped()
    }

    /// Fragments duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.stats.duplicated()
    }

    /// Fragments reordered or delayed so far.
    pub fn deferred(&self) -> u64 {
        self.stats.deferred()
    }

    /// The shared fault counters.
    pub fn fault_stats(&self) -> Arc<FaultStats> {
        self.stats.clone()
    }

    /// Crash an endpoint: from now on every fragment addressed to it —
    /// including ones already held by reorder/delay faults — is silently
    /// dropped. The endpoint stays attached (its LUT and mailboxes are
    /// intact), modelling a NIC that stopped responding, not one that was
    /// deregistered.
    pub fn crash_endpoint(&self, addr: NodeAddr) {
        self.crashed.write().insert(addr);
    }

    /// True when `addr` has crashed.
    pub fn is_crashed(&self, addr: NodeAddr) -> bool {
        self.crashed.read().contains(&addr)
    }

    /// Push one fragment through the fault dice and (maybe) deliver it.
    /// Every call first ages the held-fragment queue, releasing fragments
    /// whose deferral has expired — that is what makes a deferral a
    /// *reorder*: younger transmissions overtake it.
    ///
    /// Zero-length fragments bypass the dice entirely (they are pure
    /// control traffic — one countable op, no payload — and PR 2 fixed the
    /// threaded transport to treat them deterministically; a "dropped"
    /// empty put returning `Ok` indistinguishably from a delivered one was
    /// the bug). They still black-hole against a crashed destination.
    pub fn transmit(&self, dest: NodeAddr, frag: Fragment) -> TransmitOutcome {
        self.age_held();
        if self.is_crashed(dest) {
            self.stats.note_blackhole();
            return TransmitOutcome::Lost;
        }
        let decision = if frag.data.is_empty() {
            FaultDecision::CLEAN
        } else {
            self.injector.lock().roll()
        };
        if decision.crash {
            self.crashed.write().insert(dest);
            return TransmitOutcome::Lost;
        }
        if decision.drop {
            return TransmitOutcome::Lost;
        }
        if decision.defer_spans > 0 {
            self.held.lock().push(HeldFragment {
                dest,
                frag,
                remaining: decision.defer_spans,
            });
            return TransmitOutcome::Held;
        }
        let first = self.deliver_to(dest, &frag);
        let second = decision.duplicate.then(|| self.deliver_to(dest, &frag));
        TransmitOutcome::Delivered(first, second)
    }

    /// Deliver every held fragment immediately, regardless of remaining
    /// deferral (the "link finally drained" event). Returns how many were
    /// delivered (crashed destinations still swallow theirs).
    pub fn flush_delayed(&self) -> usize {
        let all: Vec<HeldFragment> = self.held.lock().drain(..).collect();
        let mut delivered = 0;
        for h in all {
            if self.is_crashed(h.dest) {
                self.stats.note_dropped_in_flight();
                continue;
            }
            self.deliver_to(h.dest, &h.frag);
            delivered += 1;
        }
        delivered
    }

    /// Age the held queue by one transmission; deliver what expired.
    fn age_held(&self) {
        let due: Vec<HeldFragment> = {
            let mut held = self.held.lock();
            for h in held.iter_mut() {
                h.remaining = h.remaining.saturating_sub(1);
            }
            let mut due = Vec::new();
            held.retain_mut(|h| {
                if h.remaining == 0 {
                    due.push(HeldFragment {
                        dest: h.dest,
                        frag: h.frag.clone(),
                        remaining: 0,
                    });
                    false
                } else {
                    true
                }
            });
            due
        };
        for h in due {
            if self.is_crashed(h.dest) {
                self.stats.note_dropped_in_flight();
                continue;
            }
            // Released fragments deliver as-is: their fault was already
            // rolled (and counted) when they were deferred.
            self.deliver_to(h.dest, &h.frag);
        }
    }

    fn deliver_to(&self, dest: NodeAddr, frag: &Fragment) -> DeliverResult {
        telemetry::record(
            &self.telemetry,
            EventKind::WireDeliver,
            telemetry::initiator_key(frag.initiator.nid, frag.initiator.pid),
            frag.op_id,
            frag.offset as u64,
        );
        match self.endpoints.read().get(&dest).cloned() {
            Some(ep) => ep.deliver(frag),
            None => DeliverResult::Nack(NackReason::NoSuchMailbox),
        }
    }

    /// An initiator bound to `src` — raw fire-and-forget puts with the
    /// fault model applied and no recovery.
    pub fn initiator(self: &Arc<Self>, src: NodeAddr) -> LossyInitiator {
        LossyInitiator {
            net: self.clone(),
            src,
            next_op: AtomicU64::new(1),
        }
    }

    /// A retransmitting initiator bound to `src` (default
    /// [`RetryConfig`]).
    ///
    /// # Panics
    /// Panics unless the network was built with
    /// `endpoint_config.dedup_window > 0`: retransmission without
    /// receiver-side dedup re-introduces the duplicate-overcount bug the
    /// reliability layer exists to fix (a deferred copy and its retransmit
    /// would both count).
    pub fn reliable_initiator(self: &Arc<Self>, src: NodeAddr) -> ReliableInitiator {
        self.reliable_initiator_with(src, RetryConfig::default())
    }

    /// A retransmitting initiator with an explicit retry policy.
    ///
    /// # Panics
    /// See [`reliable_initiator`](Self::reliable_initiator).
    pub fn reliable_initiator_with(
        self: &Arc<Self>,
        src: NodeAddr,
        retry: RetryConfig,
    ) -> ReliableInitiator {
        assert!(
            self.endpoint_config.dedup_window > 0,
            "reliable initiator requires receiver-side dedup \
             (LossyNetwork::with_config with dedup_window > 0)"
        );
        ReliableInitiator::new(self.clone(), src, retry)
    }

    /// A [`Transport`]-conformant channel over this network: a
    /// [`ReliableInitiator`] whose synchronous NACK results are re-surfaced
    /// asynchronously, so the cross-transport conformance suite can drive
    /// the inline backend through the same contract as the threaded and
    /// shared-memory ones.
    ///
    /// # Panics
    /// See [`reliable_initiator`](Self::reliable_initiator).
    pub fn inline_channel(self: &Arc<Self>, src: NodeAddr) -> InlineChannel {
        InlineChannel {
            net: self.clone(),
            init: self.reliable_initiator(src),
            nacks: Mutex::new(Vec::new()),
        }
    }
}

/// [`Transport`] adapter over [`ReliableInitiator`] — see
/// [`LossyNetwork::inline_channel`].
pub struct InlineChannel {
    net: Arc<LossyNetwork>,
    init: ReliableInitiator,
    nacks: Mutex<Vec<(VirtAddr, NackReason)>>,
}

impl Transport for InlineChannel {
    fn backend(&self) -> &'static str {
        "inline-lossy"
    }

    fn put_at(&self, dest: NodeAddr, vaddr: VirtAddr, offset: usize, data: &[u8]) -> Result<()> {
        match self.init.put_at(dest, vaddr, offset, data) {
            Ok(_) => Ok(()),
            // The inline initiator learns of the refusal synchronously;
            // the Transport contract reports it like the async backends do.
            Err(RvmaError::Nacked(r)) => {
                self.nacks.lock().push((vaddr, r));
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn put_bytes_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: Bytes,
    ) -> Result<()> {
        match self.init.put_bytes_at(dest, vaddr, offset, data) {
            Ok(_) => Ok(()),
            Err(RvmaError::Nacked(r)) => {
                self.nacks.lock().push((vaddr, r));
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn flush(&self) -> Result<()> {
        // The reliable put already blocked until delivery; the only state
        // parked inside the backend is reorder/delay-deferred copies.
        self.net.flush_delayed();
        Ok(())
    }

    fn take_nacks(&self) -> Vec<(VirtAddr, NackReason)> {
        std::mem::take(&mut *self.nacks.lock())
    }

    fn staged_bytes(&self) -> u64 {
        self.init.staged_bytes()
    }
}

/// Raw initiator over a [`LossyNetwork`]: one transmission per fragment,
/// faults land where they land. Use
/// [`LossyNetwork::reliable_initiator`] for delivery guarantees.
#[derive(Debug)]
pub struct LossyInitiator {
    net: Arc<LossyNetwork>,
    src: NodeAddr,
    next_op: AtomicU64,
}

impl LossyInitiator {
    /// Put with the fault model applied per fragment. Returns how many
    /// fragment *deliveries* reached a buffer (duplicates count twice,
    /// held fragments not at all — they land later). Stops at the first
    /// NACK: the target refused the operation, so transmitting its
    /// remaining fragments would only waste fabric and mis-count.
    pub fn put(&self, dest: NodeAddr, vaddr: VirtAddr, data: &[u8]) -> Result<u64> {
        self.put_at(dest, vaddr, 0, data)
    }

    /// [`put`](LossyInitiator::put) with an explicit buffer offset.
    pub fn put_at(
        &self,
        dest: NodeAddr,
        vaddr: VirtAddr,
        offset: usize,
        data: &[u8],
    ) -> Result<u64> {
        if !self.net.has_endpoint(dest) {
            return Err(RvmaError::UnknownDestination);
        }
        let op_id = self.next_op.fetch_add(1, Ordering::Relaxed);
        let payload = Bytes::copy_from_slice(data);
        let total = payload.len() as u64;
        let mtu = self.net.mtu;
        // A zero-byte put is one empty fragment (one countable op).
        let ranges: Vec<(usize, usize)> = if payload.is_empty() {
            vec![(0, 0)]
        } else {
            (0..payload.len())
                .step_by(mtu)
                .map(|s| (s, (s + mtu).min(payload.len())))
                .collect()
        };
        let mut delivered = 0u64;
        for (s, e) in ranges {
            let frag = Fragment {
                initiator: self.src,
                op_id,
                dst_vaddr: vaddr,
                op_total_len: total,
                offset: offset + s,
                data: payload.slice(s..e),
            };
            match self.net.transmit(dest, frag) {
                TransmitOutcome::Delivered(first, second) => {
                    for r in std::iter::once(first).chain(second) {
                        match r {
                            DeliverResult::Ok { .. } => delivered += 1,
                            // Deduped at the receiver: landed earlier, not
                            // a fresh delivery.
                            DeliverResult::Duplicate => {}
                            DeliverResult::Nack(r) => return Err(RvmaError::Nacked(r)),
                            // NACKs disabled: silent discard.
                            DeliverResult::Dropped(_) => {}
                        }
                    }
                }
                TransmitOutcome::Lost | TransmitOutcome::Held => {}
            }
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Threshold;
    use std::time::Duration;

    fn setup(model: FaultModel, seed: u64) -> (Arc<LossyNetwork>, Arc<RvmaEndpoint>) {
        let net = LossyNetwork::new(64, model, seed);
        let ep = net.add_endpoint(NodeAddr::node(0));
        (net, ep)
    }

    fn setup_dedup(model: FaultModel, seed: u64) -> (Arc<LossyNetwork>, Arc<RvmaEndpoint>) {
        let net = LossyNetwork::with_config(
            64,
            model,
            seed,
            EndpointConfig {
                dedup_window: 64,
                ..Default::default()
            },
        );
        let ep = net.add_endpoint(NodeAddr::node(0));
        (net, ep)
    }

    #[test]
    fn no_faults_behaves_reliably() {
        let (net, ep) = setup(FaultModel::NONE, 1);
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(256))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 256]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let delivered = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 256])
            .unwrap();
        assert_eq!(delivered, 4);
        assert_eq!(net.dropped(), 0);
        assert_eq!(n.poll().unwrap().data(), vec![7u8; 256].as_slice());
    }

    #[test]
    fn drops_prevent_completion_detectably() {
        // 100% drop: the epoch never completes; wait_timeout surfaces it
        // and inc_epoch recovers the partial (here: empty) buffer.
        let (net, ep) = setup(
            FaultModel {
                drop_p: 1.0,
                ..FaultModel::NONE
            },
            2,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 128]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let delivered = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 128])
            .unwrap();
        assert_eq!(delivered, 0);
        assert_eq!(net.dropped(), 2);
        assert!(n.wait_timeout(Duration::from_millis(5)).is_none());
        // Application-level recovery: hand the partial epoch to software.
        win.inc_epoch().unwrap();
        let buf = n.poll().unwrap();
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn duplicates_overcount_and_complete_early() {
        // 100% duplication WITHOUT dedup: the byte counter doubles, so the
        // threshold is reached after half the distinct payload — the
        // documented reason RVMA requires a reliable (dedup-ing) fabric.
        let (net, ep) = setup(
            FaultModel {
                dup_p: 1.0,
                ..FaultModel::NONE
            },
            3,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 128]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        // Send only the first half (64 B = one 64-B fragment, duplicated).
        init.put(NodeAddr::node(0), VirtAddr::new(1), &[7; 64])
            .unwrap();
        assert_eq!(net.duplicated(), 1);
        let buf = n.poll().expect("early completion from overcounting");
        // The buffer completed with only the first 64 distinct bytes.
        assert_eq!(&buf.full_buffer()[..64], &[7; 64]);
        assert_eq!(&buf.full_buffer()[64..], &[0; 64]);
    }

    #[test]
    fn dedup_window_prevents_early_completion() {
        // The same duplication storm as above, with the receiver half of
        // the reliability layer armed: byte-exact, no early completion.
        let (net, ep) = setup_dedup(
            FaultModel {
                dup_p: 1.0,
                ..FaultModel::NONE
            },
            3,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 128]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        init.put(NodeAddr::node(0), VirtAddr::new(1), &[7; 64])
            .unwrap();
        assert!(n.poll().is_none(), "half the payload is not an epoch");
        init.put_at(NodeAddr::node(0), VirtAddr::new(1), 64, &[8; 64])
            .unwrap();
        let buf = n.poll().expect("epoch completes on distinct bytes only");
        assert_eq!(&buf.full_buffer()[..64], &[7; 64]);
        assert_eq!(&buf.full_buffer()[64..], &[8; 64]);
        assert_eq!(ep.stats().duplicates_dropped, net.duplicated());
    }

    #[test]
    fn partial_drop_rates_are_seed_deterministic() {
        let run = |seed| {
            let (net, ep) = setup(
                FaultModel {
                    drop_p: 0.3,
                    dup_p: 0.1,
                    ..FaultModel::NONE
                },
                seed,
            );
            let win = ep
                .init_window(VirtAddr::new(1), Threshold::bytes(1 << 16))
                .unwrap();
            let _n = win.post_buffer(vec![0; 1 << 16]).unwrap();
            let init = net.initiator(NodeAddr::node(1));
            let _ = init.put(NodeAddr::node(0), VirtAddr::new(1), &vec![1; 1 << 16]);
            (net.dropped(), net.duplicated())
        };
        assert_eq!(run(9), run(9));
        let (d, dup) = run(9);
        assert!(d > 100 && d < 900, "drop count {d} wildly off 30% of 1024");
        assert!(dup > 10, "dup count {dup}");
    }

    #[test]
    #[should_panic(expected = "drop_p")]
    fn invalid_probability_rejected() {
        LossyNetwork::new(
            64,
            FaultModel {
                drop_p: 1.5,
                ..FaultModel::NONE
            },
            0,
        );
    }

    #[test]
    fn nack_stops_the_operation() {
        // Regression: a NACK on the first fragment must abort the put —
        // previously the remaining fragments were still fragmented,
        // delivered, and counted.
        let (net, ep) = setup(FaultModel::NONE, 4);
        // Window exists but has no buffer posted: every fragment NACKs.
        let _win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(256))
            .unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let err = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 256])
            .unwrap_err();
        assert_eq!(err, RvmaError::Nacked(NackReason::NoBufferPosted));
        assert_eq!(
            ep.stats().fragments_discarded,
            1,
            "only the first fragment reaches the endpoint"
        );
    }

    #[test]
    fn zero_length_put_bypasses_fault_dice() {
        // Regression: an empty put used to roll the dice on its single
        // empty fragment, making a "dropped" zero-byte put return Ok(0)
        // indistinguishable from a delivered one. Now it is deterministic
        // (matching the threaded transport's zero-length semantics).
        let (net, ep) = setup(
            FaultModel {
                drop_p: 1.0,
                ..FaultModel::NONE
            },
            5,
        );
        let win = ep.init_window(VirtAddr::new(1), Threshold::ops(1)).unwrap();
        let mut n = win.post_buffer(vec![0; 8]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let delivered = init.put(NodeAddr::node(0), VirtAddr::new(1), &[]).unwrap();
        assert_eq!(delivered, 1);
        assert_eq!(net.dropped(), 0, "no dice rolled for the empty fragment");
        assert_eq!(n.poll().unwrap().len(), 0, "zero-byte put counts one op");
    }

    #[test]
    fn reordered_fragments_are_released_behind_younger_traffic() {
        let (net, ep) = setup_dedup(
            FaultModel {
                reorder_p: 1.0,
                ..FaultModel::NONE
            },
            6,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 128]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        // Two fragments, both deferred by one span: transmitting the
        // second releases the first; the second stays parked until flush.
        let delivered = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 128])
            .unwrap();
        assert_eq!(delivered, 0, "nothing delivered synchronously");
        assert_eq!(net.deferred(), 2);
        assert!(n.poll().is_none());
        assert_eq!(net.flush_delayed(), 1, "one fragment still parked");
        let buf = n.poll().expect("epoch completes once the queue drains");
        assert_eq!(buf.data(), vec![7u8; 128].as_slice());
    }

    #[test]
    fn reliable_put_retransmits_through_heavy_loss() {
        let (net, ep) = setup_dedup(
            FaultModel {
                drop_p: 0.5,
                dup_p: 0.2,
                reorder_p: 0.1,
                ..FaultModel::NONE
            },
            7,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(512))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 512]).unwrap();
        let init = net.reliable_initiator(NodeAddr::node(1));
        let report = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[9; 512])
            .unwrap();
        assert_eq!(report.fragments, 8);
        assert!(
            report.transmissions > report.fragments,
            "50% loss must force retransmissions"
        );
        net.flush_delayed();
        let buf = n.poll().expect("every fragment eventually acked");
        assert_eq!(buf.data(), vec![9u8; 512].as_slice());
    }

    #[test]
    fn reliable_put_nack_aborts_immediately() {
        let (net, ep) = setup_dedup(FaultModel::NONE, 8);
        let _win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(256))
            .unwrap();
        let init = net.reliable_initiator(NodeAddr::node(1));
        let err = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 256])
            .unwrap_err();
        assert_eq!(err, RvmaError::Nacked(NackReason::NoBufferPosted));
    }

    #[test]
    fn crashed_endpoint_exhausts_retry_budget() {
        let (net, ep) = setup_dedup(FaultModel::NONE, 9);
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(128))
            .unwrap();
        let _n = win.post_buffer(vec![0; 128]).unwrap();
        net.crash_endpoint(NodeAddr::node(0));
        let init = net.reliable_initiator(NodeAddr::node(1));
        let err = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 128])
            .unwrap_err();
        assert_eq!(
            err,
            RvmaError::RetryExhausted {
                attempts: crate::retry::DEFAULT_RETRY_BUDGET,
                acked: 0,
                total: 2,
            }
        );
        assert_eq!(
            net.dropped(),
            u64::from(crate::retry::DEFAULT_RETRY_BUDGET) * 2
        );
    }

    #[test]
    fn crash_fault_fires_mid_stream() {
        // crash_after_frags = 3: fragments 1–2 land, the 3rd crashes the
        // destination, and everything after is black-holed.
        let (net, ep) = setup(
            FaultModel {
                crash_after_frags: Some(3),
                ..FaultModel::NONE
            },
            10,
        );
        let win = ep
            .init_window(VirtAddr::new(1), Threshold::bytes(256))
            .unwrap();
        let mut n = win.post_buffer(vec![0; 256]).unwrap();
        let init = net.initiator(NodeAddr::node(1));
        let delivered = init
            .put(NodeAddr::node(0), VirtAddr::new(1), &[7; 256])
            .unwrap();
        assert_eq!(delivered, 2);
        assert!(net.is_crashed(NodeAddr::node(0)));
        assert!(n.wait_timeout(Duration::from_millis(5)).is_none());
    }
}
