//! Completion pointers: lightweight, per-buffer completion notification.
//!
//! The paper's key completion idea (Sec. III-A, IV-C): when a buffer's
//! threshold is reached, the NIC writes the buffer's head address and length
//! to a **cache-line-aligned completion pointer** in host memory. Because
//! each buffer has its *own* known notification address — unlike a shared
//! completion queue — a thread can wait on exactly the completions it cares
//! about, using Monitor/MWait-style wake-on-write or plain polling.
//!
//! [`NotificationSlot`] is the software analogue, and after the latency
//! rework it really is a completion *pointer*, not a mutex-wrapped mailbox:
//!
//! * The payload lives in an `UnsafeCell`, guarded by a single atomic state
//!   word (`EMPTY → COMPLETE → TAKEN`). The NIC's completing write is a
//!   plain store followed by one release/`SeqCst` state transition — no
//!   lock, no allocation.
//! * The condvar slow path is armed only when a waiter has *registered*
//!   (a waiter-count atomic, Dekker-paired with the completing write). A
//!   pure-polling receiver costs the completer one relaxed-ish load; the
//!   old path took a mutex and broadcast `notify_all` on every completion.
//! * [`wait_any`] / [`wait_any_timeout`] park on one shared eventcount
//!   instead of burning a core polling every slot; the completing write
//!   bumps the eventcount only when a multi-slot waiter is parked.
//!
//! Waiters get the same menu as before:
//!
//! * [`Notification::poll`] — the polling idiom,
//! * [`Notification::wait`] — the Monitor/MWait idiom: a bounded spin on the
//!   state word (the mwait fast path, wake in ~one cache miss) followed by a
//!   parked wait (the power-saving path).
//!
//! Ownership of the completed buffer transfers through the slot, which is
//! the Rust-safe rendering of "the pointer to the data buffer is deposited
//! into the notification address".
//!
//! For A/B measurement (`put_latency --baseline`), a slot built with
//! [`NotificationSlot::with_baseline`] reproduces the pre-rework completer
//! cost: payload stored under the mutex plus an unconditional
//! `notify_all`, waiters unchanged.

use crate::buffer::CompletedBuffer;
use crate::cq::CqAttachment;
use crate::csync::{
    self, AtomicBool, AtomicU32, AtomicU8, AtomicUsize, CheckCell, Condvar, Mutation, Mutex,
};
use crate::telemetry::{self, EventKind, Telemetry};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

const STATE_EMPTY: u8 = 0;
const STATE_COMPLETE: u8 = 1;
const STATE_TAKEN: u8 = 2;

/// Spin iterations before falling back to parking — long enough to catch
/// completions that are a cache-miss away, short enough not to burn a core.
const SPIN_LIMIT: u32 = 4096;

const WAKER_IDLE: u8 = 0;
const WAKER_REGISTERING: u8 = 0b01;
const WAKER_WAKING: u8 = 0b10;

/// A lock-free one-waker parking cell (the `futures`-style atomic-waker
/// protocol): the consumer registers its task's [`Waker`] and the completing
/// write hands exactly one wake to it, race-free, without a mutex on either
/// side.
///
/// States: `IDLE` (cell quiescent), `REGISTERING` (consumer storing a
/// waker), `WAKING` (producer draining the cell). The interesting race —
/// the completing write landing *while* the consumer is mid-registration —
/// resolves by bit-marking: the producer sets the `WAKING` bit and walks
/// away; the consumer's publish CAS fails, and it delivers the wake to
/// itself. A wake is therefore never lost and never delivered twice.
pub(crate) struct AtomicWaker {
    state: AtomicU8,
    waker: CheckCell<Option<Waker>>,
}

// SAFETY: the waker cell is accessed only inside the exclusive state-machine
// windows (`REGISTERING` by the registering consumer, `WAKING` by whichever
// side won the drain CAS), so there is never a concurrent &mut.
unsafe impl Send for AtomicWaker {}
unsafe impl Sync for AtomicWaker {}

impl AtomicWaker {
    pub(crate) const fn new() -> Self {
        AtomicWaker {
            state: AtomicU8::new(WAKER_IDLE),
            waker: CheckCell::new(None),
        }
    }

    /// Consumer side: park `waker` for the next wake. All orderings are
    /// `SeqCst` — the caller's post-registration state re-check relies on
    /// a single total order against the producer's completing `swap`.
    pub(crate) fn register(&self, waker: &Waker) {
        match self.state.compare_exchange(
            WAKER_IDLE,
            WAKER_REGISTERING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                // SAFETY: the REGISTERING window grants exclusive cell access.
                self.waker.with_mut(|w| unsafe { *w = Some(waker.clone()) });
                if self
                    .state
                    .compare_exchange(
                        WAKER_REGISTERING,
                        WAKER_IDLE,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_err()
                {
                    // A wake landed mid-registration: the producer set the
                    // WAKING bit and left the cell to us. Deliver the wake
                    // to ourselves so it is not lost.
                    // SAFETY: the producer never touches the cell when it
                    // finds REGISTERING set; we still own it.
                    let w = self.waker.with_mut(|w| unsafe { (*w).take() });
                    self.state.store(WAKER_IDLE, Ordering::SeqCst);
                    if let Some(w) = w {
                        w.wake();
                    }
                }
            }
            Err(s) if s & WAKER_WAKING != 0 => {
                // A wake is being drained right now; don't park behind it.
                waker.wake_by_ref();
            }
            Err(_) => {
                // Concurrent register: single-consumer misuse; drop ours.
            }
        }
    }

    /// Producer side: hand one wake to the registered waker, if any.
    /// Returns true when a waker was actually woken.
    pub(crate) fn wake(&self) -> bool {
        match self.state.fetch_or(WAKER_WAKING, Ordering::SeqCst) {
            WAKER_IDLE => {
                // SAFETY: the IDLE→WAKING transition grants exclusive
                // access to the cell until the IDLE store below.
                let w = self.waker.with_mut(|w| unsafe { (*w).take() });
                self.state.store(WAKER_IDLE, Ordering::SeqCst);
                match w {
                    Some(w) => {
                        w.wake();
                        true
                    }
                    None => false,
                }
            }
            // REGISTERING: the consumer's publish CAS will fail and it
            // wakes itself. WAKING: another drain is already in flight.
            _ => false,
        }
    }

    /// Drop any parked waker without waking it (future cancellation).
    pub(crate) fn take(&self) -> Option<Waker> {
        if self
            .state
            .compare_exchange(WAKER_IDLE, WAKER_WAKING, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // SAFETY: same exclusive WAKING window as `wake`.
            let w = self.waker.with_mut(|w| unsafe { (*w).take() });
            self.state.store(WAKER_IDLE, Ordering::SeqCst);
            w
        } else {
            None
        }
    }
}

impl std::fmt::Debug for AtomicWaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicWaker").finish_non_exhaustive()
    }
}

/// Counters for the async completion path, owned by the endpoint
/// (`EndpointStats`) and armed into every slot its windows post. All relaxed:
/// diagnostics, never synchronization.
#[derive(Debug, Default)]
pub struct AsyncNotifyStats {
    /// Completing writes that actually woke someone (condvar waiter, parked
    /// task waker, CQ consumer, or multi-slot eventcount).
    pub(crate) notify_wakes: AtomicU64,
    /// Future polls that found the slot still pending after a previous
    /// registration — the woken-but-nothing-ready metric.
    pub(crate) spurious_polls: AtomicU64,
    /// `NotifyFuture`s dropped before consuming their completion.
    pub(crate) futures_dropped: AtomicU64,
    /// Completions routed into an attached `CompletionQueue`.
    pub(crate) cq_completions: AtomicU64,
}

/// The shared, cache-line-aligned completion slot written once by the NIC.
#[repr(align(64))]
pub struct NotificationSlot {
    /// `STATE_EMPTY` until the NIC's single completing write flips it to
    /// `STATE_COMPLETE`; the consuming waiter retires it to `STATE_TAKEN`.
    state: AtomicU8,
    /// Parked waiters registered on this slot. The completing write takes
    /// the condvar path only when this is non-zero (Dekker-paired with the
    /// state transition, both `SeqCst`).
    waiters: AtomicU32,
    /// Reproduce the pre-rework completer cost (mutex + unconditional
    /// broadcast) for A/B latency runs.
    baseline: bool,
    /// The completed buffer "pointer + length", transferred to the waiter.
    /// Guarded by `state`: written by the sole completer before the
    /// `COMPLETE` transition, read by the sole consumer after it.
    payload: CheckCell<Option<CompletedBuffer>>,
    /// Pairs with `condvar` for the parked slow path. Never guards the
    /// payload (except in baseline mode, where it reproduces the old cost).
    wake: Mutex<()>,
    /// Wakes parked waiters (the Monitor/MWait slow path).
    condvar: Condvar,
    /// The async parking cell: [`NotifyFuture::poll`] registers here and the
    /// completing write wakes it directly — no condvar, no spin.
    waker: AtomicWaker,
    /// `wait_any`/`wait_any_timeout` callers parked on the shared eventcount
    /// with this slot in their scan set. The completing write signals the
    /// eventcount only when this is non-zero (Dekker-paired, both `SeqCst`),
    /// so unrelated multi-slot waiters no longer take spurious wakeups.
    multi_waiters: AtomicU32,
    /// Ready-list attachment: when set (always before posting, so never
    /// racing the completer), the completing write pushes the buffer into
    /// the attached [`CompletionQueue`](crate::cq::CompletionQueue).
    cq: OnceLock<CqAttachment>,
    /// True for slots posted through an async-aware path (`post_*_async`,
    /// CQ-attached posts). Set before posting, so the mailbox's completion
    /// funnel can record `NotifyWake` deterministically.
    async_armed: AtomicBool,
    /// Endpoint-level async counters, armed by the posting window.
    stats: OnceLock<Arc<AsyncNotifyStats>>,
}

// SAFETY: `payload` is handed from the single completer (the endpoint
// delivery path calls `complete` at most once per slot, under the mailbox
// lock) to the single consumer (`Notification` enforces one take via the
// `COMPLETE → TAKEN` CAS); the state word orders the write before the read.
unsafe impl Send for NotificationSlot {}
unsafe impl Sync for NotificationSlot {}

impl NotificationSlot {
    /// A fresh, un-completed slot on the lock-free handoff path.
    pub fn new() -> Arc<Self> {
        Self::with_baseline(false)
    }

    /// A fresh slot; `baseline = true` selects the pre-rework completer
    /// behaviour (payload under mutex, unconditional `notify_all`) for A/B
    /// latency measurement.
    pub fn with_baseline(baseline: bool) -> Arc<Self> {
        Arc::new(NotificationSlot {
            state: AtomicU8::new(STATE_EMPTY),
            waiters: AtomicU32::new(0),
            baseline,
            payload: CheckCell::new(None),
            wake: Mutex::new(()),
            condvar: Condvar::new(),
            waker: AtomicWaker::new(),
            multi_waiters: AtomicU32::new(0),
            cq: OnceLock::new(),
            async_armed: AtomicBool::new(false),
            stats: OnceLock::new(),
        })
    }

    /// Arm the endpoint's async counters into this slot (first arm wins).
    pub(crate) fn arm_stats(&self, stats: Arc<AsyncNotifyStats>) {
        let _ = self.stats.set(stats);
    }

    /// Mark this slot as async-visible: its completing write is recorded as
    /// a `NotifyWake` telemetry event. Must be called before posting so the
    /// flag can never race the completer.
    pub(crate) fn arm_async(&self) {
        self.async_armed.store(true, Ordering::Release);
    }

    pub(crate) fn is_async_armed(&self) -> bool {
        self.async_armed.load(Ordering::Acquire)
    }

    /// Route this slot's completion into a [`CompletionQueue`] ready-list.
    /// Must be called before posting (the `OnceLock` is written exactly
    /// once, and the completer only reads it after the slot was posted).
    ///
    /// [`CompletionQueue`]: crate::cq::CompletionQueue
    pub(crate) fn attach_cq(&self, att: CqAttachment) {
        self.async_armed.store(true, Ordering::Release);
        let ok = self.cq.set(att).is_ok();
        debug_assert!(ok, "slot already attached to a completion queue");
    }

    /// The NIC-side completing write. Stores the buffer, flips the state
    /// word, and wakes parked waiters — touching the mutex/condvar only
    /// when a waiter has actually registered. Must be called at most once
    /// per slot; a second call panics in debug builds.
    pub(crate) fn complete(&self, buf: CompletedBuffer) {
        if self.baseline {
            // Pre-rework path, kept for `put_latency --baseline`: payload
            // under the mutex, broadcast whether or not anyone listens.
            {
                let _guard = self.wake.lock();
                // SAFETY: sole completer; consumers only read after the
                // COMPLETE transition below.
                debug_assert!(
                    self.payload.with(|p| unsafe { (*p).is_none() }),
                    "notification slot completed twice"
                );
                self.payload.with_mut(|p| unsafe { *p = Some(buf) });
                let prev = self.state.swap(STATE_COMPLETE, Ordering::SeqCst);
                debug_assert_eq!(prev, STATE_EMPTY, "notification slot completed twice");
            }
            self.condvar.notify_all();
            any_event().signal();
            return;
        }
        // Clone for the CQ ready-list before publishing. The attachment is
        // made before posting, so it cannot race this read; the clone is an
        // Arc bump on the buffer's shared inner.
        let cq_entry = self.cq.get().map(|att| (att, buf.clone()));
        // SAFETY: sole completer (mailbox lock serialises delivery; debug
        // assert below catches double-complete). No consumer reads the
        // payload until the SeqCst transition publishes it.
        debug_assert!(
            self.payload.with(|p| unsafe { (*p).is_none() }),
            "notification slot completed twice"
        );
        self.payload.with_mut(|p| unsafe { *p = Some(buf) });
        // SeqCst, not just Release: Dekker with waiter registration. Either
        // this store is ordered before the waiter's registration (then the
        // waiter's post-registration state check sees COMPLETE and never
        // parks), or the `waiters` load below sees the registration (and we
        // take the condvar path). The same pairing covers the async waker
        // (`NotifyFuture::poll` re-checks state after registering) and the
        // `multi_waiters` eventcount scope.
        //
        // The two `csync::mutation` branches are the seeded-bad-ordering
        // hooks for exactly the properties this comment argues: weakening
        // the swap loses the payload-publication edge (a data race the
        // checker's vector clocks flag), and hoisting the waiter check
        // above the swap re-opens the lost-wakeup window (a modeled
        // deadlock). Both are `const false` outside `--features check`.
        let completing_order = if csync::mutation(Mutation::RelaxedCompletingSwap) {
            Ordering::Relaxed
        } else {
            Ordering::SeqCst
        };
        let waiters_early = if csync::mutation(Mutation::WaitersCheckBeforeSwap) {
            Some(self.waiters.load(Ordering::SeqCst))
        } else {
            None
        };
        let prev = self.state.swap(STATE_COMPLETE, completing_order);
        debug_assert_eq!(prev, STATE_EMPTY, "notification slot completed twice");
        let mut woke = false;
        let waiters_now = waiters_early.unwrap_or_else(|| self.waiters.load(Ordering::SeqCst));
        if waiters_now > 0 {
            // Lock-then-unlock before notifying: a waiter that observed
            // EMPTY is either not yet inside `condvar.wait` (then it holds
            // or will take `wake`, and its re-check under the lock sees
            // COMPLETE) or already parked (then notify_all wakes it).
            drop(self.wake.lock());
            self.condvar.notify_all();
            woke = true;
        }
        // The async handoff: one lock-free drain of the waker cell wakes the
        // parked task directly.
        if self.waker.wake() {
            woke = true;
        }
        if let Some((att, buf)) = cq_entry {
            att.push(buf);
            if let Some(stats) = self.stats.get() {
                stats.cq_completions.fetch_add(1, Ordering::Relaxed);
            }
            woke = true;
        }
        // Scoped, not broadcast: only signal the process-wide eventcount
        // when a `wait_any` caller actually registered on *this* slot.
        if self.multi_waiters.load(Ordering::SeqCst) > 0 {
            any_event().signal();
            woke = true;
        }
        if woke {
            if let Some(stats) = self.stats.get() {
                stats.notify_wakes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_COMPLETE
    }

    fn take_payload(&self) -> Option<CompletedBuffer> {
        // The COMPLETE → TAKEN CAS elects exactly one taker and (Acquire)
        // orders the payload read after the completer's write. A failed
        // CAS means another handle over this slot won the election —
        // return `None` so the loser backs off instead of panicking
        // (two handles can coexist after a cancelled future).
        if self
            .state
            .compare_exchange(
                STATE_COMPLETE,
                STATE_TAKEN,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return None;
        }
        // SAFETY: the CAS above grants this thread sole ownership of the
        // published payload.
        Some(
            self.payload
                .with_mut(|p| unsafe { (*p).take() })
                .expect("COMPLETE slot with no payload"),
        )
    }

    /// Parked wait until the completing write, with an optional deadline.
    /// Returns `false` on timeout. Caller has already spun.
    fn park_until(&self, deadline: Option<Instant>) -> bool {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // Re-check after registering (the other half of the Dekker pair in
        // `complete`): if the completing write already landed we must not
        // sleep — its `waiters` load may have seen zero.
        let mut completed = self.state.load(Ordering::SeqCst) == STATE_COMPLETE;
        if !completed {
            let mut guard = self.wake.lock();
            loop {
                if self.state.load(Ordering::SeqCst) == STATE_COMPLETE {
                    completed = true;
                    break;
                }
                match deadline {
                    Some(d) => {
                        if self.condvar.wait_until(&mut guard, d).timed_out() {
                            completed = self.state.load(Ordering::SeqCst) == STATE_COMPLETE;
                            break;
                        }
                    }
                    None => self.condvar.wait(&mut guard),
                }
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        completed
    }

    /// One iteration of the pre-park spin phase. The reworked slot yields
    /// the CPU every 256 spins: if the completer is runnable but not
    /// running (oversubscribed or single-CPU host), a yield hands it the
    /// core instead of burning the rest of the spin budget against a state
    /// word that cannot change. The baseline slot keeps the pre-rework
    /// pure busy-spin.
    fn spin_step(&self, spins: u32) {
        if !self.baseline && spins % 256 == 255 {
            csync::thread::yield_now();
        } else {
            csync::spin_loop();
        }
    }
}

impl std::fmt::Debug for NotificationSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotificationSlot")
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// A shared eventcount: multi-slot waiters park here once instead of
/// polling every slot. `signal` costs completers one `SeqCst` load while no
/// waiter is parked.
struct EventCount {
    /// Bumped by every signal that found a registered waiter; waiters
    /// sleep only while the epoch they captured is still current.
    epoch: AtomicUsize,
    /// Registered multi-slot waiters (parked or about to park).
    waiters: AtomicUsize,
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl EventCount {
    const fn new() -> Self {
        EventCount {
            epoch: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Completer side. Dekker with `wait`: either the waiter's registration
    /// is visible here (bump + broadcast), or the completing write is
    /// visible to the waiter's post-registration rescan.
    fn signal(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(self.mutex.lock());
        self.condvar.notify_all();
    }

    /// Waiter side: register, capture the epoch, let `rescan` run once, and
    /// park until the epoch moves (or the deadline passes). Returns what
    /// `rescan` returned; `None` means "parked and woke (or timed out),
    /// rescan again".
    fn wait_for<T>(
        &self,
        deadline: Option<Instant>,
        mut rescan: impl FnMut() -> Option<T>,
    ) -> Option<T> {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let hit = rescan();
        if hit.is_none() {
            let mut guard = self.mutex.lock();
            while self.epoch.load(Ordering::SeqCst) == epoch {
                match deadline {
                    Some(d) => {
                        if self.condvar.wait_until(&mut guard, d).timed_out() {
                            break;
                        }
                    }
                    None => self.condvar.wait(&mut guard),
                }
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        hit
    }
}

/// The process-wide eventcount shared by all slots. One static is enough:
/// cross-slot spurious wakeups only cost a rescan, and missed wakeups are
/// impossible (see `EventCount::signal`).
fn any_event() -> &'static EventCount {
    static EVENT: EventCount = EventCount::new();
    &EVENT
}

/// The application-side handle to one buffer's completion pointer, returned
/// by `Window::post_buffer` (paper: the `notification_ptr` out-parameter of
/// `RVMA_Post_buffer`).
///
/// Exactly one of [`poll`](Notification::poll) / [`wait`](Notification::wait)
/// / [`wait_timeout`](Notification::wait_timeout) consumes the completion;
/// afterwards [`is_consumed`](Notification::is_consumed) reports `true`.
#[derive(Debug)]
pub struct Notification {
    slot: Arc<NotificationSlot>,
    consumed: bool,
    /// Op-level event recorder: the consuming take stamps
    /// `NotifyHandoff`. `None` unless the owning endpoint enabled
    /// telemetry (set by `Window::post_buffer_with`).
    telemetry: Option<Arc<Telemetry>>,
}

impl Notification {
    pub(crate) fn new(slot: Arc<NotificationSlot>) -> Self {
        Notification {
            slot,
            consumed: false,
            telemetry: None,
        }
    }

    /// Stamp this notification's consuming take into `telemetry`.
    pub(crate) fn trace_into(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The consuming take: flip `consumed`, take the payload, stamp the
    /// handoff. Every `poll`/`wait`/`wait_timeout` success funnels here.
    /// Panics if another handle over the same slot won the take election;
    /// blocking paths hold the only handle, so a loss there is a bug.
    fn take(&mut self) -> CompletedBuffer {
        self.try_take().expect("notification payload already taken")
    }

    /// The election-aware take: `None` means another handle over the same
    /// slot raced us to the `COMPLETE → TAKEN` CAS and owns the payload.
    /// Either way this handle is spent (`consumed` flips).
    fn try_take(&mut self) -> Option<CompletedBuffer> {
        self.consumed = true;
        let buf = self.slot.take_payload()?;
        telemetry::record(
            &self.telemetry,
            EventKind::NotifyHandoff,
            buf.vaddr().raw(),
            buf.epoch(),
            buf.len() as u64,
        );
        Some(buf)
    }

    /// Non-blocking check of the completion pointer (the polling idiom).
    /// Returns the completed buffer on the first call after completion.
    pub fn poll(&mut self) -> Option<CompletedBuffer> {
        if self.consumed || !self.slot.is_complete() {
            return None;
        }
        self.try_take()
    }

    /// True if the completion fired, without consuming it. This is the raw
    /// "has the memory location changed" check a Monitor/MWait would arm.
    pub fn is_complete(&self) -> bool {
        !self.consumed && self.slot.is_complete()
    }

    /// True once the completion has been taken via `poll`/`wait`.
    pub fn is_consumed(&self) -> bool {
        self.consumed
    }

    /// Block until the buffer completes (Monitor/MWait idiom: bounded spin,
    /// then park). Panics if the completion was already consumed.
    pub fn wait(&mut self) -> CompletedBuffer {
        assert!(!self.consumed, "notification already consumed");
        // Fast path: spin on the state word (budget collapses to ~2 under
        // an active checker execution — spinning is modeled as blocking).
        for spins in 0..csync::spin_budget(SPIN_LIMIT) {
            if self.slot.is_complete() {
                return self.take();
            }
            self.slot.spin_step(spins);
        }
        // Slow path: register and park.
        self.slot.park_until(None);
        self.take()
    }

    /// Like [`wait`](Notification::wait) but gives up after `timeout`,
    /// returning `None` on expiry.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<CompletedBuffer> {
        assert!(!self.consumed, "notification already consumed");
        let deadline = Instant::now() + timeout;
        for spins in 0..csync::spin_budget(SPIN_LIMIT) {
            if self.slot.is_complete() {
                return Some(self.take());
            }
            self.slot.spin_step(spins);
        }
        if self.slot.park_until(Some(deadline)) {
            Some(self.take())
        } else {
            None
        }
    }

    /// Convert into the async waiting idiom: a future that resolves to the
    /// completed buffer when the completing write lands. The completing
    /// write wakes the registered task directly through the slot's
    /// `AtomicWaker` — no condvar, no spin. Panics (when polled) if the
    /// notification was already consumed.
    pub fn into_future(self) -> NotifyFuture {
        NotifyFuture {
            inner: self,
            registered: false,
        }
    }
}

/// The async half of a completion pointer: resolves to the
/// [`CompletedBuffer`] once the completing write lands.
///
/// Created by [`Notification::into_future`] or the window's `post_*_async`
/// methods. Cancellation is dropping the future: the parked waker (if any)
/// is discarded, the slot is left in a consumable state (never `TAKEN`),
/// and the completion — whether it already landed or lands later — still
/// transfers buffer ownership to the slot, whose last `Arc` drop releases
/// it back to the pool.
#[derive(Debug)]
pub struct NotifyFuture {
    inner: Notification,
    /// True once a waker has been parked — a later poll that still finds
    /// the slot pending is a spurious wakeup, counted as such.
    registered: bool,
}

impl Future for NotifyFuture {
    type Output = CompletedBuffer;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<CompletedBuffer> {
        let this = self.get_mut();
        assert!(
            !this.inner.is_consumed(),
            "NotifyFuture polled after completion"
        );
        // Fast path: the completing write already landed.
        if this.inner.slot.is_complete() {
            return Poll::Ready(this.inner.take());
        }
        // Park, then re-check (the async half of the Dekker pair in
        // `complete`): either the completer's drain sees our waker, or its
        // SeqCst state swap is ordered before our registration and this
        // load observes COMPLETE.
        this.inner.slot.waker.register(cx.waker());
        if this.inner.slot.state.load(Ordering::SeqCst) == STATE_COMPLETE {
            return Poll::Ready(this.inner.take());
        }
        if this.registered {
            if let Some(stats) = this.inner.slot.stats.get() {
                stats.spurious_polls.fetch_add(1, Ordering::Relaxed);
            }
        }
        this.registered = true;
        Poll::Pending
    }
}

impl Drop for NotifyFuture {
    fn drop(&mut self) {
        if !self.inner.is_consumed() {
            // Cancelled mid-flight: discard the parked waker so a later
            // completing write doesn't wake a dead task, and count the
            // abandonment. The slot stays consumable (EMPTY or COMPLETE,
            // never TAKEN).
            drop(self.inner.slot.waker.take());
            if let Some(stats) = self.inner.slot.stats.get() {
                stats.futures_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn scan(notifications: &mut [Notification]) -> Option<(usize, CompletedBuffer)> {
    for (i, n) in notifications.iter_mut().enumerate() {
        if let Some(buf) = n.poll() {
            return Some((i, buf));
        }
    }
    None
}

/// Wait until *any* of the given notifications completes; returns the index
/// of the winner and its buffer. This is the fine-grained completion story
/// of paper Sec. IV-C: because every buffer has its own known notification
/// address, a thread waits on exactly the set it cares about — no shared
/// completion queue, no stolen events.
///
/// Already-consumed notifications are skipped. Returns `None` if every
/// notification in the slice has been consumed.
///
/// # Blocking
/// Spins across the slots (each check is one atomic load — the multi-slot
/// analogue of arming Monitor/MWait on several lines), then parks on a
/// shared eventcount that every completing write signals — one park for the
/// whole set, instead of a poll loop over every slot.
pub fn wait_any(notifications: &mut [Notification]) -> Option<(usize, CompletedBuffer)> {
    if notifications.iter().all(Notification::is_consumed) {
        return None;
    }
    for spins in 0..csync::spin_budget(SPIN_LIMIT) {
        if let Some(hit) = scan(notifications) {
            return Some(hit);
        }
        if spins % 1024 == 1023 {
            csync::thread::yield_now();
        } else {
            csync::spin_loop();
        }
    }
    loop {
        // Register interest on every slot in the set before the rescan, so
        // completers signal the eventcount only for slots someone is
        // actually parked on. Dekker: a completer that misses the
        // registration is ordered before it, so the rescan (which runs
        // after) observes the COMPLETE state.
        for n in notifications.iter() {
            n.slot.multi_waiters.fetch_add(1, Ordering::SeqCst);
        }
        let hit = any_event().wait_for(None, || scan(notifications));
        for n in notifications.iter() {
            n.slot.multi_waiters.fetch_sub(1, Ordering::SeqCst);
        }
        if let Some(hit) = hit {
            return Some(hit);
        }
    }
}

/// [`wait_any`] with a deadline: returns `None` once `timeout` elapses with
/// no completion (or when every notification was already consumed). The
/// escape hatch a fault-tolerant consumer needs — on a lossy fabric "any of
/// these will complete" is no longer a certainty.
///
/// The deadline is computed **once**, up front, so the cost of scanning a
/// long slot list can never stretch the caller's timeout.
pub fn wait_any_timeout(
    notifications: &mut [Notification],
    timeout: Duration,
) -> Option<(usize, CompletedBuffer)> {
    if notifications.iter().all(Notification::is_consumed) {
        return None;
    }
    let deadline = Instant::now() + timeout;
    for spins in 0..csync::spin_budget(SPIN_LIMIT) {
        if let Some(hit) = scan(notifications) {
            return Some(hit);
        }
        if Instant::now() >= deadline {
            return None;
        }
        if spins % 1024 == 1023 {
            csync::thread::yield_now();
        } else {
            csync::spin_loop();
        }
    }
    loop {
        // Same scoped registration as `wait_any` (see the comment there).
        for n in notifications.iter() {
            n.slot.multi_waiters.fetch_add(1, Ordering::SeqCst);
        }
        let hit = any_event().wait_for(Some(deadline), || scan(notifications));
        for n in notifications.iter() {
            n.slot.multi_waiters.fetch_sub(1, Ordering::SeqCst);
        }
        if let Some(hit) = hit {
            return Some(hit);
        }
        if Instant::now() >= deadline {
            // One last scan so a completion racing the deadline is not
            // reported as a timeout.
            return scan(notifications);
        }
    }
}

/// Collect the completions of *all* given notifications, blocking until
/// each fires, and returning buffers in slice order. Panics if any
/// notification was already consumed.
pub fn wait_all(notifications: &mut [Notification]) -> Vec<CompletedBuffer> {
    notifications.iter_mut().map(Notification::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;

    fn completed(tag: u8) -> CompletedBuffer {
        CompletedBuffer::new(vec![tag; 8], 8, 0, VirtAddr::new(tag as u64))
    }

    #[test]
    fn slot_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<NotificationSlot>(), 64);
    }

    #[test]
    fn poll_before_completion_is_none() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot);
        assert!(n.poll().is_none());
        assert!(!n.is_complete());
        assert!(!n.is_consumed());
    }

    #[test]
    fn poll_after_completion_yields_once() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        slot.complete(completed(3));
        assert!(n.is_complete());
        let buf = n.poll().expect("completion visible");
        assert_eq!(buf.data(), &[3; 8]);
        assert!(n.is_consumed());
        assert!(n.poll().is_none(), "second poll must not re-deliver");
        assert!(!n.is_complete(), "consumed notifications report incomplete");
    }

    #[test]
    fn wait_returns_immediately_when_already_complete() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        slot.complete(completed(9));
        assert_eq!(n.wait().data(), &[9; 8]);
    }

    #[test]
    fn wait_blocks_until_cross_thread_completion() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.complete(completed(5));
        });
        let buf = n.wait();
        assert_eq!(buf.data(), &[5; 8]);
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot);
        assert!(n.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(!n.is_consumed());
    }

    #[test]
    fn wait_timeout_succeeds_when_completed() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            slot.complete(completed(7));
        });
        let buf = n
            .wait_timeout(Duration::from_secs(5))
            .expect("completes within timeout");
        assert_eq!(buf.epoch(), 0);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn wait_after_consume_panics() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        slot.complete(completed(1));
        let _ = n.poll();
        let _ = n.wait();
    }

    #[test]
    fn baseline_slot_round_trips() {
        let slot = NotificationSlot::with_baseline(true);
        let mut n = Notification::new(slot.clone());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            slot.complete(completed(6));
        });
        assert_eq!(n.wait().data(), &[6; 8]);
        t.join().unwrap();
    }

    #[test]
    fn wait_any_returns_first_completion() {
        let slots: Vec<_> = (0..4).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        slots[2].complete(completed(9));
        let (idx, buf) = wait_any(&mut ns).expect("one completes");
        assert_eq!(idx, 2);
        assert_eq!(buf.data(), &[9; 8]);
        assert!(ns[2].is_consumed());
        assert!(!ns[0].is_consumed());
    }

    #[test]
    fn wait_any_blocks_for_cross_thread_completion() {
        let slots: Vec<_> = (0..3).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        let slot = slots[1].clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            slot.complete(completed(4));
        });
        let (idx, _) = wait_any(&mut ns).expect("completion arrives");
        assert_eq!(idx, 1);
        t.join().unwrap();
    }

    #[test]
    fn wait_any_parks_and_wakes_after_spin_budget() {
        // Completion arrives long after the spin budget: the waiter must be
        // parked on the eventcount by then, and the completing write must
        // wake it.
        let slots: Vec<_> = (0..2).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        let slot = slots[0].clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            slot.complete(completed(8));
        });
        let (idx, buf) = wait_any(&mut ns).expect("completion arrives");
        assert_eq!(idx, 0);
        assert_eq!(buf.data(), &[8; 8]);
        t.join().unwrap();
    }

    #[test]
    fn wait_any_all_consumed_is_none() {
        let slot = NotificationSlot::new();
        let mut ns = vec![Notification::new(slot.clone())];
        slot.complete(completed(1));
        let _ = ns[0].poll();
        assert!(wait_any(&mut ns).is_none());
        assert!(wait_any(&mut []).is_none());
    }

    #[test]
    fn wait_any_timeout_expires_without_consuming() {
        let slots: Vec<_> = (0..3).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        assert!(wait_any_timeout(&mut ns, Duration::from_millis(10)).is_none());
        assert!(ns.iter().all(|n| !n.is_consumed()));
        // A completion arriving later is still observable.
        slots[1].complete(completed(2));
        let (idx, buf) = wait_any_timeout(&mut ns, Duration::from_secs(5)).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(buf.data(), &[2; 8]);
    }

    #[test]
    fn wait_any_timeout_wakes_from_park() {
        let slots: Vec<_> = (0..2).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        let slot = slots[1].clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            slot.complete(completed(3));
        });
        let (idx, _) = wait_any_timeout(&mut ns, Duration::from_secs(10)).expect("arrives");
        assert_eq!(idx, 1);
        t.join().unwrap();
    }

    #[test]
    fn wait_all_collects_in_order() {
        let slots: Vec<_> = (0..3).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        // Complete in reverse order; results must still be slice-ordered.
        for (i, s) in slots.iter().enumerate().rev() {
            s.complete(completed(i as u8));
        }
        let bufs = wait_all(&mut ns);
        assert_eq!(bufs.len(), 3);
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(b.vaddr().raw(), i as u64);
        }
    }

    #[test]
    fn many_waiters_on_distinct_slots() {
        // The fine-grained completion story: N threads each wait on their own
        // slot; completing one wakes exactly that waiter.
        let slots: Vec<_> = (0..8).map(|_| NotificationSlot::new()).collect();
        let handles: Vec<_> = slots
            .iter()
            .map(|s| {
                let mut n = Notification::new(s.clone());
                std::thread::spawn(move || n.wait().vaddr().raw())
            })
            .collect();
        for (i, s) in slots.iter().enumerate() {
            s.complete(completed(i as u8));
        }
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }
}
