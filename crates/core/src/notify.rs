//! Completion pointers: lightweight, per-buffer completion notification.
//!
//! The paper's key completion idea (Sec. III-A, IV-C): when a buffer's
//! threshold is reached, the NIC writes the buffer's head address and length
//! to a **cache-line-aligned completion pointer** in host memory. Because
//! each buffer has its *own* known notification address — unlike a shared
//! completion queue — a thread can wait on exactly the completions it cares
//! about, using Monitor/MWait-style wake-on-write or plain polling.
//!
//! [`NotificationSlot`] is the software analogue. It is `#[repr(align(64))]`
//! (one cache line), carries a single atomic state word that the "NIC" (the
//! endpoint delivery path) flips exactly once, and offers:
//!
//! * [`Notification::poll`] — the polling idiom,
//! * [`Notification::wait`] — the Monitor/MWait idiom: a bounded spin on the
//!   state word (the mwait fast path, wake in ~one cache miss) followed by a
//!   parked wait (the power-saving path).
//!
//! Ownership of the completed buffer transfers through the slot, which is
//! the Rust-safe rendering of "the pointer to the data buffer is deposited
//! into the notification address".

use crate::buffer::CompletedBuffer;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const STATE_EMPTY: u8 = 0;
const STATE_COMPLETE: u8 = 1;

/// Spin iterations before falling back to parking — long enough to catch
/// completions that are a cache-miss away, short enough not to burn a core.
const SPIN_LIMIT: u32 = 4096;

/// The shared, cache-line-aligned completion slot written once by the NIC.
#[repr(align(64))]
pub struct NotificationSlot {
    /// `STATE_EMPTY` until the NIC's single completing write.
    state: AtomicU8,
    /// The completed buffer "pointer + length", transferred to the waiter.
    payload: Mutex<Option<CompletedBuffer>>,
    /// Wakes parked waiters (the Monitor/MWait slow path).
    condvar: Condvar,
    /// Number of threads parked (or about to park) on `condvar`. The
    /// completing write broadcasts only when this is nonzero, so the
    /// common poll/spin consumer costs the completer one atomic load
    /// instead of an unconditional futex broadcast.
    waiters: AtomicUsize,
}

impl NotificationSlot {
    /// A fresh, un-completed slot.
    pub fn new() -> Arc<Self> {
        Arc::new(NotificationSlot {
            state: AtomicU8::new(STATE_EMPTY),
            payload: Mutex::new(None),
            condvar: Condvar::new(),
            waiters: AtomicUsize::new(0),
        })
    }

    /// The NIC-side completing write. Stores the buffer, flips the state
    /// word (release), and wakes any parked waiter. Must be called at most
    /// once per slot; a second call panics in debug builds.
    pub(crate) fn complete(&self, buf: CompletedBuffer) {
        {
            let mut guard = self.payload.lock();
            debug_assert!(guard.is_none(), "notification slot completed twice");
            *guard = Some(buf);
        }
        // SeqCst pairs with the waiter's SeqCst registration (a Dekker
        // store-buffering pair): either the completer sees the waiter count
        // and broadcasts, or the waiter's payload check under the mutex sees
        // the buffer already stored and never sleeps. Spinning and polling
        // consumers never register, so the broadcast is skipped entirely.
        let prev = self.state.swap(STATE_COMPLETE, Ordering::SeqCst);
        debug_assert_eq!(prev, STATE_EMPTY, "notification slot completed twice");
        if self.waiters.load(Ordering::SeqCst) > 0 {
            self.condvar.notify_all();
        }
    }

    fn is_complete(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_COMPLETE
    }

    fn take_payload(&self) -> CompletedBuffer {
        self.payload
            .lock()
            .take()
            .expect("notification payload already taken")
    }
}

impl std::fmt::Debug for NotificationSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotificationSlot")
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// The application-side handle to one buffer's completion pointer, returned
/// by `Window::post_buffer` (paper: the `notification_ptr` out-parameter of
/// `RVMA_Post_buffer`).
///
/// Exactly one of [`poll`](Notification::poll) / [`wait`](Notification::wait)
/// / [`wait_timeout`](Notification::wait_timeout) consumes the completion;
/// afterwards [`is_consumed`](Notification::is_consumed) reports `true`.
#[derive(Debug)]
pub struct Notification {
    slot: Arc<NotificationSlot>,
    consumed: bool,
}

impl Notification {
    pub(crate) fn new(slot: Arc<NotificationSlot>) -> Self {
        Notification {
            slot,
            consumed: false,
        }
    }

    /// Non-blocking check of the completion pointer (the polling idiom).
    /// Returns the completed buffer on the first call after completion.
    pub fn poll(&mut self) -> Option<CompletedBuffer> {
        if self.consumed || !self.slot.is_complete() {
            return None;
        }
        self.consumed = true;
        Some(self.slot.take_payload())
    }

    /// True if the completion fired, without consuming it. This is the raw
    /// "has the memory location changed" check a Monitor/MWait would arm.
    pub fn is_complete(&self) -> bool {
        !self.consumed && self.slot.is_complete()
    }

    /// True once the completion has been taken via `poll`/`wait`.
    pub fn is_consumed(&self) -> bool {
        self.consumed
    }

    /// Block until the buffer completes (Monitor/MWait idiom: bounded spin,
    /// then park). Panics if the completion was already consumed.
    pub fn wait(&mut self) -> CompletedBuffer {
        assert!(!self.consumed, "notification already consumed");
        // Fast path: spin on the state word.
        for _ in 0..SPIN_LIMIT {
            if self.slot.is_complete() {
                self.consumed = true;
                return self.slot.take_payload();
            }
            std::hint::spin_loop();
        }
        // Slow path: park on the condvar. Register *before* re-checking the
        // payload under the mutex — the completer stores the payload under
        // the same mutex before it reads the waiter count, so a registration
        // it misses implies a payload this check cannot miss.
        self.slot.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.slot.payload.lock();
        while guard.is_none() {
            self.slot.condvar.wait(&mut guard);
        }
        drop(guard);
        self.slot.waiters.fetch_sub(1, Ordering::SeqCst);
        self.consumed = true;
        self.slot.take_payload()
    }

    /// Like [`wait`](Notification::wait) but gives up after `timeout`,
    /// returning `None` on expiry.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<CompletedBuffer> {
        assert!(!self.consumed, "notification already consumed");
        let deadline = std::time::Instant::now() + timeout;
        for _ in 0..SPIN_LIMIT {
            if self.slot.is_complete() {
                self.consumed = true;
                return Some(self.slot.take_payload());
            }
            std::hint::spin_loop();
        }
        self.slot.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.slot.payload.lock();
        while guard.is_none() {
            if self
                .slot
                .condvar
                .wait_until(&mut guard, deadline)
                .timed_out()
            {
                let done = guard.is_some();
                drop(guard);
                self.slot.waiters.fetch_sub(1, Ordering::SeqCst);
                return if done {
                    self.consumed = true;
                    Some(self.slot.take_payload())
                } else {
                    None
                };
            }
        }
        drop(guard);
        self.slot.waiters.fetch_sub(1, Ordering::SeqCst);
        self.consumed = true;
        Some(self.slot.take_payload())
    }
}

/// Wait until *any* of the given notifications completes; returns the index
/// of the winner and its buffer. This is the fine-grained completion story
/// of paper Sec. IV-C: because every buffer has its own known notification
/// address, a thread waits on exactly the set it cares about — no shared
/// completion queue, no stolen events.
///
/// Already-consumed notifications are skipped. Returns `None` if every
/// notification in the slice has been consumed.
///
/// # Blocking
/// Spins across the slots (each check is one atomic load — the multi-slot
/// analogue of arming Monitor/MWait on several lines), yielding
/// periodically. Unlike [`Notification::wait`] this cannot park, since any
/// of N independent writers may fire.
pub fn wait_any(notifications: &mut [Notification]) -> Option<(usize, CompletedBuffer)> {
    if notifications.iter().all(Notification::is_consumed) {
        return None;
    }
    let mut spins = 0u32;
    loop {
        for (i, n) in notifications.iter_mut().enumerate() {
            if let Some(buf) = n.poll() {
                return Some((i, buf));
            }
        }
        spins += 1;
        if spins.is_multiple_of(1024) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// [`wait_any`] with a deadline: returns `None` once `timeout` elapses with
/// no completion (or when every notification was already consumed). The
/// escape hatch a fault-tolerant consumer needs — on a lossy fabric "any of
/// these will complete" is no longer a certainty.
pub fn wait_any_timeout(
    notifications: &mut [Notification],
    timeout: Duration,
) -> Option<(usize, CompletedBuffer)> {
    if notifications.iter().all(Notification::is_consumed) {
        return None;
    }
    let deadline = std::time::Instant::now() + timeout;
    let mut spins = 0u32;
    loop {
        for (i, n) in notifications.iter_mut().enumerate() {
            if let Some(buf) = n.poll() {
                return Some((i, buf));
            }
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        spins += 1;
        if spins.is_multiple_of(1024) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Collect the completions of *all* given notifications, blocking until
/// each fires, and returning buffers in slice order. Panics if any
/// notification was already consumed.
pub fn wait_all(notifications: &mut [Notification]) -> Vec<CompletedBuffer> {
    notifications.iter_mut().map(Notification::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;

    fn completed(tag: u8) -> CompletedBuffer {
        CompletedBuffer::new(vec![tag; 8], 8, 0, VirtAddr::new(tag as u64))
    }

    #[test]
    fn slot_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<NotificationSlot>(), 64);
    }

    #[test]
    fn poll_before_completion_is_none() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot);
        assert!(n.poll().is_none());
        assert!(!n.is_complete());
        assert!(!n.is_consumed());
    }

    #[test]
    fn poll_after_completion_yields_once() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        slot.complete(completed(3));
        assert!(n.is_complete());
        let buf = n.poll().expect("completion visible");
        assert_eq!(buf.data(), &[3; 8]);
        assert!(n.is_consumed());
        assert!(n.poll().is_none(), "second poll must not re-deliver");
        assert!(!n.is_complete(), "consumed notifications report incomplete");
    }

    #[test]
    fn wait_returns_immediately_when_already_complete() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        slot.complete(completed(9));
        assert_eq!(n.wait().data(), &[9; 8]);
    }

    #[test]
    fn wait_blocks_until_cross_thread_completion() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.complete(completed(5));
        });
        let buf = n.wait();
        assert_eq!(buf.data(), &[5; 8]);
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot);
        assert!(n.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(!n.is_consumed());
    }

    #[test]
    fn wait_timeout_succeeds_when_completed() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            slot.complete(completed(7));
        });
        let buf = n
            .wait_timeout(Duration::from_secs(5))
            .expect("completes within timeout");
        assert_eq!(buf.epoch(), 0);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn wait_after_consume_panics() {
        let slot = NotificationSlot::new();
        let mut n = Notification::new(slot.clone());
        slot.complete(completed(1));
        let _ = n.poll();
        let _ = n.wait();
    }

    #[test]
    fn wait_any_returns_first_completion() {
        let slots: Vec<_> = (0..4).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        slots[2].complete(completed(9));
        let (idx, buf) = wait_any(&mut ns).expect("one completes");
        assert_eq!(idx, 2);
        assert_eq!(buf.data(), &[9; 8]);
        assert!(ns[2].is_consumed());
        assert!(!ns[0].is_consumed());
    }

    #[test]
    fn wait_any_blocks_for_cross_thread_completion() {
        let slots: Vec<_> = (0..3).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        let slot = slots[1].clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            slot.complete(completed(4));
        });
        let (idx, _) = wait_any(&mut ns).expect("completion arrives");
        assert_eq!(idx, 1);
        t.join().unwrap();
    }

    #[test]
    fn wait_any_all_consumed_is_none() {
        let slot = NotificationSlot::new();
        let mut ns = vec![Notification::new(slot.clone())];
        slot.complete(completed(1));
        let _ = ns[0].poll();
        assert!(wait_any(&mut ns).is_none());
        assert!(wait_any(&mut []).is_none());
    }

    #[test]
    fn wait_any_timeout_expires_without_consuming() {
        let slots: Vec<_> = (0..3).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        assert!(wait_any_timeout(&mut ns, Duration::from_millis(10)).is_none());
        assert!(ns.iter().all(|n| !n.is_consumed()));
        // A completion arriving later is still observable.
        slots[1].complete(completed(2));
        let (idx, buf) = wait_any_timeout(&mut ns, Duration::from_secs(5)).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(buf.data(), &[2; 8]);
    }

    #[test]
    fn wait_all_collects_in_order() {
        let slots: Vec<_> = (0..3).map(|_| NotificationSlot::new()).collect();
        let mut ns: Vec<_> = slots.iter().map(|s| Notification::new(s.clone())).collect();
        // Complete in reverse order; results must still be slice-ordered.
        for (i, s) in slots.iter().enumerate().rev() {
            s.complete(completed(i as u8));
        }
        let bufs = wait_all(&mut ns);
        assert_eq!(bufs.len(), 3);
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(b.vaddr().raw(), i as u64);
        }
    }

    #[test]
    fn many_waiters_on_distinct_slots() {
        // The fine-grained completion story: N threads each wait on their own
        // slot; completing one wakes exactly that waiter.
        let slots: Vec<_> = (0..8).map(|_| NotificationSlot::new()).collect();
        let handles: Vec<_> = slots
            .iter()
            .map(|s| {
                let mut n = Notification::new(s.clone());
                std::thread::spawn(move || n.wait().vaddr().raw())
            })
            .collect();
        for (i, s) in slots.iter().enumerate() {
            s.complete(completed(i as u8));
        }
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }
}
