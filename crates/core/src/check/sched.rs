//! The schedule-enumerating executor.
//!
//! One *execution* runs the model closure with every instrumented
//! operation (atomic access, lock, condvar, park, spin hint) funneled
//! through a cooperative scheduler: model threads are real OS threads, but
//! a single token is handed between them so exactly one runs at a time and
//! every hand-off position is a potential *choice point*. The DFS explorer
//! re-runs the model, systematically taking the next untried choice at the
//! deepest branch, until the (preemption-bounded) schedule space is
//! exhausted — or a schedule fails, in which case the recorded choice list
//! *is* the schedule ID: replayable and minimizable deterministically.
//!
//! Blocking is modeled, never real: a thread that would block (contended
//! model mutex, condvar wait, `park`, full-ring spin) is marked blocked
//! and the token moves on. "No runnable thread" is therefore a *detected
//! outcome* — deadlock (someone waits on a lock/condvar/join) or livelock
//! (only spinners remain) — not a hung test process.

use super::shadow::{AtomKind, Shadow, ThreadView};
use crate::csync::Mutation;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Hard cap on model threads: one hex digit per scheduling choice keeps
/// schedule IDs compact, and 15-way branching is far beyond any model here.
pub(crate) const MAX_THREADS: usize = 15;

/// Synthetic shadow addresses for per-thread park tokens. Real heap/stack
/// addresses never live in the first page, so these cannot collide.
fn park_token_addr(tid: usize) -> usize {
    0x10 + tid * 8
}

// ---------------------------------------------------------------------------
// Public-facing configuration and results (re-exported via `check`).
// ---------------------------------------------------------------------------

/// Exploration options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Maximum number of *preemptive* context switches per schedule (a
    /// switch away from a thread that could have kept running). `None`
    /// enumerates the full space. CHESS-style bounding: most real
    /// concurrency bugs manifest within 2–3 preemptions.
    pub preemption_bound: Option<u32>,
    /// Abort exploration (incomplete) after this many schedules.
    pub max_schedules: u64,
    /// Per-schedule step budget; exceeding it is reported as a livelock.
    pub max_steps: u64,
    /// Seeded bad-ordering mutations to activate inside the model (the
    /// mutation-test harness; production code is unaffected outside an
    /// execution that lists a mutation here).
    pub mutations: Vec<Mutation>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: Some(2),
            max_schedules: 1_000_000,
            max_steps: 100_000,
            mutations: Vec::new(),
        }
    }
}

/// Outcome of a completed exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: u64,
    /// True iff the (bounded) schedule space was exhausted — the
    /// "exhaustively enumerated, not sampled" guarantee.
    pub complete: bool,
    /// Instrumented steps across all schedules.
    pub total_steps: u64,
    /// Largest thread count any schedule reached.
    pub max_threads: usize,
}

/// Why a schedule failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure).
    Panic,
    /// No runnable thread and at least one waiter on a lock/condvar/join/
    /// park with no timeout to fire.
    Deadlock,
    /// Only spin-waiters remain (or the step bound was exceeded).
    Livelock,
    /// Conflicting plain-memory accesses without a happens-before edge.
    DataRace,
}

/// A failing schedule: everything needed to reproduce and debug it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// The exact schedule that failed.
    pub schedule: ScheduleId,
    /// Greedily minimized variant (fewest forced context switches) that
    /// still fails; always worth replaying first.
    pub minimized: Option<ScheduleId>,
    /// Schedules explored before this one failed.
    pub schedules_before: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "schedule check failed: {:?}: {}",
            self.kind, self.message
        )?;
        writeln!(
            f,
            "  schedule id: {} ({} switches, found after {} schedules)",
            self.schedule,
            self.schedule.context_switches(),
            self.schedules_before
        )?;
        if let Some(min) = &self.minimized {
            writeln!(
                f,
                "  minimized:   {} ({} switches)",
                min,
                min.context_switches()
            )?;
        }
        write!(
            f,
            "  replay with: RVMA_CHECK_SCHEDULE={} cargo test -p rvma-core \
             --features check <this test>",
            self.minimized.as_ref().unwrap_or(&self.schedule)
        )
    }
}

/// A seed-stable schedule identifier: the list of branch choices taken, one
/// hex digit per choice point, rendered as `rvc1-<digits>`. Trailing
/// default choices (`0` = keep running the current thread) are trimmed, so
/// the empty suffix replays implicitly and minimized IDs stay short.
#[derive(Clone, PartialEq, Eq)]
pub struct ScheduleId(Vec<u8>);

impl ScheduleId {
    pub(crate) fn new(mut choices: Vec<u8>) -> Self {
        while choices.last() == Some(&0) {
            choices.pop();
        }
        ScheduleId(choices)
    }

    /// Parse `rvc1-<hex digits>`; `None` on malformed input.
    pub fn decode(s: &str) -> Option<ScheduleId> {
        let digits = s.strip_prefix("rvc1-")?;
        let mut out = Vec::with_capacity(digits.len());
        for c in digits.chars() {
            out.push(c.to_digit(16)? as u8);
        }
        Some(ScheduleId::new(out))
    }

    /// Number of non-default choices — a proxy for forced context
    /// switches, the quantity minimization drives down.
    pub fn context_switches(&self) -> usize {
        self.0.iter().filter(|&&c| c != 0).count()
    }

    pub(crate) fn choices(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rvc1-")?;
        for c in &self.0 {
            write!(f, "{c:x}")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ScheduleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

// ---------------------------------------------------------------------------
// Engine state.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    /// Waiting for a model mutex at this address.
    Lock(usize),
    /// Waiting on a condvar (`cv` address); `timed` waits may be woken by
    /// the timeout-resolution rule.
    Cond { cv: usize, timed: bool },
    /// `thread::park()` without a pending permit.
    Park,
    /// Joining model thread `tid`.
    Join(usize),
    /// Spin hint (`spin_loop`/`yield_now`): runnable again as soon as any
    /// other thread completes an operation.
    Spin,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Ready,
    Blocked(Block),
    Done,
}

struct Thr {
    state: Run,
    /// An `unpark` delivered while not parked (std semantics).
    park_permit: bool,
    /// Set when a timed wait was woken by its timeout.
    timed_out: bool,
    /// One "final look" credit for a spin-blocked thread once nothing
    /// else can run. A real spin loop always returns and re-checks its
    /// condition, and state may have changed between that condition's
    /// last check and the `spin_loop` call (e.g. a producer finished its
    /// push *after* a consumer's failed pop but *before* the consumer's
    /// spin hint). Restored whenever another thread performs a
    /// state-changing operation; consumed by the grace resume in
    /// `resolve_stuck`. A spinner that re-blocks without anyone changing
    /// state in between is then a genuine livelock.
    spin_grace: bool,
}

impl Thr {
    fn ready() -> Self {
        Thr {
            state: Run::Ready,
            park_permit: false,
            timed_out: false,
            spin_grace: true,
        }
    }
}

/// Deterministic PRNG for randomized-schedule smoke runs (SplitMix64).
#[derive(Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

struct Eng {
    threads: Vec<Thr>,
    views: Vec<ThreadView>,
    shadow: Shadow,
    /// Owner per model-mutex address.
    locks: HashMap<usize, usize>,
    /// Which thread currently holds the execution token.
    active: usize,
    finished: usize,
    /// Forced choices (replay prefix); beyond it, DFS default / random.
    prefix: Vec<u8>,
    /// `(options, chosen)` per branch point encountered this run.
    branches: Vec<(u8, u8)>,
    rng: Option<SplitMix64>,
    preemptions: u32,
    bound: Option<u32>,
    steps: u64,
    max_steps: u64,
    failure: Option<(FailureKind, String)>,
    abort: bool,
}

impl Eng {
    fn ready_tids(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].state == Run::Ready)
            .collect()
    }

    fn all_done(&self) -> bool {
        self.finished == self.threads.len()
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some((kind, message));
        }
        self.abort = true;
    }

    /// Consume the next branch choice among `n` options.
    fn next_choice(&mut self, n: usize) -> usize {
        let idx = self.branches.len();
        let c = if idx < self.prefix.len() {
            self.prefix[idx] as usize
        } else if let Some(rng) = &mut self.rng {
            (rng.next() % n as u64) as usize
        } else {
            0
        };
        // Clamp out-of-range prefix digits (minimization candidates may
        // carry choices from a run whose branch had more options).
        let c = c.min(n - 1);
        self.branches.push((n as u8, c as u8));
        c
    }

    /// Pick who runs next, `current` being runnable and about to perform
    /// an operation. Canonical option order is `current` first (choice 0 =
    /// "no context switch"), then the other ready threads ascending.
    fn choose_running(&mut self, current: usize) -> usize {
        let mut opts = self.ready_tids();
        opts.retain(|&t| t != current);
        // Budget exhausted: switching away would cost a preemption we do
        // not have, so the only option is to keep running.
        if let Some(b) = self.bound {
            if self.preemptions >= b {
                return current;
            }
        }
        if opts.is_empty() {
            return current;
        }
        opts.insert(0, current);
        let c = self.next_choice(opts.len());
        if c > 0 {
            self.preemptions += 1;
        }
        opts[c]
    }

    /// Pick who runs next when the current thread just blocked or
    /// finished (a forced switch — costs no preemption). `None` when no
    /// thread is runnable.
    fn choose_blocked(&mut self) -> Option<usize> {
        let opts = self.ready_tids();
        match opts.len() {
            0 => None,
            1 => Some(opts[0]),
            n => Some(opts[self.next_choice(n)]),
        }
    }

    /// Any operation completed: spin-waiters get another look.
    fn wake_spinners(&mut self) {
        for t in &mut self.threads {
            if t.state == Run::Blocked(Block::Spin) {
                t.state = Run::Ready;
            }
        }
    }

    /// Thread `by` performed a state-changing operation (store, RMW,
    /// unlock, notify, unpark, cell write, exit): every *other* thread's
    /// spin grace is restored — whatever they were spinning on may now be
    /// satisfiable. Pure loads don't restore grace (they change nothing a
    /// spinner could newly observe), which keeps mutually-spinning
    /// threads from feeding each other credits forever.
    fn note_progress(&mut self, by: usize) {
        for (tid, t) in self.threads.iter_mut().enumerate() {
            if tid != by {
                t.spin_grace = true;
            }
        }
    }

    /// No thread is runnable. Fire the canonical earliest timeout if one
    /// exists; otherwise classify and record the stuck state.
    fn resolve_stuck(&mut self) -> Option<usize> {
        for (tid, t) in self.threads.iter_mut().enumerate() {
            if let Run::Blocked(Block::Cond { timed: true, .. }) = t.state {
                t.state = Run::Ready;
                t.timed_out = true;
                return Some(tid);
            }
        }
        // Spin-blocked threads with an unspent grace credit get one final
        // look before the state is classified: resume the lowest such tid
        // (deterministic, so replays agree). See `Thr::spin_grace`.
        for (tid, t) in self.threads.iter_mut().enumerate() {
            if t.state == Run::Blocked(Block::Spin) && t.spin_grace {
                t.spin_grace = false;
                t.state = Run::Ready;
                return Some(tid);
            }
        }
        let mut spinners = 0usize;
        let mut waiters: Vec<String> = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            if let Run::Blocked(b) = t.state {
                if b == Block::Spin {
                    spinners += 1;
                } else {
                    waiters.push(format!("thread {tid} blocked on {b:?}"));
                }
            }
        }
        if waiters.is_empty() && spinners > 0 {
            self.fail(
                FailureKind::Livelock,
                format!("{spinners} spinning thread(s) and nothing else can run"),
            );
        } else {
            self.fail(
                FailureKind::Deadlock,
                format!("no runnable thread: {}", waiters.join("; ")),
            );
        }
        None
    }
}

/// One model execution: engine state plus the token condvar.
pub(crate) struct Execution {
    eng: StdMutex<Eng>,
    cv: StdCondvar,
    /// OS handles of spawned model threads, joined at teardown.
    real: StdMutex<Vec<std::thread::JoinHandle<()>>>,
    /// Active seeded-mutation set (bitmask), immutable per execution.
    mutations: u32,
}

/// Panic payload used to unwind model threads when an execution aborts.
struct AbortUnwind;

fn abort_panic() -> ! {
    std::panic::panic_any(AbortUnwind);
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the calling thread's execution context, if it is a model
/// thread. Returns `None` outside executions **and while panicking** — the
/// latter turns every instrumented op in a Drop during unwinding into a
/// plain op, so an aborting execution cannot double-panic.
pub(crate) fn with_active<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> Option<R> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| {
        let b = c.borrow();
        b.as_ref().map(|(e, t)| f(e, *t))
    })
}

/// Is any seeded mutation active for the calling model thread?
pub(crate) fn mutation_active(m: Mutation) -> bool {
    with_active(|e, _| e.mutations & m.bit() != 0).unwrap_or(false)
}

impl Execution {
    /// Hand the token to `next` and wait until it comes back to `me`.
    /// The guard is held across the wait (condvar); aborts unwind.
    fn wait_for_token<'a>(
        &'a self,
        mut g: std::sync::MutexGuard<'a, Eng>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, Eng> {
        loop {
            if g.abort {
                drop(g);
                self.cv.notify_all();
                abort_panic();
            }
            if g.active == me && g.threads[me].state == Run::Ready {
                return g;
            }
            g = self.cv.wait(g).expect("engine mutex poisoned");
        }
    }

    fn lock_eng(&self) -> std::sync::MutexGuard<'_, Eng> {
        self.eng.lock().expect("engine mutex poisoned")
    }

    /// The scheduling point before every instrumented operation: account
    /// the step, let spinners re-check, branch on who runs next.
    pub(crate) fn schedule_point(self: &Arc<Self>, me: usize) {
        let mut g = self.lock_eng();
        if g.abort {
            drop(g);
            abort_panic();
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            let msg = format!("step bound ({}) exceeded", g.max_steps);
            g.fail(FailureKind::Livelock, msg);
            drop(g);
            self.cv.notify_all();
            abort_panic();
        }
        g.wake_spinners();
        let next = g.choose_running(me);
        if next != me {
            g.active = next;
            self.cv.notify_all();
            let _g = self.wait_for_token(g, me);
        }
    }

    /// After the real operation executed: record its ordering effects and
    /// give spin-waiters another look. A shadow race aborts the execution.
    pub(crate) fn op_done(self: &Arc<Self>, me: usize, addr: usize, kind: AtomKind, ord: Ordering) {
        let mut g = self.lock_eng();
        let Eng { shadow, views, .. } = &mut *g;
        shadow.atomic(views, me, addr, kind, ord);
        if kind != AtomKind::Load {
            g.note_progress(me);
        }
        g.wake_spinners();
    }

    /// A plain-memory access through a `CheckCell`. Not a scheduling
    /// point (loom-style: only sync ops branch), but race-checked.
    pub(crate) fn cell_access(self: &Arc<Self>, me: usize, addr: usize, write: bool, label: &str) {
        let mut g = self.lock_eng();
        if g.abort {
            drop(g);
            abort_panic();
        }
        let Eng { shadow, views, .. } = &mut *g;
        let res = if write {
            shadow.cell_write(views, me, addr, label)
        } else {
            shadow.cell_read(views, me, addr, label)
        };
        if write {
            g.note_progress(me);
        }
        if let Err(race) = res {
            g.fail(FailureKind::DataRace, race.message);
            drop(g);
            self.cv.notify_all();
            abort_panic();
        }
    }

    /// Block `me` on `b`; returns the timed-out flag once rescheduled.
    fn block_on(self: &Arc<Self>, me: usize, b: Block) -> bool {
        let mut g = self.lock_eng();
        if g.abort {
            drop(g);
            abort_panic();
        }
        g.threads[me].state = Run::Blocked(b);
        g.threads[me].timed_out = false;
        match g.choose_blocked() {
            Some(next) => g.active = next,
            None => {
                if let Some(next) = g.resolve_stuck() {
                    // A timed waiter fired; it may be us or someone else.
                    g.active = next;
                } else {
                    drop(g);
                    self.cv.notify_all();
                    abort_panic();
                }
            }
        }
        self.cv.notify_all();
        let g = self.wait_for_token(g, me);
        g.threads[me].timed_out
    }

    // -- model mutex ------------------------------------------------------

    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, addr: usize) {
        self.schedule_point(me);
        loop {
            {
                let mut g = self.lock_eng();
                if g.abort {
                    drop(g);
                    abort_panic();
                }
                if let std::collections::hash_map::Entry::Vacant(slot) = g.locks.entry(addr) {
                    slot.insert(me);
                    let Eng { shadow, views, .. } = &mut *g;
                    shadow.atomic(views, me, addr, AtomKind::Rmw, Ordering::AcqRel);
                    return;
                }
            }
            self.block_on(me, Block::Lock(addr));
        }
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, addr: usize) {
        self.schedule_point(me);
        let mut g = self.lock_eng();
        let Eng { shadow, views, .. } = &mut *g;
        shadow.atomic(views, me, addr, AtomKind::Rmw, Ordering::AcqRel);
        debug_assert_eq!(g.locks.get(&addr), Some(&me), "unlock by non-owner");
        g.locks.remove(&addr);
        for t in g.threads.iter_mut() {
            if t.state == Run::Blocked(Block::Lock(addr)) {
                t.state = Run::Ready;
            }
        }
        g.note_progress(me);
        g.wake_spinners();
    }

    // -- model condvar ----------------------------------------------------

    /// Atomically release `lock_addr`, wait on `cv_addr`, reacquire.
    /// Returns true when a timed wait was woken by its timeout.
    pub(crate) fn cond_wait(
        self: &Arc<Self>,
        me: usize,
        cv_addr: usize,
        lock_addr: usize,
        timed: bool,
    ) -> bool {
        self.schedule_point(me);
        {
            let mut g = self.lock_eng();
            let Eng { shadow, views, .. } = &mut *g;
            shadow.atomic(views, me, lock_addr, AtomKind::Rmw, Ordering::AcqRel);
            debug_assert_eq!(g.locks.get(&lock_addr), Some(&me), "wait by non-owner");
            g.locks.remove(&lock_addr);
            for t in g.threads.iter_mut() {
                if t.state == Run::Blocked(Block::Lock(lock_addr)) {
                    t.state = Run::Ready;
                }
            }
        }
        let timed_out = self.block_on(me, Block::Cond { cv: cv_addr, timed });
        {
            // Synchronize with the notifier.
            let mut g = self.lock_eng();
            let Eng { shadow, views, .. } = &mut *g;
            shadow.atomic(views, me, cv_addr, AtomKind::Load, Ordering::Acquire);
        }
        self.mutex_lock(me, lock_addr);
        timed_out
    }

    pub(crate) fn cond_notify(self: &Arc<Self>, me: usize, cv_addr: usize, all: bool) {
        self.schedule_point(me);
        let mut g = self.lock_eng();
        let Eng { shadow, views, .. } = &mut *g;
        shadow.atomic(views, me, cv_addr, AtomKind::Rmw, Ordering::AcqRel);
        for t in g.threads.iter_mut() {
            if let Run::Blocked(Block::Cond { cv, .. }) = t.state {
                if cv == cv_addr {
                    t.state = Run::Ready;
                    if !all {
                        break;
                    }
                }
            }
        }
        g.note_progress(me);
        g.wake_spinners();
    }

    // -- park / unpark ----------------------------------------------------

    pub(crate) fn park(self: &Arc<Self>, me: usize) {
        self.schedule_point(me);
        let consumed_permit = {
            let mut g = self.lock_eng();
            if g.threads[me].park_permit {
                g.threads[me].park_permit = false;
                true
            } else {
                false
            }
        };
        if !consumed_permit {
            self.block_on(me, Block::Park);
        }
        // Synchronize with the unparker.
        let mut g = self.lock_eng();
        let Eng { shadow, views, .. } = &mut *g;
        shadow.atomic(
            views,
            me,
            park_token_addr(me),
            AtomKind::Load,
            Ordering::Acquire,
        );
    }

    pub(crate) fn unpark(self: &Arc<Self>, me: usize, target: usize) {
        self.schedule_point(me);
        let mut g = self.lock_eng();
        let Eng { shadow, views, .. } = &mut *g;
        shadow.atomic(
            views,
            me,
            park_token_addr(target),
            AtomKind::Rmw,
            Ordering::AcqRel,
        );
        if g.threads[target].state == Run::Blocked(Block::Park) {
            g.threads[target].state = Run::Ready;
        } else {
            g.threads[target].park_permit = true;
        }
        g.note_progress(me);
        g.wake_spinners();
    }

    // -- spin hints -------------------------------------------------------

    /// `spin_loop`/`yield_now` under the model: block until any other
    /// thread completes an operation (progress a spin could observe).
    pub(crate) fn spin_yield(self: &Arc<Self>, me: usize) {
        self.block_on(me, Block::Spin);
    }

    // -- thread lifecycle -------------------------------------------------

    fn finish_thread(self: &Arc<Self>, me: usize) {
        let mut g = self.lock_eng();
        g.threads[me].state = Run::Done;
        g.finished += 1;
        for t in g.threads.iter_mut() {
            if t.state == Run::Blocked(Block::Join(me)) {
                t.state = Run::Ready;
            }
        }
        g.note_progress(me);
        g.wake_spinners();
        if !g.abort && !g.all_done() {
            match g.choose_blocked() {
                Some(next) => g.active = next,
                None => {
                    if let Some(next) = g.resolve_stuck() {
                        g.active = next;
                    }
                }
            }
        }
        drop(g);
        self.cv.notify_all();
    }

    fn record_panic(self: &Arc<Self>, me: usize, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<AbortUnwind>().is_some() {
            return; // engine-initiated unwind; failure already recorded
        }
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "model thread panicked".to_string()
        };
        let mut g = self.lock_eng();
        g.fail(FailureKind::Panic, format!("thread {me}: {msg}"));
        drop(g);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Model-thread spawning / joining (public via `check`).
// ---------------------------------------------------------------------------

/// Handle to a model thread, usable only inside the spawning execution.
pub struct JoinHandle<T> {
    exec: Arc<Execution>,
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// The model thread id (also its schedule-choice identity).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Join the model thread; a scheduling point. Panics (aborting the
    /// schedule) if the thread itself panicked.
    pub fn join(self) -> T {
        let caller =
            with_active(|e, me| (e.clone(), me)).expect("JoinHandle::join outside a model");
        let (exec, me) = caller;
        assert!(
            Arc::ptr_eq(&exec, &self.exec),
            "JoinHandle::join from a different execution"
        );
        exec.schedule_point(me);
        loop {
            {
                let mut g = exec.lock_eng();
                if g.abort {
                    drop(g);
                    abort_panic();
                }
                if g.threads[self.tid].state == Run::Done {
                    // Happens-before: everything the child did.
                    let child = g.views[self.tid].clock.clone();
                    g.views[me].clock.join(&child);
                    g.views[me].clock.bump(me);
                    break;
                }
            }
            exec.block_on(me, Block::Join(self.tid));
        }
        let v = self.result.lock().expect("result mutex poisoned").take();
        v.expect("model thread produced no result")
    }
}

/// Unpark a model thread by its [`JoinHandle::tid`] (models of
/// doorbell-style wakeups; production code goes through
/// `csync::thread::Thread::unpark` instead).
pub fn unpark_model_thread(tid: usize) {
    let (exec, me) =
        with_active(|e, t| (e.clone(), t)).expect("unpark_model_thread outside a model");
    exec.unpark(me, tid);
}

/// Spawn a model thread. Must be called from inside an execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = with_active(|e, t| (e.clone(), t)).expect("check::spawn outside a model");
    exec.schedule_point(me);
    let tid = {
        let mut g = exec.lock_eng();
        let tid = g.threads.len();
        assert!(tid < MAX_THREADS, "model thread limit ({MAX_THREADS})");
        g.threads.push(Thr::ready());
        let mut view = ThreadView {
            clock: g.views[me].clock.clone(),
            ..Default::default()
        };
        view.clock.bump(tid);
        g.views.push(view);
        g.views[me].clock.bump(me);
        tid
    };
    let result = Arc::new(StdMutex::new(None));
    let exec2 = exec.clone();
    let result2 = result.clone();
    let os = std::thread::Builder::new()
        .name(format!("rvma-check-{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((exec2.clone(), tid)));
            // Wait to be scheduled for the first time.
            let mut aborted = false;
            {
                let mut g = exec2.lock_eng();
                loop {
                    if g.abort {
                        aborted = true;
                        break;
                    }
                    if g.active == tid && g.threads[tid].state == Run::Ready {
                        break;
                    }
                    g = exec2.cv.wait(g).expect("engine mutex poisoned");
                }
            }
            if !aborted {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *result2.lock().expect("result mutex poisoned") = Some(v);
                    }
                    Err(p) => exec2.record_panic(tid, p),
                }
            }
            exec2.finish_thread(tid);
            CTX.with(|c| *c.borrow_mut() = None);
        })
        .expect("failed to spawn model thread");
    exec.real.lock().expect("handle list poisoned").push(os);
    JoinHandle { exec, tid, result }
}

// ---------------------------------------------------------------------------
// Running one schedule.
// ---------------------------------------------------------------------------

struct RunOutcome {
    /// `(options, chosen)` per branch point, in order.
    branches: Vec<(u8, u8)>,
    steps: u64,
    threads: usize,
    failure: Option<(FailureKind, String)>,
}

fn run_once<F: Fn()>(
    opts: &Options,
    prefix: &[u8],
    rng: Option<SplitMix64>,
    model: &F,
) -> RunOutcome {
    let mut eng = Eng {
        threads: vec![Thr::ready()],
        views: vec![ThreadView::default()],
        shadow: Shadow::default(),
        locks: HashMap::new(),
        active: 0,
        finished: 0,
        prefix: prefix.to_vec(),
        branches: Vec::new(),
        rng,
        preemptions: 0,
        bound: opts.preemption_bound,
        steps: 0,
        max_steps: opts.max_steps,
        failure: None,
        abort: false,
    };
    eng.views[0].clock.bump(0);
    let mutations = opts.mutations.iter().fold(0u32, |m, x| m | x.bit());
    let exec = Arc::new(Execution {
        eng: StdMutex::new(eng),
        cv: StdCondvar::new(),
        real: StdMutex::new(Vec::new()),
        mutations,
    });

    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), 0)));
    if let Err(p) = catch_unwind(AssertUnwindSafe(model)) {
        exec.record_panic(0, p);
    }
    exec.finish_thread(0);
    CTX.with(|c| *c.borrow_mut() = None);

    // Let the remaining model threads run (or abort) to completion.
    {
        let mut g = exec.lock_eng();
        while !g.all_done() {
            g = exec.cv.wait(g).expect("engine mutex poisoned");
        }
    }
    let handles: Vec<_> = std::mem::take(&mut *exec.real.lock().expect("handle list poisoned"));
    for h in handles {
        let _ = h.join(); // model panics were already caught inside
    }

    let g = exec.lock_eng();
    RunOutcome {
        branches: g.branches.clone(),
        steps: g.steps,
        threads: g.threads.len(),
        failure: g.failure.clone(),
    }
}

// ---------------------------------------------------------------------------
// Exploration strategies (public via `check`).
// ---------------------------------------------------------------------------

fn choices_of(branches: &[(u8, u8)]) -> Vec<u8> {
    branches.iter().map(|&(_, c)| c).collect()
}

/// Greedy minimization: repeatedly truncate at the rightmost non-default
/// choice (defaults beyond); keep any candidate that still fails.
fn minimize<F: Fn()>(opts: &Options, model: &F, failing: Vec<u8>) -> ScheduleId {
    let mut cur = failing;
    let mut scan_end = cur.len();
    let mut budget = 64u32;
    while let Some(j) = cur[..scan_end].iter().rposition(|&c| c != 0) {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let cand = cur[..j].to_vec();
        let out = run_once(opts, &cand, None, model);
        if out.failure.is_some() {
            cur = choices_of(&out.branches);
            scan_end = cur.len();
        } else {
            scan_end = j;
        }
    }
    ScheduleId::new(cur)
}

fn build_failure<F: Fn()>(
    opts: &Options,
    model: &F,
    out: RunOutcome,
    schedules_before: u64,
    minimize_it: bool,
) -> Box<Failure> {
    let (kind, message) = out.failure.expect("build_failure without failure");
    let schedule = ScheduleId::new(choices_of(&out.branches));
    let minimized = if minimize_it {
        Some(minimize(opts, model, schedule.choices().to_vec()))
    } else {
        None
    };
    Box::new(Failure {
        kind,
        message,
        schedule,
        minimized,
        schedules_before,
    })
}

/// Exhaustive bounded-preemption DFS over the model's schedule space.
///
/// Honors `RVMA_CHECK_SCHEDULE=<id>`: when set, runs exactly that schedule
/// (single-test replay) instead of exploring.
pub fn explore<F: Fn()>(opts: Options, model: F) -> Result<Report, Box<Failure>> {
    if let Ok(id) = std::env::var("RVMA_CHECK_SCHEDULE") {
        let sched = ScheduleId::decode(&id)
            .unwrap_or_else(|| panic!("malformed RVMA_CHECK_SCHEDULE {id:?}"));
        return replay(&sched, opts, model);
    }
    let mut prefix: Vec<u8> = Vec::new();
    let mut schedules = 0u64;
    let mut total_steps = 0u64;
    let mut max_threads = 0usize;
    loop {
        let out = run_once(&opts, &prefix, None, &model);
        schedules += 1;
        total_steps += out.steps;
        max_threads = max_threads.max(out.threads);
        if out.failure.is_some() {
            return Err(build_failure(&opts, &model, out, schedules - 1, true));
        }
        // Backtrack: deepest branch with an untried alternative.
        let mut branches = out.branches;
        while let Some(&(options, chosen)) = branches.last() {
            if chosen + 1 < options {
                break;
            }
            branches.pop();
        }
        let Some(last) = branches.last_mut() else {
            return Ok(Report {
                schedules,
                complete: true,
                total_steps,
                max_threads,
            });
        };
        last.1 += 1;
        prefix = choices_of(&branches);
        if schedules >= opts.max_schedules {
            return Ok(Report {
                schedules,
                complete: false,
                total_steps,
                max_threads,
            });
        }
    }
}

/// Randomized-schedule smoke: `iters` runs with uniformly random branch
/// choices from `seed`. Failures carry the exact (replayable) schedule;
/// the seed is printed so CI logs pin the whole run.
pub fn explore_random<F: Fn()>(
    opts: Options,
    seed: u64,
    iters: u64,
    model: F,
) -> Result<Report, Box<Failure>> {
    println!("rvma-check: randomized exploration, RVMA_CHECK_SEED={seed} iters={iters}");
    let mut rng = SplitMix64(seed);
    let mut total_steps = 0u64;
    let mut max_threads = 0usize;
    for i in 0..iters {
        let run_rng = SplitMix64(rng.next());
        let out = run_once(&opts, &[], Some(run_rng), &model);
        total_steps += out.steps;
        max_threads = max_threads.max(out.threads);
        if out.failure.is_some() {
            return Err(build_failure(&opts, &model, out, i, true));
        }
    }
    Ok(Report {
        schedules: iters,
        complete: false, // sampled, by construction
        total_steps,
        max_threads,
    })
}

/// Re-run exactly one schedule (typically a reported `ScheduleId`).
pub fn replay<F: Fn()>(id: &ScheduleId, opts: Options, model: F) -> Result<Report, Box<Failure>> {
    let out = run_once(&opts, id.choices(), None, &model);
    let steps = out.steps;
    let threads = out.threads;
    if out.failure.is_some() {
        return Err(build_failure(&opts, &model, out, 0, false));
    }
    Ok(Report {
        schedules: 1,
        complete: false,
        total_steps: steps,
        max_threads: threads,
    })
}
