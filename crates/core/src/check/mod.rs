//! `rvma-check` — an in-tree, loom-style schedule-enumerating model
//! checker for the crate's lock-free core.
//!
//! Compiled only with `--features check`. In that configuration the
//! `csync` primitive layer (every `Atomic*`,
//! `UnsafeCell`, mutex, condvar, park and spin hint used by `ring`,
//! `notify`, `cq`, the seqlock route cache and the telemetry shards)
//! routes through the cooperative scheduler in `sched`: model code runs
//! one instrumented operation at a time, every hand-off position is a DFS
//! choice point, and the explorer **exhaustively enumerates** the
//! (preemption-bounded) schedule space instead of sampling it.
//!
//! What a run gives you:
//!
//! * [`explore`] — bounded-preemption DFS. `Ok(`[`Report`]`)` with
//!   `complete == true` means every schedule in the bound was executed;
//!   the report carries the explored-schedule count.
//! * [`explore_random`] — seeded randomized smoke (for spaces too large
//!   to enumerate); prints `RVMA_CHECK_SEED` for replay.
//! * On failure, a [`Failure`] with a seed-stable [`ScheduleId`]
//!   (`rvc1-…`, one hex digit per scheduling choice), a greedily
//!   *minimized* variant, and a replay recipe. `RVMA_CHECK_SCHEDULE=<id>`
//!   re-runs exactly that interleaving through the same [`explore`] call.
//! * Failure kinds beyond assertion panics: modeled **deadlock**
//!   (no runnable thread), **livelock** (only spinners left), and
//!   **data races** on `UnsafeCell` payloads detected with vector
//!   clocks — so a missing `Release`/`Acquire` pairing is caught even
//!   though the serialized execution never corrupts a value.
//!
//! Model threads come from [`spawn`]/[`JoinHandle`]; model code otherwise
//! uses the production types directly — that is the point: the structures
//! under test are the shipping `RingQueue`, `NotificationSlot`,
//! `CompletionQueue`, `RouteSlot` and `Mailbox`, not copies.
//!
//! Seeded bad-ordering **mutations** ([`Mutation`], activated per
//! execution via [`Options::mutations`]) weaken specific orderings in the
//! production code (e.g. the completing swap to `Relaxed`) to prove the
//! checker catches the bug class each ordering exists to prevent.

mod clock;
mod sched;
mod shadow;

pub use crate::csync::Mutation;
pub use sched::{
    explore, explore_random, replay, spawn, unpark_model_thread, Failure, FailureKind, JoinHandle,
    Options, Report, ScheduleId,
};

pub(crate) use sched::{mutation_active, with_active, Execution};
pub(crate) use shadow::AtomKind;

#[cfg(test)]
mod engine_tests;
#[cfg(test)]
mod litmus;
#[cfg(test)]
mod models;
#[cfg(test)]
mod mutations;
