//! Vector clocks: the happens-before backbone of the checker.
//!
//! Every model thread carries a [`VClock`]; every synchronization object
//! (atomic location, mutex, condvar, park token) carries message clocks
//! derived from them. A data race is two conflicting plain-memory accesses
//! whose clocks are incomparable — see `shadow.rs` for the access rules.

/// A grow-on-demand vector clock. Component `t` counts the events thread
/// `t` has executed; absent components are zero.
#[derive(Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, tid: usize, v: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    /// Advance this thread's own component (one event executed).
    pub(crate) fn bump(&mut self, tid: usize) {
        self.set(tid, self.get(tid) + 1);
    }

    /// Component-wise maximum: everything `other` has seen, we have now
    /// seen too.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// `self ≤ other` component-wise: every event in `self` is also
    /// ordered before `other`'s frontier (i.e. `self` happens-before it).
    /// (The shadow state inlines per-component checks; kept for tests and
    /// future detectors.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    #[allow(dead_code)]
    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }
}

impl std::fmt::Debug for VClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VClock::default();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::default();
        b.bump(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
    }

    #[test]
    fn empty_is_bottom() {
        let bot = VClock::default();
        let mut a = VClock::default();
        a.bump(3);
        assert!(bot.le(&a));
        assert!(bot.le(&bot));
        assert!(!a.le(&bot));
    }
}
