//! Self-tests of the checker engine: exhaustiveness, failure detection
//! (deadlock, livelock, data race), modeled park/condvar semantics, and
//! schedule-ID replay/minimization round trips.

use super::*;
use crate::csync::{self, CheckCell};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex as StdMutex};

fn unbounded() -> Options {
    Options {
        preemption_bound: None,
        ..Options::default()
    }
}

#[test]
fn lost_update_outcomes_all_enumerated() {
    // Two threads each perform a non-atomic increment (load; store).
    // Exhaustive enumeration must witness both the lost update (1) and
    // the sequential result (2) — proof we enumerate, not sample.
    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let oc = outcomes.clone();
    let report = explore(unbounded(), move || {
        let a = Arc::new(csync::AtomicUsize::new(0));
        let t1 = {
            let a = a.clone();
            spawn(move || {
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
            })
        };
        let t2 = {
            let a = a.clone();
            spawn(move || {
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
            })
        };
        t1.join();
        t2.join();
        oc.lock().unwrap().insert(a.load(Ordering::SeqCst));
    })
    .expect("no failure expected");
    assert!(report.complete, "DFS must exhaust the space");
    assert!(report.schedules >= 6, "4 interleavable ops over 2 threads");
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(*outcomes, HashSet::from([1usize, 2usize]));
    println!(
        "lost-update model: {} schedules, outcomes {:?}",
        report.schedules, outcomes
    );
}

#[test]
fn preemption_bound_restricts_space() {
    // Same model, bound 0: no preemptive switches, so each thread's two
    // ops run back-to-back once scheduled — only run-to-completion
    // orders remain and the lost update disappears.
    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let oc = outcomes.clone();
    let opts = Options {
        preemption_bound: Some(0),
        ..Options::default()
    };
    let report = explore(opts, move || {
        let a = Arc::new(csync::AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = a.clone();
                spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        oc.lock().unwrap().insert(a.load(Ordering::SeqCst));
    })
    .expect("no failure expected");
    assert!(report.complete);
    assert_eq!(*outcomes.lock().unwrap(), HashSet::from([2usize]));
}

#[test]
fn abba_deadlock_detected_and_replayable() {
    let model = || {
        let m1 = Arc::new(csync::Mutex::new(0u32));
        let m2 = Arc::new(csync::Mutex::new(0u32));
        let t1 = {
            let (m1, m2) = (m1.clone(), m2.clone());
            spawn(move || {
                let _a = m1.lock();
                let _b = m2.lock();
            })
        };
        let t2 = {
            let (m1, m2) = (m1.clone(), m2.clone());
            spawn(move || {
                let _b = m2.lock();
                let _a = m1.lock();
            })
        };
        t1.join();
        t2.join();
    };
    let failure = explore(unbounded(), model).expect_err("ABBA must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    // The reported schedule replays to the same failure…
    let replayed = replay(&failure.schedule, unbounded(), model)
        .expect_err("reported schedule must reproduce");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
    // …and so does the minimized one, with no more switches than the
    // original.
    let min = failure.minimized.as_ref().expect("minimized id present");
    assert!(min.context_switches() <= failure.schedule.context_switches());
    let replayed_min =
        replay(min, unbounded(), model).expect_err("minimized schedule must reproduce");
    assert_eq!(replayed_min.kind, FailureKind::Deadlock);
    println!("deadlock: {failure}");
}

#[test]
fn unsynchronized_cell_write_is_a_data_race() {
    struct Shared {
        cell: CheckCell<u64>,
    }
    // SAFETY (of the test): the model intentionally races; the checker
    // must flag it before any torn value could matter.
    unsafe impl Sync for Shared {}
    unsafe impl Send for Shared {}
    let failure = explore(unbounded(), || {
        let s = Arc::new(Shared {
            cell: CheckCell::new(0),
        });
        let t = {
            let s = s.clone();
            spawn(move || s.cell.with_mut(|p| unsafe { *p = 1 }))
        };
        s.cell.with_mut(|p| unsafe { *p = 2 });
        t.join();
    })
    .expect_err("unsynchronized writes must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

#[test]
fn release_acquire_handoff_is_race_free() {
    struct Shared {
        cell: CheckCell<u64>,
        flag: csync::AtomicBool,
    }
    unsafe impl Sync for Shared {}
    unsafe impl Send for Shared {}
    let report = explore(unbounded(), || {
        let s = Arc::new(Shared {
            cell: CheckCell::new(0),
            flag: csync::AtomicBool::new(false),
        });
        let t = {
            let s = s.clone();
            spawn(move || {
                s.cell.with_mut(|p| unsafe { *p = 7 });
                s.flag.store(true, Ordering::Release);
            })
        };
        if s.flag.load(Ordering::Acquire) {
            let v = s.cell.with(|p| unsafe { *p });
            assert_eq!(v, 7);
        }
        t.join();
    })
    .expect("publication via release/acquire is sound");
    assert!(report.complete);
}

#[test]
fn pure_spinner_is_a_livelock() {
    let failure = explore(unbounded(), || {
        let flag = Arc::new(csync::AtomicBool::new(false));
        let f = flag.clone();
        // Detached spinner: nobody ever sets the flag.
        let _ = spawn(move || {
            while !f.load(Ordering::Acquire) {
                csync::spin_loop();
            }
        });
    })
    .expect_err("endless spin with no writer");
    assert_eq!(failure.kind, FailureKind::Livelock);
}

#[test]
fn park_unpark_all_interleavings_terminate() {
    // Whether unpark lands before the park (permit) or after (wake),
    // the parked thread always resumes.
    let report = explore(unbounded(), || {
        let flag = Arc::new(csync::AtomicBool::new(false));
        let f = flag.clone();
        let t = spawn(move || {
            while !f.load(Ordering::Acquire) {
                csync::thread::park();
            }
        });
        flag.store(true, Ordering::Release);
        unpark_model_thread(t.tid());
        t.join();
    })
    .expect("park/unpark handshake always completes");
    assert!(report.complete);
    println!("park/unpark model: {} schedules", report.schedules);
}

#[test]
fn condvar_predicate_wait_never_hangs() {
    let report = explore(unbounded(), || {
        let pair = Arc::new((csync::Mutex::new(false), csync::Condvar::new()));
        let p = pair.clone();
        let t = spawn(move || {
            let (lock, cv) = &*p;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
        }
        t.join();
    })
    .expect("predicate-checked condvar wait is sound");
    assert!(report.complete);
    println!("condvar model: {} schedules", report.schedules);
}

#[test]
fn schedule_id_round_trips() {
    let id = ScheduleId::decode("rvc1-0120a").expect("valid id");
    assert_eq!(id.to_string(), "rvc1-0120a");
    assert_eq!(id.context_switches(), 3);
    // Trailing defaults are trimmed.
    let id = ScheduleId::decode("rvc1-100").expect("valid id");
    assert_eq!(id.to_string(), "rvc1-1");
    assert!(ScheduleId::decode("rvc1-xyz").is_none());
    assert!(ScheduleId::decode("bogus").is_none());
    assert_eq!(ScheduleId::decode("rvc1-").unwrap().to_string(), "rvc1-");
}

#[test]
fn randomized_explorer_reports_replayable_failures() {
    // A guaranteed assertion failure: random exploration must find it
    // quickly and the reported schedule must replay deterministically.
    let model = || {
        let a = Arc::new(csync::AtomicUsize::new(0));
        let t = {
            let a = a.clone();
            spawn(move || a.store(1, Ordering::SeqCst))
        };
        let seen = a.load(Ordering::SeqCst);
        t.join();
        assert_eq!(seen, 0, "intentional: fails when the store runs first");
    };
    let failure = explore_random(unbounded(), 0xC0FFEE, 256, model)
        .expect_err("the failing interleaving is half the space");
    assert_eq!(failure.kind, FailureKind::Panic);
    let replayed = replay(&failure.schedule, unbounded(), model).expect_err("must reproduce");
    assert_eq!(replayed.kind, FailureKind::Panic);
}
