//! Checked models of the crate's lock-free structures.
//!
//! Each model is a tiny, self-checking concurrent program over the
//! *production* types — the shipping `RingQueue`, `NotificationSlot`,
//! `CompletionQueue`, `RouteSlot` and `Mailbox` — sized so that
//! [`explore`] exhaustively enumerates every preemption-bounded schedule
//! within the CI budget. The invariants are ported from the stress suites
//! in `tests/ring_interleave.rs` and `tests/notify_handoff.rs`: there they
//! are sampled under real contention; here every interleaving in the
//! bound is executed.
//!
//! The model functions are plain `fn`s (not closures) so the mutation
//! suite in [`super::mutations`] can re-explore the identical programs
//! with a seeded bad ordering switched on.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

use super::{explore, explore_random, spawn, with_active, JoinHandle, Options, Report};
use crate::addr::VirtAddr;
use crate::buffer::{CompletedBuffer, PostedBuffer, Threshold};
use crate::cq::CompletionQueue;
use crate::csync::{self, AtomicU64 as CheckedU64, AtomicUsize as CheckedUsize};
use crate::mailbox::{DeliveryOutcome, Mailbox, MailboxMode, OpKey, DEFAULT_RETAIN_EPOCHS};
use crate::notify::{Notification, NotificationSlot};
use crate::ring::{PushError, RingQueue};
use crate::transport_threaded::RouteSlot;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Tag a value with its producer and per-producer sequence number.
fn tag(p: usize, i: u64) -> u64 {
    ((p as u64) << 32) | i
}

pub(super) fn demo_buf(byte: u8) -> CompletedBuffer {
    CompletedBuffer::new(vec![byte; 8], 8, 0, VirtAddr::new(byte as u64))
}

pub(super) fn spawn_completer(slot: &Arc<NotificationSlot>) -> JoinHandle<()> {
    let slot = Arc::clone(slot);
    spawn(move || slot.complete(demo_buf(7)))
}

/// A `Waker` that unparks the model thread `tid` — the model-world
/// equivalent of an executor waking a task. `wake()` may be called from
/// any model thread (the completer), which is exactly the cross-thread
/// handoff the notification path must order correctly.
fn park_waker(tid: usize) -> Waker {
    unsafe fn clone_raw(data: *const ()) -> RawWaker {
        RawWaker::new(data, &VTABLE)
    }
    unsafe fn wake_raw(data: *const ()) {
        super::unpark_model_thread(data as usize);
    }
    unsafe fn drop_raw(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone_raw, wake_raw, wake_raw, drop_raw);
    unsafe { Waker::from_raw(RawWaker::new(tid as *const (), &VTABLE)) }
}

fn model_tid() -> usize {
    with_active(|_, me| me).expect("model helper called outside an active exploration")
}

/// Explore every schedule within the default preemption bound and insist
/// the space was exhausted (not truncated by a schedule or step cap).
fn run_exhaustive(name: &str, model: fn()) -> Report {
    let report = explore(Options::default(), model)
        .unwrap_or_else(|failure| panic!("{name}: counterexample found: {failure:?}"));
    assert!(
        report.complete,
        "{name}: schedule space was truncated, not exhausted ({} schedules)",
        report.schedules
    );
    println!(
        "{name}: exhaustively explored {} schedules ({} steps, {} threads max)",
        report.schedules, report.total_steps, report.max_threads
    );
    report
}

// ---------------------------------------------------------------------------
// Ring: push vs close vs single-consumer pop
// ---------------------------------------------------------------------------

/// Two producers race `try_push` against a single consumer that closes
/// the ring after its first successful pop. Ported invariants
/// (`tests/ring_interleave.rs`): delivered ∪ rejected exactly partitions
/// the pushed set, and per-producer order survives into the delivered
/// sequence. Producers are asymmetric (two ops vs. one) and non-blocking
/// — the blocking `push` retry loop multiplies schedules far past the
/// exhaustive budget without adding orderings `try_push` doesn't hit
/// (its full/closed rejections exercise the same claim/publish races).
pub(super) fn ring_partition_model() {
    const PRODUCERS: usize = 2;
    const OPS: [u64; PRODUCERS] = [2, 1];
    let ring = Arc::new(RingQueue::<u64>::new(2));
    let done = Arc::new(CheckedUsize::new(0));
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            spawn(move || {
                let mut rejected = Vec::new();
                for i in 0..OPS[p] {
                    if let Err(PushError::Full(v) | PushError::Closed(v)) = ring.try_push(tag(p, i))
                    {
                        rejected.push(v);
                    }
                }
                done.fetch_add(1, Ordering::Release);
                rejected
            })
        })
        .collect();

    let mut delivered = Vec::new();
    let mut closed = false;
    loop {
        match ring.try_pop() {
            Some(v) => {
                delivered.push(v);
                if !closed {
                    ring.close();
                    closed = true;
                }
            }
            None => {
                if done.load(Ordering::Acquire) == PRODUCERS {
                    // Producers are finished and their pushes happen-before
                    // the counter reads; one final drain empties the ring.
                    while let Some(v) = ring.try_pop() {
                        delivered.push(v);
                    }
                    break;
                }
                csync::spin_loop();
            }
        }
    }
    if !closed {
        ring.close();
    }

    let mut rejected = Vec::new();
    for h in handles {
        rejected.extend(h.join());
    }

    let mut all: Vec<u64> = delivered.iter().chain(rejected.iter()).copied().collect();
    all.sort_unstable();
    let mut expect: Vec<u64> = (0..PRODUCERS)
        .flat_map(|p| (0..OPS[p]).map(move |i| tag(p, i)))
        .collect();
    expect.sort_unstable();
    assert_eq!(
        all, expect,
        "delivered ∪ rejected must partition the pushes"
    );

    for p in 0..PRODUCERS {
        let seqs: Vec<u64> = delivered
            .iter()
            .filter(|v| (**v >> 32) as usize == p)
            .map(|v| v & 0xffff_ffff)
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "producer {p} delivered out of order: {seqs:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Notification handoff: completing write vs every consumer flavor
// ---------------------------------------------------------------------------

/// Completing write races a blocking `wait()` (spin, register, park).
pub(super) fn notify_wait_model() {
    let slot = NotificationSlot::new();
    let completer = spawn_completer(&slot);
    let mut note = Notification::new(Arc::clone(&slot));
    let buf = note.wait();
    assert_eq!(buf.data(), &[7u8; 8]);
    assert!(note.poll().is_none(), "payload must be taken exactly once");
    completer.join();
}

/// Completing write races `wait_timeout`. The deadline is far in the
/// future in real time, and the modeled condvar only times out when no
/// other thread can run, so this enumerates the timed park/wake handoff
/// deterministically; the `None` arm keeps the program total either way.
pub(super) fn notify_timeout_model() {
    let slot = NotificationSlot::new();
    let completer = spawn_completer(&slot);
    let mut note = Notification::new(Arc::clone(&slot));
    let buf = match note.wait_timeout(Duration::from_secs(3600)) {
        Some(buf) => buf,
        None => note.wait(),
    };
    assert_eq!(buf.data(), &[7u8; 8]);
    completer.join();
}

/// Completing write races a lock-free polling consumer.
pub(super) fn notify_poll_model() {
    let slot = NotificationSlot::new();
    let completer = spawn_completer(&slot);
    let mut note = Notification::new(Arc::clone(&slot));
    let buf = loop {
        if let Some(buf) = note.poll() {
            break buf;
        }
        csync::spin_loop();
    };
    assert_eq!(buf.data(), &[7u8; 8]);
    assert!(note.poll().is_none(), "payload must be taken exactly once");
    completer.join();
}

/// Completing write races an async consumer: poll → register waker →
/// park, woken by the completer through the registered waker. Covers the
/// wake-before-register race inside `AtomicWaker` — a lost wakeup here
/// shows up as a modeled deadlock.
pub(super) fn notify_future_model() {
    let slot = NotificationSlot::new();
    let completer = spawn_completer(&slot);
    let waker = park_waker(model_tid());
    let mut cx = Context::from_waker(&waker);
    let mut fut = Notification::new(Arc::clone(&slot)).into_future();
    let buf = loop {
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(buf) => break buf,
            Poll::Pending => csync::thread::park(),
        }
    };
    assert_eq!(buf.data(), &[7u8; 8]);
    completer.join();
}

/// A future is polled once and dropped mid-flight while the completer
/// runs. Whatever interleaving occurs, the payload is delivered exactly
/// once: either the single poll consumed it, or a fresh `Notification`
/// on the same slot receives it after the drop.
pub(super) fn notify_dropped_future_model() {
    let slot = NotificationSlot::new();
    let completer = spawn_completer(&slot);
    let waker = park_waker(model_tid());
    let mut cx = Context::from_waker(&waker);
    let mut fut = Notification::new(Arc::clone(&slot)).into_future();
    let first = match Pin::new(&mut fut).poll(&mut cx) {
        Poll::Ready(buf) => Some(buf),
        Poll::Pending => None,
    };
    drop(fut);
    match first {
        Some(buf) => {
            assert_eq!(buf.data(), &[7u8; 8]);
            assert!(
                Notification::new(Arc::clone(&slot)).poll().is_none(),
                "consumed payload resurfaced after the future was dropped"
            );
        }
        None => {
            let mut note = Notification::new(Arc::clone(&slot));
            let buf = note.wait();
            assert_eq!(
                buf.data(),
                &[7u8; 8],
                "slot must stay consumable after an abandoned future"
            );
        }
    }
    completer.join();
}

// ---------------------------------------------------------------------------
// Seqlock route cache: read vs publish vs generation bump
// ---------------------------------------------------------------------------

/// A reader races a republish of the cached route slot. A hit must carry
/// the queue that was published together with the key it validated —
/// never a torn mix of old and new fields.
pub(super) fn seqlock_read_vs_publish_model() {
    let slot = Arc::new(RouteSlot::default());
    slot.publish(1, 0x10, 1, 5);
    let writer = {
        let slot = Arc::clone(&slot);
        spawn(move || slot.publish(2, 0x20, 1, 7))
    };
    if let Some(q) = slot.read(1, 0x10, 1) {
        assert_eq!(q, 5, "hit on the old route returned the new queue");
    }
    if let Some(q) = slot.read(2, 0x20, 1) {
        assert_eq!(q, 7, "hit on the new route returned the old queue");
    }
    writer.join();
}

/// A generation bump (endpoint remap) races a reader revalidating the
/// same key. A hit under generation `g` must return the queue published
/// for `g` — the stale route is only ever served under the stale
/// generation, where it is still correct.
pub(super) fn seqlock_generation_bump_model() {
    let slot = Arc::new(RouteSlot::default());
    let generation = Arc::new(CheckedU64::new(1));
    slot.publish(1, 0x10, 1, 5);
    let writer = {
        let slot = Arc::clone(&slot);
        let generation = Arc::clone(&generation);
        spawn(move || {
            generation.fetch_add(1, Ordering::Release);
            slot.publish(1, 0x10, 2, 7);
        })
    };
    let g = generation.load(Ordering::Acquire);
    match slot.read(1, 0x10, g) {
        None => {}
        Some(q) => {
            let expect = if g == 1 { 5 } else { 7 };
            assert_eq!(q, expect, "hit under generation {g} returned queue {q}");
        }
    }
    writer.join();
}

// ---------------------------------------------------------------------------
// Completion queue: ring-vs-spill FIFO across overflow episodes
// ---------------------------------------------------------------------------

fn cq_buf(byte: u8) -> CompletedBuffer {
    CompletedBuffer::new(vec![byte; 4], 4, 0, VirtAddr::new(byte as u64))
}

/// Two producers push completions while the consumer drains; every
/// completion arrives exactly once and per-producer order holds, spill
/// or no spill (ring capacity 2 forces overflow under contention).
pub(super) fn cq_two_producer_model() {
    const PER: u64 = 2;
    let cq = Arc::new(CompletionQueue::new(2));
    let handles: Vec<_> = (0..2u64)
        .map(|p| {
            let cq = Arc::clone(&cq);
            spawn(move || {
                let att = cq.attachment(p);
                for i in 0..PER {
                    att.push(cq_buf((p * 10 + i) as u8));
                }
            })
        })
        .collect();
    let mut got: Vec<(u64, u8)> = Vec::new();
    let mut batch = Vec::new();
    while got.len() < 2 * PER as usize {
        batch.clear();
        if cq.poll_batch(4, &mut batch) == 0 {
            csync::spin_loop();
        }
        got.extend(batch.drain(..).map(|c| (c.user, c.buffer.data()[0])));
    }
    for h in handles {
        h.join();
    }
    let mut bytes: Vec<u8> = got.iter().map(|&(_, b)| b).collect();
    bytes.sort_unstable();
    assert_eq!(bytes, vec![0, 1, 10, 11], "completions lost or duplicated");
    for p in 0..2u64 {
        let seq: Vec<u8> = got
            .iter()
            .filter(|&&(user, _)| user == p)
            .map(|&(_, b)| b)
            .collect();
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "producer {p} completions reordered: {seq:?}"
        );
    }
}

/// The PR-8 regression shape: an overflow episode is already open (ring
/// full, one entry spilled) when a late producer pushes concurrently with
/// the consumer draining. Global FIFO must hold across the episode — the
/// late push must never overtake the entry sitting in the spill queue.
pub(super) fn cq_spill_episode_model() {
    let cq = Arc::new(CompletionQueue::new(2));
    // Uncontended setup on the host thread: fill the ring, then spill one
    // entry so the overflow episode is open before the race starts.
    let att = cq.attachment(0);
    att.push(cq_buf(1));
    att.push(cq_buf(2));
    att.push(cq_buf(3));
    let producer = {
        let cq = Arc::clone(&cq);
        spawn(move || cq.attachment(0).push(cq_buf(4)))
    };
    let mut order = Vec::new();
    let mut batch = Vec::new();
    while order.len() < 4 {
        batch.clear();
        if cq.poll_batch(4, &mut batch) == 0 {
            csync::spin_loop();
        }
        order.extend(batch.drain(..).map(|c| c.buffer.data()[0]));
    }
    producer.join();
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        vec![1, 2, 3, 4],
        "spill episode lost or duplicated a completion"
    );
    let pos = |b: u8| order.iter().position(|&x| x == b).unwrap();
    assert!(pos(1) < pos(2), "ring FIFO violated: {order:?}");
    assert!(
        pos(2) < pos(3),
        "spilled entry overtook the ring: {order:?}"
    );
    assert!(
        pos(3) < pos(4),
        "late push overtook the open overflow episode: {order:?}"
    );
}

// ---------------------------------------------------------------------------
// Mailbox: dedup window vs epoch rotation
// ---------------------------------------------------------------------------

pub(super) fn post_bytes(m: &mut Mailbox, len: usize) -> Notification {
    let slot = NotificationSlot::new();
    m.post(PostedBuffer::new(
        vec![0; len],
        Threshold::bytes(len as u64),
        slot.clone(),
    ))
    .expect("post");
    Notification::new(slot)
}

pub(super) fn op(id: u64) -> OpKey {
    OpKey {
        op_id: id,
        initiator: 1,
    }
}

/// A retransmitted final fragment of epoch 0's completing op races fresh
/// epoch-1 traffic. The mailbox is exclusive-borrow by construction, so
/// the model serializes deliveries through a checked mutex and lets the
/// scheduler enumerate both arrival orders: the duplicate must hit the
/// dedup window (which survives rotation) in *every* interleaving and
/// never land bytes in — let alone complete — epoch 1.
pub(super) fn mailbox_dedup_rotation_model() {
    let m = Arc::new(csync::Mutex::new(Mailbox::with_dedup(
        VirtAddr::new(0xAB),
        MailboxMode::Steered,
        DEFAULT_RETAIN_EPOCHS,
        8,
    )));
    let (mut n1, mut n2) = {
        let mut mb = m.lock();
        let n1 = post_bytes(&mut mb, 4);
        let n2 = post_bytes(&mut mb, 4);
        // Epoch 0 completes with op 9 before the race begins.
        assert_eq!(mb.deliver(op(9), 4, 0, &[1; 4]), DeliveryOutcome::Completed);
        (n1, n2)
    };
    let dup = {
        let m = Arc::clone(&m);
        spawn(move || m.lock().deliver(op(9), 4, 0, &[1; 4]))
    };
    let fresh = {
        let m = Arc::clone(&m);
        spawn(move || m.lock().deliver(op(10), 2, 0, &[2; 2]))
    };
    assert_eq!(
        dup.join(),
        DeliveryOutcome::Duplicate,
        "replayed final fragment must dedup in every interleaving"
    );
    assert_eq!(fresh.join(), DeliveryOutcome::Accepted);
    let mb = m.lock();
    assert_eq!(mb.epoch(), 1);
    assert_eq!(
        mb.bytes_this_epoch(),
        2,
        "the duplicate landed bytes in epoch N+1"
    );
    let b1 = n1.poll().expect("epoch 0 completed");
    assert_eq!(b1.data(), &[1; 4]);
    assert!(n2.poll().is_none(), "epoch 1 completed early");
}

// ---------------------------------------------------------------------------
// Exhaustive exploration tests
// ---------------------------------------------------------------------------

#[test]
fn ring_push_close_pop_partition() {
    run_exhaustive("ring_partition", ring_partition_model);
}

#[test]
fn notify_wait_handoff() {
    run_exhaustive("notify_wait", notify_wait_model);
}

#[test]
fn notify_timeout_handoff() {
    run_exhaustive("notify_timeout", notify_timeout_model);
}

#[test]
fn notify_poll_handoff() {
    run_exhaustive("notify_poll", notify_poll_model);
}

#[test]
fn notify_future_handoff() {
    run_exhaustive("notify_future", notify_future_model);
}

#[test]
fn notify_dropped_future_reuse() {
    run_exhaustive("notify_dropped_future", notify_dropped_future_model);
}

#[test]
fn seqlock_read_vs_publish() {
    run_exhaustive("seqlock_read_vs_publish", seqlock_read_vs_publish_model);
}

#[test]
fn seqlock_generation_bump() {
    run_exhaustive("seqlock_generation_bump", seqlock_generation_bump_model);
}

#[test]
fn cq_two_producer_fifo() {
    run_exhaustive("cq_two_producer", cq_two_producer_model);
}

#[test]
fn cq_spill_episode_fifo() {
    run_exhaustive("cq_spill_episode", cq_spill_episode_model);
}

#[test]
fn mailbox_dedup_vs_rotation() {
    run_exhaustive("mailbox_dedup_rotation", mailbox_dedup_rotation_model);
}

/// Seeded randomized smoke over the richest model with the preemption
/// bound lifted — the lane CI runs with a printed seed for replay.
#[test]
fn randomized_schedule_smoke() {
    let seed = std::env::var("RVMA_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x52564d41u64);
    println!("RVMA_CHECK_SEED={seed}");
    let opts = Options {
        preemption_bound: None,
        ..Options::default()
    };
    let report = explore_random(opts, seed, 128, ring_partition_model)
        .unwrap_or_else(|f| panic!("randomized smoke (seed {seed}): {f:?}"));
    println!(
        "randomized smoke: {} schedules sampled ({} steps)",
        report.schedules, report.total_steps
    );
}
