//! Mutation tests: prove the checker *catches* the bug class each
//! protocol ordering exists to prevent.
//!
//! Each seeded [`Mutation`] weakens one ordering in the production code
//! (see `csync::Mutation` for the catalogue) — but only inside an
//! execution whose [`Options::mutations`] lists it. The same model
//! programs that pass exhaustively in [`super::models`] (the clean
//! baselines) are re-explored with one mutation switched on; the
//! exploration must now fail, with the *expected* failure kind, and both
//! the reported schedule and its greedily minimized variant must replay
//! to the same failure — the end-to-end debug loop a real
//! counterexample would go through.

use super::models::{
    cq_spill_episode_model, notify_poll_model, notify_wait_model, ring_partition_model,
    seqlock_read_vs_publish_model,
};
use super::{explore, replay, Failure, FailureKind, Mutation, Options};

fn with_mutation(mutation: Mutation) -> Options {
    Options {
        mutations: vec![mutation],
        ..Options::default()
    }
}

/// Explore `model` with `mutation` active; the checker must find a
/// counterexample of kind `expect`, and both the reported and minimized
/// schedules must deterministically replay it.
fn expect_caught(name: &str, mutation: Mutation, expect: FailureKind, model: fn()) {
    let opts = with_mutation(mutation);
    let failure: Box<Failure> = match explore(opts.clone(), model) {
        Err(failure) => failure,
        Ok(report) => panic!(
            "{name}: mutation {mutation:?} survived {} exhaustive schedules",
            report.schedules
        ),
    };
    assert_eq!(
        failure.kind, expect,
        "{name}: wrong failure kind for {mutation:?}: {failure:?}"
    );
    println!(
        "{name}: {mutation:?} caught as {:?} after {} schedules; schedule {:?} (minimized {:?})",
        failure.kind, failure.schedules_before, failure.schedule, failure.minimized
    );

    let replayed = replay(&failure.schedule, opts.clone(), model)
        .expect_err("the reported schedule must reproduce the failure");
    assert_eq!(replayed.kind, expect, "{name}: replay diverged");

    let minimized = failure
        .minimized
        .as_ref()
        .expect("a minimized schedule is always reported");
    let replayed_min = replay(minimized, opts, model)
        .expect_err("the minimized schedule must still reproduce the failure");
    assert_eq!(
        replayed_min.kind, expect,
        "{name}: minimized replay diverged"
    );
}

/// Completing swap demoted to `Relaxed`: the consumer's acquire on the
/// state flag no longer brings the payload write into view — the vector
/// clocks flag the payload handoff as a data race even though the
/// serialized execution never corrupts it.
#[test]
fn relaxed_completing_swap_is_caught() {
    expect_caught(
        "relaxed_completing_swap",
        Mutation::RelaxedCompletingSwap,
        FailureKind::DataRace,
        notify_poll_model,
    );
}

/// Waiter count read *before* the completing swap: the classic Dekker
/// inversion. A consumer that registers and parks in the window between
/// the early read and the swap is never woken — a modeled deadlock.
#[test]
fn waiters_check_before_swap_is_caught() {
    expect_caught(
        "waiters_check_before_swap",
        Mutation::WaitersCheckBeforeSwap,
        FailureKind::Deadlock,
        notify_wait_model,
    );
}

/// Ring slot sequence published with `Relaxed`: the consumer can observe
/// the "ready" sequence without the slot payload being ordered before
/// it — a data race on the slot cell.
#[test]
fn ring_publish_relaxed_is_caught() {
    expect_caught(
        "ring_publish_relaxed",
        Mutation::RingPublishRelaxed,
        FailureKind::DataRace,
        ring_partition_model,
    );
}

/// Seqlock write lock skipped: a reader interleaved mid-publish sees a
/// torn route — new key fields validated against the stale queue — and
/// the model's wrong-queue assertion fires.
#[test]
fn seqlock_torn_publish_is_caught() {
    expect_caught(
        "seqlock_torn_publish",
        Mutation::SeqlockTornPublish,
        FailureKind::Panic,
        seqlock_read_vs_publish_model,
    );
}

/// Overflow-episode check skipped on push: a late completion can land in
/// the ring and be polled ahead of an entry already sitting in the spill
/// queue — the PR-8 FIFO regression, rediscovered by enumeration.
#[test]
fn cq_spill_bypass_is_caught() {
    expect_caught(
        "cq_spill_bypass",
        Mutation::CqSpillBypass,
        FailureKind::Panic,
        cq_spill_episode_model,
    );
}
