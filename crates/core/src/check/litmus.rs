//! Litmus programs derived from the paper's RVMA semantics, run under
//! exhaustive schedule enumeration.
//!
//! Where the models in [`super::models`] target the *implementation's*
//! lock-free structures, these programs pin down three *semantic*
//! guarantees the paper's hardware contract promises software:
//!
//! 1. **Threshold completion under arbitrary fragment reorder** — an
//!    epoch completes exactly once, with the full payload in place, no
//!    matter how fragments from different initiators interleave (or
//!    arrive offset-reversed within one op).
//! 2. **A duplicate final fragment never early-completes epoch N+1** —
//!    the retransmitted completing fragment of epoch N is absorbed by
//!    the dedup window in every arrival order.
//! 3. **Exactly-once extent release** — when two release paths race the
//!    completing write, the `COMPLETE → TAKEN` transition hands the
//!    buffer (and therefore the extent) to exactly one of them.

use std::sync::Arc;

use super::models::{demo_buf, op, post_bytes};
use super::{explore, spawn, Options};
use crate::addr::VirtAddr;
use crate::csync::{self, CheckCell};
use crate::mailbox::{DeliveryOutcome, Mailbox, MailboxMode, OpKey, DEFAULT_RETAIN_EPOCHS};
use crate::notify::{Notification, NotificationSlot};

fn run_litmus(name: &str, model: fn()) {
    let report = explore(Options::default(), model)
        .unwrap_or_else(|failure| panic!("{name}: counterexample found: {failure:?}"));
    assert!(
        report.complete,
        "{name}: schedule space was truncated, not exhausted"
    );
    println!(
        "{name}: exhaustively explored {} schedules ({} steps)",
        report.schedules, report.total_steps
    );
}

// ---------------------------------------------------------------------------
// 1. Threshold completion under arbitrary fragment reorder
// ---------------------------------------------------------------------------

/// Two initiators each land one op as two 4-byte fragments into one
/// 16-byte epoch with a byte-count threshold; initiator A delivers its
/// fragments offset-reversed. In every enumerated arrival order: exactly
/// one delivery observes `Completed`, and the completed buffer holds
/// every fragment at its steered offset.
fn threshold_fragment_reorder() {
    let m = Arc::new(csync::Mutex::new(Mailbox::new(
        VirtAddr::new(0xAB),
        MailboxMode::Steered,
        DEFAULT_RETAIN_EPOCHS,
    )));
    let mut note = post_bytes(&mut m.lock(), 16);
    let frags_a: [(OpKey, u64, usize, [u8; 4]); 2] = [(op(1), 8, 4, [2; 4]), (op(1), 8, 0, [1; 4])];
    let frags_b: [(OpKey, u64, usize, [u8; 4]); 2] =
        [(op(2), 8, 8, [3; 4]), (op(2), 8, 12, [4; 4])];
    let deliver_all = |frags: [(OpKey, u64, usize, [u8; 4]); 2]| {
        let m = Arc::clone(&m);
        spawn(move || {
            frags
                .into_iter()
                .map(|(k, total, off, data)| m.lock().deliver(k, total, off, &data))
                .collect::<Vec<_>>()
        })
    };
    let ta = deliver_all(frags_a);
    let tb = deliver_all(frags_b);
    let mut outcomes = ta.join();
    outcomes.extend(tb.join());

    let completed = outcomes
        .iter()
        .filter(|o| matches!(o, DeliveryOutcome::Completed))
        .count();
    let accepted = outcomes
        .iter()
        .filter(|o| matches!(o, DeliveryOutcome::Accepted))
        .count();
    assert_eq!(
        (completed, accepted),
        (1, 3),
        "threshold must fire exactly once: {outcomes:?}"
    );

    let buf = note.poll().expect("threshold reached → epoch completed");
    let mut expect = Vec::new();
    for byte in 1u8..=4 {
        expect.extend_from_slice(&[byte; 4]);
    }
    assert_eq!(
        buf.data(),
        &expect[..],
        "fragment landed at the wrong offset"
    );
    assert_eq!(buf.epoch(), 0);
    assert_eq!(m.lock().epoch(), 1);
}

// ---------------------------------------------------------------------------
// 2. Duplicate final fragment never early-completes epoch N+1
// ---------------------------------------------------------------------------

/// The completing fragment of epoch 0 and its network retransmit race
/// across the rotation boundary. Whichever copy arrives first completes
/// epoch 0; the other must be absorbed by the dedup window — it must not
/// land bytes in (let alone complete) the epoch-1 buffer.
fn duplicate_final_fragment() {
    let m = Arc::new(csync::Mutex::new(Mailbox::with_dedup(
        VirtAddr::new(0xAB),
        MailboxMode::Steered,
        DEFAULT_RETAIN_EPOCHS,
        8,
    )));
    let (mut n1, mut n2) = {
        let mut mb = m.lock();
        (post_bytes(&mut mb, 4), post_bytes(&mut mb, 4))
    };
    let deliver_final = || {
        let m = Arc::clone(&m);
        spawn(move || m.lock().deliver(op(9), 4, 0, &[1; 4]))
    };
    let original = deliver_final();
    let retransmit = deliver_final();
    let outcomes = [original.join(), retransmit.join()];

    let completed = outcomes
        .iter()
        .filter(|o| matches!(o, DeliveryOutcome::Completed))
        .count();
    let duplicate = outcomes
        .iter()
        .filter(|o| matches!(o, DeliveryOutcome::Duplicate))
        .count();
    assert_eq!(
        (completed, duplicate),
        (1, 1),
        "exactly one copy completes, the other dedups: {outcomes:?}"
    );

    let mb = m.lock();
    assert_eq!(mb.epoch(), 1, "epoch 0 must have rotated exactly once");
    assert_eq!(
        mb.bytes_this_epoch(),
        0,
        "the duplicate landed bytes in epoch N+1"
    );
    assert_eq!(n1.poll().expect("epoch 0 completed").data(), &[1; 4]);
    assert!(n2.poll().is_none(), "duplicate early-completed epoch N+1");
}

// ---------------------------------------------------------------------------
// 3. Exactly-once extent release
// ---------------------------------------------------------------------------

/// The extent behind a completed buffer, released through a guard that
/// panics on double release. The race-detector additionally checks the
/// release is ordered after the completing write.
struct ExtentGuard {
    released: CheckCell<u32>,
}

// Model-only: accesses are guarded by the notification take CAS, which is
// exactly what the litmus verifies.
unsafe impl Send for ExtentGuard {}
unsafe impl Sync for ExtentGuard {}

impl ExtentGuard {
    fn new() -> Self {
        ExtentGuard {
            released: CheckCell::new(0),
        }
    }

    fn release(&self) {
        self.released.with_mut(|r| unsafe {
            assert_eq!(*r, 0, "extent released twice");
            *r += 1;
        });
    }

    fn count(&self) -> u32 {
        self.released.with(|r| unsafe { *r })
    }
}

/// Two independent release paths (two `Notification` handles over the
/// same slot) race for a payload that has already completed. The
/// `COMPLETE → TAKEN` CAS must hand the buffer to exactly one of them;
/// the loser's poll observes the taken state and backs off empty-handed.
/// (The completing-write vs. poll race itself is enumerated separately by
/// the notify models; keeping it out of this litmus keeps two takers from
/// spinning against each other, which the schedule space cannot afford.)
fn exactly_once_extent_release() {
    let slot = NotificationSlot::new();
    slot.complete(demo_buf(7));
    let guard = Arc::new(ExtentGuard::new());

    let racer = |slot: Arc<NotificationSlot>, guard: Arc<ExtentGuard>| {
        move || {
            let mut note = Notification::new(slot);
            // One decisive poll: the slot is already COMPLETE, so `Some`
            // means this handle won the take election and `None` means the
            // other handle owns the payload (no retry needed either way).
            match note.poll() {
                Some(buf) => {
                    assert_eq!(buf.data(), demo_buf(7).data());
                    guard.release();
                    true
                }
                None => false,
            }
        }
    };

    let other = spawn(racer(Arc::clone(&slot), Arc::clone(&guard)));
    let host_won = racer(Arc::clone(&slot), Arc::clone(&guard))();
    let other_won = other.join();

    assert_eq!(
        usize::from(host_won) + usize::from(other_won),
        1,
        "the take CAS must elect exactly one releaser"
    );
    assert_eq!(guard.count(), 1, "extent released exactly once");
}

#[test]
fn litmus_threshold_fragment_reorder() {
    run_litmus("litmus_threshold_reorder", threshold_fragment_reorder);
}

#[test]
fn litmus_duplicate_final_fragment() {
    run_litmus("litmus_duplicate_final", duplicate_final_fragment);
}

#[test]
fn litmus_exactly_once_extent_release() {
    run_litmus("litmus_extent_release", exactly_once_extent_release);
}
